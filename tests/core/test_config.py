"""Tests for repro.core.config — TrainingConfig."""

import pytest

from repro.core.config import OptimizationLevel, TrainingConfig
from repro.errors import ConfigurationError
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.backend import backend_for_level, matlab_backend


def make(**overrides):
    base = dict(n_visible=64, n_hidden=32, n_examples=1000, batch_size=100)
    base.update(overrides)
    return TrainingConfig(**base)


class TestValidation:
    def test_valid_defaults(self):
        cfg = make()
        assert cfg.machine is XEON_PHI_5110P
        assert cfg.level is OptimizationLevel.IMPROVED

    def test_batch_cannot_exceed_examples(self):
        with pytest.raises(ConfigurationError):
            make(batch_size=2000)

    def test_chunk_cannot_be_smaller_than_batch(self):
        with pytest.raises(ConfigurationError):
            make(chunk_examples=50, batch_size=100)

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            make(n_visible=0)
        with pytest.raises(ConfigurationError):
            make(epochs=0)
        with pytest.raises(ConfigurationError):
            make(learning_rate=0.0)


class TestDerivedProperties:
    def test_batches_per_epoch_rounds_up(self):
        assert make(n_examples=1050, batch_size=100).batches_per_epoch == 11

    def test_total_updates(self):
        assert make(epochs=3).total_updates == 30

    def test_chunk_default_is_whole_dataset(self):
        assert make().effective_chunk_examples == 1000
        assert make(chunk_examples=200).effective_chunk_examples == 200

    def test_effective_backend_from_level(self):
        cfg = make(level=OptimizationLevel.OPENMP)
        assert cfg.effective_backend == backend_for_level(OptimizationLevel.OPENMP)

    def test_backend_override_wins(self):
        cfg = make(backend=matlab_backend())
        assert cfg.effective_backend.name == "matlab-r2012a"


class TestDerivation:
    def test_with_machine(self):
        cfg = make().with_machine(XEON_E5620)
        assert cfg.machine is XEON_E5620
        assert cfg.n_visible == 64

    def test_with_level_clears_backend(self):
        cfg = make(backend=matlab_backend()).with_level(OptimizationLevel.BASELINE)
        assert cfg.backend is None
        assert cfg.effective_backend.level is OptimizationLevel.BASELINE

    def test_with_backend(self):
        cfg = make().with_backend(matlab_backend())
        assert cfg.effective_backend.per_op_overhead_s > 0

    def test_frozen(self):
        with pytest.raises(Exception):
            make().n_visible = 10
