"""Tests for repro.core.pretrain — the greedy deep pre-training driver."""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel, TrainingConfig
from repro.core.pretrain import (
    DeepPretrainer,
    TABLE1_BATCH_SIZE,
    TABLE1_ITERATIONS_PER_LAYER,
    TABLE1_LAYER_SIZES,
)
from repro.errors import ConfigurationError
from repro.phi.spec import XEON_PHI_5110P


def small_base(**overrides):
    base = dict(
        n_visible=25, n_hidden=16, n_examples=64, batch_size=16,
        machine=XEON_PHI_5110P, learning_rate=0.5,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestConstruction:
    def test_table1_constants(self):
        assert TABLE1_LAYER_SIZES == (1024, 512, 256, 128)
        assert TABLE1_BATCH_SIZE == 10_000
        assert TABLE1_ITERATIONS_PER_LAYER == 200

    def test_rejects_too_few_layers(self):
        with pytest.raises(ConfigurationError):
            DeepPretrainer(small_base(), layer_sizes=[25])

    def test_rejects_unknown_block(self):
        with pytest.raises(ConfigurationError):
            DeepPretrainer(small_base(), layer_sizes=[25, 16], block="cnn")

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            DeepPretrainer(small_base(), layer_sizes=[25, 16], iterations_per_layer=0)


class TestSimulate:
    def test_one_result_per_block(self):
        pre = DeepPretrainer(
            small_base(), layer_sizes=[25, 16, 9], iterations_per_layer=5
        )
        result = pre.simulate()
        assert len(result.layers) == 2
        assert result.layers[0].n_visible == 25 and result.layers[0].n_hidden == 16
        assert result.layers[1].n_visible == 16 and result.layers[1].n_hidden == 9

    def test_total_is_sum_of_layers(self):
        pre = DeepPretrainer(small_base(), layer_sizes=[25, 16, 9], iterations_per_layer=5)
        result = pre.simulate()
        assert result.total_seconds == pytest.approx(
            sum(l.result.simulated_seconds for l in result.layers)
        )

    def test_iterations_counted_as_updates(self):
        pre = DeepPretrainer(small_base(), layer_sizes=[25, 16], iterations_per_layer=7)
        result = pre.simulate()
        assert result.layers[0].result.n_updates == 7

    def test_earlier_layers_cost_more(self):
        """Layer widths shrink down the stack, so should per-layer time."""
        pre = DeepPretrainer(
            small_base(n_visible=1024, n_hidden=512, n_examples=1000, batch_size=1000),
            layer_sizes=[1024, 512, 256, 128],
            iterations_per_layer=10,
        )
        times = [l.result.simulated_seconds for l in pre.simulate().layers]
        assert times[0] > times[1] > times[2]

    def test_rbm_block_variant(self):
        pre = DeepPretrainer(
            small_base(), layer_sizes=[25, 16], iterations_per_layer=3, block="rbm"
        )
        result = pre.simulate()
        assert result.total_seconds > 0

    def test_breakdown_aggregates(self):
        pre = DeepPretrainer(small_base(), layer_sizes=[25, 16, 9], iterations_per_layer=2)
        result = pre.simulate()
        assert result.breakdown.n_kernels > 0
        assert result.total_updates == 4


class TestFit:
    def test_functional_cascade(self, digits_25):
        pre = DeepPretrainer(
            small_base(batch_size=16), layer_sizes=[25, 16, 9], iterations_per_layer=20
        )
        result = pre.fit(digits_25)
        assert len(result.layers) == 2
        for layer in result.layers:
            assert layer.result.losses[-1] < layer.result.losses[0]

    def test_fit_rejects_wrong_width(self, digits_25):
        pre = DeepPretrainer(small_base(), layer_sizes=[30, 16])
        with pytest.raises(ConfigurationError):
            pre.fit(digits_25)

    def test_rbm_fit_cascade(self, binary_batch):
        pre = DeepPretrainer(
            small_base(n_visible=12, n_hidden=8, batch_size=10),
            layer_sizes=[12, 8, 5],
            iterations_per_layer=10,
            block="rbm",
        )
        result = pre.fit(binary_batch)
        assert len(result.layers) == 2
        assert result.total_seconds > 0
