"""Tests for the shared trainer machinery (repro.core._simbase)."""

from dataclasses import replace

import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.phi.spec import XEON_PHI_5110P


def config(**overrides):
    base = dict(
        n_visible=256, n_hidden=128, n_examples=4000, batch_size=500,
        machine=XEON_PHI_5110P,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestUpdateCostMemoization:
    def test_same_batch_size_same_object(self):
        trainer = SparseAutoencoderTrainer(config())
        a = trainer._update_cost(500)
        b = trainer._update_cost(500)
        assert a is b  # cached tuple, not recomputed

    def test_distinct_batch_sizes_distinct_costs(self):
        trainer = SparseAutoencoderTrainer(config())
        full, _ = trainer._update_cost(500)
        tail, _ = trainer._update_cost(123)
        assert tail < full

    def test_epoch_batch_sizes_with_tail(self):
        trainer = SparseAutoencoderTrainer(config(n_examples=4100))
        sizes = trainer._epoch_batch_sizes()
        assert sizes == [(500, 8), (100, 1)]

    def test_epoch_batch_sizes_exact_division(self):
        trainer = SparseAutoencoderTrainer(config())
        assert trainer._epoch_batch_sizes() == [(500, 8)]

    def test_compute_scales_with_epochs_exactly(self):
        one = SparseAutoencoderTrainer(config(epochs=1))._simulate_compute()
        five = SparseAutoencoderTrainer(config(epochs=5))._simulate_compute()
        assert five[0] == pytest.approx(5 * one[0])
        assert five[2] == 5 * one[2]


class TestTransferAccounting:
    def test_resident_pool_stages_dataset_once(self):
        """Chunk pool >= dataset: epochs reuse resident chunks, so the
        transfer total equals one dataset crossing regardless of epochs."""
        cfg = config(chunk_examples=2000, n_buffers=2, epochs=4)
        result = SparseAutoencoderTrainer(cfg).simulate()
        one_epoch = SparseAutoencoderTrainer(
            replace(cfg, epochs=1)
        ).simulate()
        assert result.transfer_seconds_total == pytest.approx(
            one_epoch.transfer_seconds_total
        )

    def test_overflowing_pool_restages_per_epoch(self):
        """Chunk pool < dataset: every epoch re-crosses PCIe."""
        cfg = config(chunk_examples=1000, n_buffers=2, epochs=3)
        three = SparseAutoencoderTrainer(cfg).simulate()
        one = SparseAutoencoderTrainer(
            replace(cfg, epochs=1)
        ).simulate()
        assert three.transfer_seconds_total == pytest.approx(
            3 * one.transfer_seconds_total
        )

    def test_transfer_exposed_at_most_total(self):
        result = SparseAutoencoderTrainer(config(chunk_examples=1000)).simulate()
        assert 0 <= result.transfer_seconds_exposed <= result.transfer_seconds_total

    def test_resident_allocations_once(self):
        trainer = SparseAutoencoderTrainer(config(chunk_examples=1000))
        trainer.simulate()
        first_peak = trainer.machine.memory.peak
        trainer.simulate()  # second run must not double-allocate
        assert trainer.machine.memory.peak == first_peak
        names = trainer.machine.memory.live_allocations()
        assert "autoencoder:parameters" in names
        assert "loading_buffer" in names
