"""Tests for repro.core.finetune_trainer and the MLP op stream."""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel, TrainingConfig
from repro.core.finetune_trainer import FinetuneTrainer
from repro.core.oplist import mlp_step_levels
from repro.data.synth_digits import digit_dataset
from repro.errors import ConfigurationError
from repro.nn.mlp import DeepNetwork
from repro.phi.kernels import KernelKind
from repro.phi.spec import XEON_PHI_5110P


def config(**overrides):
    base = dict(
        n_visible=64, n_hidden=32, n_examples=256, batch_size=32, epochs=3,
        machine=XEON_PHI_5110P, learning_rate=0.5,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestMlpStepLevels:
    def test_gemm_flops_match_functional_math(self):
        """Forward + back-GEMMs + weight grads = (3L−1) GEMMs of 2·m·nin·nout."""
        m, sizes = 17, [10, 8, 6, 4]
        levels = mlp_step_levels(m, sizes)
        gemm_flops = sum(
            k.flops for lvl in levels for k in lvl if k.kind is KernelKind.GEMM
        )
        per_layer = [a * b for a, b in zip(sizes[:-1], sizes[1:])]
        # forward: all layers; gradW: all layers; back: all but layer 0.
        expected = 2 * m * (2 * sum(per_layer) + sum(per_layer[1:]))
        assert gemm_flops == expected

    def test_one_update_level_per_layer(self):
        levels = mlp_step_levels(8, [6, 5, 4])
        assert len(levels[-1]) == 2  # two layers, two parameter updates

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            mlp_step_levels(0, [4, 2])
        with pytest.raises(ConfigurationError):
            mlp_step_levels(4, [4])


class TestFinetuneTrainerTiming:
    def test_simulate(self):
        trainer = FinetuneTrainer(config(), layer_sizes=[64, 32, 10])
        result = trainer.simulate()
        assert result.simulated_seconds > 0
        assert result.n_updates == 8 * 3

    def test_layer_sizes_must_match_visible(self):
        with pytest.raises(ConfigurationError):
            FinetuneTrainer(config(), layer_sizes=[32, 10])

    def test_deeper_network_costs_more(self):
        shallow = FinetuneTrainer(config(), layer_sizes=[64, 10]).simulate()
        deep = FinetuneTrainer(config(), layer_sizes=[64, 48, 32, 10]).simulate()
        assert deep.simulated_seconds > shallow.simulated_seconds

    def test_optimization_levels_ordered_at_paper_scale(self):
        big = config(
            n_visible=1024, n_hidden=512, n_examples=10_000, batch_size=10_000,
            epochs=1,
        )
        times = [
            FinetuneTrainer(
                big.with_level(lvl), layer_sizes=[1024, 512, 10]
            ).simulate().simulated_seconds
            for lvl in OptimizationLevel
        ]
        assert times == sorted(times, reverse=True)

    def test_tiny_networks_invert_the_ordering(self):
        """The paper's small-network caveat taken to its limit: on a
        64-unit network with batch 32, 240-thread parallel regions cost
        more than they save, and the sequential baseline wins."""
        tiny = config(epochs=1)
        baseline = FinetuneTrainer(
            tiny.with_level(OptimizationLevel.BASELINE), layer_sizes=[64, 32, 10]
        ).simulate()
        openmp = FinetuneTrainer(
            tiny.with_level(OptimizationLevel.OPENMP), layer_sizes=[64, 32, 10]
        ).simulate()
        assert baseline.simulated_seconds < openmp.simulated_seconds


class TestFinetuneTrainerFunctional:
    @pytest.fixture(scope="class")
    def digits(self):
        return digit_dataset(256, size=8, seed=3)

    def test_fit_trains_classifier(self, digits):
        x, y = digits
        trainer = FinetuneTrainer(config(epochs=15), layer_sizes=[64, 32, 10])
        result = trainer.fit(x, y)
        assert result.losses[-1] < result.losses[0]
        # reconstruction_errors carries per-epoch accuracy for classifiers
        assert result.reconstruction_errors[-1] > result.reconstruction_errors[0]
        assert result.simulated_seconds > 0

    def test_fit_with_pretrained_network(self, digits):
        x, y = digits
        net = DeepNetwork([64, 32, 10], seed=9)
        trainer = FinetuneTrainer(config(epochs=2), layer_sizes=[64, 32, 10])
        result = trainer.fit(x, y, network=net)
        assert trainer.network is net
        assert result.n_updates == 8 * 2

    def test_fit_rejects_mismatched_network(self, digits):
        x, y = digits
        net = DeepNetwork([64, 16, 10], seed=0)
        trainer = FinetuneTrainer(config(), layer_sizes=[64, 32, 10])
        with pytest.raises(ConfigurationError):
            trainer.fit(x, y, network=net)

    def test_full_pipeline_pretrain_then_timed_finetune(self, digits):
        """Fig. 1 end-to-end with timing: greedy pre-train (timed) then
        supervised fine-tune (timed) on the same machine."""
        from repro.core.pretrain import DeepPretrainer
        from repro.nn.mlp import DeepNetwork

        x, y = digits
        base = config(epochs=5)
        pre = DeepPretrainer(base, layer_sizes=(64, 32, 16), iterations_per_layer=10)
        pre_result = pre.fit(x)

        # Build the classifier from the functional stack weights.
        net = DeepNetwork([64, 32, 16, 10], seed=0)
        trainer = FinetuneTrainer(base, layer_sizes=[64, 32, 16, 10])
        ft_result = trainer.fit(x, y, network=net)
        total = pre_result.total_seconds + ft_result.simulated_seconds
        assert total > 0
        assert ft_result.losses[-1] < ft_result.losses[0]
