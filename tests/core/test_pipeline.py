"""Tests for repro.core.pipeline — overlap study + heterogeneous split."""

import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.core.pipeline import ChunkedTrainingPipeline, HeterogeneousSplit
from repro.errors import ConfigurationError
from repro.phi.spec import XEON_E5620_DUAL, XEON_PHI_5110P
from repro.runtime.backend import optimized_cpu_backend


def phi_trainer(**overrides):
    base = dict(
        n_visible=1024,
        n_hidden=4096,
        n_examples=200_000,
        batch_size=1000,
        chunk_examples=50_000,
        machine=XEON_PHI_5110P,
    )
    base.update(overrides)
    return SparseAutoencoderTrainer(TrainingConfig(**base))


def host_trainer(**overrides):
    base = dict(
        n_visible=1024,
        n_hidden=4096,
        n_examples=200_000,
        batch_size=1000,
        machine=XEON_E5620_DUAL,
        backend=optimized_cpu_backend(),
    )
    base.update(overrides)
    return SparseAutoencoderTrainer(TrainingConfig(**base))


class TestOverlapStudy:
    def test_overlap_never_slower(self):
        study = ChunkedTrainingPipeline(phi_trainer()).overlap_study()
        assert study.overlapped.total_s <= study.serial.total_s
        assert study.seconds_saved >= 0

    def test_hidden_fraction_high_when_compute_dominates(self):
        study = ChunkedTrainingPipeline(phi_trainer()).overlap_study()
        assert study.hidden_fraction > 0.5

    def test_rejects_host_trainer(self):
        with pytest.raises(ConfigurationError, match="coprocessor"):
            ChunkedTrainingPipeline(host_trainer())


class TestHeterogeneousSplit:
    @pytest.fixture
    def split(self):
        return HeterogeneousSplit(
            host_trainer=host_trainer(), device_trainer=phi_trainer()
        )

    def test_optimal_fraction_favours_the_faster_device(self, split):
        f = split.optimal_device_fraction()
        assert 0.5 < f < 1.0  # the Phi is faster, but the host contributes

    def test_combination_beats_device_alone(self, split):
        """The paper's future-work claim: host+Phi beats Phi alone."""
        assert split.speedup_vs_device_only() > 1.0

    def test_combined_time_balances_sides(self, split):
        combined, host_s, device_s = split.combined_time()
        assert combined == pytest.approx(max(host_s, device_s))
        # Near-optimal split: the two sides finish within ~20 % of each other.
        assert abs(host_s - device_s) / combined < 0.2

    def test_device_fraction_zero_is_host_only(self, split):
        combined, host_s, device_s = split.combined_time(device_fraction=0.0)
        assert device_s == 0.0
        assert combined == pytest.approx(host_s)

    def test_device_fraction_one_is_device_only(self, split):
        combined, host_s, device_s = split.combined_time(device_fraction=1.0)
        assert host_s == 0.0
        assert combined == pytest.approx(device_s)

    def test_bad_fraction_rejected(self, split):
        with pytest.raises(ConfigurationError):
            split.combined_time(device_fraction=1.5)
