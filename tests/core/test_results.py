"""Tests for repro.core.results — result records."""

import pytest

from repro.core.results import SpeedupReport, TrainingRunResult
from repro.phi.trace import TimingBreakdown


class TestTrainingRunResult:
    def _result(self, **overrides):
        base = dict(
            machine_name="m",
            backend_name="b",
            simulated_seconds=10.0,
            breakdown=TimingBreakdown(total_s=10.0),
            n_updates=4,
        )
        base.update(overrides)
        return TrainingRunResult(**base)

    def test_final_loss_none_for_timing_only(self):
        assert self._result().final_loss is None

    def test_final_loss(self):
        assert self._result(losses=[3.0, 2.0, 1.0]).final_loss == 1.0

    def test_seconds_per_update(self):
        assert self._result().seconds_per_update == 2.5

    def test_seconds_per_update_no_updates(self):
        assert self._result(n_updates=0).seconds_per_update == 0.0

    def test_summary_keys(self):
        s = self._result().summary()
        assert {"machine", "backend", "sim_seconds", "updates"} <= set(s)


class TestSpeedupReport:
    def test_speedup(self):
        r = SpeedupReport("base", "cand", 100.0, 10.0)
        assert r.speedup == pytest.approx(10.0)

    def test_zero_candidate(self):
        assert SpeedupReport("a", "b", 1.0, 0.0).speedup == float("inf")

    def test_str_readable(self):
        text = str(SpeedupReport("baseline", "phi", 300.0, 3.0))
        assert "100.0x" in text
        assert "phi" in text and "baseline" in text
