"""Tests for repro.core.ae_trainer and repro.core.rbm_trainer."""

import numpy as np
import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import OptimizationLevel, TrainingConfig
from repro.core.rbm_trainer import RBMTrainer
from repro.errors import DeviceMemoryError, ShapeError
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.backend import optimized_cpu_backend


def phi_config(**overrides):
    base = dict(
        n_visible=25,
        n_hidden=9,
        n_examples=64,
        batch_size=16,
        epochs=2,
        machine=XEON_PHI_5110P,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestSimulateOnly:
    def test_result_fields(self):
        result = SparseAutoencoderTrainer(phi_config()).simulate()
        assert result.simulated_seconds > 0
        assert result.n_updates == 8  # 4 batches × 2 epochs
        assert result.machine_name == "xeon_phi_5110p"
        assert result.losses == []  # timing-only
        assert result.device_memory_peak > 0

    def test_update_count_with_ragged_tail(self):
        result = SparseAutoencoderTrainer(
            phi_config(n_examples=70, batch_size=16, epochs=1)
        ).simulate()
        assert result.n_updates == 5  # 4 full + 1 tail

    def test_simulation_deterministic(self):
        a = SparseAutoencoderTrainer(phi_config()).simulate()
        b = SparseAutoencoderTrainer(phi_config()).simulate()
        assert a.simulated_seconds == b.simulated_seconds

    def test_more_epochs_more_time(self):
        t1 = SparseAutoencoderTrainer(phi_config(epochs=1)).simulate().simulated_seconds
        t4 = SparseAutoencoderTrainer(phi_config(epochs=4)).simulate().simulated_seconds
        assert t4 > 2.5 * t1

    def test_host_machine_has_no_transfers(self):
        cfg = phi_config(machine=XEON_E5620, backend=optimized_cpu_backend())
        result = SparseAutoencoderTrainer(cfg).simulate()
        assert result.transfer_seconds_total == 0.0

    def test_coprocessor_pays_transfers(self):
        result = SparseAutoencoderTrainer(phi_config()).simulate()
        assert result.transfer_seconds_total > 0

    def test_breakdown_consistency(self):
        result = SparseAutoencoderTrainer(phi_config()).simulate()
        bd = result.breakdown
        assert bd.busy_s <= bd.total_s + 1e-12
        assert bd.n_kernels > 0

    def test_rbm_simulate(self):
        result = RBMTrainer(phi_config()).simulate()
        assert result.simulated_seconds > 0
        assert result.n_updates == 8

    def test_rbm_cd_k_scales_time(self):
        t1 = RBMTrainer(phi_config(), cd_k=1).simulate().simulated_seconds
        t3 = RBMTrainer(phi_config(), cd_k=3).simulate().simulated_seconds
        assert t3 > 1.5 * t1

    def test_device_memory_overflow_raises(self):
        """A float64 net of 16384x32768 (17 GB of parameters alone) cannot
        fit the 8 GB card — the memory model must say so instead of
        silently 'running' it."""
        cfg = phi_config(
            n_visible=16384, n_hidden=32768, n_examples=10_000, batch_size=1000
        )
        with pytest.raises(DeviceMemoryError):
            SparseAutoencoderTrainer(cfg).simulate()

    def test_oversized_staging_buffers_also_raise(self):
        """The paper's future-work warning: big model + big chunks blow the
        8 GB budget through the loading buffers."""
        cfg = phi_config(
            n_visible=4096,
            n_hidden=16384,
            n_examples=200_000,
            batch_size=1000,
            chunk_examples=100_000,  # 2 x 3.3 GB buffers + 2.1 GB of weights
        )
        with pytest.raises(DeviceMemoryError):
            SparseAutoencoderTrainer(cfg).simulate()

    def test_host_never_overflows(self):
        cfg = phi_config(
            n_visible=4096,
            n_hidden=16384,
            n_examples=10_000,
            batch_size=1000,
            machine=XEON_E5620,
            backend=optimized_cpu_backend(),
        )
        result = SparseAutoencoderTrainer(cfg).simulate()
        assert result.simulated_seconds > 0


class TestOptimizationLevelsOrdering:
    @pytest.mark.parametrize("trainer_cls", [SparseAutoencoderTrainer, RBMTrainer])
    def test_each_level_is_faster(self, trainer_cls):
        cfg = dict(
            n_visible=1024, n_hidden=512, n_examples=10_000, batch_size=10_000
        )
        times = [
            trainer_cls(TrainingConfig(level=lvl, **cfg)).simulate().simulated_seconds
            for lvl in OptimizationLevel
        ]
        assert times == sorted(times, reverse=True)


class TestFunctionalFit:
    def test_ae_fit_trains_and_times(self, digits_25):
        trainer = SparseAutoencoderTrainer(phi_config(epochs=30))
        result = trainer.fit(digits_25)
        assert result.n_updates == 30 * 4
        assert len(result.losses) == result.n_updates
        assert result.losses[-1] < result.losses[0]
        assert result.simulated_seconds > 0
        assert len(result.reconstruction_errors) == 30
        assert result.reconstruction_errors[-1] < result.reconstruction_errors[0]

    def test_ae_fit_rejects_wrong_width(self, digits_25):
        trainer = SparseAutoencoderTrainer(phi_config(n_visible=30))
        with pytest.raises(ShapeError):
            trainer.fit(digits_25)

    def test_ae_fit_exposes_model(self, digits_25):
        trainer = SparseAutoencoderTrainer(phi_config(epochs=1))
        trainer.fit(digits_25)
        assert trainer.model.n_visible == 25

    def test_ae_fit_seed_reproducible(self, digits_25):
        r1 = SparseAutoencoderTrainer(phi_config(epochs=2, seed=5)).fit(digits_25)
        r2 = SparseAutoencoderTrainer(phi_config(epochs=2, seed=5)).fit(digits_25)
        np.testing.assert_allclose(r1.losses, r2.losses)

    def test_rbm_fit_reduces_reconstruction_error(self, binary_batch):
        cfg = phi_config(n_visible=12, n_hidden=8, n_examples=40, batch_size=10, epochs=40)
        result = RBMTrainer(cfg).fit(binary_batch)
        assert result.reconstruction_errors[-1] < result.reconstruction_errors[0]
        assert result.simulated_seconds > 0

    def test_functional_and_simulated_updates_charged_identically(self, digits_25):
        """fit() must charge the same per-update simulated cost simulate()
        charges for equal batch shapes."""
        cfg = phi_config(epochs=1)
        sim = SparseAutoencoderTrainer(cfg).simulate()
        fit = SparseAutoencoderTrainer(cfg).fit(digits_25)
        assert fit.n_updates == sim.n_updates
        assert fit.simulated_seconds == pytest.approx(sim.simulated_seconds)
