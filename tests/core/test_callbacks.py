"""Tests for repro.core.callbacks and their wiring into the trainers."""

import numpy as np
import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.callbacks import (
    CallbackList,
    EarlyStopping,
    EpochEvent,
    History,
    ProgressLogger,
    TrainingCallback,
    UpdateEvent,
    as_callback_list,
)
from repro.core.config import TrainingConfig
from repro.core.finetune_trainer import FinetuneTrainer
from repro.core.rbm_trainer import RBMTrainer
from repro.data.synth_digits import digit_dataset
from repro.errors import ConfigurationError
from repro.phi.spec import XEON_PHI_5110P


def config(**overrides):
    base = dict(
        n_visible=25, n_hidden=9, n_examples=64, batch_size=16, epochs=10,
        machine=XEON_PHI_5110P, learning_rate=0.5,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestHistory:
    def test_records_updates_and_epochs(self, digits_25):
        history = History()
        SparseAutoencoderTrainer(config(epochs=3)).fit(digits_25, callbacks=history)
        assert len(history.updates) == 12  # 4 batches x 3 epochs
        assert len(history.epochs) == 3
        assert history.losses == [e.loss for e in history.updates]
        assert all(e.simulated_seconds > 0 for e in history.updates)

    def test_steps_monotone(self, digits_25):
        history = History()
        SparseAutoencoderTrainer(config(epochs=2)).fit(digits_25, callbacks=history)
        steps = [e.step for e in history.updates]
        assert steps == sorted(steps)
        assert steps[0] == 1


class TestEarlyStopping:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EarlyStopping(patience=0)
        with pytest.raises(ConfigurationError):
            EarlyStopping(min_delta=-1)
        with pytest.raises(ConfigurationError):
            EarlyStopping(mode="median")

    def test_stops_on_plateau(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        for epoch, metric in enumerate([1.0, 0.9, 0.9, 0.9]):
            stopper.on_epoch(EpochEvent(epoch, metric, 0.0))
        assert stopper.stop_requested
        assert stopper.stopped_epoch == 3

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(patience=2)
        for epoch, metric in enumerate([1.0, 1.0, 0.5, 0.5]):
            stopper.on_epoch(EpochEvent(epoch, metric, 0.0))
        assert not stopper.stop_requested

    def test_max_mode_for_accuracy(self):
        stopper = EarlyStopping(patience=1, mode="max")
        stopper.on_epoch(EpochEvent(0, 0.8, 0.0))
        stopper.on_epoch(EpochEvent(1, 0.7, 0.0))
        assert stopper.stop_requested

    def test_min_delta_requires_real_improvement(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.on_epoch(EpochEvent(0, 1.0, 0.0))
        stopper.on_epoch(EpochEvent(1, 0.95, 0.0))  # too small a gain
        assert stopper.stop_requested

    def test_early_stop_shortens_training(self, digits_25):
        """A converging run with a plateau must stop before its budget."""
        stopper = EarlyStopping(patience=1, min_delta=1.0)  # brutal bar
        result = SparseAutoencoderTrainer(config(epochs=50)).fit(
            digits_25, callbacks=stopper
        )
        assert result.n_updates < 50 * 4

    def test_rbm_trainer_supports_callbacks(self, binary_batch):
        history = History()
        cfg = config(n_visible=12, n_hidden=6, n_examples=40, batch_size=10, epochs=4)
        RBMTrainer(cfg).fit(binary_batch, callbacks=history)
        assert len(history.epochs) == 4

    def test_finetune_trainer_supports_callbacks(self):
        x, y = digit_dataset(128, size=5, seed=0)
        history = History()
        cfg = config(epochs=3, n_examples=128, batch_size=32)
        FinetuneTrainer(cfg, layer_sizes=[25, 12, 10]).fit(x, y, callbacks=history)
        assert len(history.epochs) == 3
        # Classifier metric is accuracy.
        assert all(0.0 <= e.metric <= 1.0 for e in history.epochs)


class TestCallbackList:
    def test_fans_out(self):
        a, b = History(), History()
        composite = CallbackList([a, b])
        composite.on_update(UpdateEvent(1, 0, 0.5, 0.1))
        assert len(a.updates) == len(b.updates) == 1

    def test_any_member_stops(self):
        class Stopper(TrainingCallback):
            stop_requested = True

        assert CallbackList([History(), Stopper()]).stop_requested

    def test_as_callback_list_coercions(self):
        assert isinstance(as_callback_list(None), CallbackList)
        single = History()
        assert as_callback_list(single).callbacks == [single]
        pair = as_callback_list([History(), History()])
        assert len(pair.callbacks) == 2
        assert as_callback_list(pair) is pair


class TestProgressLogger:
    def test_logs_every_nth(self, caplog, digits_25):
        import logging

        logger = ProgressLogger(every=4)
        with caplog.at_level(logging.INFO, logger="repro.train"):
            SparseAutoencoderTrainer(config(epochs=2)).fit(digits_25, callbacks=logger)
        update_logs = [r for r in caplog.records if "update" in r.message]
        assert len(update_logs) == 2  # steps 4 and 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProgressLogger(every=0)
