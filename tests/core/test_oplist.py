"""Tests for repro.core.oplist — kernel streams of one training step.

The critical property: the kernel stream's flop count must match the
*actual NumPy math* the functional trainers perform, so the timing model
times the same algorithm the numerics run.
"""

import pytest

from repro.core.oplist import (
    autoencoder_step_kernels,
    autoencoder_step_levels,
    rbm_cd1_kernels,
    rbm_step_kernels,
    rbm_step_levels,
    rbm_step_taskgraph,
    step_bytes,
    step_flops,
)
from repro.errors import ConfigurationError
from repro.phi.kernels import KernelKind


class TestAutoencoderStep:
    def test_gemm_count_and_flops(self):
        """One SAE backprop step is 5 GEMMs of 2·m·v·h flops each
        (2 forward, 1 delta back-projection, 2 weight gradients)."""
        m, v, h = 100, 64, 32
        levels = autoencoder_step_levels(m, v, h)
        gemms = [k for lvl in levels for k in lvl if k.kind is KernelKind.GEMM]
        assert len(gemms) == 5
        assert sum(g.flops for g in gemms) == 5 * 2 * m * v * h

    def test_gemm_shapes(self):
        m, v, h = 100, 64, 32
        levels = autoencoder_step_levels(m, v, h)
        shapes = sorted(
            k.gemm_shape for lvl in levels for k in lvl if k.kind is KernelKind.GEMM
        )
        assert shapes == sorted(
            [(m, h, v), (m, v, h), (m, h, v), (v, h, m), (h, v, m)]
        )

    def test_sparsity_toggle(self):
        with_s = autoencoder_step_kernels(10, 8, 4, sparsity=True)
        without = autoencoder_step_kernels(10, 8, 4, sparsity=False)
        names_with = {k.name for k in with_s}
        names_without = {k.name for k in without}
        assert "rho_hat" in names_with
        assert "rho_hat" not in names_without

    def test_flops_scale_linearly_in_batch(self):
        f1 = step_flops(autoencoder_step_levels(100, 64, 32))
        f2 = step_flops(autoencoder_step_levels(200, 64, 32))
        # Parameter-update flops don't scale with m, so slightly sublinear.
        assert 1.9 < f2 / f1 <= 2.0

    def test_fused_variant_shorter_same_flops(self):
        plain = autoencoder_step_kernels(50, 32, 16)
        fused = autoencoder_step_kernels(50, 32, 16, fused=True)
        assert len(fused) <= len(plain)
        assert sum(k.flops for k in fused) == pytest.approx(
            sum(k.flops for k in plain)
        )

    def test_updates_present(self):
        names = {k.name for k in autoencoder_step_kernels(10, 8, 4)}
        assert {"updateW1+decay", "updateW2+decay", "updateb1", "updateb2"} <= names

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            autoencoder_step_levels(0, 8, 4)


class TestRBMStep:
    def test_fig6_nodes_all_present(self):
        k = rbm_cd1_kernels(50, 32, 16)
        assert set(k) == {"V1", "H1", "V2", "C1", "H2", "Vb", "C2", "Vc", "Vw"}

    def test_gemm_flops(self):
        """CD-1 runs 5 GEMMs: v0·Wᵀ, h·W, v1·Wᵀ, and the two correlation
        products h₀ᵀv₀ and h₁ᵀv₁ — 2·m·v·h each."""
        m, v, h = 50, 32, 16
        kernels = rbm_step_kernels(m, v, h)
        gemms = [k for k in kernels if k.kind is KernelKind.GEMM]
        assert len(gemms) == 5
        assert sum(g.flops for g in gemms) == 5 * 2 * m * v * h

    def test_taskgraph_matches_fig6(self):
        g = rbm_step_taskgraph(10, 8, 4)
        fronts = [{n.name for n in lvl} for lvl in g.wavefronts()]
        assert fronts[0] == {"V1"}
        assert {"V2", "C1"} <= fronts[2]

    def test_sampling_kernel_present(self):
        kinds = [k.kind for k in rbm_step_kernels(10, 8, 4)]
        assert KernelKind.SAMPLE in kinds

    def test_levels_contain_parallel_pairs(self):
        levels = rbm_step_levels(10, 8, 4)
        assert any(len(lvl) > 1 for lvl in levels)

    def test_step_bytes_positive(self):
        assert step_bytes(rbm_step_levels(10, 8, 4)) > 0

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            rbm_step_levels(10, 0, 4)


class TestCrossCheckAgainstFunctionalMath:
    """The oplist GEMM flops must equal 2× the matmul multiply-adds the
    functional NumPy code actually performs — counted independently here."""

    def test_autoencoder_flop_accounting(self):
        m, v, h = 37, 23, 11
        # From autoencoder.gradients: x@W1.T, hidden@W2.T, delta3@W2,
        # delta3.T@hidden, delta2.T@x.
        expected_macs = m * h * v + m * v * h + m * v * h + v * m * h + h * m * v
        levels = autoencoder_step_levels(m, v, h)
        gemm_flops = sum(
            k.flops for lvl in levels for k in lvl if k.kind is KernelKind.GEMM
        )
        assert gemm_flops == 2 * expected_macs

    def test_rbm_flop_accounting(self):
        m, v, h = 37, 23, 11
        # From rbm.contrastive_divergence: v0@w.T, h@w, v1@w.T (hidden
        # probs of reconstruction), h0p.T@v0, hkp.T@vk.
        expected_macs = m * h * v + m * v * h + m * h * v + h * m * v + h * m * v
        kernels = rbm_step_kernels(m, v, h)
        gemm_flops = sum(k.flops for k in kernels if k.kind is KernelKind.GEMM)
        assert gemm_flops == 2 * expected_macs
