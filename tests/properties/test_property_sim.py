"""Property-based tests (hypothesis) for the simulator substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phi.costmodel import CostModel
from repro.phi.kernels import elementwise, gemm
from repro.phi.pcie import PCIeModel
from repro.phi.ring import RingBus
from repro.phi.spec import XEON_PHI_5110P, phi_with_cores
from repro.runtime.backend import OptimizationLevel, backend_for_level
from repro.runtime.offload import OffloadPipeline

gemm_dims = st.integers(min_value=1, max_value=5000)
levels = st.sampled_from(list(OptimizationLevel))


class TestCostModelProperties:
    @settings(max_examples=40, deadline=None)
    @given(m=gemm_dims, n=gemm_dims, k=gemm_dims, level=levels)
    def test_gemm_time_positive_and_finite(self, m, n, k, level):
        model = CostModel(XEON_PHI_5110P, backend_for_level(level))
        t = model.time(gemm(m, n, k))
        assert np.isfinite(t.total_s)
        assert t.total_s > 0

    @settings(max_examples=30, deadline=None)
    @given(m=gemm_dims, n=gemm_dims, k=gemm_dims, level=levels)
    def test_never_faster_than_machine_peak(self, m, n, k, level):
        """No kernel may beat the speed of light: flops/total ≤ peak."""
        model = CostModel(XEON_PHI_5110P, backend_for_level(level))
        k_obj = gemm(m, n, k)
        rate = k_obj.flops / model.time(k_obj).total_s
        assert rate <= XEON_PHI_5110P.peak_flops * (1 + 1e-9)

    @settings(max_examples=30, deadline=None)
    @given(m=gemm_dims, n=gemm_dims, k=gemm_dims)
    def test_doubling_batch_never_reduces_time(self, m, n, k):
        model = CostModel(XEON_PHI_5110P, backend_for_level(OptimizationLevel.IMPROVED))
        t1 = model.time(gemm(m, n, k)).total_s
        t2 = model.time(gemm(2 * m, n, k)).total_s
        assert t2 >= t1

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10**8),
        level=levels,
    )
    def test_elementwise_time_monotone_in_size(self, n, level):
        model = CostModel(XEON_PHI_5110P, backend_for_level(level))
        assert model.time(elementwise(2 * n)).busy_s >= model.time(elementwise(n)).busy_s

    @settings(max_examples=20, deadline=None)
    @given(
        cores=st.integers(min_value=1, max_value=60),
        m=st.integers(min_value=64, max_value=4096),
    )
    def test_more_cores_never_slower(self, cores, m):
        k_obj = gemm(m, 512, 512)
        few = CostModel(phi_with_cores(max(1, cores // 2)), backend_for_level(OptimizationLevel.IMPROVED))
        many = CostModel(phi_with_cores(cores), backend_for_level(OptimizationLevel.IMPROVED))
        assert many.time(k_obj).busy_s <= few.time(k_obj).busy_s * (1 + 1e-9)


class TestMachineProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        shapes=st.lists(
            st.tuples(gemm_dims, gemm_dims, gemm_dims), min_size=1, max_size=6
        ),
        level=levels,
    )
    def test_stream_time_is_sum_of_kernel_times(self, shapes, level):
        """Sequential execution must be exactly additive."""
        from repro.phi.machine import SimulatedMachine

        machine = SimulatedMachine(XEON_PHI_5110P, backend_for_level(level))
        kernels = [gemm(m, n, k) for (m, n, k) in shapes]
        elapsed = machine.execute_stream(kernels)
        expected = sum(machine.cost_model.time(k).total_s for k in kernels)
        assert elapsed == pytest.approx(expected)
        assert machine.clock == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(
        shapes=st.lists(
            st.tuples(gemm_dims, gemm_dims, gemm_dims), min_size=1, max_size=5
        ),
    )
    def test_wavefront_never_slower_than_serial(self, shapes):
        """Overlapping a level can only remove sync/overhead, never add."""
        from repro.phi.machine import SimulatedMachine

        backend = backend_for_level(OptimizationLevel.IMPROVED)
        kernels = [gemm(m, n, k) for (m, n, k) in shapes]
        overlapped = SimulatedMachine(XEON_PHI_5110P, backend)
        t_overlap = overlapped.execute_wavefront(list(kernels))
        serial = SimulatedMachine(XEON_PHI_5110P, backend)
        t_serial = serial.execute_stream(kernels)
        assert t_overlap <= t_serial + 1e-12
        # Breakdown totals stay consistent with the clock.
        assert overlapped.breakdown().total_s == pytest.approx(overlapped.clock)


class TestRingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=120),
        i=st.integers(min_value=0, max_value=119),
        j=st.integers(min_value=0, max_value=119),
    )
    def test_triangle_inequality_and_bounds(self, n, i, j):
        ring = RingBus(n_stops=n, hop_latency_s=1e-9)
        i, j = i % n, j % n
        d = ring.hops(i, j)
        assert 0 <= d <= n // 2
        assert d == ring.hops(j, i)


class TestOffloadProperties:
    seconds = st.floats(min_value=0.1, max_value=100.0)

    @settings(max_examples=30, deadline=None)
    @given(
        chunks=st.lists(seconds, min_size=1, max_size=8),
        computes=st.lists(seconds, min_size=8, max_size=8),
        n_buffers=st.integers(min_value=1, max_value=4),
    )
    def test_event_sim_always_matches_analytic(self, chunks, computes, n_buffers):
        """The two Fig. 5 implementations agree for arbitrary inputs."""
        computes = computes[: len(chunks)]
        pcie = PCIeModel(bandwidth=1.0, latency_s=0.0)
        pipe = OffloadPipeline(pcie, n_buffers=n_buffers)
        a = pipe.run_analytic(chunks, computes)
        e = pipe.run_event_driven(chunks, computes)
        assert e.total_s == pytest.approx(a.total_s)

    @settings(max_examples=30, deadline=None)
    @given(
        chunks=st.lists(seconds, min_size=1, max_size=8),
        computes=st.lists(seconds, min_size=8, max_size=8),
    )
    def test_overlap_bounded_by_serial_and_critical_path(self, chunks, computes):
        """total ∈ [max(Σtransfer, Σcompute) rough lower bound, serial sum]."""
        computes = computes[: len(chunks)]
        pcie = PCIeModel(bandwidth=1.0, latency_s=0.0)
        overlapped = OffloadPipeline(pcie, n_buffers=2).run_analytic(chunks, computes)
        serial = OffloadPipeline(pcie, double_buffering=False).run_analytic(
            chunks, computes
        )
        assert overlapped.total_s <= serial.total_s + 1e-9
        lower = max(sum(chunks), sum(computes))
        assert overlapped.total_s >= lower - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        chunks=st.lists(seconds, min_size=2, max_size=6),
        computes=st.lists(seconds, min_size=6, max_size=6),
    )
    def test_chunk_timeline_is_causally_ordered(self, chunks, computes):
        computes = computes[: len(chunks)]
        pcie = PCIeModel(bandwidth=1.0, latency_s=0.0)
        tl = OffloadPipeline(pcie, n_buffers=2).run_analytic(chunks, computes)
        for ev in tl.chunks:
            assert ev.transfer_start <= ev.transfer_end <= ev.compute_start <= ev.compute_end
        for prev, cur in zip(tl.chunks, tl.chunks[1:]):
            assert cur.transfer_start >= prev.transfer_end - 1e-9  # one link
            assert cur.compute_start >= prev.compute_end - 1e-9  # one trainer
