"""Property-based round-trip tests for repro.utils.serialization.

The serving registry trusts that a *trained* model written to disk comes
back bit-identical — weights, biases, and constructor hyper-parameters.
These properties train briefly (so parameters are away from their
initialisation) and assert exact round trips across randomly drawn
architectures and seeds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.nn.mlp import DeepNetwork, one_hot
from repro.nn.rbm import RBM
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.utils.serialization import load_model, save_model

dims = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _roundtrip(model, tmp_path):
    return load_model(save_model(model, tmp_path / "model.npz"))


class TestTrainedRBMRoundTrip:
    @given(n_visible=dims, n_hidden=dims, seed=seeds)
    @_settings
    def test_cd_trained_parameters_survive(self, tmp_path, n_visible, n_hidden, seed):
        rng = np.random.default_rng(seed)
        model = RBM(n_visible, n_hidden, seed=seed)
        v = (rng.random((16, n_visible)) > 0.5).astype(float)
        for _ in range(3):
            stats = model.contrastive_divergence(v, rng=rng)
            model.apply_update(stats, learning_rate=0.1)
        loaded = _roundtrip(model, tmp_path)
        np.testing.assert_array_equal(loaded.w, model.w)
        np.testing.assert_array_equal(loaded.b, model.b)
        np.testing.assert_array_equal(loaded.c, model.c)
        np.testing.assert_array_equal(loaded.transform(v), model.transform(v))


class TestTrainedStackRoundTrip:
    @given(
        n_visible=st.integers(min_value=4, max_value=16),
        hidden=st.lists(st.integers(min_value=2, max_value=8), min_size=1, max_size=3),
        seed=seeds,
    )
    @_settings
    def test_pretrained_autoencoder_stack(self, tmp_path, n_visible, hidden, seed):
        rng = np.random.default_rng(seed)
        x = rng.random((24, n_visible))
        stack = StackedAutoencoder(
            n_visible,
            [LayerSpec(h, epochs=1, batch_size=8) for h in hidden],
            seed=seed,
        ).pretrain(x)
        loaded = _roundtrip(stack, tmp_path)
        assert isinstance(loaded, StackedAutoencoder)
        assert loaded.layer_sizes == stack.layer_sizes
        assert loaded.is_trained
        assert loaded.cost == stack.cost
        for orig, back in zip(stack.blocks, loaded.blocks):
            np.testing.assert_array_equal(back.w1, orig.w1)
            np.testing.assert_array_equal(back.b1, orig.b1)
            np.testing.assert_array_equal(back.w2, orig.w2)
            np.testing.assert_array_equal(back.b2, orig.b2)
        np.testing.assert_array_equal(loaded.transform(x), stack.transform(x))
        np.testing.assert_array_equal(loaded.reconstruct(x), stack.reconstruct(x))

    @given(
        n_visible=st.integers(min_value=4, max_value=12),
        hidden=st.lists(st.integers(min_value=2, max_value=6), min_size=1, max_size=2),
        seed=seeds,
    )
    @_settings
    def test_pretrained_dbn(self, tmp_path, n_visible, hidden, seed):
        rng = np.random.default_rng(seed)
        v = (rng.random((24, n_visible)) > 0.5).astype(float)
        dbn = DeepBeliefNetwork(
            n_visible,
            [LayerSpec(h, epochs=1, batch_size=8) for h in hidden],
            seed=seed,
        ).pretrain(v)
        loaded = _roundtrip(dbn, tmp_path)
        assert isinstance(loaded, DeepBeliefNetwork)
        assert loaded.cd_k == dbn.cd_k
        assert [s.n_hidden for s in loaded.layer_specs] == [
            s.n_hidden for s in dbn.layer_specs
        ]
        np.testing.assert_array_equal(loaded.transform(v), dbn.transform(v))


class TestTrainedNetworkRoundTrip:
    @given(
        sizes=st.lists(st.integers(min_value=2, max_value=8), min_size=2, max_size=4),
        seed=seeds,
    )
    @_settings
    def test_finetuned_network(self, tmp_path, sizes, seed):
        rng = np.random.default_rng(seed)
        model = DeepNetwork(sizes, head="softmax", seed=seed)
        x = rng.random((16, sizes[0]))
        targets = one_hot(rng.integers(0, sizes[-1], size=16), sizes[-1])
        for _ in range(2):
            _, grads = model.gradients(x, targets)
            model.apply_update(grads, learning_rate=0.1)
        loaded = _roundtrip(model, tmp_path)
        for orig, back in zip(model.layers, loaded.layers):
            np.testing.assert_array_equal(back.w, orig.w)
            np.testing.assert_array_equal(back.b, orig.b)
        np.testing.assert_array_equal(loaded.predict_proba(x), model.predict_proba(x))


class TestUntrainedStackRejected:
    def test_save_untrained_stack_fails(self, tmp_path):
        from repro.errors import ConfigurationError

        stack = StackedAutoencoder(8, [LayerSpec(4)])
        with pytest.raises(ConfigurationError, match="un-pretrained"):
            save_model(stack, tmp_path / "x.npz")
