"""Property-based tests for the deep network and fine-tuning invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.gradcheck import check_gradients
from repro.nn.mlp import DeepNetwork, one_hot, softmax

sizes = st.integers(min_value=1, max_value=7)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
heads = st.sampled_from(["softmax", "sigmoid", "identity"])


class TestSoftmaxProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=10),
        seeds,
    )
    def test_rows_always_normalised(self, m, k, seed):
        z = np.random.default_rng(seed).normal(scale=50, size=(m, k))
        p = softmax(z)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)
        assert (p >= 0).all()

    @given(st.integers(min_value=2, max_value=8), seeds)
    def test_argmax_preserved(self, k, seed):
        z = np.random.default_rng(seed).normal(size=(5, k))
        np.testing.assert_array_equal(
            np.argmax(z, axis=1), np.argmax(softmax(z), axis=1)
        )


class TestDeepNetworkProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        n_in=sizes, h=sizes, n_out=st.integers(min_value=2, max_value=5),
        m=st.integers(min_value=1, max_value=10), head=heads, seed=seeds,
    )
    def test_gradients_always_correct(self, n_in, h, n_out, m, head, seed):
        rng = np.random.default_rng(seed)
        net = DeepNetwork([n_in, h, n_out], head=head, weight_decay=1e-3, seed=int(seed))
        x = rng.random((m, n_in))
        if head == "softmax":
            targets = one_hot(rng.integers(0, n_out, m), n_out)
        else:
            targets = rng.random((m, n_out))
        theta = net.get_flat_parameters()
        _, grad = net.flat_loss_and_grad(theta, x, targets)
        check_gradients(
            lambda t: net.flat_loss_and_grad(t, x, targets)[0],
            grad,
            theta,
            n_checks=min(20, theta.size),
            rng=rng,
            tolerance=1e-5,
        )

    @settings(max_examples=15, deadline=None)
    @given(n_in=sizes, n_out=st.integers(min_value=2, max_value=5), m=st.integers(min_value=1, max_value=8), seed=seeds)
    def test_loss_nonnegative_finite(self, n_in, n_out, m, seed):
        rng = np.random.default_rng(seed)
        net = DeepNetwork([n_in, n_out], seed=int(seed))
        x = rng.random((m, n_in))
        targets = one_hot(rng.integers(0, n_out, m), n_out)
        loss = net.loss(x, targets)
        assert np.isfinite(loss) and loss >= 0

    @settings(max_examples=15, deadline=None)
    @given(n_in=sizes, h=sizes, n_out=st.integers(min_value=2, max_value=4), seed=seeds)
    def test_small_step_never_increases_loss(self, n_in, h, n_out, seed):
        rng = np.random.default_rng(seed)
        net = DeepNetwork([n_in, h, n_out], seed=int(seed))
        x = rng.random((6, n_in))
        targets = one_hot(rng.integers(0, n_out, 6), n_out)
        loss0, grads = net.gradients(x, targets)
        net.apply_update(grads, 1e-4)
        assert net.loss(x, targets) <= loss0 + 1e-10

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_flat_round_trip_identity(self, seed):
        net = DeepNetwork([5, 4, 3], seed=int(seed))
        theta = net.get_flat_parameters()
        probs_before = net.predict_proba(np.random.default_rng(0).random((4, 5)))
        net.set_flat_parameters(theta)
        probs_after = net.predict_proba(np.random.default_rng(0).random((4, 5)))
        np.testing.assert_array_equal(probs_before, probs_after)
