"""Property-based tests for the list scheduler over random DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.schedule import list_schedule, makespan_lower_bound
from repro.runtime.taskgraph import TaskGraph


@st.composite
def random_dag(draw):
    """A random DAG: nodes t0..tn-1, edges only from lower to higher index
    (guarantees acyclicity and matches TaskGraph's build-in-order rule)."""
    n = draw(st.integers(min_value=1, max_value=14))
    costs = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=n, max_size=n
        )
    )
    edges = []
    for j in range(1, n):
        # Each node depends on a random subset of earlier nodes.
        deps = draw(st.sets(st.integers(min_value=0, max_value=j - 1), max_size=3))
        edges.append(sorted(deps))
    g = TaskGraph()
    g.add("t0")
    for j in range(1, n):
        g.add(f"t{j}", deps=[f"t{d}" for d in edges[j - 1]])
    return g, {f"t{i}": costs[i] for i in range(n)}


class TestListScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(dag=random_dag(), workers=st.integers(min_value=1, max_value=6))
    def test_dependencies_always_respected(self, dag, workers):
        g, costs = dag
        sched = list_schedule(g, lambda n: costs[n.name], workers)
        by_name = sched.by_name()
        for name in g.names:
            for dep in g.node(name).deps:
                assert by_name[name].start >= by_name[dep].end - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(dag=random_dag(), workers=st.integers(min_value=1, max_value=6))
    def test_workers_never_double_booked(self, dag, workers):
        g, costs = dag
        sched = list_schedule(g, lambda n: costs[n.name], workers)
        for w in range(workers):
            intervals = sorted(
                (t.start, t.end) for t in sched.tasks if t.worker == w
            )
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(dag=random_dag(), workers=st.integers(min_value=1, max_value=6))
    def test_graham_bound_holds(self, dag, workers):
        """Makespan within [(LB), (2 − 1/p)·OPT]; since OPT ≥ LB, checking
        against (2 − 1/p)·... requires OPT, so we verify the implied
        safe bound makespan ≤ LB·(2 − 1/p) + max_cost (conservative)."""
        g, costs = dag
        cost = lambda n: costs[n.name]
        sched = list_schedule(g, cost, workers)
        lb = makespan_lower_bound(g, cost, workers)
        assert sched.makespan >= lb - 1e-9
        # Graham: makespan ≤ total/p + critical_path ≤ 2·LB.
        assert sched.makespan <= (
            g.serial_cost(cost) / workers + g.critical_path_cost(cost) + 1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(dag=random_dag())
    def test_single_worker_is_serial(self, dag):
        g, costs = dag
        sched = list_schedule(g, lambda n: costs[n.name], 1)
        assert sched.makespan == pytest.approx(g.serial_cost(lambda n: costs[n.name]))

    @settings(max_examples=40, deadline=None)
    @given(dag=random_dag(), workers=st.integers(min_value=1, max_value=5))
    def test_every_task_scheduled_exactly_once(self, dag, workers):
        g, costs = dag
        sched = list_schedule(g, lambda n: costs[n.name], workers)
        names = [t.name for t in sched.tasks]
        assert sorted(names) == sorted(g.names)


class TestSerializationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        v=st.integers(min_value=1, max_value=10),
        h=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_autoencoder_round_trip_exact(self, tmp_path_factory, v, h, seed):
        from repro.nn.autoencoder import SparseAutoencoder
        from repro.utils.serialization import load_model, save_model

        path = tmp_path_factory.mktemp("models") / "m.npz"
        model = SparseAutoencoder(v, h, seed=seed)
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.w1, model.w1)
        np.testing.assert_array_equal(loaded.w2, model.w2)
