"""Property-based tests (hypothesis) for the model-parallel shard layer.

Randomised layer widths, shard counts and partition layouts: the column
partition must tile every partitioned layer exactly (cover, disjoint,
order-preserving), partition∘merge must be the identity on the model
parameters bit-for-bit, and the shard-count checkpoint tag must reject
every mismatched resume.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.mlp import DeepNetwork
from repro.runtime.checkpoint import CheckpointError, require_shard_count
from repro.shard.partition import Partition
from repro.shard.shards import merge, partition

shard_counts = st.integers(min_value=1, max_value=4)


@st.composite
def partitions(draw):
    """A Partition over random widths, every partitioned layer >= N."""
    n = draw(shard_counts)
    depth = draw(st.integers(min_value=3, max_value=5))
    sizes = [
        draw(st.integers(min_value=max(n, 1), max_value=16)) for _ in range(depth)
    ]
    interior = list(range(1, depth - 1))
    chosen = draw(
        st.sets(st.sampled_from(interior), min_size=1, max_size=len(interior))
    )
    return Partition(sizes, n, partitioned=sorted(chosen))


@st.composite
def mlps(draw):
    """(DeepNetwork, n_shards) with every hidden layer wide enough."""
    n = draw(shard_counts)
    hidden = [
        draw(st.integers(min_value=n, max_value=12))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    sizes = [draw(st.integers(min_value=2, max_value=8))] + hidden + [
        draw(st.integers(min_value=2, max_value=6))
    ]
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return DeepNetwork(sizes, seed=seed), n


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(part=partitions())
    def test_bounds_tile_every_partitioned_layer(self, part):
        for layer in part.partitioned:
            width = part.layer_sizes[layer]
            spans = [part.bounds(layer, k) for k in range(part.n_shards)]
            # contiguous, ordered, disjoint cover of [0, width)
            assert spans[0][0] == 0
            assert spans[-1][1] == width
            for (_, hi), (lo, _) in zip(spans, spans[1:]):
                assert hi == lo
            for lo, hi in spans:
                assert hi >= lo

    @settings(max_examples=60, deadline=None)
    @given(part=partitions())
    def test_units_concatenate_to_the_full_layer(self, part):
        for layer in part.partitioned:
            cat = np.concatenate(
                [part.units(layer, k) for k in range(part.n_shards)]
            )
            assert np.array_equal(cat, np.arange(part.layer_sizes[layer]))

    @settings(max_examples=60, deadline=None)
    @given(part=partitions())
    def test_keep_masks_partition_unity(self, part):
        """Summed over shards, every unit is owned exactly once."""
        for layer in part.partitioned:
            total = sum(part.keep_mask(layer, k) for k in range(part.n_shards))
            assert np.array_equal(total, np.ones(part.layer_sizes[layer]))

    @settings(max_examples=60, deadline=None)
    @given(part=partitions())
    def test_widths_balanced_within_one(self, part):
        for layer in part.partitioned:
            widths = [part.width(layer, k) for k in range(part.n_shards)]
            assert sum(widths) == part.layer_sizes[layer]
            assert max(widths) - min(widths) <= 1

    @settings(max_examples=60, deadline=None)
    @given(part=partitions())
    def test_meta_round_trips(self, part):
        clone = Partition.from_meta(part.meta())
        assert clone == part
        assert hash(clone) == hash(part)


class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None)
    @given(pair=mlps())
    def test_partition_merge_is_identity(self, pair):
        net, n = pair
        rebuilt = merge(partition(net, n))
        assert rebuilt.layer_sizes == net.layer_sizes
        for a, b in zip(net.layers, rebuilt.layers):
            assert np.array_equal(a.w, b.w)
            assert np.array_equal(a.b, b.b)

    @settings(max_examples=25, deadline=None)
    @given(pair=mlps(), seed=st.integers(min_value=0, max_value=2**16))
    def test_masked_forward_parity_holds_for_random_widths(self, pair, seed):
        # The shard runs a *sliced* GEMM (smaller inner dimension than the
        # masked full model), so across arbitrary shapes BLAS may associate
        # the identical nonzero terms differently: parity is exact maths,
        # tight-tolerance floats.  The fixed-shape bench rows pin 0.0.
        net, n = pair
        x = np.random.default_rng(seed).random((8, net.layer_sizes[0]))
        for shard in partition(net, n):
            oracle = net.predict_proba(x, dropout_masks=shard.structural_masks())
            assert np.max(np.abs(shard.partial_output(x) - oracle)) <= 1e-12


class TestShardCountTag:
    @settings(max_examples=40, deadline=None)
    @given(
        tagged=st.integers(min_value=1, max_value=64),
        expected=st.integers(min_value=1, max_value=64),
    )
    def test_mismatched_counts_always_rejected(self, tagged, expected):
        header = {"n_shards": tagged}
        if tagged == expected:
            require_shard_count(header, expected)
        else:
            with pytest.raises(CheckpointError, match="n_shards"):
                require_shard_count(header, expected)

    @settings(max_examples=10, deadline=None)
    @given(expected=st.integers(min_value=1, max_value=64))
    def test_untagged_header_always_rejected(self, expected):
        with pytest.raises(CheckpointError):
            require_shard_count({}, expected)
