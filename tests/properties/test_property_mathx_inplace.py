"""Property-based tests: the in-place mathx variants are bit-identical.

The sampling chains compare ``rand < sigmoid(pre)``, so the ``out=``
variants must match the allocating forms *bitwise* (not just to
tolerance) or fused and reference training would diverge sample by
sample.  Hypothesis drives the inputs through extreme magnitudes where
naive reformulations overflow or lose ulps.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.mathx import (
    kl_bernoulli,
    kl_bernoulli_grad,
    logistic_log1pexp,
    sigmoid,
    sigmoid_into,
)


def batches(min_value=-750.0, max_value=750.0):
    return st.lists(
        st.floats(
            min_value=min_value,
            max_value=max_value,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=64,
    ).map(lambda xs: np.asarray(xs, dtype=np.float64))


class TestInPlaceVariantsBitwise:
    @given(batches())
    @settings(max_examples=200, deadline=None)
    def test_sigmoid_out_matches_allocating(self, x):
        reference = sigmoid(x)
        out = np.empty_like(x)
        res = sigmoid(x, out=out)
        assert res is out
        np.testing.assert_array_equal(out, reference)

    @given(batches())
    @settings(max_examples=200, deadline=None)
    def test_sigmoid_into_may_alias_input(self, x):
        reference = sigmoid(x)
        work = x.copy()
        mask = np.empty_like(x, dtype=bool)
        scratch = np.empty_like(x)
        sigmoid_into(work, work, mask=mask, scratch=scratch)
        np.testing.assert_array_equal(work, reference)

    @given(batches())
    @settings(max_examples=200, deadline=None)
    def test_logistic_log1pexp_out_matches_allocating(self, x):
        reference = logistic_log1pexp(x)
        out = np.empty_like(x)
        scratch = np.empty_like(x)
        res = logistic_log1pexp(x, out=out, scratch=scratch)
        assert res is out
        np.testing.assert_array_equal(out, reference)

    @given(
        batches(min_value=1e-9, max_value=1.0 - 1e-9),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200, deadline=None)
    def test_kl_bernoulli_out_matches_allocating(self, rho_hat, rho):
        reference = kl_bernoulli(rho, rho_hat)
        out = np.empty_like(rho_hat)
        scratch = np.empty_like(rho_hat)
        np.testing.assert_array_equal(
            kl_bernoulli(rho, rho_hat, out=out, scratch=scratch), reference
        )

    @given(
        batches(min_value=1e-9, max_value=1.0 - 1e-9),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200, deadline=None)
    def test_kl_bernoulli_grad_out_matches_allocating(self, rho_hat, rho):
        reference = kl_bernoulli_grad(rho, rho_hat)
        out = np.empty_like(rho_hat)
        scratch = np.empty_like(rho_hat)
        np.testing.assert_array_equal(
            kl_bernoulli_grad(rho, rho_hat, out=out, scratch=scratch), reference
        )
