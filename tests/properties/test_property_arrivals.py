"""Property-based tests (hypothesis) for the arrival processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.arrivals import BurstArrivals, PoissonArrivals

rates = st.floats(min_value=1.0, max_value=5000.0,
                  allow_nan=False, allow_infinity=False)
durations = st.floats(min_value=0.01, max_value=2.0,
                      allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestPoissonProperties:
    @settings(max_examples=40, deadline=None)
    @given(rate=rates, duration=durations, seed=seeds)
    def test_bit_identical_replay_at_fixed_seed(self, rate, duration, seed):
        a = PoissonArrivals(rate).arrival_times(duration, np.random.default_rng(seed))
        b = PoissonArrivals(rate).arrival_times(duration, np.random.default_rng(seed))
        assert a == b

    @settings(max_examples=40, deadline=None)
    @given(rate=rates, duration=durations, seed=seeds)
    def test_times_sorted_and_inside_window(self, rate, duration, seed):
        times = PoissonArrivals(rate).arrival_times(
            duration, np.random.default_rng(seed)
        )
        assert all(0.0 <= t < duration for t in times)
        # Sorted ⇔ every inter-arrival gap is non-negative.
        assert all(b >= a for a, b in zip(times, times[1:]))

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(max_value=0.0, allow_nan=False))
    def test_non_positive_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError, match="rate_rps"):
            PoissonArrivals(rate)

    @settings(max_examples=20, deadline=None)
    @given(rate=rates, duration=st.floats(max_value=0.0, allow_nan=False))
    def test_non_positive_duration_rejected(self, rate, duration):
        with pytest.raises(ConfigurationError, match="duration_s"):
            PoissonArrivals(rate).arrival_times(duration, np.random.default_rng(0))


burst_shapes = st.tuples(
    rates,                                            # base
    st.floats(min_value=1.0, max_value=10.0),         # burst multiplier
    st.floats(min_value=0.05, max_value=1.0),         # period_s
    st.floats(min_value=0.01, max_value=1.0),         # burst fraction of period
)


class TestBurstProperties:
    @settings(max_examples=40, deadline=None)
    @given(shape=burst_shapes, seed=seeds)
    def test_bit_identical_replay_at_fixed_seed(self, shape, seed):
        base, mult, period, frac = shape
        arrivals = BurstArrivals(base, base * mult, period_s=period,
                                 burst_len_s=period * frac)
        a = arrivals.arrival_times(0.5, np.random.default_rng(seed))
        b = arrivals.arrival_times(0.5, np.random.default_rng(seed))
        assert a == b

    @settings(max_examples=60, deadline=None)
    @given(shape=burst_shapes, t=st.floats(min_value=0.0, max_value=10.0))
    def test_rate_never_below_base(self, shape, t):
        base, mult, period, frac = shape
        arrivals = BurstArrivals(base, base * mult, period_s=period,
                                 burst_len_s=period * frac)
        assert arrivals._rate_at(t) >= base

    @settings(max_examples=40, deadline=None)
    @given(shape=burst_shapes, seed=seeds)
    def test_times_sorted_and_inside_window(self, shape, seed):
        base, mult, period, frac = shape
        arrivals = BurstArrivals(base, base * mult, period_s=period,
                                 burst_len_s=period * frac)
        times = arrivals.arrival_times(0.5, np.random.default_rng(seed))
        assert all(0.0 <= t < 0.5 for t in times)
        assert all(b >= a for a, b in zip(times, times[1:]))

    @settings(max_examples=30, deadline=None)
    @given(base=rates, mult=st.floats(min_value=1.0, max_value=10.0),
           period=st.floats(min_value=0.05, max_value=1.0), seed=seeds)
    def test_burst_len_equal_to_period_is_constant_peak(self, base, mult,
                                                        period, seed):
        """burst_len_s == period_s is the valid boundary: the burst never
        ends, so the process degenerates to plain Poisson at burst_rps."""
        burst = BurstArrivals(base, base * mult, period_s=period,
                              burst_len_s=period)
        flat = PoissonArrivals(base * mult)
        a = burst.arrival_times(0.5, np.random.default_rng(seed))
        b = flat.arrival_times(0.5, np.random.default_rng(seed))
        assert a == b

    def test_burst_below_base_rejected(self):
        with pytest.raises(ConfigurationError, match="burst_rps"):
            BurstArrivals(100.0, 50.0, period_s=1.0, burst_len_s=0.1)

    def test_burst_longer_than_period_rejected(self):
        with pytest.raises(ConfigurationError, match="burst_len_s"):
            BurstArrivals(100.0, 200.0, period_s=1.0, burst_len_s=1.5)
