"""Property-based tests for the fusion pass and data pipeline invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import plan_chunks
from repro.phi.kernels import KernelKind, elementwise, gemm, reduction
from repro.runtime.fusion import fuse_elementwise


def kernel_strategy():
    elementwise_k = st.builds(
        elementwise,
        st.sampled_from([64, 256, 1024]),
        flops_per_element=st.integers(min_value=1, max_value=8),
        reads_per_element=st.integers(min_value=1, max_value=3),
    )
    gemm_k = st.builds(
        gemm,
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    reduce_k = st.builds(reduction, st.integers(min_value=1, max_value=4096))
    return st.one_of(elementwise_k, gemm_k, reduce_k)


class TestFusionProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(kernel_strategy(), min_size=0, max_size=20))
    def test_flops_always_preserved(self, kernels):
        fused = fuse_elementwise(kernels)
        assert sum(k.flops for k in fused) == pytest.approx(
            sum(k.flops for k in kernels)
        )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(kernel_strategy(), min_size=0, max_size=20))
    def test_never_more_kernels_or_traffic(self, kernels):
        fused = fuse_elementwise(kernels)
        assert len(fused) <= len(kernels)
        assert sum(k.bytes_total for k in fused) <= sum(
            k.bytes_total for k in kernels
        ) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.lists(kernel_strategy(), min_size=0, max_size=20))
    def test_fences_preserved_in_order(self, kernels):
        """Non-fusable kernels appear in the output unchanged and in order."""
        fused = fuse_elementwise(kernels)
        fences_in = [k.name for k in kernels if k.kind in (KernelKind.GEMM, KernelKind.REDUCE)]
        fences_out = [k.name for k in fused if k.kind in (KernelKind.GEMM, KernelKind.REDUCE)]
        assert fences_in == fences_out

    @settings(max_examples=60, deadline=None)
    @given(st.lists(kernel_strategy(), min_size=0, max_size=20))
    def test_idempotent(self, kernels):
        once = fuse_elementwise(kernels)
        twice = fuse_elementwise(once)
        assert [k.name for k in once] == [k.name for k in twice]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(kernel_strategy(), min_size=0, max_size=20))
    def test_fused_ops_accounting(self, kernels):
        """Σ fused_ops over the output equals the number of inputs
        (every logical op is represented exactly once)."""
        fused = fuse_elementwise(kernels)
        assert sum(k.fused_ops for k in fused) == sum(k.fused_ops for k in kernels)


class TestChunkPlanProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10**6),
        chunk=st.integers(min_value=1, max_value=10**5),
        features=st.integers(min_value=1, max_value=8192),
    )
    def test_chunks_partition_dataset_exactly(self, n, chunk, features):
        batch = min(chunk, n, 64)
        plan = plan_chunks(n, features, max(chunk, batch), batch)
        assert sum(plan.chunk_sizes) == n
        assert all(s >= 1 for s in plan.chunk_sizes)
        assert max(plan.chunk_sizes) <= max(chunk, batch)
        assert sum(plan.chunk_bytes(i) for i in range(plan.n_chunks)) == plan.total_bytes

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10**5),
        batch=st.integers(min_value=1, max_value=500),
    )
    def test_batch_count_consistent(self, n, batch):
        batch = min(batch, n)
        plan = plan_chunks(n, 16, n, batch)
        assert plan.total_batches == (n + batch - 1) // batch
