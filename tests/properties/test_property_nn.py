"""Property-based tests (hypothesis) for the neural-network substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.gradcheck import check_gradients
from repro.nn.rbm import RBM
from repro.utils.mathx import kl_bernoulli, sigmoid

dims = st.integers(min_value=1, max_value=9)
batches = st.integers(min_value=1, max_value=12)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestSigmoidProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_output_in_unit_interval(self, xs):
        out = sigmoid(np.array(xs))
        assert ((out >= 0) & (out <= 1)).all()

    @given(st.floats(min_value=-700, max_value=700))
    def test_complementarity(self, x):
        assert sigmoid(np.array([x]))[0] + sigmoid(np.array([-x]))[0] == 1.0 or abs(
            sigmoid(np.array([x]))[0] + sigmoid(np.array([-x]))[0] - 1.0
        ) < 1e-12


class TestKLProperties:
    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20),
    )
    def test_kl_nonnegative(self, rho, rho_hats):
        vals = kl_bernoulli(rho, np.array(rho_hats))
        assert (vals >= -1e-12).all()
        assert np.isfinite(vals).all()


class TestAutoencoderProperties:
    @settings(max_examples=20, deadline=None)
    @given(v=dims, h=dims, m=batches, seed=seeds)
    def test_backprop_gradient_always_correct(self, v, h, m, seed):
        """Finite-difference agreement over random shapes and data."""
        rng = np.random.default_rng(seed)
        cost = SparseAutoencoderCost(
            weight_decay=1e-3, sparsity_target=0.1, sparsity_weight=0.3
        )
        ae = SparseAutoencoder(v, h, cost=cost, seed=int(seed))
        x = rng.random((m, v))
        theta = ae.get_flat_parameters()
        _, grad = ae.flat_loss_and_grad(theta, x)
        # Spot-check up to 25 coordinates for speed.
        check_gradients(
            lambda t: ae.flat_loss_and_grad(t, x)[0],
            grad,
            theta,
            n_checks=min(25, theta.size),
            rng=rng,
            tolerance=1e-5,
        )

    @settings(max_examples=20, deadline=None)
    @given(v=dims, h=dims, m=batches, seed=seeds)
    def test_loss_nonnegative_and_finite(self, v, h, m, seed):
        ae = SparseAutoencoder(v, h, seed=int(seed))
        x = np.random.default_rng(seed).random((m, v))
        loss = ae.loss(x)
        assert np.isfinite(loss)
        assert loss >= 0

    @settings(max_examples=15, deadline=None)
    @given(v=dims, h=dims, m=batches, seed=seeds)
    def test_flat_parameter_round_trip(self, v, h, m, seed):
        ae = SparseAutoencoder(v, h, seed=int(seed))
        theta = ae.get_flat_parameters()
        ae.set_flat_parameters(theta * 1.7)
        np.testing.assert_allclose(ae.get_flat_parameters(), theta * 1.7)

    @settings(max_examples=15, deadline=None)
    @given(v=dims, h=dims, seed=seeds)
    def test_gradient_step_descends_on_average(self, v, h, seed):
        """A small enough step along −∇J must not increase J."""
        rng = np.random.default_rng(seed)
        ae = SparseAutoencoder(v, h, seed=int(seed))
        x = rng.random((8, v))
        loss0, g = ae.gradients(x)
        ae.apply_update(g, learning_rate=1e-4)
        assert ae.loss(x) <= loss0 + 1e-9


class TestRBMProperties:
    @settings(max_examples=20, deadline=None)
    @given(v=dims, h=dims, m=batches, seed=seeds)
    def test_conditionals_are_probabilities(self, v, h, m, seed):
        rbm = RBM(v, h, seed=int(seed))
        data = (np.random.default_rng(seed).random((m, v)) < 0.5).astype(float)
        ph = rbm.hidden_probabilities(data)
        assert ((ph > 0) & (ph < 1)).all()

    @settings(max_examples=20, deadline=None)
    @given(v=dims, h=dims, m=batches, seed=seeds)
    def test_cd_statistics_finite_and_shaped(self, v, h, m, seed):
        rbm = RBM(v, h, seed=int(seed))
        data = (np.random.default_rng(seed).random((m, v)) < 0.5).astype(float)
        stats = rbm.contrastive_divergence(data, rng=int(seed))
        assert stats.grad_w.shape == (h, v)
        assert np.isfinite(stats.grad_w).all()
        assert np.isfinite(stats.reconstruction_error)
        assert stats.reconstruction_error >= 0

    @settings(max_examples=10, deadline=None)
    @given(v=st.integers(min_value=1, max_value=6), h=st.integers(min_value=1, max_value=5), seed=seeds)
    def test_free_energy_consistent_with_exact_partition(self, v, h, seed):
        """p(v) from free energy and exact Z always sums to 1."""
        rbm = RBM(v, h, seed=int(seed))
        rng = np.random.default_rng(seed)
        rbm.w = rng.normal(scale=0.7, size=(h, v))
        rbm.b = rng.normal(scale=0.7, size=v)
        rbm.c = rng.normal(scale=0.7, size=h)
        log_z = rbm.log_partition_exact()
        all_v = ((np.arange(2**v)[:, None] >> np.arange(v)[None, :]) & 1).astype(float)
        total = float(np.sum(np.exp(-rbm.free_energy(all_v) - log_z)))
        assert abs(total - 1.0) < 1e-8
