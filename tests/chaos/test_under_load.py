"""Chaos under load: faults injected mid-replay must not break the SLO."""

import pytest

from repro.testing.chaos import run_chaos, run_chaos_under_load
from repro.workloads.patterns import generate


@pytest.fixture(scope="module")
def mixed_rows():
    return run_chaos_under_load("mixed_train_serve", quick=True, seed=0)


class TestMixedTrainServeDrill:
    def test_every_scenario_recovers(self, mixed_rows):
        assert all(row["ok"] for row in mixed_rows), mixed_rows

    def test_faults_fired_on_multiple_sites(self, mixed_rows):
        """The acceptance criterion: faults on >= 2 distinct sites."""
        sites = {row["site"] for row in mixed_rows
                 if row["site"] != "-" and row["fired"] >= 1}
        assert len(sites) >= 2
        assert {"router.dispatch", "replica.serve", "engine.worker"} <= sites

    def test_training_blast_radius_contained(self, mixed_rows):
        train_row = next(r for r in mixed_rows if r["site"] == "engine.worker")
        assert train_row["fired"] >= 1
        assert "serving errors 0" in train_row["detail"]

    def test_slo_row_is_last_and_holds(self, mixed_rows):
        slo_row = mixed_rows[-1]
        assert "SLO held" in slo_row["scenario"]
        assert slo_row["ok"]


class TestTraceSources:
    def test_request_only_pattern_skips_train_site(self):
        rows = run_chaos_under_load("flash_crowd", quick=True, seed=0)
        assert all(row["ok"] for row in rows), rows
        sites = {row["site"] for row in rows}
        assert "engine.worker" not in sites
        assert {"router.dispatch", "replica.serve"} <= sites

    def test_trace_file_path_accepted(self, tmp_path):
        trace = generate("flash_crowd", seed=3, quick=True)
        path = trace.save(tmp_path / "fc.trace.jsonl")
        rows = run_chaos_under_load(str(path), quick=True, seed=3)
        assert all(row["ok"] for row in rows), rows
        assert all("flash_crowd" in row["scenario"] for row in rows)

    def test_unknown_spec_reports_cleanly(self):
        rows = run_chaos_under_load("no-such-trace", quick=True)
        assert len(rows) == 1
        assert rows[0]["ok"] is False
        assert "unknown trace" in rows[0]["detail"]

    def test_run_chaos_dispatches_under_load(self):
        rows = run_chaos(quick=True, under_load="cache_busting", seed=1)
        assert all(row["ok"] for row in rows), rows
        assert any(row["site"] == "replica.serve" for row in rows)


class TestCli:
    def test_cli_exit_status_and_title(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--quick", "--under-load", "mixed_train_serve"]) == 0
        out = capsys.readouterr().out
        assert "Chaos under load" in out
        assert "engine.worker" in out
