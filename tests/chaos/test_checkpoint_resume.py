"""The kill-anywhere invariant.

Kill the training stack at any registered fault site, resume from the
last crash-consistent snapshot, and the final parameters must be
**bit-identical** (``np.array_equal``, not allclose) to an uninterrupted
run at the same seed, execution mode, and worker count.
"""

import numpy as np
import pytest

from repro.nn.cost import SparseAutoencoderCost
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CheckpointError, CheckpointStore
from repro.runtime.executor import ParallelGradientEngine
from repro.testing.faults import FaultError, FaultPlan, inject

N_WORKERS = 2
SPECS = [LayerSpec(8, epochs=2, batch_size=16), LayerSpec(5, epochs=2, batch_size=16)]


@pytest.fixture
def x(digits_25):
    return digits_25[:48]


def _sae(n_visible, seed=3):
    cost = SparseAutoencoderCost(
        weight_decay=1e-3, sparsity_target=0.1, sparsity_weight=0.3
    )
    return StackedAutoencoder(n_visible, SPECS, cost=cost, seed=seed)


def _dbn(n_visible, seed=3):
    return DeepBeliefNetwork(n_visible, [LayerSpec(7, epochs=3, batch_size=12)],
                             seed=seed)


def _assert_blocks_equal(a, b, names):
    for i, (ba, bb) in enumerate(zip(a.blocks, b.blocks)):
        for name in names:
            assert np.array_equal(getattr(ba, name), getattr(bb, name)), (
                f"block {i} array {name!r} not bit-identical after resume"
            )


class TestKillAnywhereSAE:
    # One kill per engine site, at visits that land in different epochs /
    # blocks.  With 3 batches per epoch and the two-phase SAE protocol
    # (rho pass + grad pass) each worker logs 6 visits per epoch, so the
    # earliest resumable kill is visit 6 (epoch 1's snapshot exists).
    PLANS = [
        pytest.param(lambda: FaultPlan.kill_worker(0, nth=8), id="worker0-epoch2"),
        pytest.param(lambda: FaultPlan.kill_worker(1, nth=11), id="worker1-late"),
        pytest.param(lambda: FaultPlan.fail("engine.reduce", nth=6), id="reduce"),
    ]

    def test_crash_before_first_snapshot_leaves_empty_store(self, x, tmp_path):
        # A kill in the very first epoch predates any snapshot: resume is
        # impossible (the store is empty and says so); recovery is a
        # fresh run, which the other tests prove is equivalent.
        store = CheckpointStore(tmp_path)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            with pytest.raises(FaultError):
                with inject(FaultPlan.kill_worker(0, nth=2)):
                    _sae(x.shape[1]).pretrain(x, engine=eng, checkpoint=store)
        assert store.latest() is None
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.load_latest()

    @pytest.mark.parametrize("make_plan", PLANS)
    def test_engine_kill_then_resume_bit_identical(self, x, tmp_path, make_plan):
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            baseline = _sae(x.shape[1]).pretrain(x, engine=eng)
        store = CheckpointStore(tmp_path, keep=3)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            with pytest.raises(FaultError):
                with inject(make_plan()):
                    _sae(x.shape[1]).pretrain(x, engine=eng, checkpoint=store)
        assert store.latest() is not None, "crash left no snapshot to resume from"
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            resumed = _sae(x.shape[1]).pretrain(
                x, engine=eng, checkpoint=store, resume_from=tmp_path
            )
        _assert_blocks_equal(baseline, resumed, ("w1", "b1", "w2", "b2"))
        assert baseline.layer_errors == resumed.layer_errors


class TestKillAnywhereDBN:
    # CD sampling is stochastic — exact resume additionally proves the
    # engine worker streams are captured and restored bit-for-bit.
    PLANS = [
        pytest.param(lambda: FaultPlan.kill_worker(1, nth=4), id="worker1"),
        pytest.param(lambda: FaultPlan.fail("engine.reduce", nth=9), id="reduce"),
    ]

    @pytest.mark.parametrize("make_plan", PLANS)
    def test_engine_kill_then_resume_bit_identical(self, x, tmp_path, make_plan):
        v = (x > 0.5).astype(np.float64)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            baseline = _dbn(x.shape[1]).pretrain(v, engine=eng)
        store = CheckpointStore(tmp_path, keep=3)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            with pytest.raises(FaultError):
                with inject(make_plan()):
                    _dbn(x.shape[1]).pretrain(v, engine=eng, checkpoint=store)
        assert store.latest() is not None
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            resumed = _dbn(x.shape[1]).pretrain(
                v, engine=eng, checkpoint=store, resume_from=tmp_path
            )
        _assert_blocks_equal(baseline, resumed, ("w", "b", "c"))


class TestSerialResume:
    def test_resume_from_mid_run_snapshot_matches_full_run(self, x, tmp_path):
        # Serial mode has no injected kill; emulate a crash by restarting
        # from an intermediate snapshot file instead of the newest one.
        store = CheckpointStore(tmp_path, keep=100)
        baseline = _sae(x.shape[1]).pretrain(x, checkpoint=store)
        snapshots = store.list()
        assert len(snapshots) == 4  # 2 blocks x 2 epochs
        resumed = _sae(x.shape[1]).pretrain(x, resume_from=snapshots[1])
        _assert_blocks_equal(baseline, resumed, ("w1", "b1", "w2", "b2"))

    def test_finetune_serial_resume(self, x, digits_25, tmp_path):
        labels = np.arange(48) % 10

        def run(checkpoint=None, resume_from=None, epochs=4):
            net = DeepNetwork([x.shape[1], 9, 10], head="softmax", seed=2)
            finetune(net, x, labels, epochs=epochs, batch_size=16, seed=7,
                     checkpoint=checkpoint, resume_from=resume_from)
            return net

        store = CheckpointStore(tmp_path)
        baseline = run(checkpoint=store)
        resumed = run(resume_from=store.list()[0])
        for a, b in zip(baseline.layers, resumed.layers):
            assert np.array_equal(a.w, b.w)
            assert np.array_equal(a.b, b.b)


class TestFinetuneEngineKill:
    def test_kill_worker_then_resume_bit_identical(self, x, tmp_path):
        labels = np.arange(48) % 10

        def run(checkpoint=None, resume_from=None, plan=None):
            net = DeepNetwork([x.shape[1], 9, 10], head="softmax", seed=2)
            with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
                if plan is not None:
                    with inject(plan):
                        finetune(net, x, labels, epochs=4, batch_size=16, seed=7,
                                 engine=eng, checkpoint=checkpoint)
                else:
                    finetune(net, x, labels, epochs=4, batch_size=16, seed=7,
                             engine=eng, checkpoint=checkpoint,
                             resume_from=resume_from)
            return net

        baseline = run()
        store = CheckpointStore(tmp_path)
        with pytest.raises(FaultError):
            run(checkpoint=store,
                plan=FaultPlan.fail("engine.worker", nth=9, match={"kind": "mlp"}))
        assert store.latest() is not None
        resumed = run(checkpoint=store, resume_from=tmp_path)
        for a, b in zip(baseline.layers, resumed.layers):
            assert np.array_equal(a.w, b.w)
            assert np.array_equal(a.b, b.b)


class TestResumeValidation:
    def test_worker_count_mismatch_rejected(self, x, tmp_path):
        store = CheckpointStore(tmp_path)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            with pytest.raises(FaultError):
                with inject(FaultPlan.kill_worker(0, nth=8)):
                    _sae(x.shape[1]).pretrain(x, engine=eng, checkpoint=store)
        with ParallelGradientEngine(3, blas_threads=None, seed=0) as eng:
            with pytest.raises(CheckpointError, match="n_workers"):
                _sae(x.shape[1]).pretrain(x, engine=eng, resume_from=tmp_path)

    def test_execution_mode_mismatch_rejected(self, x, tmp_path):
        store = CheckpointStore(tmp_path)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            with pytest.raises(FaultError):
                with inject(FaultPlan.kill_worker(0, nth=8)):
                    _sae(x.shape[1]).pretrain(x, engine=eng, checkpoint=store)
        with pytest.raises(CheckpointError, match="execution mode"):
            _sae(x.shape[1]).pretrain(x, resume_from=tmp_path)

    def test_wrong_model_rejected(self, x, tmp_path):
        store = CheckpointStore(tmp_path)
        _sae(x.shape[1]).pretrain(x, checkpoint=store)
        other = StackedAutoencoder(
            x.shape[1], [LayerSpec(6, epochs=2, batch_size=16)], seed=3
        )
        with pytest.raises(CheckpointError, match="match"):
            other.pretrain(x, resume_from=tmp_path)

    def test_wrong_kind_rejected(self, x, tmp_path):
        store = CheckpointStore(tmp_path)
        _sae(x.shape[1]).pretrain(x, checkpoint=store)
        with pytest.raises(CheckpointError, match="kind"):
            _dbn(x.shape[1]).pretrain((x > 0.5).astype(np.float64),
                                      resume_from=tmp_path)
