"""FaultPlan mechanics: deterministic counting, matching, arming, no-ops."""

import pytest

from repro.testing.faults import (
    FaultError,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_point,
    fault_transform,
    inject,
    registered_sites,
)


class TestRuleValidation:
    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            FaultRule("x", action="explode")

    def test_corrupt_needs_transform(self):
        with pytest.raises(ValueError, match="transform"):
            FaultRule("x", action="corrupt")

    def test_negative_nth_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("x", nth=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("x", times=0)


class TestNthCounting:
    def test_fires_on_exact_visit(self):
        plan = FaultPlan.fail("s", nth=3)
        with inject(plan):
            for _ in range(3):
                fault_point("s")
            with pytest.raises(FaultError) as exc:
                fault_point("s")
        assert exc.value.site == "s"
        assert exc.value.visit == 3
        assert plan.visits("s") == 4
        assert plan.fired("s") == 1

    def test_times_window(self):
        plan = FaultPlan.fail("s", nth=1, times=2)
        fired = 0
        with inject(plan):
            for _ in range(5):
                try:
                    fault_point("s")
                except FaultError:
                    fired += 1
        assert fired == 2
        assert plan.fired() == 2

    def test_times_none_fires_forever(self):
        plan = FaultPlan.fail("s", nth=2, times=None)
        fired = 0
        with inject(plan):
            for _ in range(6):
                try:
                    fault_point("s")
                except FaultError:
                    fired += 1
        assert fired == 4

    def test_match_filter_counts_only_matching_visits(self):
        # Worker 1's own 3rd task fires, no matter how many tasks the
        # other workers interleave — the determinism contract.
        plan = FaultPlan.fail("s", nth=2, match={"worker": 1})
        with inject(plan):
            for _ in range(10):
                fault_point("s", worker=0)
            fault_point("s", worker=1)
            fault_point("s", worker=1)
            with pytest.raises(FaultError):
                fault_point("s", worker=1)
        assert plan.visits("s") == 13

    def test_custom_exception_factory(self):
        class Boom(RuntimeError):
            pass

        plan = FaultPlan.fail("s", exc=Boom)
        with inject(plan):
            with pytest.raises(Boom):
                fault_point("s")


class TestTransforms:
    def test_corrupt_replaces_value(self):
        plan = FaultPlan.corrupt("t", lambda v, ctx: v * 0, nth=1)
        with inject(plan):
            assert fault_transform("t", 5) == 5
            assert fault_transform("t", 5) == 0
            assert fault_transform("t", 5) == 5
        assert plan.fired("t") == 1

    def test_raise_rule_at_transform_site(self):
        plan = FaultPlan.fail("t")
        with inject(plan):
            with pytest.raises(FaultError):
                fault_transform("t", 5)

    def test_corrupt_rule_at_plain_site_is_inert(self):
        plan = FaultPlan.corrupt("s", lambda v, ctx: v)
        with inject(plan):
            fault_point("s")  # nothing to corrupt; must not raise


class TestGlobalSwitch:
    def test_disabled_is_noop(self):
        assert active_plan() is None
        fault_point("anything", worker=3)
        assert fault_transform("anything", 42) == 42

    def test_inject_installs_and_removes(self):
        plan = FaultPlan()
        with inject(plan) as installed:
            assert installed is plan
            assert active_plan() is plan
        assert active_plan() is None

    def test_inject_does_not_nest(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="already injected"):
                with inject(FaultPlan()):
                    pass

    def test_inject_clears_on_exception(self):
        with pytest.raises(ValueError):
            with inject(FaultPlan()):
                raise ValueError("boom")
        assert active_plan() is None


class TestSiteRegistry:
    def test_runtime_registers_all_kill_points(self):
        import repro.runtime  # noqa: F401 — imports every instrumented module

        sites = registered_sites()
        for expected in (
            "engine.worker",
            "engine.reduce",
            "prefetch.load",
            "prefetch.chunk",
            "taskgraph.node",
            "offload.chunk",
        ):
            assert expected in sites
            assert sites[expected]  # has a description
