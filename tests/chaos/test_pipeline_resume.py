"""Kill-anywhere resume for the pipelined pre-training strategy.

The invariant (docs/pipeline.md, "Determinism contract"): kill a
pipelined run at **any** visit of ``pipeline.stage`` or
``pipeline.queue`` after the first checkpoint window, resume from the
newest snapshot, and every block's parameters are bit-identical to an
uninterrupted pipelined run at the same seed — and a stage death never
hangs the other stages (the typed teardown path).
"""

import numpy as np
import pytest

from repro.nn.stacked import LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CheckpointError, CheckpointStore
from repro.testing.faults import FaultError, FaultPlan, inject

N_VISIBLE = 20
SPECS = [
    LayerSpec(10, epochs=3, batch_size=16),
    LayerSpec(6, epochs=3, batch_size=16),
]
ARRAYS = ("w1", "b1", "w2", "b2")


@pytest.fixture(scope="module")
def x():
    rng = np.random.default_rng(0)
    return rng.random((48, N_VISIBLE))


@pytest.fixture(scope="module")
def baseline(x):
    return _fresh().pretrain(x, strategy="pipelined")


def _fresh():
    return StackedAutoencoder(N_VISIBLE, SPECS, seed=7)


def _assert_identical(stack_a, stack_b):
    for k, (a, b) in enumerate(zip(stack_a.blocks, stack_b.blocks)):
        for name in ARRAYS:
            assert np.array_equal(getattr(a, name), getattr(b, name)), (
                f"block {k} array {name} differs after resume"
            )


def _kill_and_resume(x, store, plan):
    with pytest.raises(FaultError):
        with inject(plan):
            _fresh().pretrain(x, strategy="pipelined", checkpoint=store)
    assert plan.fired() >= 1
    assert store.latest() is not None, "no snapshot before the kill"
    return _fresh().pretrain(
        x, strategy="pipelined", checkpoint=store, resume_from=store.directory
    )


class TestStageKills:
    # Every (stage, epoch) visit after the first checkpoint window:
    # stage s's epoch-e visit with e >= 1 happens after the epoch-1 cut.
    @pytest.mark.parametrize("stage", [0, 1])
    @pytest.mark.parametrize("nth", [1, 2])
    def test_kill_any_stage_any_epoch(self, x, baseline, tmp_path, stage, nth):
        store = CheckpointStore(tmp_path / f"s{stage}n{nth}", keep=2)
        plan = FaultPlan.fail("pipeline.stage", match={"stage": stage}, nth=nth)
        resumed = _kill_and_resume(x, store, plan)
        _assert_identical(baseline, resumed)
        assert resumed.layer_errors == baseline.layer_errors


class TestQueueKills:
    # 48 examples / batch 16 → 4 pushes per epoch (3 rows + 1 marker);
    # visits 4.. are epoch ≥ 1, after the first window.
    @pytest.mark.parametrize("nth", [4, 6, 7])
    def test_kill_push_mid_epoch(self, x, baseline, tmp_path, nth):
        store = CheckpointStore(tmp_path / f"push{nth}", keep=2)
        plan = FaultPlan.fail(
            "pipeline.queue", match={"op": "push", "stage": 0}, nth=nth
        )
        resumed = _kill_and_resume(x, store, plan)
        _assert_identical(baseline, resumed)

    @pytest.mark.parametrize("nth", [5, 8])
    def test_kill_pop_mid_epoch(self, x, baseline, tmp_path, nth):
        store = CheckpointStore(tmp_path / f"pop{nth}", keep=2)
        plan = FaultPlan.fail(
            "pipeline.queue", match={"op": "pop", "stage": 0}, nth=nth
        )
        resumed = _kill_and_resume(x, store, plan)
        _assert_identical(baseline, resumed)


class TestTeardownShape:
    def test_stage_death_does_not_hang_and_is_typed(self, x):
        """An uncheckpointed kill still tears down every thread: the
        FaultError surfaces on the caller and pretrain returns promptly
        (pytest-level timeout = the suite simply completing)."""
        plan = FaultPlan.fail("pipeline.stage", match={"stage": 1}, nth=0)
        with pytest.raises(FaultError) as exc_info:
            with inject(plan):
                _fresh().pretrain(x, strategy="pipelined")
        assert exc_info.value.site == "pipeline.stage"

    def test_sparser_windows_still_resume_identically(self, x, baseline, tmp_path):
        """checkpoint_every=2 cuts at epoch 2 only; a later kill resumes
        from that cut bit-identically."""
        store = CheckpointStore(tmp_path / "sparse", keep=2)
        plan = FaultPlan.fail("pipeline.stage", match={"stage": 0}, nth=2)
        with pytest.raises(FaultError):
            with inject(plan):
                _fresh().pretrain(
                    x, strategy="pipelined", checkpoint=store, checkpoint_every=2
                )
        assert store.latest() is not None
        resumed = _fresh().pretrain(
            x, strategy="pipelined", checkpoint=store,
            resume_from=store.directory, checkpoint_every=2,
        )
        _assert_identical(baseline, resumed)


class TestStrategyCrossChecks:
    def test_greedy_resume_rejects_pipelined_checkpoint(self, x, tmp_path):
        store = CheckpointStore(tmp_path / "pipe", keep=2)
        _fresh().pretrain(x, strategy="pipelined", checkpoint=store)
        with pytest.raises(CheckpointError, match="strategy"):
            _fresh().pretrain(x, resume_from=store.directory)

    def test_pipelined_resume_rejects_greedy_checkpoint(self, x, tmp_path):
        store = CheckpointStore(tmp_path / "greedy", keep=2)
        _fresh().pretrain(x, checkpoint=store)
        with pytest.raises(CheckpointError, match="greedy"):
            _fresh().pretrain(
                x, strategy="pipelined", resume_from=store.directory
            )

    def test_resume_rejects_different_engine_mode(self, x, tmp_path):
        store = CheckpointStore(tmp_path / "serial", keep=2)
        _fresh().pretrain(x, strategy="pipelined", checkpoint=store)
        with pytest.raises(CheckpointError, match="engine_mode"):
            _fresh().pretrain(
                x, strategy="pipelined", engine_mode="thread", n_workers=2,
                resume_from=store.directory,
            )
