"""Kill-anywhere resume for sharded pre-training.

The contract under test: a ``sharded_pretrain`` run killed at *any*
fault site — the cross-shard exchange, the gradient engine's worker, or
an epoch boundary — resumes from the latest checkpoint to parameters
bit-identical to an uninterrupted run.  Dropout masks, per-shard RNG
streams and the exchange cadence must all survive the crash.
"""

import numpy as np
import pytest

from repro.bench.shardbench import sharded_pretrain
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.executor import ParallelGradientEngine
from repro.testing.faults import FaultError, FaultPlan, inject
from tests.shard.test_sharded_pretrain import _shard_diff

SPECS = [LayerSpec(8, epochs=2, batch_size=16), LayerSpec(6, epochs=2, batch_size=16)]
KW = dict(exchange_every=2, dropout=0.25, mask_seed=7)


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(3).random((48, 12))


def _sae():
    return StackedAutoencoder(12, SPECS, seed=7)


class TestExchangeKill:
    @pytest.mark.parametrize("nth", [0, 2, 5])
    def test_kill_at_any_exchange_resumes_bit_identical(self, x, tmp_path, nth):
        baseline = sharded_pretrain(_sae(), x, 2, **KW)
        store = CheckpointStore(tmp_path, keep=32)
        with pytest.raises(FaultError):
            with inject(FaultPlan.fail("shard.exchange", nth=nth)):
                sharded_pretrain(_sae(), x, 2, checkpoint=store, **KW)
        if store.latest() is None:
            resumed = sharded_pretrain(_sae(), x, 2, **KW)
        else:
            resumed = sharded_pretrain(_sae(), x, 2, resume_from=store, **KW)
        assert _shard_diff(baseline, resumed) == 0.0

    def test_dbn_exchange_kill_resumes_bit_identical(self, x, tmp_path):
        binary = (x > 0.5).astype(np.float64)

        def dbn():
            return DeepBeliefNetwork(12, SPECS, cd_k=1, seed=7)

        baseline = sharded_pretrain(dbn(), binary, 2, **KW)
        store = CheckpointStore(tmp_path, keep=32)
        with pytest.raises(FaultError):
            with inject(FaultPlan.fail("shard.exchange", nth=4)):
                sharded_pretrain(dbn(), binary, 2, checkpoint=store, **KW)
        assert store.latest() is not None
        resumed = sharded_pretrain(dbn(), binary, 2, resume_from=store, **KW)
        assert _shard_diff(baseline, resumed) == 0.0


class TestEngineWorkerKill:
    def test_worker_kill_mid_block_resumes_bit_identical(self, x, tmp_path):
        with ParallelGradientEngine(2, blas_threads=None, seed=7) as eng:
            baseline = sharded_pretrain(_sae(), x, 2, engine=eng, **KW)
        store = CheckpointStore(tmp_path, keep=32)
        # 2 shards x 2 workers = 4 worker events per batch, 12 per epoch:
        # nth=14 lands in block 0's second epoch, after the first snapshot.
        with ParallelGradientEngine(2, blas_threads=None, seed=7) as eng:
            with pytest.raises(FaultError):
                with inject(FaultPlan.fail("engine.worker", nth=14)):
                    sharded_pretrain(_sae(), x, 2, engine=eng,
                                     checkpoint=store, **KW)
        assert store.latest() is not None
        with ParallelGradientEngine(2, blas_threads=None, seed=7) as eng:
            resumed = sharded_pretrain(_sae(), x, 2, engine=eng,
                                       resume_from=store, **KW)
        assert _shard_diff(baseline, resumed) == 0.0


class TestRepeatedCrashes:
    def test_crash_twice_then_finish(self, x, tmp_path):
        """Crash-resume-crash-resume: the store's latest snapshot always
        wins, and the final parameters still match the clean run."""
        baseline = sharded_pretrain(_sae(), x, 2, **KW)
        store = CheckpointStore(tmp_path, keep=32)
        with pytest.raises(FaultError):
            with inject(FaultPlan.fail("shard.exchange", nth=1)):
                sharded_pretrain(_sae(), x, 2, checkpoint=store, **KW)
        with pytest.raises(FaultError):
            with inject(FaultPlan.fail("shard.exchange", nth=4)):
                sharded_pretrain(_sae(), x, 2, checkpoint=store,
                                 resume_from=store, **KW)
        resumed = sharded_pretrain(_sae(), x, 2, resume_from=store, **KW)
        assert _shard_diff(baseline, resumed) == 0.0
