"""Regression: the registered fault-site surface survived the loop refactor.

The chaos drills and the resilience docs address kill points by name
(``engine.worker``, ``prefetch.load``, …).  Routing the CLI training
paths through :class:`repro.train.loop.TrainLoop` must not rename,
drop, or duplicate any of them.
"""

import numpy as np

from repro.testing.faults import FaultPlan, inject, registered_sites

# The complete kill-anywhere surface as of the model-parallel shard tier.
EXPECTED_SITES = {
    "engine.worker",
    "engine.reduce",
    "prefetch.load",
    "prefetch.chunk",
    "taskgraph.node",
    "offload.chunk",
    "router.dispatch",
    "replica.serve",
    "pipeline.stage",
    "pipeline.queue",
    "shard.exchange",
    "shard.gather",
}


def _import_instrumented_modules():
    # Importing the runtime package pulls in every instrumented module.
    import repro.runtime.executor  # noqa: F401
    import repro.runtime.offload  # noqa: F401
    import repro.runtime.taskgraph  # noqa: F401

    # The cluster tier registers its own sites on import.
    import repro.cluster.replica  # noqa: F401
    import repro.cluster.router  # noqa: F401

    # The pipelined pre-training stages register theirs.
    import repro.train.pipeline  # noqa: F401


class TestRegisteredSites:
    def test_site_list_is_unchanged(self):
        _import_instrumented_modules()
        assert set(registered_sites()) == EXPECTED_SITES

    def test_every_site_has_a_description(self):
        _import_instrumented_modules()
        for site, description in registered_sites().items():
            assert description.strip(), f"site {site!r} has no description"


class TestSitesStillFireThroughTheUnifiedLoop:
    def test_engine_worker_fires_under_trainloop_pretrain(self, tmp_path):
        """A worker kill during pretrain still raises from the named site
        now that the stack trains through TrainLoop."""
        from repro.data.synth_digits import digit_dataset
        from repro.nn.stacked import LayerSpec, StackedAutoencoder
        from repro.runtime.executor import ParallelGradientEngine
        from repro.testing.faults import FaultError

        x, _ = digit_dataset(32, size=5, seed=3)
        stack = StackedAutoencoder(
            25, [LayerSpec(6, epochs=1, batch_size=16)], seed=3
        )
        plan = FaultPlan.kill_worker(worker=1, nth=0)
        with ParallelGradientEngine(2, blas_threads=None, seed=3) as eng:
            with inject(plan):
                try:
                    stack.pretrain(np.asarray(x, dtype=np.float64), engine=eng)
                    raised = None
                except FaultError as exc:
                    raised = exc
        assert raised is not None
        assert raised.site == "engine.worker"
        assert plan.fired("engine.worker") == 1

    def test_prefetch_sites_fire_in_chunked_mode(self):
        """TrainLoop's chunked staging visits the prefetcher's sites."""
        from repro.data.synth_digits import digit_dataset
        from repro.nn.stacked import LayerSpec, StackedAutoencoder
        from repro.train import ChunkSchedule

        x, _ = digit_dataset(32, size=5, seed=3)
        stack = StackedAutoencoder(
            25, [LayerSpec(6, epochs=1, batch_size=16)], seed=3
        )
        plan = FaultPlan.perturb(seed=0, jitter_s=0.0)
        with inject(plan):
            stack.pretrain(
                np.asarray(x, dtype=np.float64),
                chunks=ChunkSchedule(chunk_examples=16),
            )
        assert plan.visits("prefetch.load") > 0
        assert plan.visits("prefetch.chunk") > 0
