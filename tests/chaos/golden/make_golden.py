"""Regenerate the committed golden checkpoint fixtures.

Run from the repo root after an *intentional* format change::

    PYTHONPATH=src python tests/chaos/golden/make_golden.py

Each model gets two files:

* ``<name>_ckpt.npz``  — a real mid-run checkpoint (the on-disk format
  under regression; tests fail if a field is renamed, retyped, or lost).
* ``<name>_final.npz`` — the parameters an uninterrupted run reaches,
  plus five post-restore RNG draws (exact across platforms; the trained
  parameters are compared with a small tolerance to absorb BLAS
  variation).
"""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np

from repro.data.synth_digits import digit_dataset
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CheckpointStore, load_npz, restore_rng

HERE = Path(__file__).parent
SPECS = [LayerSpec(8, epochs=2, batch_size=16), LayerSpec(5, epochs=2, batch_size=16)]


def _data():
    return digit_dataset(48, size=5, seed=7)


def _sae(n_visible):
    cost = SparseAutoencoderCost(
        weight_decay=1e-3, sparsity_target=0.1, sparsity_weight=0.3
    )
    return StackedAutoencoder(n_visible, SPECS, cost=cost, seed=3)


def _dbn(n_visible):
    return DeepBeliefNetwork(
        n_visible, [LayerSpec(7, epochs=3, batch_size=12)], seed=3
    )


def _rng_draws(header, key="rng_states"):
    states = header[key]
    state = states[0] if isinstance(states, list) else states
    return restore_rng(state).random(5)


def make_sae(x, tmp):
    store = CheckpointStore(tmp / "sae", keep=100)
    final = _sae(x.shape[1]).pretrain(x, checkpoint=store)
    mid = store.list()[1]  # block 0, epoch 2 — mid-run, both phases ahead
    shutil.copy(mid, HERE / "sae_ckpt.npz")
    header, _ = load_npz(mid)
    np.savez(
        HERE / "sae_final.npz",
        rng_draws=_rng_draws(header),
        **{f"w1_{i}": b.w1 for i, b in enumerate(final.blocks)},
        **{f"b1_{i}": b.b1 for i, b in enumerate(final.blocks)},
        **{f"w2_{i}": b.w2 for i, b in enumerate(final.blocks)},
        **{f"b2_{i}": b.b2 for i, b in enumerate(final.blocks)},
    )


def make_dbn(x, tmp):
    v = (x > 0.5).astype(np.float64)
    store = CheckpointStore(tmp / "dbn", keep=100)
    final = _dbn(x.shape[1]).pretrain(v, checkpoint=store)
    mid = store.list()[0]  # block 0, epoch 1
    shutil.copy(mid, HERE / "dbn_ckpt.npz")
    header, _ = load_npz(mid)
    np.savez(
        HERE / "dbn_final.npz",
        rng_draws=_rng_draws(header),
        **{f"w_{i}": b.w for i, b in enumerate(final.blocks)},
        **{f"b_{i}": b.b for i, b in enumerate(final.blocks)},
        **{f"c_{i}": b.c for i, b in enumerate(final.blocks)},
    )


def make_finetune(x, labels, tmp):
    store = CheckpointStore(tmp / "ft", keep=100)
    net = DeepNetwork([x.shape[1], 9, 10], head="softmax", seed=2)
    finetune(net, x, labels, epochs=4, batch_size=16, seed=7, checkpoint=store)
    mid = store.list()[1]  # epoch 2 of 4
    shutil.copy(mid, HERE / "finetune_ckpt.npz")
    header, _ = load_npz(mid)
    np.savez(
        HERE / "finetune_final.npz",
        rng_draws=_rng_draws(header, key="rng_state"),
        **{f"w{i}": layer.w for i, layer in enumerate(net.layers)},
        **{f"b{i}": layer.b for i, layer in enumerate(net.layers)},
    )


def main():
    import tempfile

    x, labels = _data()
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        make_sae(x, tmp)
        make_dbn(x, tmp)
        make_finetune(x, labels, tmp)
    for p in sorted(HERE.glob("*.npz")):
        print(f"wrote {p} ({p.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
