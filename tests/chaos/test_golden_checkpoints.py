"""Golden checkpoint fixtures: on-disk format stability + exact resume.

The ``golden/*_ckpt.npz`` files are real mid-run checkpoints committed to
the repo; ``golden/*_final.npz`` holds the parameters an uninterrupted
run reaches plus five post-restore RNG draws.  If loading, field names,
the version tag, RNG restoration, or resume semantics drift, these tests
fail — regenerate deliberately with ``golden/make_golden.py`` and review
the diff.

RNG draws compare **exactly** (PCG64 is platform-stable); the trained
parameters use a tight allclose to absorb BLAS build variation.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.synth_digits import digit_dataset
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CHECKPOINT_VERSION, load_npz, restore_rng

GOLDEN = Path(__file__).parent / "golden"
RTOL, ATOL = 1e-7, 1e-9  # trained-parameter tolerance (BLAS variation)
SPECS = [LayerSpec(8, epochs=2, batch_size=16), LayerSpec(5, epochs=2, batch_size=16)]


@pytest.fixture(scope="module")
def data():
    # Must match golden/make_golden.py exactly — same examples, same labels.
    return digit_dataset(48, size=5, seed=7)


@pytest.fixture
def x(data):
    return data[0]


def _raw_payload(path):
    with np.load(path, allow_pickle=False) as data:
        return json.loads(bytes(data["__ckpt__"].tobytes()).decode())


class TestFormatStability:
    @pytest.mark.parametrize("name", ["sae", "dbn", "finetune"])
    def test_version_tag(self, name):
        payload = _raw_payload(GOLDEN / f"{name}_ckpt.npz")
        assert payload["version"] == CHECKPOINT_VERSION == 1

    @pytest.mark.parametrize(
        "name, header_keys, array_keys",
        [
            (
                "sae",
                {"kind", "phase", "model", "block_index", "epochs_done",
                 "rng_states", "engine", "layer_errors", "current_errors"},
                {"w1_0", "b1_0", "w2_0", "b2_0"},
            ),
            (
                "dbn",
                {"kind", "phase", "model", "block_index", "epochs_done",
                 "rng_states", "engine", "layer_errors", "current_errors"},
                {"w_0", "b_0", "c_0"},
            ),
            (
                "finetune",
                {"kind", "phase", "model", "epochs_done", "rng_state",
                 "engine", "losses", "train_accuracy", "n_updates"},
                {"w0", "b0", "w1", "b1"},
            ),
        ],
    )
    def test_field_inventory(self, name, header_keys, array_keys):
        header, arrays = load_npz(GOLDEN / f"{name}_ckpt.npz")
        assert set(header.keys()) == header_keys
        assert set(arrays.keys()) == array_keys
        for arr in arrays.values():
            assert arr.dtype == np.float64

    def test_kinds(self):
        assert load_npz(GOLDEN / "sae_ckpt.npz")[0]["kind"] == "stacked_autoencoder"
        assert load_npz(GOLDEN / "dbn_ckpt.npz")[0]["kind"] == "deep_belief_network"
        assert load_npz(GOLDEN / "finetune_ckpt.npz")[0]["kind"] == "finetune"


class TestRNGRestoration:
    @pytest.mark.parametrize(
        "name, key", [("sae", "rng_states"), ("dbn", "rng_states"),
                      ("finetune", "rng_state")]
    )
    def test_restored_stream_draws_exactly(self, name, key):
        header, _ = load_npz(GOLDEN / f"{name}_ckpt.npz")
        state = header[key][0] if key == "rng_states" else header[key]
        draws = restore_rng(state).random(5)
        expected = np.load(GOLDEN / f"{name}_final.npz")["rng_draws"]
        assert np.array_equal(draws, expected)  # exact, not allclose


class TestGoldenResume:
    def test_sae_resume_reaches_golden_params(self, x):
        cost = SparseAutoencoderCost(
            weight_decay=1e-3, sparsity_target=0.1, sparsity_weight=0.3
        )
        stack = StackedAutoencoder(x.shape[1], SPECS, cost=cost, seed=3)
        stack.pretrain(x, resume_from=GOLDEN / "sae_ckpt.npz")
        final = np.load(GOLDEN / "sae_final.npz")
        for i, block in enumerate(stack.blocks):
            for name in ("w1", "b1", "w2", "b2"):
                np.testing.assert_allclose(
                    getattr(block, name), final[f"{name}_{i}"],
                    rtol=RTOL, atol=ATOL,
                )

    def test_dbn_resume_reaches_golden_params(self, x):
        dbn = DeepBeliefNetwork(
            x.shape[1], [LayerSpec(7, epochs=3, batch_size=12)], seed=3
        )
        dbn.pretrain((x > 0.5).astype(np.float64),
                     resume_from=GOLDEN / "dbn_ckpt.npz")
        final = np.load(GOLDEN / "dbn_final.npz")
        for i, block in enumerate(dbn.blocks):
            for name in ("w", "b", "c"):
                np.testing.assert_allclose(
                    getattr(block, name), final[f"{name}_{i}"],
                    rtol=RTOL, atol=ATOL,
                )

    def test_finetune_resume_reaches_golden_params(self, data):
        x, labels = data
        net = DeepNetwork([x.shape[1], 9, 10], head="softmax", seed=2)
        finetune(net, x, labels, epochs=4, batch_size=16, seed=7,
                 resume_from=GOLDEN / "finetune_ckpt.npz")
        final = np.load(GOLDEN / "finetune_final.npz")
        for i, layer in enumerate(net.layers):
            np.testing.assert_allclose(layer.w, final[f"w{i}"], rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(layer.b, final[f"b{i}"], rtol=RTOL, atol=ATOL)
