"""Determinism under schedule perturbation.

The engine's contract — shard *i* → worker *i* → stream *i*, reduction in
worker-index order — promises results independent of how the OS actually
interleaves the threads.  These tests *force* different interleavings
with seeded jitter at the fault sites and assert bit-equality.

The fast subset runs in tier 1; the heavier sweeps are ``tier2``/``slow``.
"""

import numpy as np
import pytest

from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.mlp import DeepNetwork, one_hot
from repro.nn.rbm import RBM
from repro.runtime.executor import ParallelGradientEngine
from repro.testing.faults import FaultPlan, inject

TOL = 1e-10  # parallel-vs-serial equivalence bound (reduction order differs)


def _sae(seed=0):
    cost = SparseAutoencoderCost(
        weight_decay=1e-3, sparsity_target=0.05, sparsity_weight=3.0
    )
    return SparseAutoencoder(16, 9, cost=cost, seed=seed)


def _sae_grad_tuple(grads):
    return (grads.w1.copy(), grads.b1.copy(), grads.w2.copy(), grads.b2.copy())


def _assert_bit_equal(runs, names):
    first = runs[0]
    for other in runs[1:]:
        for a, b, name in zip(first, other, names):
            assert np.array_equal(a, b), f"{name} differs across jitter seeds"


class TestFastPerturbation:
    def test_sae_gradients_bit_stable_across_jitter_seeds(self):
        model = _sae()
        x = np.random.default_rng(1).random((31, model.n_visible))
        loss_ref, g_ref = model.gradients(x)
        runs, losses = [], []
        for jitter_seed in range(3):
            with inject(FaultPlan.perturb(seed=jitter_seed, jitter_s=0.002)):
                with ParallelGradientEngine(3, blas_threads=None) as eng:
                    loss, grads = eng.sae_gradients(model, x)
            runs.append(_sae_grad_tuple(grads))
            losses.append(loss)
        _assert_bit_equal(runs, ("w1", "b1", "w2", "b2"))
        assert len(set(losses)) == 1
        assert abs(losses[0] - loss_ref) <= TOL
        assert max(float(np.abs(a - b).max())
                   for a, b in zip(runs[0], _sae_grad_tuple(g_ref))) <= TOL

    def test_cd_gradients_bit_stable_across_jitter_seeds(self):
        # CD is stochastic: bit-stability additionally proves the
        # shard→stream binding survives perturbed schedules.
        rbm = RBM(12, 7, seed=5)
        v = (np.random.default_rng(2).random((24, 12)) < 0.4).astype(np.float64)
        runs = []
        for jitter_seed in range(3):
            with inject(FaultPlan.perturb(seed=jitter_seed, jitter_s=0.002)):
                with ParallelGradientEngine(3, blas_threads=None, seed=99) as eng:
                    stats = eng.cd_gradients(rbm, v)
            runs.append((stats.grad_w.copy(), stats.grad_b.copy(),
                         stats.grad_c.copy()))
        _assert_bit_equal(runs, ("grad_w", "grad_b", "grad_c"))

    def test_supervised_gradients_bit_stable_across_jitter_seeds(self):
        net = DeepNetwork([16, 10, 4], seed=3)
        rng = np.random.default_rng(4)
        x = rng.random((26, 16))
        t = one_hot(rng.integers(0, 4, size=26), 4)
        runs = []
        for jitter_seed in range(3):
            with inject(FaultPlan.perturb(seed=jitter_seed, jitter_s=0.002)):
                with ParallelGradientEngine(3, blas_threads=None) as eng:
                    _, grads = eng.supervised_gradients(net, x, t)
            runs.append(tuple(gw.copy() for gw, _ in grads)
                        + tuple(gb.copy() for _, gb in grads))
        _assert_bit_equal(runs, tuple(f"g{i}" for i in range(len(runs[0]))))


@pytest.mark.tier2
@pytest.mark.slow
class TestStressPerturbation:
    N_REPEATS = 10

    def test_sae_many_seeds_and_workers(self):
        model = _sae(seed=8)
        x = np.random.default_rng(9).random((57, model.n_visible))
        _, g_ref = model.gradients(x)
        ref = _sae_grad_tuple(g_ref)
        for n_workers in (2, 3, 4):
            runs = []
            for jitter_seed in range(self.N_REPEATS):
                with inject(FaultPlan.perturb(seed=jitter_seed, jitter_s=0.005)):
                    with ParallelGradientEngine(n_workers, blas_threads=None) as eng:
                        _, grads = eng.sae_gradients(model, x)
                runs.append(_sae_grad_tuple(grads))
            _assert_bit_equal(runs, ("w1", "b1", "w2", "b2"))
            assert max(float(np.abs(a - b).max())
                       for a, b in zip(runs[0], ref)) <= TOL

    def test_cd_training_trajectory_bit_stable(self):
        # Whole multi-step CD trajectories (not just one gradient) must be
        # bit-identical under perturbation at a fixed worker count.
        v = (np.random.default_rng(10).random((48, 12)) < 0.4).astype(np.float64)

        def run(jitter_seed):
            rbm = RBM(12, 7, seed=5)
            with inject(FaultPlan.perturb(seed=jitter_seed, jitter_s=0.004)):
                with ParallelGradientEngine(3, blas_threads=None, seed=42) as eng:
                    for _ in range(6):
                        stats = eng.cd_gradients(rbm, v)
                        rbm.w += 0.05 * stats.grad_w
                        rbm.b += 0.05 * stats.grad_b
                        rbm.c += 0.05 * stats.grad_c
            return rbm.w.copy(), rbm.b.copy(), rbm.c.copy()

        runs = [run(seed) for seed in range(self.N_REPEATS)]
        _assert_bit_equal(runs, ("w", "b", "c"))
