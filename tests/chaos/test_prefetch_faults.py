"""ChunkPrefetcher under injected faults: no hangs, clean errors, retries.

The headline regression here: a loader thread that dies *between* the
buffer-slot acquire and the queue publish used to leave the consumer
blocked on ``queue.get()`` forever.  Every failure path must now surface
as :class:`PrefetchError` in the consuming thread.
"""

import threading
import time

import numpy as np
import pytest

from repro.runtime.executor import ChunkPrefetcher, PrefetchError
from repro.testing.faults import FaultError, FaultPlan, inject


def _chunks(n=5, rows=8, cols=4, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random((rows, cols)) for _ in range(n)]


def _consume_with_watchdog(fn, timeout=5.0):
    """Run ``fn`` on a thread; fail the test if it never returns (deadlock)."""
    box = {}

    def runner():
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            box["error"] = exc

    t = threading.Thread(target=runner, daemon=True)
    t.start()
    t.join(timeout)
    if t.is_alive():
        pytest.fail(f"consumer deadlocked (no result within {timeout}s)")
    if "error" in box:
        raise box["error"]
    return box["result"]


class TestLoaderDeathRegression:
    def test_death_between_slot_acquire_and_publish_does_not_hang(self):
        # A raising clock kills the loader on the timestamp call that sits
        # between the slot acquire and the publish — precisely the window
        # the old narrow try/except around self._load() did not cover.
        # Without the whole-body guard + consumer liveness poll this test
        # deadlocks (the watchdog converts that into a failure).
        calls = {"n": 0}

        def dying_clock():
            calls["n"] += 1
            if calls["n"] > 1:  # first call stamps t0 in start()
                raise RuntimeError("clock hardware fault")
            return time.perf_counter()

        def consume():
            with ChunkPrefetcher(lambda i: i, n_chunks=3, clock=dying_clock) as pf:
                return list(pf)

        with pytest.raises(PrefetchError):
            _consume_with_watchdog(consume)

    def test_injected_fault_inside_loader_surfaces_cleanly(self):
        plan = FaultPlan.fail("prefetch.load", nth=2)
        with inject(plan):
            def consume():
                with ChunkPrefetcher(lambda i: i * 10, n_chunks=5) as pf:
                    got = []
                    for chunk in pf:
                        got.append(chunk)
                    return got

            with pytest.raises(PrefetchError) as exc:
                _consume_with_watchdog(consume)
        assert isinstance(exc.value.__cause__, FaultError)
        assert plan.fired("prefetch.load") == 1

    def test_plain_loader_exception_still_propagates(self):
        def load(i):
            if i == 1:
                raise OSError("pcie link reset")
            return i

        def consume():
            with ChunkPrefetcher(load, n_chunks=3) as pf:
                return list(pf)

        with pytest.raises(PrefetchError, match="chunk 1"):
            _consume_with_watchdog(consume)


class TestRetries:
    def test_transient_fault_absorbed(self):
        chunks = _chunks()
        # Fail only attempt 0 of the 3rd load; the retry must deliver the
        # real data and the stream must stay complete and ordered.
        plan = FaultPlan.fail("prefetch.load", nth=2, match={"attempt": 0})
        with inject(plan):
            with ChunkPrefetcher(
                lambda i: chunks[i], n_chunks=5, retries=2, retry_backoff_s=0.001
            ) as pf:
                got = list(pf)
        assert len(got) == 5
        for a, b in zip(got, chunks):
            assert np.array_equal(a, b)
        assert plan.fired() == 1
        # The faulted attempt dies before reaching load(); only the real
        # calls are counted — one per chunk.
        assert pf.load_attempts == 5

    def test_retries_exhausted_raises(self):
        plan = FaultPlan.fail("prefetch.load", nth=1, times=None)
        with inject(plan):
            def consume():
                with ChunkPrefetcher(
                    lambda i: i, n_chunks=4, retries=2, retry_backoff_s=0.001
                ) as pf:
                    return list(pf)

            with pytest.raises(PrefetchError):
                _consume_with_watchdog(consume)
        # visits: chunk 0 attempt 0 (ok), then chunk 1 attempts 0..2 all fire
        assert plan.fired("prefetch.load") == 3

    def test_no_retries_by_default(self):
        attempts = {"n": 0}

        def load(i):
            attempts["n"] += 1
            if i == 0:
                raise ValueError("no second chance")
            return i

        def consume():
            with ChunkPrefetcher(load, n_chunks=2) as pf:
                return list(pf)

        with pytest.raises(PrefetchError):
            _consume_with_watchdog(consume)
        assert attempts["n"] == 1


class TestCorruption:
    def test_corrupt_transform_delivers_modified_chunk(self):
        chunks = _chunks(n=4)
        plan = FaultPlan.corrupt(
            "prefetch.chunk", lambda v, ctx: np.zeros_like(v), nth=1
        )
        with inject(plan):
            with ChunkPrefetcher(lambda i: chunks[i], n_chunks=4) as pf:
                got = list(pf)
        assert np.array_equal(got[0], chunks[0])
        assert np.all(got[1] == 0.0)
        assert np.array_equal(got[2], chunks[2])
        assert plan.fired("prefetch.chunk") == 1


class TestCleanShutdown:
    def test_early_break_then_close_joins_loader(self):
        with ChunkPrefetcher(lambda i: i, n_chunks=50, n_buffers=2) as pf:
            for chunk in pf:
                break
        assert pf._thread is not None
        assert not pf._thread.is_alive()

    def test_full_consumption_unchanged_without_plan(self):
        chunks = _chunks(n=6)
        with ChunkPrefetcher(lambda i: chunks[i], n_chunks=6) as pf:
            got = list(pf)
        assert len(got) == 6
        for a, b in zip(got, chunks):
            assert np.array_equal(a, b)
