"""Kill-anywhere invariant on the process engine.

The chaos drills in ``test_checkpoint_resume.py`` pin the contract for
the *thread* engine; this file proves the process engine honours the same
contract at the same fault sites with zero training-loop changes: kill at
``engine.worker`` or ``engine.reduce``, resume from the last snapshot,
and the final parameters are bit-identical to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.nn.cost import SparseAutoencoderCost
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.procexec import ProcessGradientEngine, process_engine_available
from repro.testing.faults import FaultError, FaultPlan, inject

pytestmark = pytest.mark.skipif(
    not process_engine_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)

N_WORKERS = 2
SPECS = [LayerSpec(8, epochs=2, batch_size=16), LayerSpec(5, epochs=2, batch_size=16)]


@pytest.fixture
def x(digits_25):
    return digits_25[:48]


def _engine():
    return ProcessGradientEngine(N_WORKERS, blas_threads=None, seed=0)


def _sae(n_visible, seed=3):
    cost = SparseAutoencoderCost(
        weight_decay=1e-3, sparsity_target=0.1, sparsity_weight=0.3
    )
    return StackedAutoencoder(n_visible, SPECS, cost=cost, seed=seed)


def _dbn(n_visible, seed=3):
    return DeepBeliefNetwork(n_visible, [LayerSpec(7, epochs=3, batch_size=12)],
                             seed=seed)


def _assert_blocks_equal(a, b, names):
    for i, (ba, bb) in enumerate(zip(a.blocks, b.blocks)):
        for name in names:
            assert np.array_equal(getattr(ba, name), getattr(bb, name)), (
                f"block {i} array {name!r} not bit-identical after resume"
            )


class TestKillAnywhereSAE:
    # Same kill schedule as the thread-engine drills: the process engine
    # fires engine.worker once per shard dispatch and engine.reduce once
    # per reduction, so the visit numbering lines up exactly.
    PLANS = [
        pytest.param(lambda: FaultPlan.kill_worker(0, nth=8), id="worker0-epoch2"),
        pytest.param(lambda: FaultPlan.kill_worker(1, nth=11), id="worker1-late"),
        pytest.param(lambda: FaultPlan.fail("engine.reduce", nth=6), id="reduce"),
    ]

    @pytest.mark.parametrize("make_plan", PLANS)
    def test_engine_kill_then_resume_bit_identical(self, x, tmp_path, make_plan):
        with _engine() as eng:
            baseline = _sae(x.shape[1]).pretrain(x, engine=eng)
        store = CheckpointStore(tmp_path, keep=3)
        with _engine() as eng:
            with pytest.raises(FaultError):
                with inject(make_plan()):
                    _sae(x.shape[1]).pretrain(x, engine=eng, checkpoint=store)
        assert store.latest() is not None, "crash left no snapshot to resume from"
        with _engine() as eng:
            resumed = _sae(x.shape[1]).pretrain(
                x, engine=eng, checkpoint=store, resume_from=tmp_path
            )
        _assert_blocks_equal(baseline, resumed, ("w1", "b1", "w2", "b2"))
        assert baseline.layer_errors == resumed.layer_errors

    def test_fault_raises_from_the_registered_site(self, x):
        plan = FaultPlan.kill_worker(1, nth=8)
        with _engine() as eng:
            with inject(plan):
                with pytest.raises(FaultError) as exc_info:
                    _sae(x.shape[1]).pretrain(x, engine=eng)
        assert exc_info.value.site == "engine.worker"
        assert plan.fired("engine.worker") == 1


class TestKillAnywhereDBN:
    # CD sampling is stochastic — exact resume additionally proves the
    # worker RNG stream states survive the pipe round-trip and the
    # checkpoint capture/restore cycle bit-for-bit.
    PLANS = [
        pytest.param(lambda: FaultPlan.kill_worker(1, nth=4), id="worker1"),
        pytest.param(lambda: FaultPlan.fail("engine.reduce", nth=9), id="reduce"),
    ]

    @pytest.mark.parametrize("make_plan", PLANS)
    def test_engine_kill_then_resume_bit_identical(self, x, tmp_path, make_plan):
        v = (x > 0.5).astype(np.float64)
        with _engine() as eng:
            baseline = _dbn(x.shape[1]).pretrain(v, engine=eng)
        store = CheckpointStore(tmp_path, keep=3)
        with _engine() as eng:
            with pytest.raises(FaultError):
                with inject(make_plan()):
                    _dbn(x.shape[1]).pretrain(v, engine=eng, checkpoint=store)
        assert store.latest() is not None
        with _engine() as eng:
            resumed = _dbn(x.shape[1]).pretrain(
                v, engine=eng, checkpoint=store, resume_from=tmp_path
            )
        _assert_blocks_equal(baseline, resumed, ("w", "b", "c"))


class TestCrossEngineResume:
    def test_thread_crash_resumes_on_process_engine(self, x, tmp_path):
        # The snapshot records worker count and stream states, not the
        # backend: a run killed on the thread engine must resume
        # bit-identically on the process engine (and vice versa), because
        # the two are arithmetically interchangeable at fixed W.
        from repro.runtime.executor import ParallelGradientEngine

        v = (x > 0.5).astype(np.float64)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            baseline = _dbn(x.shape[1]).pretrain(v, engine=eng)
        store = CheckpointStore(tmp_path, keep=3)
        with ParallelGradientEngine(N_WORKERS, blas_threads=None, seed=0) as eng:
            with pytest.raises(FaultError):
                with inject(FaultPlan.kill_worker(1, nth=4)):
                    _dbn(x.shape[1]).pretrain(v, engine=eng, checkpoint=store)
        with _engine() as eng:
            resumed = _dbn(x.shape[1]).pretrain(
                v, engine=eng, checkpoint=store, resume_from=tmp_path
            )
        _assert_blocks_equal(baseline, resumed, ("w", "b", "c"))
