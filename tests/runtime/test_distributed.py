"""Tests for repro.runtime.distributed — data-parallel scaling model."""

import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.phi.pcie import PCIeModel
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.backend import optimized_cpu_backend
from repro.runtime.distributed import scaling_rows, simulate_data_parallel


def big_config(**overrides):
    base = dict(
        n_visible=1024, n_hidden=4096, n_examples=100_000, batch_size=10_000,
        machine=XEON_PHI_5110P,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return simulate_data_parallel(
            big_config(), SparseAutoencoderTrainer, device_counts=(1, 2, 4, 8)
        )

    def test_baseline_has_no_sync(self, points):
        assert points[0].n_devices == 1
        assert points[0].sync_per_update_s == 0.0
        assert points[0].speedup == 1.0

    def test_speedup_bounded_by_devices(self, points):
        for p in points:
            assert p.speedup <= p.n_devices + 1e-9

    def test_efficiency_decreases(self, points):
        effs = [p.efficiency for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_sync_fraction_grows(self, points):
        fracs = [p.sync_fraction for p in points[1:]]
        assert all(a <= b + 1e-9 for a, b in zip(fracs, fracs[1:]))

    def test_big_batches_scale_usefully(self, points):
        assert points[1].speedup > 1.3  # 2 devices clearly help at batch 10k

    def test_per_device_batch_divides(self, points):
        assert [p.per_device_batch for p in points] == [10_000, 5000, 2500, 1250]


class TestScalingLimits:
    def test_small_batches_scale_poorly(self):
        """Strong-scaling a batch-256 workload across 8 Phis starves each
        card — efficiency collapses relative to the batch-10000 case."""
        small = simulate_data_parallel(
            big_config(batch_size=256, n_examples=10_240),
            SparseAutoencoderTrainer,
            device_counts=(1, 8),
        )
        large = simulate_data_parallel(
            big_config(), SparseAutoencoderTrainer, device_counts=(1, 8)
        )
        assert small[1].efficiency < large[1].efficiency

    def test_weak_scaling_keeps_per_device_batch(self):
        points = simulate_data_parallel(
            big_config(), SparseAutoencoderTrainer, device_counts=(1, 4),
            scaling="weak",
        )
        assert points[1].per_device_batch == 10_000
        # Weak scaling's per-update compute stays flat; only sync grows.
        assert points[1].compute_per_update_s == pytest.approx(
            points[0].compute_per_update_s
        )
        assert points[1].sync_per_update_s > 0

    def test_slower_interconnect_hurts(self):
        fast = simulate_data_parallel(
            big_config(), SparseAutoencoderTrainer, device_counts=(1, 8)
        )
        slow = simulate_data_parallel(
            big_config(),
            SparseAutoencoderTrainer,
            device_counts=(1, 8),
            host_link=PCIeModel(bandwidth=1e8),  # 100 MB/s toy link
        )
        assert slow[1].speedup < fast[1].speedup

    def test_bigger_models_pay_more_sync(self):
        small_model = simulate_data_parallel(
            big_config(n_hidden=512), SparseAutoencoderTrainer, device_counts=(1, 4)
        )
        big_model = simulate_data_parallel(
            big_config(n_hidden=8192), SparseAutoencoderTrainer, device_counts=(1, 4)
        )
        assert big_model[1].sync_per_update_s > small_model[1].sync_per_update_s


class TestValidationAndRows:
    def test_rejects_host_machines(self):
        cfg = big_config(machine=XEON_E5620, backend=optimized_cpu_backend())
        with pytest.raises(ConfigurationError):
            simulate_data_parallel(cfg, SparseAutoencoderTrainer)

    def test_rejects_bad_scaling_mode(self):
        with pytest.raises(ConfigurationError):
            simulate_data_parallel(
                big_config(), SparseAutoencoderTrainer, scaling="superlinear"
            )

    def test_rejects_zero_devices(self):
        with pytest.raises(ConfigurationError):
            simulate_data_parallel(
                big_config(), SparseAutoencoderTrainer, device_counts=(0,)
            )

    def test_rows(self):
        points = simulate_data_parallel(
            big_config(), SparseAutoencoderTrainer, device_counts=(1, 2)
        )
        rows = scaling_rows(points)
        assert len(rows) == 2
        assert {"devices", "sync_ms", "speedup", "efficiency"} <= set(rows[0])
