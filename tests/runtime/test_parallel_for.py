"""Tests for repro.runtime.parallel_for — the OpenMP loop model."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.parallel_for import (
    fused_loop_advantage,
    simulate_parallel_for,
)


class TestStaticSchedule:
    def test_single_thread_is_serial(self):
        t = simulate_parallel_for(100, 1e-3, XEON_PHI_5110P, n_threads=1)
        assert t.total_s == pytest.approx(0.1)
        assert t.sync_s == 0.0
        assert t.speedup == pytest.approx(1.0)

    def test_big_loop_speeds_up_well(self):
        t = simulate_parallel_for(1_000_000, 1e-6, XEON_PHI_5110P, n_threads=240)
        assert t.speedup > 100

    def test_tiny_loop_dominated_by_sync(self):
        """The paper's granularity lesson: small bodies gain nothing."""
        t = simulate_parallel_for(240, 1e-8, XEON_PHI_5110P, n_threads=240)
        assert t.sync_s > t.body_s
        assert t.speedup < 1.0  # slower than serial!

    def test_speedup_bounded_by_threads(self):
        t = simulate_parallel_for(10_000, 1e-5, XEON_PHI_5110P, n_threads=16)
        assert t.speedup <= 16.0 + 1e-9

    def test_uneven_division_rounds_up(self):
        # 10 iterations on 4 threads: max chunk is 3.
        t = simulate_parallel_for(10, 1.0, XEON_E5620, n_threads=4)
        assert t.body_s == pytest.approx(3.0)

    def test_threads_capped_by_hardware(self):
        t = simulate_parallel_for(1000, 1e-6, XEON_E5620, n_threads=10_000)
        # E5620 has 8 hardware threads: chunk is ceil(1000/8).
        assert t.body_s == pytest.approx(125e-6)


class TestDynamicSchedule:
    def test_dynamic_balances_but_pays_dispatch(self):
        static = simulate_parallel_for(
            10_000, 1e-6, XEON_PHI_5110P, n_threads=240, schedule="static"
        )
        dynamic = simulate_parallel_for(
            10_000, 1e-6, XEON_PHI_5110P, n_threads=240, schedule="dynamic", chunk_size=1
        )
        assert dynamic.total_s > 0
        # Per-iteration dispatch makes fine-grained dynamic slower here.
        assert dynamic.total_s > static.total_s

    def test_bigger_chunks_cut_dispatch(self):
        fine = simulate_parallel_for(
            100_000, 1e-7, XEON_PHI_5110P, schedule="dynamic", chunk_size=1
        )
        coarse = simulate_parallel_for(
            100_000, 1e-7, XEON_PHI_5110P, schedule="dynamic", chunk_size=1000
        )
        assert coarse.total_s < fine.total_s

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_parallel_for(10, 1e-6, XEON_PHI_5110P, schedule="runtime")


class TestValidation:
    def test_rejects_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            simulate_parallel_for(0, 1e-6, XEON_PHI_5110P)

    def test_rejects_negative_body(self):
        with pytest.raises(ConfigurationError):
            simulate_parallel_for(10, -1.0, XEON_PHI_5110P)

    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigurationError):
            simulate_parallel_for(10, 1e-6, XEON_PHI_5110P, n_threads=0)


class TestFusedLoopAdvantage:
    def test_fusion_saves_barriers(self):
        """Fusing k loops saves (k-1) barriers — §IV.B.2's 'combine several
        loops together'."""
        saved = fused_loop_advantage(5, 1000, 1e-7, XEON_PHI_5110P, n_threads=240)
        expected = 4 * XEON_PHI_5110P.barrier_cost(240)
        assert saved == pytest.approx(expected)

    def test_single_loop_saves_nothing(self):
        assert fused_loop_advantage(1, 1000, 1e-7, XEON_PHI_5110P) == pytest.approx(0.0)

    def test_rejects_zero_loops(self):
        with pytest.raises(ConfigurationError):
            fused_loop_advantage(0, 10, 1e-6, XEON_PHI_5110P)

    def test_efficiency_metric(self):
        t = simulate_parallel_for(10_000, 1e-5, XEON_PHI_5110P, n_threads=32)
        assert 0.0 < t.efficiency <= 1.0
