"""Tests for repro.runtime.blas — GEMM efficiency curves."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.spec import XEON_E5620_SINGLE_CORE, XEON_PHI_5110P
from repro.runtime.backend import (
    OptimizationLevel,
    backend_for_level,
    optimized_cpu_backend,
)
from repro.runtime.blas import (
    gemm_time_components,
    mkl_gemm_efficiency,
    naive_gemm_traffic,
)

IMPROVED = backend_for_level(OptimizationLevel.IMPROVED)
BASELINE = backend_for_level(OptimizationLevel.BASELINE)


class TestMklEfficiency:
    def test_bounded_by_eff_max(self):
        eff = mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 10**6, 10**6, 10**6)
        assert eff <= IMPROVED.gemm_eff_max
        assert eff > 0.9 * IMPROVED.gemm_eff_max

    def test_monotone_in_every_dimension(self):
        base = mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 1000, 512, 512)
        assert mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 2000, 512, 512) > base
        assert mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 1000, 1024, 512) > base
        assert mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 1000, 512, 1024) > base

    def test_floor_for_degenerate_shapes(self):
        eff = mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 1, 1, 1)
        assert eff >= 1e-2 * IMPROVED.gemm_eff_max

    def test_single_core_cpu_efficient_at_small_m(self):
        """Why the CPU reference barely cares about batch size (Fig. 9)."""
        cpu = optimized_cpu_backend(1)
        small = mkl_gemm_efficiency(XEON_E5620_SINGLE_CORE, cpu, 200, 1024, 1024)
        large = mkl_gemm_efficiency(XEON_E5620_SINGLE_CORE, cpu, 10_000, 1024, 1024)
        assert small > 0.65 * large

    def test_phi_inefficient_at_small_m(self):
        """Why the Phi needs big batches (Fig. 9): 240 threads starve."""
        small = mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 200, 1024, 1024)
        large = mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 10_000, 1024, 1024)
        assert small < 0.4 * large

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            mkl_gemm_efficiency(XEON_PHI_5110P, IMPROVED, 0, 10, 10)


class TestNaiveTraffic:
    def test_at_least_operand_traffic(self):
        m, n, k = 500, 400, 300
        traffic = naive_gemm_traffic(m, n, k, 512 * 1024)
        minimal = 8 * (m * k + k * n + 2 * m * n)
        assert traffic >= 0.9 * minimal

    def test_small_b_fully_cached(self):
        """When B fits L2, the naive loop streams it once, not m times."""
        big_cache = naive_gemm_traffic(1000, 32, 32, 10**7)
        tiny_cache = naive_gemm_traffic(1000, 32, 32, 1024)
        assert big_cache < tiny_cache

    def test_traffic_grows_with_m(self):
        assert naive_gemm_traffic(2000, 512, 512, 512 * 1024) > naive_gemm_traffic(
            1000, 512, 512, 512 * 1024
        )

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            naive_gemm_traffic(10, 10, 0, 1024)
        with pytest.raises(ConfigurationError):
            naive_gemm_traffic(10, 10, 10, 0)


class TestGemmTimeComponents:
    def test_mkl_path_much_faster(self):
        c_mkl, m_mkl = gemm_time_components(XEON_PHI_5110P, IMPROVED, 2000, 1024, 1024)
        c_naive, m_naive = gemm_time_components(XEON_PHI_5110P, BASELINE, 2000, 1024, 1024)
        assert max(c_naive, m_naive) / max(c_mkl, m_mkl) > 100

    def test_components_nonnegative(self):
        c, m = gemm_time_components(XEON_PHI_5110P, IMPROVED, 64, 64, 64)
        assert c > 0 and m > 0

    def test_naive_single_thread_is_compute_bound(self):
        """The Table I baseline's defining property: one scalar thread
        cannot outrun even its own cache-starved memory stream."""
        c, m = gemm_time_components(XEON_PHI_5110P, BASELINE, 10_000, 512, 1024)
        assert c > m

    def test_mkl_large_gemm_is_compute_bound(self):
        c, m = gemm_time_components(XEON_PHI_5110P, IMPROVED, 10_000, 4096, 1024)
        assert c > m
