"""Tests for the BLAS shims (repro.runtime.linalg)."""

import numpy as np
import pytest

from repro.runtime import linalg
from repro.runtime.linalg import axpy_into, dot_self, gemm_into


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestGemmInto:
    def test_beta_zero_matches_dot(self, rng):
        a = rng.standard_normal((7, 5))
        b = rng.standard_normal((5, 9))
        out = np.empty((7, 9))
        res = gemm_into(a, b, out)
        assert res is out
        np.testing.assert_allclose(out, a @ b, rtol=1e-13, atol=1e-13)

    def test_alpha_scales_product(self, rng):
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 3))
        out = np.empty((4, 3))
        gemm_into(a, b, out, alpha=0.25)
        np.testing.assert_allclose(out, 0.25 * (a @ b), rtol=1e-13, atol=1e-13)

    def test_beta_one_accumulates(self, rng):
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 3))
        out = rng.standard_normal((4, 3))
        expected = -0.5 * (a @ b) + out
        gemm_into(a, b, out, alpha=-0.5, beta=1.0)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)

    def test_transposed_operands_no_copy(self, rng):
        # the hot-path pattern: gradient = deltaᵀ @ activations
        delta = rng.standard_normal((16, 4))
        act = rng.standard_normal((16, 6))
        out = np.empty((4, 6))
        gemm_into(delta.T, act, out)
        np.testing.assert_allclose(out, delta.T @ act, rtol=1e-13, atol=1e-13)

    def test_numpy_fallback_matches(self, rng, monkeypatch):
        monkeypatch.setattr(linalg, "HAVE_BLAS", False)
        a = rng.standard_normal((4, 6))
        b = rng.standard_normal((6, 3))
        out = rng.standard_normal((4, 3))
        scratch = np.empty_like(out)
        expected = 2.0 * (a @ b) + out
        gemm_into(a, b, out, alpha=2.0, beta=1.0, scratch=scratch)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)


class TestAxpyInto:
    def test_axpy_accumulates_in_place(self, rng):
        x = rng.standard_normal((5, 4))
        y = rng.standard_normal((5, 4))
        expected = y + 0.3 * x
        res = axpy_into(x, y, 0.3)
        assert res is y
        np.testing.assert_allclose(y, expected, rtol=1e-14, atol=1e-14)

    def test_negative_alpha_is_descent_step(self, rng):
        x = rng.standard_normal((8,))
        y = rng.standard_normal((8,))
        expected = y - 0.1 * x
        axpy_into(x, y, -0.1)
        np.testing.assert_allclose(y, expected, rtol=1e-14, atol=1e-14)

    def test_numpy_fallback_matches(self, rng, monkeypatch):
        monkeypatch.setattr(linalg, "HAVE_BLAS", False)
        x = rng.standard_normal((5, 4))
        y = rng.standard_normal((5, 4))
        scratch = np.empty_like(x)
        expected = y + 1.5 * x
        axpy_into(x, y, 1.5, scratch=scratch)
        np.testing.assert_allclose(y, expected, rtol=1e-14, atol=1e-14)


class TestDotSelf:
    def test_matches_frobenius_norm_squared(self, rng):
        x = rng.standard_normal((6, 7))
        assert dot_self(x) == pytest.approx(float(np.sum(x * x)), rel=1e-13)

    def test_vector_input(self, rng):
        x = rng.standard_normal(11)
        assert dot_self(x) == pytest.approx(float(x @ x), rel=1e-13)
