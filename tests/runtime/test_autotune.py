"""Tests for repro.runtime.autotune — the future-work thread tuner."""

import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.autotune import (
    autotune_threads,
    autotune_training_config,
    default_thread_ladder,
)


class TestLadder:
    def test_phi_ladder(self):
        ladder = default_thread_ladder(XEON_PHI_5110P)
        assert ladder[0] == 1
        assert 60 in ladder  # one per core
        assert 240 in ladder  # full SMT
        assert ladder == sorted(ladder)

    def test_xeon_ladder(self):
        ladder = default_thread_ladder(XEON_E5620)
        assert set(ladder) == {1, 2, 4, 8}


class TestAutotuneThreads:
    def test_finds_known_minimum(self):
        # Synthetic landscape: sweet spot at 32 threads.
        evaluate = lambda t: abs(t - 32) + 1.0
        result = autotune_threads(
            evaluate, XEON_PHI_5110P, candidates=[1, 8, 32, 128, 240], refine=False
        )
        assert result.best_threads == 32
        assert result.best_seconds == 1.0

    def test_refinement_probes_midpoints(self):
        # True minimum at 48, between ladder points 32 and 64.
        evaluate = lambda t: (t - 48) ** 2 + 5.0
        result = autotune_threads(
            evaluate, XEON_PHI_5110P, candidates=[16, 32, 64, 128], refine=True
        )
        assert result.best_threads == 48  # the (32+64)//2 probe wins

    def test_samples_recorded(self):
        result = autotune_threads(
            lambda t: float(t), XEON_PHI_5110P, candidates=[1, 2, 4], refine=False
        )
        assert [s.n_threads for s in result.samples] == [1, 2, 4]
        assert result.speedup_vs_worst == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            autotune_threads(lambda t: 1.0, XEON_PHI_5110P, candidates=[])
        with pytest.raises(ConfigurationError):
            autotune_threads(lambda t: 1.0, XEON_PHI_5110P, candidates=[0])
        with pytest.raises(ConfigurationError):
            autotune_threads(lambda t: 1.0, XEON_PHI_5110P, candidates=[1000])


class TestAutotuneTrainingConfig:
    def test_big_batches_want_many_threads(self):
        cfg = TrainingConfig(
            n_visible=1024, n_hidden=4096, n_examples=10_000, batch_size=10_000
        )
        result = autotune_training_config(cfg, SparseAutoencoderTrainer)
        assert result.best_threads >= 60  # the GEMMs are huge; feed every core

    def test_tuned_never_worse_than_default(self):
        cfg = TrainingConfig(
            n_visible=256, n_hidden=128, n_examples=2000, batch_size=50
        )
        default_time = SparseAutoencoderTrainer(cfg).simulate().simulated_seconds
        result = autotune_training_config(cfg, SparseAutoencoderTrainer)
        assert result.best_seconds <= default_time + 1e-12

    def test_small_batches_prefer_fewer_threads_than_max(self):
        """The paper's granularity problem: 240 threads on batch-8 GEMMs
        mostly synchronise.  The tuner must not pick the maximum."""
        cfg = TrainingConfig(
            n_visible=64, n_hidden=32, n_examples=256, batch_size=8
        )
        result = autotune_training_config(cfg, SparseAutoencoderTrainer)
        assert result.best_threads < XEON_PHI_5110P.max_threads
        assert result.speedup_vs_worst > 1.0
