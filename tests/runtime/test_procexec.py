"""ProcessGradientEngine: parity with the thread engine, lifecycle, failure
containment, spawn-safety, and ``make_engine`` backend selection."""

import multiprocessing as mp
import os
import subprocess
import sys
import textwrap
from functools import partial

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork, one_hot
from repro.nn.rbm import RBM
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.optim.sgd import SGD
from repro.runtime.executor import ExecutorClosedError, ParallelGradientEngine
from repro.runtime.procexec import (
    EngineError,
    ProcessGradientEngine,
    _handle,
    _param_paths,
    make_engine,
    process_engine_available,
)
from repro.runtime.workspace import Workspace

TOL = 1e-10  # the ISSUE's parallel-vs-serial equivalence bound

pytestmark = pytest.mark.skipif(
    not process_engine_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


def _sae(sparsity=3.0, n_visible=12, n_hidden=7, seed=0):
    cost = SparseAutoencoderCost(
        weight_decay=1e-3, sparsity_target=0.05, sparsity_weight=sparsity
    )
    return SparseAutoencoder(n_visible, n_hidden, cost=cost, seed=seed)


def _grad_diff(a, b):
    return max(
        float(np.max(np.abs(a.w1 - b.w1))),
        float(np.max(np.abs(a.b1 - b.b1))),
        float(np.max(np.abs(a.w2 - b.w2))),
        float(np.max(np.abs(a.b2 - b.b2))),
    )


# Worker payloads must be picklable: module-level, not lambdas.
def _square(i):
    return i * i


def _boom():
    raise ValueError("shard failed")


class TestSAEEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_gradients_match_serial(self, n_workers):
        model = _sae()
        x = np.random.default_rng(1).random((23, model.n_visible))
        loss_ref, g_ref = model.gradients(x)
        with ProcessGradientEngine(n_workers=n_workers, blas_threads=None) as eng:
            loss_par, g_par = eng.sae_gradients(model, x)
        assert abs(loss_par - loss_ref) <= TOL
        assert _grad_diff(g_ref, g_par) <= TOL

    def test_sparsity_penalty_uses_global_rho(self):
        model = _sae(sparsity=10.0)
        x = np.random.default_rng(2).random((17, model.n_visible))
        _, g_ref = model.gradients(x)
        with ProcessGradientEngine(n_workers=4, blas_threads=None) as eng:
            _, g_par = eng.sae_gradients(model, x)
        assert _grad_diff(g_ref, g_par) <= TOL

    def test_bit_identical_to_thread_engine(self):
        # Not just ≤1e-10: at fixed W the two backends share shard bounds,
        # weights, and reduction order, so the arithmetic is *identical*.
        model = _sae(sparsity=10.0)
        x = np.random.default_rng(3).random((19, model.n_visible))
        with ParallelGradientEngine(n_workers=3, blas_threads=None) as eng:
            loss_t, g_t = eng.sae_gradients(model, x)
        with ProcessGradientEngine(n_workers=3, blas_threads=None) as eng:
            loss_p, g_p = eng.sae_gradients(model, x)
        assert loss_p == loss_t
        for name in ("w1", "b1", "w2", "b2"):
            np.testing.assert_array_equal(getattr(g_p, name), getattr(g_t, name))

    def test_step_trajectory_matches_serial(self):
        parallel, serial = _sae(seed=5), _sae(seed=5)
        rng = np.random.default_rng(4)
        ws = Workspace()
        with ProcessGradientEngine(n_workers=3, blas_threads=None) as eng:
            for _ in range(5):
                batch = rng.random((13, parallel.n_visible))
                eng.sae_step(parallel, batch, 0.1)
                _, grads = serial.gradients_into(batch, ws)
                serial.apply_update(grads, 0.1, workspace=ws)
        assert float(np.max(np.abs(parallel.w1 - serial.w1))) <= TOL

    def test_more_workers_than_rows(self):
        model = _sae()
        x = np.random.default_rng(5).random((2, model.n_visible))
        _, g_ref = model.gradients(x)
        with ProcessGradientEngine(n_workers=6, blas_threads=None) as eng:
            _, g_par = eng.sae_gradients(model, x)
        assert _grad_diff(g_ref, g_par) <= TOL

    def test_sgd_through_flat_objective_matches_serial(self):
        parallel, serial = _sae(seed=7), _sae(seed=7)
        data = np.random.default_rng(6).random((30, parallel.n_visible))
        serial.enable_flat_views()
        ws = Workspace()

        def serial_objective(theta, batch):
            return serial.flat_loss_and_grad(theta, batch, workspace=ws)

        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            res_par = SGD(learning_rate=0.2, seed=1).minimize(
                eng.flat_objective(parallel),
                parallel.get_flat_parameters(),
                data, batch_size=8, epochs=2,
            )
        res_ser = SGD(learning_rate=0.2, seed=1).minimize(
            serial_objective, serial.get_flat_parameters(),
            data, batch_size=8, epochs=2,
        )
        assert float(np.max(np.abs(res_par.theta - res_ser.theta))) <= TOL


class TestCDDeterminism:
    def test_bit_reproducible_at_fixed_worker_count(self):
        x = np.random.default_rng(7).random((19, 9))
        stats = []
        for _ in range(2):
            rbm = RBM(9, 5, seed=3)
            with ProcessGradientEngine(n_workers=3, blas_threads=None, seed=42) as eng:
                stats.append(eng.cd_gradients(rbm, x))
        np.testing.assert_array_equal(stats[0].grad_w, stats[1].grad_w)
        np.testing.assert_array_equal(stats[0].grad_b, stats[1].grad_b)
        np.testing.assert_array_equal(stats[0].grad_c, stats[1].grad_c)

    def test_bit_identical_to_thread_engine_including_streams(self):
        # The coordinator owns stream i and ships its state to worker i,
        # so gradients AND the post-step stream positions must match the
        # thread engine exactly — that is what makes checkpoint/resume
        # engine-agnostic.
        x = np.random.default_rng(8).random((19, 9))
        results = []
        for cls in (ParallelGradientEngine, ProcessGradientEngine):
            rbm = RBM(9, 5, seed=3)
            with cls(n_workers=3, blas_threads=None, seed=42) as eng:
                stats = eng.cd_gradients(rbm, x)
                results.append((stats, eng.capture_rng_streams()))
        (s_t, streams_t), (s_p, streams_p) = results
        np.testing.assert_array_equal(s_p.grad_w, s_t.grad_w)
        assert s_p.reconstruction_error == s_t.reconstruction_error
        assert streams_p == streams_t

    def test_capture_restore_streams_replays_exactly(self):
        rbm = RBM(9, 5, seed=3)
        x = np.random.default_rng(9).random((15, 9))
        with ProcessGradientEngine(n_workers=2, blas_threads=None, seed=11) as eng:
            snapshot = eng.capture_rng_streams()
            first = eng.cd_gradients(rbm, x)
            eng.restore_rng_streams(snapshot)
            replay = eng.cd_gradients(rbm, x)
        np.testing.assert_array_equal(first.grad_w, replay.grad_w)
        assert first.reconstruction_error == replay.reconstruction_error

    def test_cd_step_updates_model(self):
        rbm = RBM(9, 5, seed=3)
        w_before = rbm.w.copy()
        x = np.random.default_rng(9).random((12, 9))
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            stats = eng.cd_step(rbm, x, 0.1)
        assert stats.reconstruction_error > 0
        assert not np.array_equal(rbm.w, w_before)


class TestSupervisedEquivalence:
    def test_gradients_match_serial(self):
        net = DeepNetwork([8, 6, 4], head="softmax", seed=0)
        rng = np.random.default_rng(10)
        x = rng.random((21, 8))
        targets = one_hot(rng.integers(0, 4, size=21), 4)
        loss_ref, g_ref = net.gradients(x, targets)
        with ProcessGradientEngine(n_workers=3, blas_threads=None) as eng:
            loss_par, g_par = eng.supervised_gradients(net, x, targets)
        assert abs(loss_par - loss_ref) <= TOL
        for (gw_r, gb_r), (gw_p, gb_p) in zip(g_ref, g_par):
            assert float(np.max(np.abs(gw_r - gw_p))) <= TOL
            assert float(np.max(np.abs(gb_r - gb_p))) <= TOL

    def test_row_count_mismatch_rejected(self):
        net = DeepNetwork([8, 4], head="softmax", seed=0)
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(ConfigurationError):
                eng.supervised_gradients(net, np.zeros((5, 8)), np.zeros((4, 4)))


class TestTrainingLoopWiring:
    def test_stacked_autoencoder_pretrain_matches_serial(self):
        specs = [LayerSpec(n_hidden=6, epochs=2, batch_size=7)]
        x = np.random.default_rng(11).random((20, 10))
        serial = StackedAutoencoder(10, specs, seed=0).pretrain(x)
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            parallel = StackedAutoencoder(10, specs, seed=0).pretrain(x, engine=eng)
        diff = np.max(np.abs(serial.blocks[0].w1 - parallel.blocks[0].w1))
        assert float(diff) <= TOL

    def test_dbn_pretrain_bit_identical_to_thread_engine(self):
        specs = [LayerSpec(n_hidden=6, epochs=3, batch_size=8)]
        x = (np.random.default_rng(12).random((24, 10)) > 0.5).astype(float)
        with ParallelGradientEngine(n_workers=2, blas_threads=None, seed=1) as eng:
            thread_dbn = DeepBeliefNetwork(10, specs, seed=0).pretrain(x, engine=eng)
        with ProcessGradientEngine(n_workers=2, blas_threads=None, seed=1) as eng:
            proc_dbn = DeepBeliefNetwork(10, specs, seed=0).pretrain(x, engine=eng)
        for a, b in zip(thread_dbn.blocks, proc_dbn.blocks):
            np.testing.assert_array_equal(a.w, b.w)
            np.testing.assert_array_equal(a.b, b.b)
            np.testing.assert_array_equal(a.c, b.c)
        assert thread_dbn.layer_errors == proc_dbn.layer_errors

    def test_finetune_with_engine_matches_serial(self):
        rng = np.random.default_rng(13)
        x = rng.random((26, 8))
        labels = rng.integers(0, 3, size=26)
        serial_net = DeepNetwork([8, 5, 3], head="softmax", seed=2)
        parallel_net = DeepNetwork([8, 5, 3], head="softmax", seed=2)
        res_ser = finetune(serial_net, x, labels, epochs=2, seed=9)
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            res_par = finetune(parallel_net, x, labels, epochs=2, seed=9, engine=eng)
        assert res_par.n_updates == res_ser.n_updates
        np.testing.assert_allclose(res_par.losses, res_ser.losses, atol=TOL)
        diff = np.max(np.abs(serial_net.layers[0].w - parallel_net.layers[0].w))
        assert float(diff) <= TOL


class TestLifecycle:
    def test_close_then_use_raises(self):
        eng = ProcessGradientEngine(n_workers=2, blas_threads=None)
        eng.close()
        assert eng.closed
        with pytest.raises(ExecutorClosedError):
            eng.submit(_square, 2)
        eng.close()  # idempotent

    def test_context_manager_closes(self):
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            assert not eng.closed
        assert eng.closed

    def test_run_tasks_preserves_order(self):
        with ProcessGradientEngine(n_workers=3, blas_threads=None) as eng:
            results = eng.run_tasks([partial(_square, i) for i in range(7)])
        assert results == [i * i for i in range(7)]

    def test_worker_exception_propagates(self):
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(ValueError, match="shard failed"):
                eng.submit(_boom).result()
            # A worker-side exception is not an engine failure: the reply
            # pipes stayed aligned and the engine keeps working.
            assert eng.submit(_square, 4).result() == 16

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            ProcessGradientEngine(n_workers=0)

    def test_unknown_mp_context_rejected(self):
        with pytest.raises(ConfigurationError, match="mp_context"):
            ProcessGradientEngine(n_workers=1, mp_context="teleport")

    def test_bad_batch_shape_rejected(self):
        model = _sae()
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(ConfigurationError):
                eng.sae_gradients(model, np.zeros((4, model.n_visible + 1)))

    def test_repr_reports_state(self):
        eng = ProcessGradientEngine(n_workers=2, blas_threads=None, name="probe")
        assert "open" in repr(eng) and "probe" in repr(eng)
        eng.close()
        assert "closed" in repr(eng)


class TestFailureContainment:
    def test_worker_death_raises_engine_error_not_hang(self):
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(EngineError, match="died"):
                eng.submit(os._exit, 3).result()

    def test_engine_is_broken_after_worker_death(self):
        model = _sae()
        x = np.zeros((4, model.n_visible))
        with ProcessGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(EngineError):
                eng.submit(os._exit, 1).result()
            with pytest.raises(EngineError, match="unusable"):
                eng.sae_gradients(model, x)
        # close() after the crash still unlinked every segment — the
        # conftest shared-memory leak guard fails this test otherwise.
        assert eng.closed


class TestSpawnSafety:
    def test_spawn_context_parity(self, tmp_path):
        # Spawn re-imports __main__ from its file path, so this must run
        # as a real script (stdin/-c programs cannot use spawn at all).
        if "spawn" not in mp.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        script = tmp_path / "spawn_parity.py"
        script.write_text(textwrap.dedent(
            """
            import numpy as np
            from repro.nn.autoencoder import SparseAutoencoder
            from repro.runtime.procexec import ProcessGradientEngine

            if __name__ == "__main__":
                model = SparseAutoencoder(10, 6, seed=0)
                x = np.random.default_rng(1).random((13, 10))
                _, g_ref = model.gradients(x)
                with ProcessGradientEngine(
                    n_workers=2, blas_threads=None, mp_context="spawn"
                ) as eng:
                    _, g_par = eng.sae_gradients(model, x)
                print(float(np.max(np.abs(g_ref.w1 - g_par.w1))))
            """
        ))
        env = dict(os.environ, PYTHONPATH=src)
        out = subprocess.run(
            [sys.executable, str(script)], env=env, capture_output=True,
            text=True, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        assert float(out.stdout.strip()) <= TOL


class TestMakeEngine:
    def test_explicit_modes(self):
        assert make_engine("serial") is None
        eng = make_engine("thread", n_workers=2, blas_threads=None)
        try:
            assert isinstance(eng, ParallelGradientEngine)
        finally:
            eng.close()
        eng = make_engine("process", n_workers=2, blas_threads=None)
        try:
            assert isinstance(eng, ProcessGradientEngine)
        finally:
            eng.close()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            make_engine("gpu")

    def test_auto_is_serial_on_one_core(self, monkeypatch):
        from repro.runtime import procexec

        monkeypatch.setattr(procexec, "available_cores", lambda: 1)
        assert make_engine("auto") is None

    def test_auto_is_serial_below_problem_cutoff(self, monkeypatch):
        from repro.runtime import procexec

        monkeypatch.setattr(procexec, "available_cores", lambda: 4)
        assert make_engine("auto", problem_size=64) is None

    def test_auto_prefers_process_under_the_gil(self, monkeypatch):
        from repro.runtime import procexec

        monkeypatch.setattr(procexec, "available_cores", lambda: 4)
        eng = make_engine("auto", n_workers=2, blas_threads=None,
                          problem_size=1 << 20)
        try:
            assert isinstance(eng, ProcessGradientEngine)
        finally:
            eng.close()

    def test_auto_prefers_threads_without_the_gil(self, monkeypatch):
        from repro.runtime import freethreading, procexec

        monkeypatch.setattr(procexec, "available_cores", lambda: 4)
        monkeypatch.setattr(freethreading, "gil_enabled", lambda: False)
        eng = make_engine("auto", n_workers=2, blas_threads=None)
        try:
            assert isinstance(eng, ParallelGradientEngine)
        finally:
            eng.close()

    def test_auto_falls_back_to_threads_without_shared_memory(self, monkeypatch):
        from repro.runtime import procexec

        monkeypatch.setattr(procexec, "available_cores", lambda: 4)
        monkeypatch.setattr(procexec, "process_engine_available", lambda: False)
        eng = make_engine("auto", n_workers=2, blas_threads=None)
        try:
            assert isinstance(eng, ParallelGradientEngine)
        finally:
            eng.close()


class TestWorkerInternals:
    # The worker body runs in child processes, invisible to coverage; the
    # dispatcher is a pure function of its arguments, so exercise it
    # in-process against plain arrays.

    def test_param_paths(self):
        assert _param_paths("sae", None) == [("w1",), ("b1",), ("w2",), ("b2",)]
        assert _param_paths("rbm", None) == [("w",), ("b",), ("c",)]
        net = DeepNetwork([4, 3, 2], head="softmax", seed=0)
        assert _param_paths("mlp", net) == [
            ("layers", 0, "w"), ("layers", 0, "b"),
            ("layers", 1, "w"), ("layers", 1, "b"),
        ]
        with pytest.raises(ConfigurationError):
            _param_paths("transformer", None)

    def test_handle_register_rebinds_params_to_segments(self):
        model = _sae(n_visible=4, n_hidden=3)
        segments = [
            np.zeros_like(model.w1), np.zeros_like(model.b1),
            np.zeros_like(model.w2), np.zeros_like(model.b2),
        ]
        models = {}
        msg = {
            "op": "register", "model": 0, "model_pickle": model,
            "params": [(path, i) for i, path in enumerate(_param_paths("sae", model))],
        }
        assert _handle(msg, segments, models, Workspace()) is None
        assert models[0].w1 is segments[0]
        assert models[0].b2 is segments[3]

    def test_handle_call_and_unknown_op(self):
        ws = Workspace()
        assert _handle({"op": "call", "fn": _square, "args": (3,)}, [], {}, ws) == 9
        with pytest.raises(ConfigurationError, match="unknown engine op"):
            _handle({"op": "warp"}, [], {}, ws)

    def test_handle_sae_grad_against_plain_arrays(self):
        model = _sae(sparsity=0.0, n_visible=5, n_hidden=3)
        x = np.random.default_rng(0).random((6, 5))
        loss_ref, g_ref = model.gradients(x)
        out = [np.empty_like(g_ref.w1), np.empty_like(g_ref.b1),
               np.empty_like(g_ref.w2), np.empty_like(g_ref.b2)]
        segments = [x] + out
        models = {0: model}
        msg = {"op": "sae_grad", "model": 0, "x": 0, "lo": 0, "hi": 6,
               "rho": None, "out": [1, 2, 3, 4]}
        loss = _handle(msg, segments, models, Workspace())
        assert abs(loss - loss_ref) <= TOL
        assert float(np.max(np.abs(out[0] - g_ref.w1))) <= TOL
