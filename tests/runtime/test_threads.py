"""BLAS thread budgeting: recommended splits and the limit context manager."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.runtime import threads
from repro.runtime.threads import (
    BLAS_ENV_VARS,
    available_cores,
    blas_thread_limit,
    recommended_blas_threads,
)


class TestAvailableCores:
    def test_at_least_one(self):
        assert available_cores() >= 1


class TestRecommendedBlasThreads:
    @pytest.mark.parametrize(
        "workers,cores,expected",
        [(1, 8, 8), (2, 8, 4), (3, 8, 2), (8, 8, 1), (16, 8, 1), (2, 1, 1)],
    )
    def test_budget_split(self, workers, cores, expected):
        assert recommended_blas_threads(workers, total_cores=cores) == expected

    def test_never_oversubscribes(self):
        for cores in (1, 4, 7, 61):  # 61 = Phi 5110P core count
            for workers in range(1, cores + 2):
                blas = recommended_blas_threads(workers, total_cores=cores)
                assert blas >= 1
                assert blas == 1 or workers * blas <= cores

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            recommended_blas_threads(0)

    def test_defaults_to_available_cores(self):
        assert recommended_blas_threads(1) == available_cores()


class TestBlasThreadLimit:
    def test_none_is_noop(self):
        before = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
        with blas_thread_limit(None):
            assert {var: os.environ.get(var) for var in BLAS_ENV_VARS} == before

    def test_invalid_limit(self):
        with pytest.raises(ConfigurationError):
            with blas_thread_limit(0):
                pass

    def test_env_fallback_sets_and_restores(self, monkeypatch):
        monkeypatch.setattr(threads, "HAVE_THREADPOOLCTL", False)
        monkeypatch.setenv("OMP_NUM_THREADS", "7")
        monkeypatch.delenv("MKL_NUM_THREADS", raising=False)
        with blas_thread_limit(2):
            for var in BLAS_ENV_VARS:
                assert os.environ[var] == "2"
        assert os.environ["OMP_NUM_THREADS"] == "7"  # pre-existing restored
        assert "MKL_NUM_THREADS" not in os.environ  # absent stays absent

    def test_env_fallback_restores_on_exception(self, monkeypatch):
        monkeypatch.setattr(threads, "HAVE_THREADPOOLCTL", False)
        monkeypatch.setenv("OMP_NUM_THREADS", "5")
        with pytest.raises(RuntimeError):
            with blas_thread_limit(3):
                raise RuntimeError("boom")
        assert os.environ["OMP_NUM_THREADS"] == "5"

    @pytest.mark.skipif(
        not threads.HAVE_THREADPOOLCTL, reason="threadpoolctl not installed"
    )
    def test_threadpoolctl_path_applies_limit(self):
        import threadpoolctl

        with blas_thread_limit(1):
            for info in threadpoolctl.threadpool_info():
                assert info["num_threads"] == 1
