"""Tests for repro.runtime.taskgraph — DAG scheduling and paper Fig. 6."""

import pytest

from repro.errors import SchedulingError
from repro.phi.kernels import elementwise, gemm
from repro.runtime.taskgraph import TaskGraph, rbm_cd1_taskgraph


class TestTaskGraphBasics:
    def test_add_and_lookup(self):
        g = TaskGraph()
        g.add("a")
        g.add("b", deps=["a"])
        assert "a" in g and "b" in g
        assert len(g) == 2
        assert g.node("b").deps == ("a",)

    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.add("a")
        with pytest.raises(SchedulingError, match="duplicate"):
            g.add("a")

    def test_unknown_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(SchedulingError, match="unknown task"):
            g.add("b", deps=["ghost"])

    def test_unknown_node_lookup(self):
        with pytest.raises(SchedulingError):
            TaskGraph().node("x")


class TestWavefronts:
    def test_diamond(self):
        g = TaskGraph()
        g.add("src")
        g.add("left", deps=["src"])
        g.add("right", deps=["src"])
        g.add("sink", deps=["left", "right"])
        fronts = [[n.name for n in level] for level in g.wavefronts()]
        assert fronts == [["src"], ["left", "right"], ["sink"]]

    def test_chain_has_no_parallelism(self):
        g = TaskGraph()
        g.add("a")
        g.add("b", deps=["a"])
        g.add("c", deps=["b"])
        assert all(len(level) == 1 for level in g.wavefronts())

    def test_independent_nodes_share_level_zero(self):
        g = TaskGraph()
        g.add("x")
        g.add("y")
        fronts = g.wavefronts()
        assert len(fronts) == 1 and len(fronts[0]) == 2

    def test_kernel_levels_drop_empty_nodes(self):
        g = TaskGraph()
        g.add("data")  # no kernel
        g.add("work", kernel=gemm(8, 8, 8), deps=["data"])
        levels = g.kernel_levels()
        assert levels[0] == []
        assert levels[1][0].name == "gemm"


class TestCriticalPath:
    def test_picks_heaviest_chain(self):
        g = TaskGraph()
        g.add("a")
        g.add("fast", deps=["a"])
        g.add("slow", deps=["a"])
        g.add("end", deps=["fast", "slow"])
        cost = {"a": 1.0, "fast": 1.0, "slow": 10.0, "end": 1.0}
        path = g.critical_path(lambda n: cost[n.name])
        assert path == ["a", "slow", "end"]
        assert g.critical_path_cost(lambda n: cost[n.name]) == 12.0

    def test_serial_cost_is_total(self):
        g = TaskGraph()
        g.add("a")
        g.add("b", deps=["a"])
        assert g.serial_cost(lambda n: 2.0) == 4.0

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.critical_path(lambda n: 1.0) == []


class TestFig6Graph:
    """The paper's stated schedule: 'Once V1 is calculated, then we can
    only compute H1 … the computations of V2 and C1 can run in parallel
    … compute Vb, H2 after V2, and compute Vb, Vc and Vw after H2'."""

    def test_node_set(self):
        g = rbm_cd1_taskgraph()
        assert set(g.names) == {"V1", "H1", "V2", "C1", "H2", "Vb", "C2", "Vc", "Vw"}

    def test_h1_is_alone_after_v1(self):
        fronts = [[n.name for n in lvl] for lvl in rbm_cd1_taskgraph().wavefronts()]
        assert fronts[0] == ["V1"]
        assert fronts[1] == ["H1"]

    def test_v2_and_c1_run_in_parallel(self):
        fronts = [{n.name for n in lvl} for lvl in rbm_cd1_taskgraph().wavefronts()]
        assert {"V2", "C1"} <= fronts[2]

    def test_gradients_wait_for_their_inputs(self):
        g = rbm_cd1_taskgraph()
        assert set(g.node("Vw").deps) == {"C1", "C2"}
        assert g.node("Vb").deps == ("V2",)
        assert g.node("Vc").deps == ("H2",)

    def test_kernels_attached_by_name(self):
        kernels = {"V1": gemm(4, 4, 4), "Vw": elementwise(16)}
        g = rbm_cd1_taskgraph(kernels)
        assert g.node("V1").kernel is kernels["V1"]
        assert g.node("Vw").kernel is kernels["Vw"]
        assert g.node("H1").kernel is None

    def test_wavefront_parallelism_shortens_critical_path(self):
        """The graph's reason to exist: the critical path is strictly
        shorter than serial execution."""
        g = rbm_cd1_taskgraph()
        cost = lambda n: 1.0
        assert g.critical_path_cost(cost) < g.serial_cost(cost)
