"""Tests for repro.runtime.backend — the Table I optimization ladder."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.backend import (
    ExecutionBackend,
    OptimizationLevel,
    backend_for_level,
    matlab_backend,
    optimized_cpu_backend,
)


class TestOptimizationLevel:
    def test_cumulative_order(self):
        ranks = [lvl.rank for lvl in OptimizationLevel]
        assert ranks == [0, 1, 2, 3]

    def test_values(self):
        assert OptimizationLevel.BASELINE.value == "baseline"
        assert OptimizationLevel.IMPROVED.value == "improved_openmp_mkl"


class TestLevelBackends:
    def test_baseline_is_sequential_scalar(self):
        b = backend_for_level(OptimizationLevel.BASELINE)
        assert not b.use_simd and not b.use_mkl and not b.use_all_threads
        assert b.threads_for(XEON_PHI_5110P) == 1

    def test_openmp_adds_threads_only(self):
        b = backend_for_level(OptimizationLevel.OPENMP)
        assert b.use_all_threads and not b.use_mkl and not b.use_simd
        assert b.threads_for(XEON_PHI_5110P) == 240

    def test_mkl_adds_blas_and_simd(self):
        b = backend_for_level(OptimizationLevel.OPENMP_MKL)
        assert b.use_mkl and b.use_simd
        assert not b.fused_elementwise

    def test_improved_adds_fusion_and_overlap(self):
        b = backend_for_level(OptimizationLevel.IMPROVED)
        assert b.fused_elementwise and b.overlap_independent
        assert b.unfused_region_count == 1

    def test_cumulative_features_never_regress(self):
        """Each step keeps every feature the previous step had."""
        features = ["use_all_threads", "use_simd", "use_mkl", "fused_elementwise"]
        prev = backend_for_level(OptimizationLevel.BASELINE)
        for level in list(OptimizationLevel)[1:]:
            cur = backend_for_level(level)
            for f in features:
                assert getattr(cur, f) >= getattr(prev, f), (level, f)
            prev = cur

    def test_rejects_non_level(self):
        with pytest.raises(ConfigurationError):
            backend_for_level("improved")


class TestReferenceBackends:
    def test_optimized_cpu_single_thread(self):
        b = optimized_cpu_backend(1)
        assert b.threads_for(XEON_E5620) == 1

    def test_optimized_cpu_whole_chip(self):
        b = optimized_cpu_backend()
        assert b.threads_for(XEON_E5620) == XEON_E5620.max_threads

    def test_matlab_profile(self):
        b = matlab_backend()
        assert b.use_mkl  # Matlab's BLAS is real
        assert b.temp_traffic_factor > 1  # interpreter temporaries
        assert b.per_op_overhead_s > 0
        assert not b.fused_elementwise


class TestThreadControl:
    def test_with_threads(self):
        b = backend_for_level(OptimizationLevel.IMPROVED).with_threads(8)
        assert b.threads_for(XEON_PHI_5110P) == 8

    def test_threads_capped_by_hardware(self):
        b = backend_for_level(OptimizationLevel.IMPROVED).with_threads(10_000)
        assert b.threads_for(XEON_PHI_5110P) == 240

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            backend_for_level(OptimizationLevel.IMPROVED).with_threads(0)
        with pytest.raises(ConfigurationError):
            ExecutionBackend(
                name="bad", level=None, use_simd=True, use_mkl=True,
                use_all_threads=True, fused_elementwise=True,
                overlap_independent=False, gemm_eff_max=1.5,
            )
        with pytest.raises(ConfigurationError):
            ExecutionBackend(
                name="bad", level=None, use_simd=True, use_mkl=True,
                use_all_threads=True, fused_elementwise=True,
                overlap_independent=False, temp_traffic_factor=0.5,
            )
