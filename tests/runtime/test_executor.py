"""ParallelGradientEngine: bit-exactness vs serial, determinism, lifecycle."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork, one_hot
from repro.nn.rbm import RBM
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.optim.sgd import SGD
from repro.runtime.executor import ExecutorClosedError, ParallelGradientEngine
from repro.runtime.taskgraph import rbm_cd1_taskgraph
from repro.runtime.workspace import Workspace
from repro.utils.rng import spawn_streams

TOL = 1e-10  # the ISSUE's parallel-vs-serial equivalence bound


def _sae(sparsity=3.0, n_visible=12, n_hidden=7, seed=0):
    cost = SparseAutoencoderCost(
        weight_decay=1e-3, sparsity_target=0.05, sparsity_weight=sparsity
    )
    return SparseAutoencoder(n_visible, n_hidden, cost=cost, seed=seed)


def _grad_diff(a, b):
    return max(
        float(np.max(np.abs(a.w1 - b.w1))),
        float(np.max(np.abs(a.b1 - b.b1))),
        float(np.max(np.abs(a.w2 - b.w2))),
        float(np.max(np.abs(a.b2 - b.b2))),
    )


class TestSAEEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_gradients_match_serial(self, n_workers):
        model = _sae()
        x = np.random.default_rng(1).random((23, model.n_visible))
        loss_ref, g_ref = model.gradients(x)
        with ParallelGradientEngine(n_workers=n_workers, blas_threads=None) as eng:
            loss_par, g_par = eng.sae_gradients(model, x)
        assert abs(loss_par - loss_ref) <= TOL
        assert _grad_diff(g_ref, g_par) <= TOL

    def test_sparsity_penalty_uses_global_rho(self):
        # The KL penalty is non-decomposable: a naive per-shard ρ̂ would
        # give a different (wrong) gradient.  The two-phase protocol must
        # reproduce the batch-global statistic exactly.
        model = _sae(sparsity=10.0)
        x = np.random.default_rng(2).random((17, model.n_visible))
        _, g_ref = model.gradients(x)
        with ParallelGradientEngine(n_workers=4, blas_threads=None) as eng:
            _, g_par = eng.sae_gradients(model, x)
        assert _grad_diff(g_ref, g_par) <= TOL

    def test_no_sparsity_single_phase(self):
        model = _sae(sparsity=0.0)
        x = np.random.default_rng(3).random((10, model.n_visible))
        _, g_ref = model.gradients(x)
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            _, g_par = eng.sae_gradients(model, x)
        assert _grad_diff(g_ref, g_par) <= TOL

    def test_step_trajectory_matches_serial(self):
        parallel, serial = _sae(seed=5), _sae(seed=5)
        rng = np.random.default_rng(4)
        ws = Workspace()
        with ParallelGradientEngine(n_workers=3, blas_threads=None) as eng:
            for _ in range(5):
                batch = rng.random((13, parallel.n_visible))
                eng.sae_step(parallel, batch, 0.1)
                _, grads = serial.gradients_into(batch, ws)
                serial.apply_update(grads, 0.1, workspace=ws)
        assert float(np.max(np.abs(parallel.w1 - serial.w1))) <= TOL

    def test_more_workers_than_rows(self):
        model = _sae()
        x = np.random.default_rng(5).random((2, model.n_visible))
        _, g_ref = model.gradients(x)
        with ParallelGradientEngine(n_workers=6, blas_threads=None) as eng:
            _, g_par = eng.sae_gradients(model, x)
        assert _grad_diff(g_ref, g_par) <= TOL

    def test_sgd_through_flat_objective_matches_serial(self):
        parallel, serial = _sae(seed=7), _sae(seed=7)
        data = np.random.default_rng(6).random((30, parallel.n_visible))
        serial.enable_flat_views()
        ws = Workspace()

        def serial_objective(theta, batch):
            return serial.flat_loss_and_grad(theta, batch, workspace=ws)

        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            res_par = SGD(learning_rate=0.2, seed=1).minimize(
                eng.flat_objective(parallel),
                parallel.get_flat_parameters(),
                data, batch_size=8, epochs=2,
            )
        res_ser = SGD(learning_rate=0.2, seed=1).minimize(
            serial_objective, serial.get_flat_parameters(),
            data, batch_size=8, epochs=2,
        )
        assert float(np.max(np.abs(res_par.theta - res_ser.theta))) <= TOL


class TestCDDeterminism:
    def test_bit_reproducible_at_fixed_worker_count(self):
        x = np.random.default_rng(7).random((19, 9))
        stats = []
        for _ in range(2):
            rbm = RBM(9, 5, seed=3)
            with ParallelGradientEngine(n_workers=3, blas_threads=None, seed=42) as eng:
                stats.append(eng.cd_gradients(rbm, x))
        np.testing.assert_array_equal(stats[0].grad_w, stats[1].grad_w)
        np.testing.assert_array_equal(stats[0].grad_b, stats[1].grad_b)
        np.testing.assert_array_equal(stats[0].grad_c, stats[1].grad_c)

    def test_matches_serial_shard_oracle(self):
        # Serial oracle: run the same shards through the same spawned
        # streams, reduce by shard weight — the engine must agree ≤1e-10.
        rbm = RBM(9, 5, seed=3)
        x = np.random.default_rng(8).random((19, 9))
        n_workers = 3
        with ParallelGradientEngine(
            n_workers=n_workers, blas_threads=None, seed=42
        ) as eng:
            shards = eng._shards(x.shape[0])
            stats = eng.cd_gradients(rbm, x)

        streams = spawn_streams(42, n_workers)
        ws = Workspace()
        m = x.shape[0]
        gw = np.zeros_like(rbm.w)
        err = 0.0
        for i, (start, stop) in enumerate(shards):
            s = rbm.contrastive_divergence(
                x[start:stop], k=1, rng=streams[i], workspace=ws
            )
            weight = (stop - start) / m
            gw += weight * s.grad_w
            err += weight * s.reconstruction_error
        assert float(np.max(np.abs(stats.grad_w - gw))) <= TOL
        assert abs(stats.reconstruction_error - err) <= TOL

    def test_cd_step_updates_model(self):
        rbm = RBM(9, 5, seed=3)
        w_before = rbm.w.copy()
        x = np.random.default_rng(9).random((12, 9))
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            stats = eng.cd_step(rbm, x, 0.1)
        assert stats.reconstruction_error > 0
        assert not np.array_equal(rbm.w, w_before)


class TestSupervisedEquivalence:
    def test_gradients_match_serial(self):
        net = DeepNetwork([8, 6, 4], head="softmax", seed=0)
        rng = np.random.default_rng(10)
        x = rng.random((21, 8))
        targets = one_hot(rng.integers(0, 4, size=21), 4)
        loss_ref, g_ref = net.gradients(x, targets)
        with ParallelGradientEngine(n_workers=3, blas_threads=None) as eng:
            loss_par, g_par = eng.supervised_gradients(net, x, targets)
        assert abs(loss_par - loss_ref) <= TOL
        for (gw_r, gb_r), (gw_p, gb_p) in zip(g_ref, g_par):
            assert float(np.max(np.abs(gw_r - gw_p))) <= TOL
            assert float(np.max(np.abs(gb_r - gb_p))) <= TOL

    def test_row_count_mismatch_rejected(self):
        net = DeepNetwork([8, 4], head="softmax", seed=0)
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(ConfigurationError):
                eng.supervised_gradients(net, np.zeros((5, 8)), np.zeros((4, 4)))


class TestTrainingLoopWiring:
    def test_stacked_autoencoder_pretrain_matches_serial(self):
        specs = [LayerSpec(n_hidden=6, epochs=2, batch_size=7)]
        x = np.random.default_rng(11).random((20, 10))
        serial = StackedAutoencoder(10, specs, seed=0).pretrain(x)
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            parallel = StackedAutoencoder(10, specs, seed=0).pretrain(x, engine=eng)
        diff = np.max(np.abs(serial.blocks[0].w1 - parallel.blocks[0].w1))
        assert float(diff) <= TOL

    def test_dbn_pretrain_with_engine_learns(self):
        specs = [LayerSpec(n_hidden=6, epochs=3, batch_size=8)]
        x = (np.random.default_rng(12).random((24, 10)) > 0.5).astype(float)
        with ParallelGradientEngine(n_workers=2, blas_threads=None, seed=1) as eng:
            dbn = DeepBeliefNetwork(10, specs, seed=0).pretrain(x, engine=eng)
        errors = dbn.layer_errors[0]
        assert len(errors) == 3
        assert errors[-1] <= errors[0]

    def test_finetune_with_engine_matches_serial(self):
        rng = np.random.default_rng(13)
        x = rng.random((26, 8))
        labels = rng.integers(0, 3, size=26)
        serial_net = DeepNetwork([8, 5, 3], head="softmax", seed=2)
        parallel_net = DeepNetwork([8, 5, 3], head="softmax", seed=2)
        res_ser = finetune(serial_net, x, labels, epochs=2, seed=9)
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            res_par = finetune(parallel_net, x, labels, epochs=2, seed=9, engine=eng)
        assert res_par.n_updates == res_ser.n_updates
        np.testing.assert_allclose(res_par.losses, res_ser.losses, atol=TOL)
        diff = np.max(np.abs(serial_net.layers[0].w - parallel_net.layers[0].w))
        assert float(diff) <= TOL


class TestLifecycle:
    def test_close_then_use_raises(self):
        eng = ParallelGradientEngine(n_workers=2, blas_threads=None)
        eng.close()
        assert eng.closed
        with pytest.raises(ExecutorClosedError):
            eng.submit(lambda: 1)
        eng.close()  # idempotent

    def test_context_manager_closes(self):
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            assert not eng.closed
        assert eng.closed

    def test_run_tasks_preserves_order(self):
        with ParallelGradientEngine(n_workers=3, blas_threads=None) as eng:
            results = eng.run_tasks([lambda i=i: i * i for i in range(7)])
        assert results == [i * i for i in range(7)]

    def test_worker_exception_propagates(self):
        def boom():
            raise ValueError("shard failed")

        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(ValueError, match="shard failed"):
                eng.submit(boom).result()

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigurationError):
            ParallelGradientEngine(n_workers=0)

    def test_bad_batch_shape_rejected(self):
        model = _sae()
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            with pytest.raises(ConfigurationError):
                eng.sae_gradients(model, np.zeros((4, model.n_visible + 1)))

    def test_shards_are_balanced_and_cover(self):
        with ParallelGradientEngine(n_workers=4, blas_threads=None) as eng:
            bounds = eng._shards(10)
        assert bounds[0] == (0, 3)
        assert bounds[-1][1] == 10
        sizes = [stop - start for start, stop in bounds]
        assert max(sizes) - min(sizes) <= 1


class TestTaskGraphExecution:
    def test_cd1_graph_on_engine_pool(self):
        graph = rbm_cd1_taskgraph()
        trace = []

        def make(name):
            return lambda deps: trace.append(name) or name

        fns = {name: make(name) for name in graph.names}
        with ParallelGradientEngine(n_workers=2, blas_threads=None) as eng:
            results = graph.execute(fns, pool=eng)
        assert set(results) == set(graph.names)
        # Every node ran after all of its dependencies.
        order = {name: i for i, name in enumerate(trace)}
        for name in graph.names:
            for dep in graph.node(name).deps:
                assert order[dep] < order[name]
