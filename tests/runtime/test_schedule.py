"""Tests for repro.runtime.schedule — list scheduling of task graphs."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.schedule import Schedule, list_schedule, makespan_lower_bound
from repro.runtime.taskgraph import TaskGraph, rbm_cd1_taskgraph


def diamond():
    g = TaskGraph()
    g.add("src")
    g.add("left", deps=["src"])
    g.add("right", deps=["src"])
    g.add("sink", deps=["left", "right"])
    return g


UNIT = lambda node: 1.0


class TestListScheduleBasics:
    def test_single_worker_serialises(self):
        sched = list_schedule(diamond(), UNIT, n_workers=1)
        assert sched.makespan == pytest.approx(4.0)
        assert all(t.worker == 0 for t in sched.tasks)

    def test_two_workers_exploit_diamond(self):
        sched = list_schedule(diamond(), UNIT, n_workers=2)
        assert sched.makespan == pytest.approx(3.0)  # src, {left,right}, sink

    def test_extra_workers_cannot_beat_critical_path(self):
        sched = list_schedule(diamond(), UNIT, n_workers=16)
        assert sched.makespan == pytest.approx(3.0)

    def test_dependencies_respected(self):
        sched = list_schedule(diamond(), UNIT, n_workers=4)
        by_name = sched.by_name()
        assert by_name["left"].start >= by_name["src"].end
        assert by_name["sink"].start >= max(
            by_name["left"].end, by_name["right"].end
        )

    def test_no_worker_overlap(self):
        g = TaskGraph()
        for i in range(8):
            g.add(f"t{i}")
        sched = list_schedule(g, UNIT, n_workers=3)
        for w in range(3):
            intervals = sorted(
                (t.start, t.end) for t in sched.tasks if t.worker == w
            )
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-12

    def test_priority_prefers_long_chains(self):
        # One long chain + many independent singletons on one worker:
        # starting the chain first is necessary for the optimal makespan.
        g = TaskGraph()
        g.add("c1")
        g.add("c2", deps=["c1"])
        g.add("c3", deps=["c2"])
        for i in range(3):
            g.add(f"x{i}")
        sched = list_schedule(g, UNIT, n_workers=2)
        assert sched.by_name()["c1"].start == 0.0
        assert sched.makespan == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list_schedule(diamond(), UNIT, n_workers=0)


class TestBounds:
    def test_lower_bound_pair(self):
        g = diamond()
        assert makespan_lower_bound(g, UNIT, 1) == pytest.approx(4.0)
        assert makespan_lower_bound(g, UNIT, 2) == pytest.approx(3.0)
        assert makespan_lower_bound(g, UNIT, 100) == pytest.approx(3.0)

    def test_schedule_within_graham_bound(self):
        """List scheduling is a (2 − 1/p)-approximation."""
        g = rbm_cd1_taskgraph()
        costs = {name: float(i + 1) for i, name in enumerate(g.names)}
        cost = lambda node: costs[node.name]
        for p in (1, 2, 3, 4):
            sched = list_schedule(g, cost, p)
            lb = makespan_lower_bound(g, cost, p)
            assert lb <= sched.makespan <= (2 - 1 / p) * lb + 1e-9


class TestFig6Schedule:
    def test_two_workers_suffice_for_cd1(self):
        """Fig. 6's widest level has 3 independent nodes but the heavy
        ones pair up; 2 workers already capture most of the benefit."""
        g = rbm_cd1_taskgraph()
        serial = list_schedule(g, UNIT, 1).makespan
        two = list_schedule(g, UNIT, 2).makespan
        four = list_schedule(g, UNIT, 4).makespan
        assert two < serial
        assert four <= two
        assert four >= g.critical_path_cost(UNIT)

    def test_utilisation_metric(self):
        sched = list_schedule(diamond(), UNIT, 2)
        assert 0.0 < sched.utilisation <= 1.0
        assert sched.utilisation == pytest.approx(4.0 / (3.0 * 2))

    def test_empty_graph(self):
        sched = list_schedule(TaskGraph(), UNIT, 2)
        assert sched.makespan == 0.0
        assert sched.utilisation == 0.0
