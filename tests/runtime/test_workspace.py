"""Tests for the preallocated buffer arena (repro.runtime.workspace)."""

import numpy as np
import pytest

from repro.runtime.workspace import Workspace, WorkspaceFrozenError


class TestBuf:
    def test_buffer_is_reused_across_calls(self):
        ws = Workspace()
        a = ws.buf("x", (4, 3))
        b = ws.buf("x", (4, 3))
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_distinct_names_get_distinct_buffers(self):
        ws = Workspace()
        assert ws.buf("a", (2, 2)) is not ws.buf("b", (2, 2))

    def test_new_shape_allocates_new_buffer(self):
        ws = Workspace()
        a = ws.buf("x", (4, 3))
        b = ws.buf("x", (2, 3))
        assert a is not b
        assert ws.n_buffers == 2

    def test_dtype_is_part_of_the_key(self):
        ws = Workspace()
        f = ws.buf("x", (3,), np.float64)
        m = ws.buf("x", (3,), np.bool_)
        assert f.dtype == np.float64 and m.dtype == np.bool_
        assert f is not m

    def test_buffers_are_c_contiguous(self):
        ws = Workspace()
        assert ws.buf("x", (5, 7)).flags["C_CONTIGUOUS"]

    def test_zeros_returns_zeroed_buffer(self):
        ws = Workspace()
        a = ws.buf("x", (3,))
        a[:] = 7.0
        z = ws.zeros("x", (3,))
        assert z is a
        assert np.all(z == 0.0)

    def test_nbytes_counts_all_buffers(self):
        ws = Workspace()
        ws.buf("a", (10,), np.float64)
        ws.buf("b", (5,), np.float64)
        assert ws.nbytes == 15 * 8

    def test_clear_releases_buffers(self):
        ws = Workspace()
        ws.buf("a", (10,))
        ws.clear()
        assert ws.n_buffers == 0 and ws.nbytes == 0


class TestTranspose:
    def test_transpose_is_contiguous_copy(self):
        ws = Workspace()
        a = np.arange(6.0).reshape(2, 3)
        t = ws.transpose("a", a)
        assert t.shape == (3, 2)
        assert t.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(t, a.T)

    def test_transpose_refreshes_in_place(self):
        ws = Workspace()
        a = np.arange(6.0).reshape(2, 3)
        t1 = ws.transpose("a", a)
        a[0, 0] = 99.0
        t2 = ws.transpose("a", a)
        assert t1 is t2
        assert t2[0, 0] == 99.0

    def test_transpose_refresh_false_keeps_stale_contents(self):
        ws = Workspace()
        a = np.arange(6.0).reshape(2, 3)
        ws.transpose("a", a)
        a[0, 0] = 99.0
        t = ws.transpose("a", a, refresh=False)
        assert t[0, 0] == 0.0


class TestFreeze:
    def test_frozen_workspace_serves_existing_buffers(self):
        ws = Workspace()
        a = ws.buf("x", (3, 3))
        ws.freeze()
        assert ws.frozen
        assert ws.buf("x", (3, 3)) is a

    def test_frozen_workspace_rejects_new_buffers(self):
        ws = Workspace()
        ws.freeze()
        with pytest.raises(WorkspaceFrozenError):
            ws.buf("x", (3, 3))

    def test_thaw_allows_allocation_again(self):
        ws = Workspace()
        ws.freeze()
        ws.thaw()
        assert not ws.frozen
        ws.buf("x", (3, 3))
        assert ws.n_buffers == 1


class TestThreadGuard:
    def test_owner_pinned_on_first_access(self):
        import threading

        ws = Workspace(name="guarded")
        assert ws.owner_thread is None
        ws.buf("x", (2, 2))
        assert ws.owner_thread == threading.get_ident()

    def test_foreign_thread_access_raises(self):
        import threading

        from repro.runtime.workspace import WorkspaceThreadError

        ws = Workspace(name="guarded")
        ws.buf("x", (2, 2))  # pin to this thread
        caught = []

        def intrude():
            try:
                ws.buf("x", (2, 2))
            except WorkspaceThreadError as exc:
                caught.append(exc)

        t = threading.Thread(target=intrude)
        t.start()
        t.join()
        assert len(caught) == 1
        assert "guarded" in str(caught[0])

    def test_transpose_also_guarded(self):
        import threading

        from repro.runtime.workspace import WorkspaceThreadError

        ws = Workspace()
        ws.transpose("a", np.arange(6.0).reshape(2, 3))
        caught = []

        def intrude():
            try:
                ws.transpose("a", np.arange(6.0).reshape(2, 3))
            except WorkspaceThreadError as exc:
                caught.append(exc)

        t = threading.Thread(target=intrude)
        t.start()
        t.join()
        assert len(caught) == 1

    def test_clear_releases_ownership(self):
        import threading

        ws = Workspace()
        ws.buf("x", (2, 2))
        ws.clear()
        assert ws.owner_thread is None
        errors = []

        def adopt():
            try:
                ws.buf("x", (2, 2))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t = threading.Thread(target=adopt)
        t.start()
        t.join()
        assert not errors
        assert ws.owner_thread != threading.get_ident()
