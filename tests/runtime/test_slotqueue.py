"""Edge cases of the extracted bounded-slot hand-off core.

The PR-4 deadlock regression suite covers the file-chunk path
(:class:`~repro.runtime.executor.ChunkPrefetcher`); these tests pin the
shared :class:`~repro.runtime.slotqueue.BoundedSlotQueue` itself —
producer death, consumer death, and the zero-capacity edge — so the
activation-queue pipeline inherits audited semantics.
"""

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.runtime.slotqueue import (
    BoundedSlotQueue,
    SlotQueueClosed,
    SlotQueueError,
    SlotQueueProducerDead,
    SlotQueueProducerFailed,
)


class TestConstruction:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="n_slots"):
            BoundedSlotQueue(0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="n_slots"):
            BoundedSlotQueue(-1)

    def test_nonpositive_poll_rejected(self):
        with pytest.raises(ConfigurationError, match="poll_s"):
            BoundedSlotQueue(1, poll_s=0.0)

    def test_repr_names_the_queue(self):
        q = BoundedSlotQueue(2, name="acts")
        assert "acts" in repr(q) and "open" in repr(q)
        q.close()
        assert "closed" in repr(q)


class TestHandoff:
    def test_fifo_order(self):
        q = BoundedSlotQueue(3)
        for i in range(3):
            assert q.acquire()
            q.put(i)
        got = []
        for _ in range(3):
            got.append(q.get())
            q.release()
        assert got == [0, 1, 2]

    def test_capacity_bounds_staged_items(self):
        q = BoundedSlotQueue(2, poll_s=0.005)
        assert q.acquire() and q.acquire()
        # Third acquire blocks until the consumer releases a slot.
        acquired = []

        def producer():
            acquired.append(q.acquire())

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert acquired == []  # still blocked: both slots held
        q.put("a")
        assert q.get() == "a"
        q.release()
        t.join(timeout=2.0)
        assert acquired == [True]

    def test_try_get_returns_none_on_empty(self):
        q = BoundedSlotQueue(1)
        assert q.try_get() is None
        q.acquire()
        q.put("x")
        assert q.try_get() == "x"

    def test_try_get_raises_on_error_sentinel(self):
        q = BoundedSlotQueue(1)
        q.put_error(ValueError("boom"))
        with pytest.raises(SlotQueueProducerFailed):
            q.try_get()


class TestProducerDeath:
    def test_put_error_surfaces_with_cause(self):
        q = BoundedSlotQueue(1, name="acts")
        boom = ValueError("boom")
        q.put_error(boom)
        with pytest.raises(SlotQueueProducerFailed, match="acts") as exc_info:
            q.get()
        assert exc_info.value.__cause__ is boom
        assert q.error is boom

    def test_hard_death_without_sentinel_raises(self):
        """A producer that dies without publishing anything must surface
        as a typed error on the consumer side — never a hang."""
        q = BoundedSlotQueue(1, name="acts", poll_s=0.005)

        def producer():
            q.acquire()  # takes the slot, then dies without put()

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        t.join()
        with pytest.raises(SlotQueueProducerDead, match="acts"):
            q.get(producer_alive=t.is_alive)

    def test_publish_racing_the_death_check_is_drained(self):
        """An item published just before the producer died is delivered,
        not lost to the liveness check."""
        q = BoundedSlotQueue(1, poll_s=0.005)
        q.acquire()
        q.put("last words")
        assert q.get(producer_alive=lambda: False) == "last words"

    def test_error_after_items_drains_items_first(self):
        q = BoundedSlotQueue(2)
        q.acquire()
        q.put("ok")
        q.put_error(RuntimeError("late failure"))
        assert q.get() == "ok"
        q.release()
        with pytest.raises(SlotQueueProducerFailed):
            q.get()


class TestConsumerDeath:
    def test_close_unblocks_stalled_producer(self):
        """Consumer gone with every buffer full: close() must release the
        producer from its acquire stall with a False verdict."""
        q = BoundedSlotQueue(1, poll_s=0.005)
        assert q.acquire()  # fill the only slot
        verdicts = []

        def producer():
            verdicts.append(q.acquire())

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.03)
        assert verdicts == []  # blocked
        q.close()
        t.join(timeout=2.0)
        assert verdicts == [False]

    def test_acquire_after_close_refuses_even_with_free_slots(self):
        q = BoundedSlotQueue(4)
        q.close()
        assert q.acquire() is False

    def test_get_on_closed_empty_queue_raises(self):
        q = BoundedSlotQueue(1, name="acts", poll_s=0.005)
        q.close()
        with pytest.raises(SlotQueueClosed, match="acts"):
            q.get()

    def test_close_still_drains_published_items(self):
        q = BoundedSlotQueue(1)
        q.acquire()
        q.put("in flight")
        q.close()
        assert q.get() == "in flight"

    def test_typed_errors_share_a_base(self):
        for exc_type in (SlotQueueProducerDead, SlotQueueProducerFailed,
                         SlotQueueClosed):
            assert issubclass(exc_type, SlotQueueError)
            assert issubclass(exc_type, ConfigurationError)
