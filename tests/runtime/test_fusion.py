"""Tests for repro.runtime.fusion — the loop-fusion pass."""

import pytest

from repro.phi.kernels import KernelKind, elementwise, gemm, reduction, sample
from repro.runtime.fusion import fuse_elementwise, fusion_savings


class TestFusePairs:
    def test_adjacent_same_extent_fuse(self):
        a = elementwise(100, flops_per_element=2, name="add")
        b = elementwise(100, flops_per_element=5, name="sigmoid")
        fused = fuse_elementwise([a, b])
        assert len(fused) == 1
        assert fused[0].fused_ops == 2
        assert fused[0].name == "add+sigmoid"

    def test_flops_preserved_exactly(self):
        kernels = [elementwise(50, flops_per_element=i + 1) for i in range(4)]
        fused = fuse_elementwise(kernels)
        assert sum(k.flops for k in fused) == sum(k.flops for k in kernels)

    def test_intermediate_traffic_removed(self):
        a = elementwise(1000, reads_per_element=1, writes_per_element=1)
        b = elementwise(1000, reads_per_element=1, writes_per_element=1)
        fused = fuse_elementwise([a, b])[0]
        # a's write and b's read of the intermediate both disappear.
        assert fused.bytes_read == a.bytes_read
        assert fused.bytes_written == b.bytes_written

    def test_multi_input_second_op_keeps_extra_reads(self):
        a = elementwise(1000, reads_per_element=1, writes_per_element=1)
        b = elementwise(1000, reads_per_element=3, writes_per_element=1)
        fused = fuse_elementwise([a, b])[0]
        # b read 3 arrays; one was the intermediate, two survive.
        assert fused.bytes_read == a.bytes_read + 2 * 1000 * 8

    def test_sample_fuses_and_wins_kind(self):
        chain = [elementwise(64, name="sig"), sample(64)]
        fused = fuse_elementwise(chain)
        assert len(fused) == 1
        assert fused[0].kind is KernelKind.SAMPLE


class TestFences:
    def test_different_extents_do_not_fuse(self):
        out = fuse_elementwise([elementwise(100), elementwise(200)])
        assert len(out) == 2

    def test_gemm_is_a_fence(self):
        out = fuse_elementwise(
            [elementwise(100), gemm(10, 10, 10), elementwise(100)]
        )
        assert len(out) == 3

    def test_reduction_is_a_fence(self):
        out = fuse_elementwise([elementwise(100), reduction(100), elementwise(100)])
        assert len(out) == 3

    def test_order_never_changes(self):
        kernels = [elementwise(10, name="a"), gemm(2, 2, 2, name="g"), elementwise(10, name="b")]
        names = [k.name for k in fuse_elementwise(kernels)]
        assert names == ["a", "g", "b"]

    def test_empty_stream(self):
        assert fuse_elementwise([]) == []


class TestChains:
    def test_long_chain_collapses_to_one(self):
        chain = [elementwise(32, name=f"op{i}") for i in range(6)]
        fused = fuse_elementwise(chain)
        assert len(fused) == 1
        assert fused[0].fused_ops == 6

    def test_fusion_savings_reporting(self):
        chain = [elementwise(1000) for _ in range(3)]
        regions_removed, bytes_removed = fusion_savings(chain)
        assert regions_removed == 2
        assert bytes_removed == pytest.approx(2 * 2 * 1000 * 8)  # 2 boundaries × (write+read)

    def test_savings_zero_for_unfusable(self):
        regions, saved = fusion_savings([gemm(4, 4, 4), reduction(10)])
        assert regions == 0 and saved == 0
