"""ChunkPrefetcher: ordering, backpressure, and the analytic cross-check."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime.executor import ChunkPrefetcher, PrefetchError
from repro.runtime.offload import OffloadPipeline
from repro.phi.pcie import PCIeModel


def _identity_pcie():
    """PCIe model whose transfer time equals the 'bytes' passed in —
    lets us feed measured load durations straight into run_analytic."""
    return PCIeModel(bandwidth=1.0, latency_s=0.0, efficiency=1.0)


class TestBasics:
    def test_yields_all_chunks_in_order(self):
        with ChunkPrefetcher(lambda i: i * 10, n_chunks=5) as pf:
            seen = list(pf)
        assert seen == [0, 10, 20, 30, 40]
        assert pf.chunks_consumed == 5

    def test_single_chunk(self):
        with ChunkPrefetcher(lambda i: "only", n_chunks=1, n_buffers=1) as pf:
            assert list(pf) == ["only"]

    def test_arrays_pass_through_untouched(self):
        chunks = [np.full((3, 2), i, dtype=float) for i in range(4)]
        with ChunkPrefetcher(lambda i: chunks[i], n_chunks=4) as pf:
            for i, chunk in enumerate(pf):
                assert chunk is chunks[i]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChunkPrefetcher(lambda i: i, n_chunks=0)
        with pytest.raises(ConfigurationError):
            ChunkPrefetcher(lambda i: i, n_chunks=3, n_buffers=0)

    def test_timeline_before_completion_raises(self):
        pf = ChunkPrefetcher(lambda i: i, n_chunks=3)
        with pf:
            it = iter(pf)
            next(it)
            with pytest.raises(ConfigurationError):
                pf.timeline()

    def test_loader_exception_surfaces_as_prefetch_error(self):
        def load(i):
            if i == 2:
                raise OSError("disk gone")
            return i

        with ChunkPrefetcher(load, n_chunks=4) as pf:
            with pytest.raises(PrefetchError, match="disk gone"):
                list(pf)

    def test_early_break_does_not_hang_close(self):
        def load(i):
            time.sleep(0.01)
            return i

        pf = ChunkPrefetcher(load, n_chunks=50, n_buffers=2)
        with pf:
            for chunk in pf:
                if chunk == 1:
                    break
        # close() ran on __exit__; the loader thread must be gone.
        assert not pf._thread.is_alive()


class TestBackpressure:
    def test_loader_never_runs_more_than_n_buffers_ahead(self):
        # Fast loader, slow consumer: the semaphore must hold transfer i
        # until chunk i - n_buffers has been fully consumed.
        n_buffers = 2
        with ChunkPrefetcher(lambda i: i, n_chunks=8, n_buffers=n_buffers) as pf:
            for _ in pf:
                time.sleep(0.01)
        tl = pf.timeline()
        for i in range(n_buffers, 8):
            assert (
                tl.chunks[i].transfer_start
                >= tl.chunks[i - n_buffers].compute_end - 1e-9
            )

    def test_slow_loader_exposes_trainer_idle(self):
        def load(i):
            time.sleep(0.02)
            return i

        with ChunkPrefetcher(load, n_chunks=5) as pf:
            for _ in pf:
                pass  # instant compute: the trainer starves on every chunk
        tl = pf.timeline()
        assert tl.trainer_idle_s >= 0.5 * tl.transfer_total_s
        assert tl.total_s >= tl.transfer_total_s

    def test_fast_loader_hides_transfers(self):
        def load(i):
            time.sleep(0.002)
            return i

        with ChunkPrefetcher(load, n_chunks=6) as pf:
            for _ in pf:
                time.sleep(0.02)  # compute dominates: loads hide behind it
        tl = pf.timeline()
        # Only the first transfer is exposed; later ones overlap compute.
        assert tl.trainer_idle_s < 2.5 * (tl.transfer_total_s / 6)


class TestAnalyticCrossCheck:
    def test_measured_timeline_matches_offload_recurrence(self):
        # Satellite (d): run the executable pipeline with known load and
        # compute durations, then feed the *same* durations through the
        # simulator's closed-form recurrence.  The measured schedule obeys
        # the same slot rule, so totals agree up to thread-wakeup noise.
        load_s, compute_s, n = 0.015, 0.010, 6

        def load(i):
            time.sleep(load_s)
            return i

        with ChunkPrefetcher(load, n_chunks=n, n_buffers=2) as pf:
            for _ in pf:
                time.sleep(compute_s)
        measured = pf.timeline()

        ideal = OffloadPipeline(_identity_pcie(), n_buffers=2).run_analytic(
            [load_s] * n, [compute_s] * n
        )
        # Loads dominate: ideal total = n*load + compute (first compute
        # fully hidden behind the next load, each later one too).
        assert measured.total_s >= ideal.total_s - 1e-9
        assert measured.total_s <= ideal.total_s * 1.5 + 0.05
        # Both timelines agree that overlap hides most compute time.
        assert measured.trainer_idle_s == pytest.approx(
            ideal.trainer_idle_s, abs=0.03
        )

    def test_overlap_beats_serial_schedule(self):
        load_s, compute_s, n = 0.01, 0.01, 6

        def load(i):
            time.sleep(load_s)
            return i

        with ChunkPrefetcher(load, n_chunks=n, n_buffers=2) as pf:
            t0 = time.perf_counter()
            for _ in pf:
                time.sleep(compute_s)
            overlapped = time.perf_counter() - t0
        serial = OffloadPipeline(
            _identity_pcie(), n_buffers=2, double_buffering=False
        ).run_analytic([load_s] * n, [compute_s] * n)
        assert overlapped < serial.total_s
