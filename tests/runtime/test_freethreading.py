"""PEP 703 readiness audit: detection helpers and audit inventory shape."""

import importlib

from repro.runtime.freethreading import (
    GIL_AUDIT,
    audit_rows,
    free_threaded_build,
    free_threading_report,
    gil_enabled,
)


class TestDetection:
    def test_flags_are_booleans(self):
        assert isinstance(free_threaded_build(), bool)
        assert isinstance(gil_enabled(), bool)

    def test_gil_is_on_for_standard_builds(self):
        # On a normal (non --disable-gil) interpreter the GIL can never be
        # off; only free-threaded builds may report False.
        if not free_threaded_build():
            assert gil_enabled() is True


class TestAuditInventory:
    def test_entries_are_well_formed(self):
        assert len(GIL_AUDIT) >= 4
        for entry in GIL_AUDIT:
            assert entry["risk"] in ("safe", "guarded", "needs-work")
            assert entry["note"].strip()
            assert entry["symbol"].strip()

    def test_audited_modules_exist(self):
        # The audit must not drift from the codebase: every module it
        # names has to be importable.
        for entry in GIL_AUDIT:
            importlib.import_module(entry["module"])

    def test_report_counts_match_inventory(self):
        report = free_threading_report()
        assert report["free_threaded_build"] == free_threaded_build()
        assert report["gil_enabled"] == gil_enabled()
        assert sum(report["risk_counts"].values()) == len(GIL_AUDIT)
        assert report["audit"] == [dict(e) for e in GIL_AUDIT]

    def test_rows_are_copies(self):
        rows = audit_rows()
        rows[0]["risk"] = "mutated"
        assert GIL_AUDIT[0]["risk"] != "mutated"
