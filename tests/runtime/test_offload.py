"""Tests for repro.runtime.offload — the Fig. 5 double-buffered pipeline."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.pcie import PCIeModel
from repro.runtime.offload import OffloadPipeline


@pytest.fixture
def pcie():
    # 1 byte/s, zero latency: chunk_bytes are literally transfer seconds.
    return PCIeModel(bandwidth=1.0, latency_s=0.0)


class TestAnalyticPipeline:
    def test_serial_is_sum_of_everything(self, pcie):
        p = OffloadPipeline(pcie, double_buffering=False)
        tl = p.run_analytic([10.0, 10.0, 10.0], [5.0, 5.0, 5.0])
        assert tl.total_s == pytest.approx(45.0)

    def test_double_buffering_hides_transfers_when_compute_dominates(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=2)
        tl = p.run_analytic([5.0] * 4, [20.0] * 4)
        # First transfer exposed, the rest hidden: 5 + 4*20.
        assert tl.total_s == pytest.approx(85.0)
        assert tl.exposed_transfer_s == pytest.approx(5.0)

    def test_transfer_bound_pipeline(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=2)
        tl = p.run_analytic([20.0] * 4, [5.0] * 4)
        # The link is the bottleneck: 4 transfers + final compute.
        assert tl.total_s == pytest.approx(85.0)

    def test_perfect_balance(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=2)
        tl = p.run_analytic([10.0] * 3, [10.0] * 3)
        assert tl.total_s == pytest.approx(40.0)

    def test_single_chunk_cannot_overlap(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=2)
        tl = p.run_analytic([10.0], [5.0])
        assert tl.total_s == pytest.approx(15.0)

    def test_more_buffers_never_hurt(self, pcie):
        chunk = [7.0, 13.0, 4.0, 9.0, 11.0]
        compute = [10.0, 3.0, 12.0, 8.0, 6.0]
        totals = [
            OffloadPipeline(pcie, n_buffers=n).run_analytic(chunk, compute).total_s
            for n in (1, 2, 3, 5)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(totals, totals[1:]))

    def test_buffer_slot_backpressure(self, pcie):
        """With 2 buffers the loader must wait for slot i−2 to be consumed:
        transfers cannot run arbitrarily far ahead."""
        p = OffloadPipeline(pcie, n_buffers=2)
        tl = p.run_analytic([1.0] * 4, [10.0] * 4)
        third_transfer = tl.chunks[2]
        first_compute_end = tl.chunks[0].compute_end
        assert third_transfer.transfer_start >= first_compute_end - 1e-12

    def test_unoverlapped_fraction(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=2)
        tl = p.run_analytic([13.0] * 5, [68.0] * 5)
        assert tl.transfer_fraction_unoverlapped == pytest.approx(13 / 81)

    def test_trainer_idle_accounting(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=2)
        tl = p.run_analytic([5.0] * 3, [20.0] * 3)
        # Idle only before the first chunk.
        assert tl.trainer_idle_s == pytest.approx(5.0)


class TestEventDrivenCrossCheck:
    @pytest.mark.parametrize(
        "chunks,compute,n_buffers",
        [
            ([10.0] * 4, [5.0] * 4, 2),
            ([5.0] * 4, [20.0] * 4, 2),
            ([7.0, 13.0, 4.0, 9.0], [10.0, 3.0, 12.0, 8.0], 2),
            ([7.0, 13.0, 4.0, 9.0], [10.0, 3.0, 12.0, 8.0], 3),
            ([10.0], [5.0], 2),
            ([3.0, 3.0, 3.0], [3.0, 3.0, 3.0], 1),
        ],
    )
    def test_event_sim_matches_analytic(self, pcie, chunks, compute, n_buffers):
        """Two independent implementations of Fig. 5 must agree exactly."""
        p = OffloadPipeline(pcie, n_buffers=n_buffers)
        analytic = p.run_analytic(chunks, compute)
        events = p.run_event_driven(chunks, compute)
        assert events.total_s == pytest.approx(analytic.total_s)
        for a, e in zip(analytic.chunks, events.chunks):
            assert e.transfer_start == pytest.approx(a.transfer_start)
            assert e.compute_end == pytest.approx(a.compute_end)

    def test_serial_mode_agrees_too(self, pcie):
        p = OffloadPipeline(pcie, double_buffering=False)
        chunks, compute = [4.0, 6.0, 2.0], [3.0, 1.0, 5.0]
        assert p.run_event_driven(chunks, compute).total_s == pytest.approx(
            p.run_analytic(chunks, compute).total_s
        )


class TestDegenerateRegimes:
    """Edge cases of the buffer pool, cross-checked between the analytic
    recurrence and the event simulation."""

    def test_single_buffer_serialises_load_and_train(self, pcie):
        """n_buffers=1 leaves no spare slot: transfer i+1 cannot start
        until compute i has consumed the only buffer — no overlap."""
        p = OffloadPipeline(pcie, n_buffers=1)
        chunks, compute = [10.0, 10.0, 10.0], [5.0, 5.0, 5.0]
        tl = p.run_analytic(chunks, compute)
        assert tl.total_s == pytest.approx(45.0)  # fully serial
        assert tl.exposed_transfer_s == pytest.approx(30.0)
        for prev, cur in zip(tl.chunks, tl.chunks[1:]):
            assert cur.transfer_start >= prev.compute_end - 1e-12

    def test_single_buffer_matches_event_sim(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=1)
        chunks, compute = [7.0, 13.0, 4.0, 9.0], [10.0, 3.0, 12.0, 8.0]
        analytic = p.run_analytic(chunks, compute)
        events = p.run_event_driven(chunks, compute)
        assert events.total_s == pytest.approx(analytic.total_s)
        for a, e in zip(analytic.chunks, events.chunks):
            assert e.transfer_start == pytest.approx(a.transfer_start)
            assert e.compute_start == pytest.approx(a.compute_start)

    def test_single_buffer_equals_explicit_serial_mode(self, pcie):
        """One buffer and double_buffering=False are the same pipeline."""
        chunks, compute = [7.0, 13.0, 4.0], [10.0, 3.0, 12.0]
        one_buffer = OffloadPipeline(pcie, n_buffers=1).run_analytic(chunks, compute)
        serial = OffloadPipeline(pcie, double_buffering=False).run_analytic(chunks, compute)
        assert one_buffer.total_s == pytest.approx(serial.total_s)

    def test_loader_slower_than_trainer_link_bound(self, pcie):
        """Loader-slower-than-trainer regime: the link never goes idle,
        total = all transfers + the final compute, and the trainer idles
        between every chunk."""
        p = OffloadPipeline(pcie, n_buffers=2)
        chunks, compute = [20.0] * 5, [2.0] * 5
        tl = p.run_analytic(chunks, compute)
        assert tl.total_s == pytest.approx(5 * 20.0 + 2.0)
        # Trainer waits for chunk 0, then for every subsequent transfer.
        assert tl.trainer_idle_s == pytest.approx(tl.total_s - 5 * 2.0)
        for prev, cur in zip(tl.chunks, tl.chunks[1:]):
            assert cur.transfer_start == pytest.approx(prev.transfer_end)

    def test_loader_slower_than_trainer_matches_event_sim(self, pcie):
        p = OffloadPipeline(pcie, n_buffers=2)
        chunks, compute = [20.0, 25.0, 18.0, 22.0], [2.0, 1.0, 3.0, 2.0]
        analytic = p.run_analytic(chunks, compute)
        events = p.run_event_driven(chunks, compute)
        assert events.total_s == pytest.approx(analytic.total_s)
        assert events.trainer_idle_s == pytest.approx(analytic.trainer_idle_s)

    def test_extra_buffers_cannot_help_transfer_bound_pipeline(self, pcie):
        """When the link is the bottleneck, buffer count is irrelevant."""
        chunks, compute = [20.0] * 4, [2.0] * 4
        totals = {
            n: OffloadPipeline(pcie, n_buffers=n).run_analytic(chunks, compute).total_s
            for n in (2, 3, 8)
        }
        assert totals[2] == pytest.approx(totals[3]) == pytest.approx(totals[8])


class TestValidation:
    def test_mismatched_lengths(self, pcie):
        with pytest.raises(ConfigurationError):
            OffloadPipeline(pcie).run_analytic([1.0], [1.0, 2.0])

    def test_empty_pipeline(self, pcie):
        with pytest.raises(ConfigurationError):
            OffloadPipeline(pcie).run_analytic([], [])

    def test_nonpositive_chunk(self, pcie):
        with pytest.raises(ConfigurationError):
            OffloadPipeline(pcie).run_analytic([0.0], [1.0])

    def test_bad_buffer_count(self, pcie):
        with pytest.raises(ConfigurationError):
            OffloadPipeline(pcie, n_buffers=0)
