"""Mask streams: seed determinism, inverted scaling, stream independence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.shard.masks import mask_streams, resample_masks, structural_and_dropout


class TestStreams:
    def test_stream_k_is_pure_function_of_seed_and_k(self):
        a = mask_streams(7, 4)
        b = mask_streams(7, 4)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.random(16), gb.random(16))

    def test_streams_independent_of_shard_count(self):
        # Stream k must draw the same values whether 2 or 4 shards exist —
        # a resharded run's shard 0 keeps its mask history.
        two = mask_streams(7, 2)
        four = mask_streams(7, 4)
        assert np.array_equal(two[0].random(8), four[0].random(8))
        assert np.array_equal(two[1].random(8), four[1].random(8))

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            mask_streams(0, 0)


class TestResample:
    def test_inverted_scale_values(self):
        stream = mask_streams(3, 1)[0]
        masks = resample_masks(stream, [1000], 0.25)
        assert len(masks) == 1
        values = set(np.unique(masks[0]))
        assert values == {0.0, 1.0 / 0.75}
        # keep rate concentrates near 0.75
        assert 0.65 < np.mean(masks[0] > 0) < 0.85

    def test_zero_dropout_is_all_ones_but_still_draws(self):
        a = mask_streams(3, 1)[0]
        b = mask_streams(3, 1)[0]
        ones = resample_masks(a, [64], 0.0)
        assert np.array_equal(ones[0], np.ones(64))
        # the stream advanced exactly as it would at dropout > 0
        resample_masks(b, [64], 0.5)
        assert np.array_equal(a.random(8), b.random(8))

    def test_one_draw_per_layer(self):
        a = mask_streams(3, 1)[0]
        b = mask_streams(3, 1)[0]
        resample_masks(a, [8, 16, 4], 0.5)
        b.random(8), b.random(16), b.random(4)
        assert np.array_equal(a.random(8), b.random(8))

    def test_rejects_bad_dropout(self):
        stream = mask_streams(3, 1)[0]
        with pytest.raises(ConfigurationError):
            resample_masks(stream, [8], 1.0)
        with pytest.raises(ConfigurationError):
            resample_masks(stream, [8], -0.1)


class TestCompose:
    def test_structural_only_copies(self):
        keep = [np.array([1.0, 0.0, 1.0])]
        out = structural_and_dropout(keep)
        assert np.array_equal(out[0], keep[0])
        assert out[0] is not keep[0]

    def test_product_zeroes_union_and_keeps_scale(self):
        keep = [np.array([1.0, 1.0, 0.0, 0.0])]
        drop = [np.array([2.0, 0.0, 2.0, 0.0])]
        out = structural_and_dropout(keep, drop)
        assert np.array_equal(out[0], [2.0, 0.0, 0.0, 0.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            structural_and_dropout([np.ones(3)], [np.ones(3), np.ones(3)])
