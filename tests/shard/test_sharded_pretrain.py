"""sharded_pretrain: N=1 identity, exchanges, kill-anywhere resume."""

import numpy as np
import pytest

from repro.bench.shardbench import _max_abs, _model_params, sharded_pretrain
from repro.errors import ConfigurationError
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CheckpointError, CheckpointStore
from repro.runtime.executor import ParallelGradientEngine
from repro.shard.shards import merge
from repro.testing.faults import FaultError, FaultPlan, inject

SPECS = [LayerSpec(8, epochs=2, batch_size=16), LayerSpec(6, epochs=2, batch_size=16)]


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(0).random((48, 12))


def _sae():
    return StackedAutoencoder(12, SPECS, seed=5)


def _shard_diff(a, b):
    worst = 0.0
    for sa, sb in zip(a, b):
        for pa, pb in zip(_model_params(sa.model), _model_params(sb.model)):
            worst = max(worst, _max_abs(pa, pb))
        for ca, cb in zip(sa.cross, sb.cross):
            worst = max(worst, _max_abs(ca.values, cb.values))
    return worst


class TestCascade:
    def test_one_shard_is_bit_identical_to_unsharded(self, x):
        ref = _sae()
        ref.pretrain(x)
        sharded = _sae()
        sharded_pretrain(sharded, x, 1)
        assert all(
            _max_abs(a, b) == 0.0
            for a, b in zip(_model_params(ref), _model_params(sharded))
        )
        assert ref.layer_errors == sharded.layer_errors

    def test_dbn_one_shard_matches_unsharded(self, x):
        binary = (x > 0.5).astype(np.float64)
        ref = DeepBeliefNetwork(12, SPECS, cd_k=1, seed=5)
        ref.pretrain(binary)
        sharded = DeepBeliefNetwork(12, SPECS, cd_k=1, seed=5)
        sharded_pretrain(sharded, binary, 1)
        assert all(
            _max_abs(a, b) == 0.0
            for a, b in zip(_model_params(ref), _model_params(sharded))
        )

    def test_template_holds_merged_blocks_after_training(self, x):
        stack = _sae()
        shards = sharded_pretrain(stack, x, 2)
        assert stack.is_trained
        rebuilt = merge(shards)
        assert all(
            _max_abs(a, b) == 0.0
            for a, b in zip(_model_params(stack), _model_params(rebuilt))
        )

    def test_deterministic_across_runs(self, x):
        a = sharded_pretrain(_sae(), x, 2, exchange_every=2, dropout=0.25)
        b = sharded_pretrain(_sae(), x, 2, exchange_every=2, dropout=0.25)
        assert _shard_diff(a, b) == 0.0

    def test_exchange_fires_on_schedule(self, x):
        # 3 batches x 2 epochs x 2 blocks = 12 updates; exchange_every=2
        # gives exactly 6 exchange events: a kill armed for the 6th
        # (0-based nth=5) fires, one armed for a 7th never does.
        with pytest.raises(FaultError):
            with inject(FaultPlan.fail("shard.exchange", nth=5)) as plan:
                sharded_pretrain(_sae(), x, 2, exchange_every=2)
        assert plan.fired("shard.exchange") == 1
        with inject(FaultPlan.fail("shard.exchange", nth=6)) as plan:
            sharded_pretrain(_sae(), x, 2, exchange_every=2)
        assert plan.fired("shard.exchange") == 0

    def test_zero_exchange_every_never_fires_the_site(self, x):
        with inject(FaultPlan.fail("shard.exchange", nth=1)) as plan:
            sharded_pretrain(_sae(), x, 2)
        assert plan.fired("shard.exchange") == 0

    def test_trained_template_rejected(self, x):
        stack = _sae()
        stack.pretrain(x)
        with pytest.raises(ConfigurationError, match="trained"):
            sharded_pretrain(stack, x, 2)

    def test_mlp_rejected(self, x):
        from repro.nn.mlp import DeepNetwork

        with pytest.raises(ConfigurationError, match="Stacked"):
            sharded_pretrain(DeepNetwork([12, 8, 4]), x, 2)


class TestResume:
    def _run(self, x, store=None, resume_from=None, engine=None):
        return sharded_pretrain(
            _sae(), x, 2,
            checkpoint=store, resume_from=resume_from, engine=engine,
            exchange_every=2, dropout=0.25, mask_seed=5,
        )

    def test_resume_from_every_snapshot_is_bit_identical(self, x, tmp_path):
        store = CheckpointStore(tmp_path, keep=32)
        baseline = self._run(x, store=store)
        snapshots = store.list()
        assert len(snapshots) == 4  # 2 blocks x 2 epochs
        for snap in snapshots:
            resumed = self._run(x, resume_from=snap)
            assert _shard_diff(baseline, resumed) == 0.0, snap.name

    def test_kill_at_exchange_site_then_resume(self, x, tmp_path):
        baseline = self._run(x)
        store = CheckpointStore(tmp_path, keep=32)
        with pytest.raises(FaultError):
            with inject(FaultPlan.fail("shard.exchange", nth=3)):
                self._run(x, store=store)
        assert store.latest() is not None
        resumed = self._run(x, resume_from=store)
        assert _shard_diff(baseline, resumed) == 0.0

    def test_engine_mode_mismatch_rejected(self, x, tmp_path):
        store = CheckpointStore(tmp_path, keep=32)
        self._run(x, store=store)
        with ParallelGradientEngine(2, blas_threads=None, seed=5) as eng:
            with pytest.raises(CheckpointError, match="execution mode"):
                self._run(x, resume_from=store, engine=eng)

    def test_engine_resume_bit_identical(self, x, tmp_path):
        store = CheckpointStore(tmp_path, keep=32)
        with ParallelGradientEngine(2, blas_threads=None, seed=5) as eng:
            baseline = self._run(x, engine=eng)
        with ParallelGradientEngine(2, blas_threads=None, seed=5) as eng:
            self._run(x, store=store, engine=eng)
        mid = store.list()[1]
        with ParallelGradientEngine(2, blas_threads=None, seed=5) as eng:
            resumed = self._run(x, resume_from=mid, engine=eng)
        assert _shard_diff(baseline, resumed) == 0.0

    def test_shard_count_cross_rejection(self, x, tmp_path):
        store = CheckpointStore(tmp_path, keep=32)
        self._run(x, store=store)
        with pytest.raises(CheckpointError, match="n_shards"):
            sharded_pretrain(_sae(), x, 4, resume_from=store,
                             exchange_every=2, dropout=0.25, mask_seed=5)
