"""Partition: bounds arithmetic, masks, meta round-trip, validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.shard.partition import Partition


class TestBounds:
    def test_contiguous_cover_without_overlap(self):
        part = Partition([6, 10, 7], 3, partitioned=(1, 2))
        for layer in (1, 2):
            edges = [part.bounds(layer, k) for k in range(3)]
            assert edges[0][0] == 0
            assert edges[-1][1] == part.layer_sizes[layer]
            for (_, hi), (lo, _) in zip(edges, edges[1:]):
                assert hi == lo

    def test_uneven_split_spreads_remainder_to_low_shards(self):
        part = Partition([4, 10, 4], 3)
        widths = [part.width(1, k) for k in range(3)]
        assert widths == [4, 3, 3]
        assert sum(widths) == 10

    def test_unpartitioned_layer_is_full_width_for_every_shard(self):
        part = Partition([6, 10, 7], 2, partitioned=(1,))
        for k in range(2):
            assert part.bounds(0, k) == (0, 6)
            assert part.bounds(2, k) == (0, 7)
            assert part.width(2, k) == 7
        assert not part.is_partitioned(2)
        assert part.is_partitioned(1)

    def test_mlp_default_partitions_interior_layers_only(self):
        part = Partition([6, 10, 8, 5], 2)
        assert part.partitioned == (1, 2)

    def test_units_match_bounds(self):
        part = Partition([6, 9], 2, partitioned=(1,))
        for k in range(2):
            lo, hi = part.bounds(1, k)
            assert np.array_equal(part.units(1, k), np.arange(lo, hi))

    def test_keep_mask_is_structural(self):
        part = Partition([6, 9], 2, partitioned=(1,))
        masks = [part.keep_mask(1, k) for k in range(2)]
        assert np.array_equal(sum(masks), np.ones(9))
        for k, mask in enumerate(masks):
            lo, hi = part.bounds(1, k)
            assert mask[lo:hi].sum() == hi - lo
            assert set(np.unique(mask)) <= {0.0, 1.0}


class TestValidation:
    def test_rejects_more_shards_than_units(self):
        with pytest.raises(ConfigurationError):
            Partition([6, 2, 6], 3, partitioned=(1,))

    def test_rejects_out_of_range_partitioned_index(self):
        with pytest.raises(ConfigurationError):
            Partition([6, 9], 2, partitioned=(5,))

    def test_rejects_empty_partitioned_set(self):
        with pytest.raises(ConfigurationError):
            Partition([6, 9], 2)  # default interior set is empty here

    def test_rejects_too_few_layers(self):
        with pytest.raises(ConfigurationError):
            Partition([6], 2)

    def test_rejects_bad_indices(self):
        part = Partition([6, 9], 2, partitioned=(1,))
        with pytest.raises(ConfigurationError):
            part.bounds(7, 0)
        with pytest.raises(ConfigurationError):
            part.bounds(1, 2)


class TestMeta:
    def test_meta_round_trip_and_equality(self):
        part = Partition([6, 10, 7], 3, partitioned=(1, 2))
        again = Partition.from_meta(part.meta())
        assert again == part
        assert hash(again) == hash(part)

    def test_inequality_on_different_layout(self):
        a = Partition([6, 10, 7], 3, partitioned=(1, 2))
        assert a != Partition([6, 10, 7], 2, partitioned=(1, 2))
        assert a != Partition([6, 10, 8], 3, partitioned=(1, 2))
        assert a != Partition([6, 10, 7], 3, partitioned=(1,))

    def test_shard_layer_sizes(self):
        part = Partition([6, 10, 7], 2, partitioned=(1, 2))
        assert part.shard_layer_sizes(0) == [6, 5, 4]
        assert part.shard_layer_sizes(1) == [6, 5, 3]
