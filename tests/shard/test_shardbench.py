"""shard-bench report plumbing: schema, gates, baseline regression fence."""

import copy

import pytest

from repro.bench.shardbench import (
    SCHEMA,
    compare_to_baseline,
    enforce_gates,
    load_report,
    run_parity_rows,
    run_pretrain_drill,
    validate_report,
    write_report,
)
from repro.errors import ConfigurationError


def _report():
    return {
        "schema": SCHEMA,
        "seed": 0,
        "quick": True,
        "rows": [
            {
                "kind": "parity", "family": "sae", "n_shards": 2,
                "forward_max_abs": 0.0, "step_max_abs": 0.0,
                "roundtrip_max_abs": 0.0,
            },
            {
                "kind": "pretrain", "family": "sae", "n_shards": 2,
                "exchange_every": 2, "dropout": 0.25, "snapshots": 4,
                "exchanges_expected": 6, "resume_max_abs": 0.0,
            },
            {
                "kind": "serving", "n_shards": 2, "offered": 100,
                "completed": 100, "failed": 0, "shed": 0, "degraded": 0,
                "p99_single_ms": 1.0, "p99_sharded_ms": 1.1,
                "p99_ratio": 1.1, "throughput_rps": 5000.0,
            },
            {
                "kind": "shard_kill", "n_shards": 2, "victim_shard": 1,
                "offered": 100, "completed": 100, "failed": 0, "shed": 0,
                "deaths": 1, "degraded_requests": 40, "degraded_legs": 40,
            },
        ],
    }


class TestValidate:
    def test_complete_report_passes(self):
        validate_report(_report())

    def test_wrong_schema_rejected(self):
        bad = dict(_report(), schema="cluster-bench/v1")
        with pytest.raises(ConfigurationError, match="schema"):
            validate_report(bad)

    def test_unknown_kind_rejected(self):
        bad = _report()
        bad["rows"].append({"kind": "mystery"})
        with pytest.raises(ConfigurationError, match="unknown kind"):
            validate_report(bad)

    def test_missing_key_rejected(self):
        bad = _report()
        del bad["rows"][0]["step_max_abs"]
        with pytest.raises(ConfigurationError, match="missing keys"):
            validate_report(bad)

    def test_missing_drill_kind_rejected(self):
        bad = _report()
        bad["rows"] = [r for r in bad["rows"] if r["kind"] != "shard_kill"]
        with pytest.raises(ConfigurationError, match="missing drill kinds"):
            validate_report(bad)

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="rows"):
            validate_report({"schema": SCHEMA, "rows": []})


class TestGates:
    def test_clean_report_passes(self):
        assert enforce_gates(_report()) == []

    def test_parity_breach_fails(self):
        bad = _report()
        bad["rows"][0]["step_max_abs"] = 1e-6
        failures = enforce_gates(bad)
        assert any("step_max_abs" in f for f in failures)

    def test_resume_divergence_fails(self):
        bad = _report()
        bad["rows"][1]["resume_max_abs"] = 1e-3
        assert any("diverged" in f for f in enforce_gates(bad))

    def test_serving_failure_and_p99_gate(self):
        bad = _report()
        bad["rows"][2]["failed"] = 3
        bad["rows"][2]["p99_ratio"] = 2.0
        failures = enforce_gates(bad)
        assert any("request(s) failed" in f for f in failures)
        assert any("p99" in f for f in failures)

    def test_shard_kill_contract(self):
        bad = _report()
        bad["rows"][3]["degraded_requests"] = 0
        assert any("degraded-mode" in f for f in enforce_gates(bad))


class TestBaseline:
    def test_within_fence_passes(self):
        current = _report()
        base = copy.deepcopy(current)
        current["rows"][2]["p99_ratio"] = base["rows"][2]["p99_ratio"] * 1.1
        current["rows"][2]["throughput_rps"] = (
            base["rows"][2]["throughput_rps"] * 0.9
        )
        assert compare_to_baseline(current, base, max_regression=0.25) == []

    def test_p99_regression_caught(self):
        current = _report()
        base = copy.deepcopy(current)
        current["rows"][2]["p99_ratio"] = 2.0
        failures = compare_to_baseline(current, base, max_regression=0.25)
        assert any("p99" in f for f in failures)

    def test_throughput_regression_caught(self):
        current = _report()
        base = copy.deepcopy(current)
        current["rows"][2]["throughput_rps"] = 1000.0
        failures = compare_to_baseline(current, base, max_regression=0.25)
        assert any("throughput" in f for f in failures)


class TestRoundTrip:
    def test_write_then_load_then_validate(self, tmp_path):
        path = tmp_path / "report.json"
        write_report(_report(), path)
        validate_report(load_report(path))

    def test_committed_artifact_is_valid_and_gated(self):
        from pathlib import Path

        artifact = Path(__file__).resolve().parents[2] / "BENCH_shard.json"
        report = load_report(artifact)
        validate_report(report)
        assert enforce_gates(report) == []


class TestLiveRows:
    def test_quick_parity_rows_are_exact(self):
        rows = run_parity_rows(shard_counts=(2,), seed=0, quick=True)
        assert {r["family"] for r in rows} == {"sae", "dbn", "mlp"}
        for row in rows:
            assert row["forward_max_abs"] == 0.0
            assert row["step_max_abs"] == 0.0
            assert row["roundtrip_max_abs"] == 0.0

    def test_quick_pretrain_drill_resumes_exactly(self):
        row = run_pretrain_drill(quick=True)
        assert row["resume_max_abs"] == 0.0
        assert row["snapshots"] >= 2
