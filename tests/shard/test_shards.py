"""ModelShard: partition/merge round-trip and parity vs the masked oracle.

The load-bearing invariant of the whole subsystem: shard ``k`` of a
model is *exactly* the full model evaluated under shard ``k``'s
structural dropout masks, for the forward pass and for one full
training update (diagonal blocks trained, cross blocks decay-only).
Everything is compared bit-for-bit (zeroed terms contribute exact ±0.0
to the GEMM sums), so assertions use ``== 0.0``, not tolerances.
"""

import numpy as np
import pytest

from repro.bench.shardbench import (
    _max_abs,
    _mlp_forward_parity,
    _mlp_step_parity,
    _model_params,
    _rbm_step_parity,
    _sae_step_parity,
    _stack_forward_parity,
)
from repro.errors import ConfigurationError
from repro.nn.mlp import DeepNetwork
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.shard.shards import merge, partition

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(0).random((32, 12))


@pytest.fixture(scope="module")
def sae(x):
    model = StackedAutoencoder(
        12,
        [LayerSpec(10, epochs=1, batch_size=16), LayerSpec(8, epochs=1, batch_size=16)],
        seed=0,
    )
    model.pretrain(x)
    return model


@pytest.fixture(scope="module")
def dbn(x):
    model = DeepBeliefNetwork(
        12,
        [LayerSpec(10, epochs=1, batch_size=16), LayerSpec(8, epochs=1, batch_size=16)],
        cd_k=1,
        seed=0,
    )
    model.pretrain((x > 0.5).astype(np.float64))
    return model


@pytest.fixture(scope="module")
def mlp():
    return DeepNetwork([12, 10, 8, 5], seed=0)


class TestRoundTrip:
    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_sae_partition_merge_is_identity(self, sae, n):
        rebuilt = merge(partition(sae, n))
        for a, b in zip(_model_params(sae), _model_params(rebuilt)):
            assert _max_abs(a, b) == 0.0

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_dbn_partition_merge_is_identity(self, dbn, n):
        rebuilt = merge(partition(dbn, n))
        for a, b in zip(_model_params(dbn), _model_params(rebuilt)):
            assert _max_abs(a, b) == 0.0

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_mlp_partition_merge_is_identity(self, mlp, n):
        rebuilt = merge(partition(mlp, n))
        for a, b in zip(_model_params(mlp), _model_params(rebuilt)):
            assert _max_abs(a, b) == 0.0

    def test_model_partition_method_delegates(self, sae, mlp):
        assert len(sae.partition(2)) == 2
        assert len(mlp.partition(2)) == 2

    def test_untrained_stack_is_rejected(self):
        empty = StackedAutoencoder(12, [LayerSpec(8, epochs=1, batch_size=16)], seed=0)
        with pytest.raises(ConfigurationError, match="sharded_pretrain"):
            partition(empty, 2)

    def test_incomplete_shard_set_rejected(self, sae):
        shards = partition(sae, 4)
        with pytest.raises(ConfigurationError):
            merge(shards[:-1])


class TestForwardParity:
    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_sae_shard_equals_masked_full_model(self, sae, x, n):
        assert _stack_forward_parity(sae, n, x) == 0.0

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_dbn_shard_equals_masked_full_model(self, dbn, x, n):
        assert _stack_forward_parity(dbn, n, (x > 0.5).astype(np.float64)) == 0.0

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_mlp_shard_equals_masked_full_model(self, mlp, x, n):
        assert _mlp_forward_parity(mlp, n, x) == 0.0

    def test_sharded_answer_differs_from_unmasked_model(self, sae, x):
        """The decoupled ensemble is an approximation of — not equal to —
        the unmasked full model; parity only holds against the masked
        oracle.  Guards against accidentally comparing the wrong thing."""
        shards = partition(sae, 2)
        from repro.shard.servables import gather_outputs

        gathered = gather_outputs(shards, [s.partial_output(x) for s in shards])
        assert _max_abs(gathered, sae.transform(x)) > 1e-6


class TestStepParity:
    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_sae_one_update_matches_masked_oracle(self, n):
        assert _sae_step_parity(n, seed=1) == 0.0

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_rbm_one_cd_update_matches_masked_oracle(self, n):
        assert _rbm_step_parity(n, seed=1) == 0.0

    @pytest.mark.parametrize("n", SHARD_COUNTS)
    def test_mlp_one_update_matches_masked_oracle(self, mlp, n):
        assert _mlp_step_parity(mlp, n, seed=1) == 0.0


class TestStructuralMasks:
    def test_stack_masks_cover_every_layer(self, sae):
        shard = partition(sae, 2)[0]
        masks = shard.structural_masks()
        assert len(masks) == len(sae.layer_specs)
        for mask, spec in zip(masks, sae.layer_specs):
            assert mask.shape == (spec.n_hidden,)
            assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_mlp_masks_cover_hidden_layers(self, mlp):
        shard = partition(mlp, 2)[1]
        masks = shard.structural_masks()
        assert len(masks) == len(mlp.layer_sizes) - 2
