"""Sharded checkpoints: round-trip, shard-count tagging, cross-rejection."""

import numpy as np
import pytest

from repro.nn.stacked import LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointStore,
    capture_rng,
    require_shard_count,
)
from repro.shard.checkpoint import (
    SHARD_CKPT_KIND,
    load_shard_state,
    read_shard_checkpoint,
    save_shard_checkpoint,
    shard_state_arrays,
)
from repro.shard.partition import Partition
from repro.shard.shards import _stack_meta, partition
from repro.utils.rng import spawn_generators


@pytest.fixture()
def trained():
    x = np.random.default_rng(0).random((32, 12))
    model = StackedAutoencoder(
        12,
        [LayerSpec(10, epochs=1, batch_size=16), LayerSpec(8, epochs=1, batch_size=16)],
        seed=0,
    )
    model.pretrain(x)
    return model


def _save(store, shards, **overrides):
    rngs = spawn_generators(0, 4)
    kwargs = dict(
        block_index=1,
        epochs_done=1,
        rng_states=[capture_rng(g) for g in rngs],
        mask_states=[capture_rng(g) for g in rngs[: len(shards)]],
        current_errors=[0.5],
        layer_errors=[[0.9, 0.5]],
    )
    kwargs.update(overrides)
    return save_shard_checkpoint(store, shards, **kwargs)


class TestStateArrays:
    def test_round_trip_restores_every_parameter(self, trained):
        shards = partition(trained, 2)
        arrays = {k: v.copy() for k, v in shard_state_arrays(shards).items()}
        for shard in shards:
            shard.model.blocks[0].w1 += 1.0
            shard.cross[0].values += 1.0
        load_shard_state(shards, arrays)
        again = shard_state_arrays(shards)
        for key, value in arrays.items():
            assert np.array_equal(value, again[key]), key

    def test_shape_mismatch_rejected(self, trained):
        shards = partition(trained, 2)
        arrays = dict(shard_state_arrays(shards))
        arrays["s0_w1_0"] = np.zeros((3, 3))
        with pytest.raises(CheckpointError, match="shape"):
            load_shard_state(shards, arrays)

    def test_missing_key_names_the_layout(self, trained):
        shards = partition(trained, 2)
        arrays = dict(shard_state_arrays(shards))
        del arrays["s1_b2_1"]
        with pytest.raises(CheckpointError, match="different shard layout"):
            load_shard_state(shards, arrays)


class TestHeaderValidation:
    def test_save_read_round_trip(self, trained, tmp_path):
        shards = partition(trained, 2)
        store = CheckpointStore(tmp_path)
        _save(store, shards)
        header, arrays = read_shard_checkpoint(
            store,
            family="sae",
            partition=shards[0].partition,
            model_meta=shards[0].model_meta,
        )
        assert header["kind"] == SHARD_CKPT_KIND
        assert header["n_shards"] == 2
        assert header["block_index"] == 1
        assert "s0_w1_0" in arrays

    def test_shard_count_mismatch_rejected(self, trained, tmp_path):
        """The tentpole contract: a 2-shard snapshot must refuse to feed a
        4-shard resume — repartitioning moves bytes between shards."""
        shards = partition(trained, 2)
        store = CheckpointStore(tmp_path)
        _save(store, shards)
        wrong = Partition(trained.layer_sizes, 4,
                          partitioned=range(1, len(trained.layer_sizes)))
        with pytest.raises(CheckpointError, match="shard"):
            read_shard_checkpoint(
                store, family="sae", partition=wrong,
                model_meta=shards[0].model_meta,
            )

    def test_family_mismatch_rejected(self, trained, tmp_path):
        shards = partition(trained, 2)
        store = CheckpointStore(tmp_path)
        _save(store, shards)
        with pytest.raises(CheckpointError, match="model"):
            read_shard_checkpoint(
                store, family="dbn", partition=shards[0].partition,
                model_meta=shards[0].model_meta,
            )

    def test_partition_layout_mismatch_rejected(self, trained, tmp_path):
        shards = partition(trained, 2)
        store = CheckpointStore(tmp_path)
        _save(store, shards)
        skewed = Partition(trained.layer_sizes, 2, partitioned=(1,))
        with pytest.raises(CheckpointError, match="partition"):
            read_shard_checkpoint(
                store, family="sae", partition=skewed,
                model_meta=shards[0].model_meta,
            )

    def test_model_meta_mismatch_rejected(self, trained, tmp_path):
        shards = partition(trained, 2)
        store = CheckpointStore(tmp_path)
        _save(store, shards)
        other = dict(shards[0].model_meta, n_visible=99)
        with pytest.raises(CheckpointError, match="hyper-parameters"):
            read_shard_checkpoint(
                store, family="sae", partition=shards[0].partition,
                model_meta=other,
            )

    def test_foreign_kind_rejected(self, trained, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"kind": "pretrain", "n_shards": 2}, {"x": np.zeros(3)})
        with pytest.raises(CheckpointError, match="kind"):
            read_shard_checkpoint(
                store, family="sae",
                partition=partition(trained, 2)[0].partition,
                model_meta=_stack_meta(trained, "sae"),
            )


class TestRequireShardCount:
    def test_accepts_matching_count(self):
        require_shard_count({"n_shards": 4}, 4)

    def test_rejects_mismatch_and_absence(self):
        with pytest.raises(CheckpointError):
            require_shard_count({"n_shards": 2}, 4)
        with pytest.raises(CheckpointError):
            require_shard_count({}, 4)
