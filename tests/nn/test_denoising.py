"""Tests for repro.nn.denoising — the denoising autoencoder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.denoising import (
    DenoisingAutoencoder,
    corrupt_gaussian,
    corrupt_masking,
    corrupt_salt_pepper,
)
from repro.nn.gradcheck import check_gradients


class TestCorruptions:
    def test_masking_zeroes_expected_fraction(self, rng):
        x = np.ones((100, 50))
        out = corrupt_masking(x, 0.3, rng)
        assert np.mean(out == 0) == pytest.approx(0.3, abs=0.03)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_masking_zero_level_is_identity(self, rng):
        x = rng.random((5, 5))
        np.testing.assert_array_equal(corrupt_masking(x, 0.0, rng), x)

    def test_salt_pepper_hits_expected_fraction(self, rng):
        x = np.full((100, 50), 0.5)
        out = corrupt_salt_pepper(x, 0.4, rng)
        changed = np.mean(out != 0.5)
        assert changed == pytest.approx(0.4, abs=0.04)
        assert set(np.unique(out)) <= {0.0, 0.5, 1.0}

    def test_gaussian_noise_scale(self, rng):
        x = np.zeros((200, 50))
        out = corrupt_gaussian(x, 0.2, rng)
        assert out.std() == pytest.approx(0.2, abs=0.02)


class TestConstruction:
    def test_rejects_unknown_noise(self):
        with pytest.raises(ConfigurationError):
            DenoisingAutoencoder(10, 5, noise="dropout")

    def test_rejects_bad_corruption_level(self):
        with pytest.raises(ConfigurationError):
            DenoisingAutoencoder(10, 5, corruption=1.5)
        with pytest.raises(ConfigurationError):
            DenoisingAutoencoder(10, 5, corruption=-0.1, noise="gaussian")

    def test_inherits_autoencoder_interface(self, digits_25):
        dae = DenoisingAutoencoder(25, 9, seed=0)
        assert dae.encode(digits_25).shape == (digits_25.shape[0], 9)


class TestGradients:
    def test_zero_corruption_matches_plain_gradients(self, digits_25):
        """With no noise, the denoising gradient IS the plain gradient."""
        dae = DenoisingAutoencoder(25, 9, corruption=0.0, seed=0)
        loss_d, g_d = dae.denoising_gradients(digits_25, rng=0)
        loss_p, g_p = dae.gradients(digits_25)
        assert loss_d == pytest.approx(loss_p)
        np.testing.assert_allclose(g_d.w1, g_p.w1)
        np.testing.assert_allclose(g_d.w2, g_p.w2)

    def test_gradient_correct_for_fixed_corruption(self, rng):
        """Check the backprop against finite differences with the
        corruption pattern held fixed (same seed per evaluation)."""
        dae = DenoisingAutoencoder(7, 4, corruption=0.3, seed=1)
        x = rng.random((6, 7))

        def loss_at(theta):
            saved = dae.get_flat_parameters()
            dae.set_flat_parameters(theta)
            # Fixed corruption stream: rng=99 every call.
            corrupted = dae.corrupt(x, rng=99)
            hidden = dae.hidden_activation.forward(corrupted @ dae.w1.T + dae.b1)
            recon = dae.output_activation.forward(hidden @ dae.w2.T + dae.b2)
            value = dae.cost.total(recon, x, dae.w1, dae.w2, hidden.mean(axis=0))
            dae.set_flat_parameters(saved)
            return value

        # Analytic grads with the same fixed pattern.
        corrupted = dae.corrupt(x, rng=99)
        m = x.shape[0]
        hidden = dae.hidden_activation.forward(corrupted @ dae.w1.T + dae.b1)
        recon = dae.output_activation.forward(hidden @ dae.w2.T + dae.b2)
        delta3 = (recon - x) * dae.output_activation.grad_from_output(recon)
        delta2 = (delta3 @ dae.w2 + dae.cost.sparsity_delta(hidden.mean(axis=0))) * (
            dae.hidden_activation.grad_from_output(hidden)
        )
        flat = np.concatenate(
            [
                (delta2.T @ corrupted / m + dae.cost.weight_decay * dae.w1).ravel(),
                delta2.mean(axis=0),
                (delta3.T @ hidden / m + dae.cost.weight_decay * dae.w2).ravel(),
                delta3.mean(axis=0),
            ]
        )
        check_gradients(loss_at, flat, dae.get_flat_parameters(), tolerance=1e-6)


class TestDenoisingTraining:
    def test_training_reduces_clean_error(self, digits_25):
        dae = DenoisingAutoencoder(25, 16, corruption=0.25, seed=0)
        errors = dae.fit_denoising(
            digits_25, epochs=60, batch_size=16, learning_rate=0.8, seed=0
        )
        assert errors[-1] < 0.6 * errors[0]

    def test_trained_model_actually_denoises(self, digits_25):
        """After training, reconstructions of corrupted digits must be
        closer to the clean originals than the corrupted inputs are."""
        dae = DenoisingAutoencoder(25, 20, corruption=0.25, seed=1)
        dae.fit_denoising(digits_25, epochs=60, batch_size=16, learning_rate=0.8, seed=1)
        noisy = dae.corrupt(digits_25, rng=7)
        denoised = dae.denoise(noisy)
        err_noisy = float(np.mean((noisy - digits_25) ** 2))
        err_denoised = float(np.mean((denoised - digits_25) ** 2))
        assert err_denoised < err_noisy

    def test_gaussian_variant_trains(self, digits_25):
        dae = DenoisingAutoencoder(25, 12, corruption=0.2, noise="gaussian", seed=0)
        errors = dae.fit_denoising(digits_25, epochs=10, batch_size=16, seed=0)
        assert errors[-1] < errors[0]
