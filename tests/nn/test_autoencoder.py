"""Tests for repro.nn.autoencoder — the sparse autoencoder building block."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost


class TestConstruction:
    def test_shapes(self):
        ae = SparseAutoencoder(20, 8, seed=0)
        assert ae.w1.shape == (8, 20)
        assert ae.b1.shape == (8,)
        assert ae.w2.shape == (20, 8)
        assert ae.b2.shape == (20,)

    def test_seed_reproducible(self):
        a = SparseAutoencoder(10, 4, seed=1)
        b = SparseAutoencoder(10, 4, seed=1)
        np.testing.assert_array_equal(a.w1, b.w1)
        np.testing.assert_array_equal(a.w2, b.w2)

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            SparseAutoencoder(0, 5)
        with pytest.raises(ConfigurationError):
            SparseAutoencoder(5, 0)

    def test_sparsity_requires_sigmoid_hidden(self):
        cost = SparseAutoencoderCost(sparsity_weight=1.0)
        with pytest.raises(ConfigurationError, match="sigmoid"):
            SparseAutoencoder(5, 3, cost=cost, hidden_activation="tanh")

    def test_n_parameters(self):
        ae = SparseAutoencoder(6, 4, seed=0)
        assert ae.n_parameters == 6 * 4 * 2 + 6 + 4


class TestForward:
    def test_encode_shape_and_range(self, small_ae, digits_25):
        y = small_ae.encode(digits_25)
        assert y.shape == (digits_25.shape[0], 9)
        assert (y > 0).all() and (y < 1).all()

    def test_decode_shape(self, small_ae, digits_25):
        z = small_ae.decode(small_ae.encode(digits_25))
        assert z.shape == digits_25.shape

    def test_reconstruct_equals_encode_decode(self, small_ae, digits_25):
        np.testing.assert_array_equal(
            small_ae.reconstruct(digits_25),
            small_ae.decode(small_ae.encode(digits_25)),
        )

    def test_encode_rejects_wrong_width(self, small_ae):
        with pytest.raises(ShapeError):
            small_ae.encode(np.ones((3, 7)))

    def test_linear_decoder_variant(self):
        ae = SparseAutoencoder(6, 3, output_activation="identity", seed=0)
        x = np.random.default_rng(0).normal(size=(10, 6))
        z = ae.reconstruct(x)
        # A linear decoder can leave [0,1]; a sigmoid one cannot.
        assert z.shape == x.shape


class TestGradients:
    def test_loss_matches_gradients_loss(self, small_ae, digits_25):
        loss_direct = small_ae.loss(digits_25)
        loss_from_grad, _ = small_ae.gradients(digits_25)
        assert loss_direct == pytest.approx(loss_from_grad)

    def test_gradient_shapes(self, small_ae, digits_25):
        _, g = small_ae.gradients(digits_25)
        assert g.w1.shape == small_ae.w1.shape
        assert g.b1.shape == small_ae.b1.shape
        assert g.w2.shape == small_ae.w2.shape
        assert g.b2.shape == small_ae.b2.shape

    def test_apply_update_descends(self, small_ae, digits_25):
        loss0, g = small_ae.gradients(digits_25)
        small_ae.apply_update(g, learning_rate=0.05)
        loss1 = small_ae.loss(digits_25)
        assert loss1 < loss0

    def test_gradients_scaled(self, small_ae, digits_25):
        _, g = small_ae.gradients(digits_25)
        h = g.scaled(2.0)
        np.testing.assert_allclose(h.w1, 2 * g.w1)
        assert h.norm() == pytest.approx(2 * g.norm())

    def test_training_reduces_reconstruction_error(self, digits_25):
        ae = SparseAutoencoder(25, 12, seed=0)
        err0 = ae.reconstruction_error(digits_25)
        for _ in range(150):
            _, g = ae.gradients(digits_25)
            ae.apply_update(g, 0.5)
        assert ae.reconstruction_error(digits_25) < 0.5 * err0

    def test_sparsity_drives_mean_activation_down(self, digits_25):
        rho = 0.05
        sparse_cost = SparseAutoencoderCost(
            weight_decay=1e-4, sparsity_target=rho, sparsity_weight=2.0
        )
        dense = SparseAutoencoder(25, 12, seed=0)
        sparse = SparseAutoencoder(25, 12, cost=sparse_cost, seed=0)
        for _ in range(300):
            for ae in (dense, sparse):
                _, g = ae.gradients(digits_25)
                ae.apply_update(g, 0.5)
        rho_dense = dense.encode(digits_25).mean()
        rho_sparse = sparse.encode(digits_25).mean()
        assert rho_sparse < rho_dense
        assert abs(rho_sparse - rho) < abs(rho_dense - rho)


class TestFlatParameterInterface:
    def test_round_trip(self, small_ae):
        theta = small_ae.get_flat_parameters()
        clone = small_ae.copy()
        clone.set_flat_parameters(theta)
        np.testing.assert_array_equal(clone.w1, small_ae.w1)
        np.testing.assert_array_equal(clone.b2, small_ae.b2)

    def test_wrong_length_raises(self, small_ae):
        with pytest.raises(ConfigurationError):
            small_ae.set_flat_parameters(np.zeros(3))

    def test_flat_loss_and_grad_restores_params(self, small_ae, digits_25):
        theta0 = small_ae.get_flat_parameters()
        perturbed = theta0 + 0.1
        small_ae.flat_loss_and_grad(perturbed, digits_25)
        np.testing.assert_array_equal(small_ae.get_flat_parameters(), theta0)

    def test_flat_grad_matches_structured(self, small_ae, digits_25):
        theta = small_ae.get_flat_parameters()
        loss_flat, grad_flat = small_ae.flat_loss_and_grad(theta, digits_25)
        loss, g = small_ae.gradients(digits_25)
        assert loss_flat == pytest.approx(loss)
        expected = np.concatenate(
            [g.w1.ravel(), g.b1.ravel(), g.w2.ravel(), g.b2.ravel()]
        )
        np.testing.assert_allclose(grad_flat, expected)

    def test_copy_is_independent(self, small_ae):
        clone = small_ae.copy()
        clone.w1 += 1.0
        assert not np.allclose(clone.w1, small_ae.w1)
