"""Tests for repro.nn.gaussian_rbm — the real-valued-visible RBM."""

import numpy as np
import pytest

from repro.nn.gaussian_rbm import GaussianBernoulliRBM, standardize


@pytest.fixture
def patches(rng):
    """Correlated real-valued data with non-trivial structure."""
    latent = rng.normal(size=(80, 3))
    mix = rng.normal(size=(3, 10))
    return latent @ mix + 0.1 * rng.normal(size=(80, 10))


class TestStandardize:
    def test_zero_mean_unit_std(self, patches):
        z, mean, std = standardize(patches)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_feature_handled(self):
        x = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        z, mean, std = standardize(x)
        assert np.isfinite(z).all()
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_invertible(self, patches):
        z, mean, std = standardize(patches)
        np.testing.assert_allclose(z * std + mean, patches, atol=1e-10)


class TestConditionals:
    def test_hidden_matches_binary_form(self, patches):
        rbm = GaussianBernoulliRBM(10, 6, seed=0)
        z, _, _ = standardize(patches)
        from repro.utils.mathx import sigmoid

        np.testing.assert_allclose(
            rbm.hidden_probabilities(z), sigmoid(z @ rbm.w.T + rbm.c)
        )

    def test_visible_mean_is_linear(self, rng):
        rbm = GaussianBernoulliRBM(10, 6, seed=0)
        h = (rng.random((5, 6)) < 0.5).astype(float)
        np.testing.assert_allclose(rbm.visible_mean(h), h @ rbm.w + rbm.b)

    def test_visible_samples_scatter_around_mean(self, rng):
        rbm = GaussianBernoulliRBM(4, 3, seed=0)
        h = np.tile((rng.random(3) < 0.5).astype(float), (5000, 1))
        mean, samples = rbm.sample_visible(h, rng=1)
        np.testing.assert_allclose(samples.mean(axis=0), mean[0], atol=0.05)
        np.testing.assert_allclose(samples.std(axis=0), 1.0, atol=0.05)


class TestFreeEnergy:
    def test_quadratic_in_visibles_when_unconnected(self):
        """With W=0, c=0: F(v) = ½‖v−b‖² − h·log 2."""
        rbm = GaussianBernoulliRBM(4, 3, seed=0)
        rbm.w[:] = 0.0
        rbm.b[:] = 1.0
        v = np.array([[1.0, 1.0, 1.0, 1.0], [2.0, 1.0, 1.0, 1.0]])
        f = rbm.free_energy(v)
        assert f[0] == pytest.approx(-3 * np.log(2.0))
        assert f[1] == pytest.approx(0.5 - 3 * np.log(2.0))

    def test_training_grows_gap_to_noise(self, patches, rng):
        z, _, _ = standardize(patches)
        rbm = GaussianBernoulliRBM(10, 8, seed=1)
        noise = rng.normal(size=z.shape)
        gap0 = rbm.free_energy(noise).mean() - rbm.free_energy(z).mean()
        gen = np.random.default_rng(0)
        for _ in range(300):
            stats = rbm.contrastive_divergence(z, rng=gen)
            rbm.apply_update(stats, 0.01)
        gap1 = rbm.free_energy(noise).mean() - rbm.free_energy(z).mean()
        assert gap1 > gap0


class TestCD:
    def test_training_reduces_reconstruction_error(self, patches):
        z, _, _ = standardize(patches)
        rbm = GaussianBernoulliRBM(10, 8, seed=2)
        gen = np.random.default_rng(3)
        first = rbm.contrastive_divergence(z, rng=gen).reconstruction_error
        for _ in range(800):
            stats = rbm.contrastive_divergence(z, rng=gen)
            rbm.apply_update(stats, 0.02)
        last = rbm.contrastive_divergence(z, rng=gen).reconstruction_error
        assert last < 0.5 * first

    def test_reconstruction_captures_correlations(self, patches):
        """After training, reconstructions of held-out rows should be much
        closer than the model's initial reconstructions."""
        z, _, _ = standardize(patches)
        train, test = z[:60], z[60:]
        rbm = GaussianBernoulliRBM(10, 8, seed=4)
        err0 = float(np.mean((rbm.reconstruct(test) - test) ** 2))
        gen = np.random.default_rng(5)
        for _ in range(400):
            stats = rbm.contrastive_divergence(train, rng=gen)
            rbm.apply_update(stats, 0.01)
        err1 = float(np.mean((rbm.reconstruct(test) - test) ** 2))
        assert err1 < 0.7 * err0

    def test_cd_k_runs(self, patches):
        z, _, _ = standardize(patches)
        rbm = GaussianBernoulliRBM(10, 4, seed=0)
        stats = rbm.contrastive_divergence(z, k=3, rng=0, sample_visible=True)
        assert np.isfinite(stats.grad_w).all()

    def test_transform_shape(self, patches):
        z, _, _ = standardize(patches)
        rbm = GaussianBernoulliRBM(10, 5, seed=0)
        assert rbm.transform(z).shape == (80, 5)
