"""Tests for repro.nn.gradcheck and the SAE/RBM analytic gradients.

The back-propagation correctness tests here are the core functional
verification of the reproduction (a wrong gradient still 'trains', just
badly — only finite differences catch it).
"""

import numpy as np
import pytest

from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.gradcheck import check_gradients, numerical_gradient, relative_error


class TestNumericalGradient:
    def test_quadratic(self):
        f = lambda t: float(np.sum(t**2))
        theta = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(numerical_gradient(f, theta), 2 * theta, atol=1e-7)

    def test_subset_indices(self):
        f = lambda t: float(np.sum(t**3))
        theta = np.array([1.0, 2.0, 3.0])
        grad = numerical_gradient(f, theta, indices=np.array([1]))
        assert grad[0] == 0.0 and grad[2] == 0.0
        assert grad[1] == pytest.approx(12.0, rel=1e-6)

    def test_does_not_mutate_theta(self):
        theta = np.array([1.0, 2.0])
        numerical_gradient(lambda t: float(t.sum()), theta)
        np.testing.assert_array_equal(theta, [1.0, 2.0])


class TestRelativeError:
    def test_identical_is_zero(self):
        a = np.array([1.0, 2.0])
        assert relative_error(a, a) == 0.0

    def test_scale_invariant(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert relative_error(a, b) == pytest.approx(relative_error(10 * a, 10 * b))

    def test_zero_vectors(self):
        assert relative_error(np.zeros(3), np.zeros(3)) == 0.0


class TestCheckGradients:
    def test_passes_correct_gradient(self):
        theta = np.array([0.5, -0.5])
        f = lambda t: float(np.sum(t**2))
        err = check_gradients(f, 2 * theta, theta)
        assert err < 1e-8

    def test_fails_wrong_gradient(self):
        theta = np.array([0.5, -0.5])
        f = lambda t: float(np.sum(t**2))
        with pytest.raises(AssertionError, match="gradient check failed"):
            check_gradients(f, 3 * theta, theta)

    def test_sampled_subset(self):
        theta = np.linspace(-1, 1, 50)
        f = lambda t: float(np.sum(np.sin(t)))
        err = check_gradients(f, np.cos(theta), theta, n_checks=10, rng=0)
        assert err < 1e-8

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            check_gradients(lambda t: 0.0, np.zeros(3), np.zeros(5))


@pytest.mark.parametrize(
    "beta,decay,output_activation",
    [
        (0.0, 0.0, "sigmoid"),     # pure reconstruction
        (0.0, 1e-2, "sigmoid"),    # + weight decay
        (0.7, 1e-3, "sigmoid"),    # + sparsity (full Eq. 5)
        (0.0, 1e-3, "identity"),   # linear decoder variant
    ],
)
class TestAutoencoderBackprop:
    """The paper's Eq. 5 objective, verified against central differences."""

    def test_gradient_correct(self, beta, decay, output_activation):
        rng = np.random.default_rng(42)
        cost = SparseAutoencoderCost(
            weight_decay=decay, sparsity_target=0.1, sparsity_weight=beta
        )
        ae = SparseAutoencoder(
            7, 5, cost=cost, output_activation=output_activation, seed=rng
        )
        x = rng.random((12, 7))
        theta = ae.get_flat_parameters()
        _, grad = ae.flat_loss_and_grad(theta, x)
        err = check_gradients(
            lambda t: ae.flat_loss_and_grad(t, x)[0],
            grad,
            theta,
            epsilon=1e-5,
            tolerance=1e-6,
        )
        assert err < 1e-6


class TestAutoencoderBackpropEdgeCases:
    def test_single_example_batch(self):
        ae = SparseAutoencoder(5, 3, seed=0)
        x = np.random.default_rng(1).random((1, 5))
        theta = ae.get_flat_parameters()
        _, grad = ae.flat_loss_and_grad(theta, x)
        check_gradients(lambda t: ae.flat_loss_and_grad(t, x)[0], grad, theta)

    def test_overcomplete_hidden_layer(self):
        # n_hidden > n_visible: "over-complete feature representations".
        ae = SparseAutoencoder(4, 9, seed=0)
        x = np.random.default_rng(2).random((8, 4))
        theta = ae.get_flat_parameters()
        _, grad = ae.flat_loss_and_grad(theta, x)
        check_gradients(lambda t: ae.flat_loss_and_grad(t, x)[0], grad, theta)

    def test_far_from_init(self):
        # Gradients must stay correct for saturated units too.
        ae = SparseAutoencoder(5, 4, seed=0)
        x = np.random.default_rng(3).random((6, 5))
        theta = ae.get_flat_parameters() * 8.0  # push toward saturation
        _, grad = ae.flat_loss_and_grad(theta, x)
        check_gradients(
            lambda t: ae.flat_loss_and_grad(t, x)[0], grad, theta, tolerance=1e-5
        )
