"""Tests for repro.nn.stacked — greedy layer-wise pre-training (Fig. 1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.rbm import RBM
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder


class TestLayerSpec:
    def test_valid(self):
        spec = LayerSpec(n_hidden=8, learning_rate=0.3, epochs=2, batch_size=16)
        assert spec.n_hidden == 8

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            LayerSpec(n_hidden=0)
        with pytest.raises(ConfigurationError):
            LayerSpec(n_hidden=4, learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            LayerSpec(n_hidden=4, epochs=0)


class TestStackedAutoencoder:
    def _specs(self):
        return [
            LayerSpec(16, learning_rate=0.5, epochs=4, batch_size=16),
            LayerSpec(8, learning_rate=0.5, epochs=4, batch_size=16),
        ]

    def test_requires_layers(self):
        with pytest.raises(ConfigurationError):
            StackedAutoencoder(25, [])

    def test_layer_sizes(self):
        stack = StackedAutoencoder(25, self._specs(), seed=0)
        assert stack.layer_sizes == [25, 16, 8]

    def test_pretrain_produces_blocks(self, digits_25):
        stack = StackedAutoencoder(25, self._specs(), seed=0).pretrain(digits_25)
        assert stack.is_trained
        assert len(stack.blocks) == 2
        assert len(stack.layer_errors) == 2

    def test_each_layer_error_improves(self, digits_25):
        stack = StackedAutoencoder(25, self._specs(), seed=0).pretrain(digits_25)
        for errors in stack.layer_errors:
            assert errors[-1] < errors[0]

    def test_transform_shapes(self, digits_25):
        stack = StackedAutoencoder(25, self._specs(), seed=0).pretrain(digits_25)
        assert stack.transform(digits_25).shape == (digits_25.shape[0], 8)
        assert stack.transform(digits_25, n_layers=1).shape == (digits_25.shape[0], 16)
        assert stack.transform(digits_25, n_layers=0).shape == digits_25.shape

    def test_transform_matches_manual_cascade(self, digits_25):
        """Greedy stacking = feeding each block the previous block's output."""
        stack = StackedAutoencoder(25, self._specs(), seed=0).pretrain(digits_25)
        manual = stack.blocks[1].encode(stack.blocks[0].encode(digits_25))
        np.testing.assert_array_equal(stack.transform(digits_25), manual)

    def test_transform_before_pretrain_raises(self, digits_25):
        with pytest.raises(ConfigurationError):
            StackedAutoencoder(25, self._specs()).transform(digits_25)

    def test_bad_n_layers_raises(self, digits_25):
        stack = StackedAutoencoder(25, self._specs(), seed=0).pretrain(digits_25)
        with pytest.raises(ConfigurationError):
            stack.transform(digits_25, n_layers=5)

    def test_reconstruct_shape(self, digits_25):
        stack = StackedAutoencoder(25, self._specs(), seed=0).pretrain(digits_25)
        assert stack.reconstruct(digits_25).shape == digits_25.shape

    def test_callback_fires_per_layer(self, digits_25):
        seen = []
        StackedAutoencoder(25, self._specs(), seed=0).pretrain(
            digits_25, callback=lambda i, block, errs: seen.append(i)
        )
        assert seen == [0, 1]

    def test_seed_reproducible(self, digits_25):
        a = StackedAutoencoder(25, self._specs(), seed=5).pretrain(digits_25)
        b = StackedAutoencoder(25, self._specs(), seed=5).pretrain(digits_25)
        np.testing.assert_array_equal(a.blocks[0].w1, b.blocks[0].w1)
        np.testing.assert_array_equal(a.blocks[1].w1, b.blocks[1].w1)


class TestDeepBeliefNetwork:
    def _specs(self):
        return [
            LayerSpec(10, learning_rate=0.2, epochs=3, batch_size=20),
            LayerSpec(6, learning_rate=0.2, epochs=3, batch_size=20),
        ]

    def test_blocks_are_rbms(self, binary_batch):
        dbn = DeepBeliefNetwork(12, self._specs(), seed=0).pretrain(binary_batch)
        assert all(isinstance(b, RBM) for b in dbn.blocks)

    def test_transform_shape(self, binary_batch):
        dbn = DeepBeliefNetwork(12, self._specs(), seed=0).pretrain(binary_batch)
        assert dbn.transform(binary_batch).shape == (binary_batch.shape[0], 6)

    def test_reconstruction_error_tracked(self, binary_batch):
        dbn = DeepBeliefNetwork(12, self._specs(), seed=0).pretrain(binary_batch)
        assert len(dbn.layer_errors) == 2
        assert all(len(e) == 3 for e in dbn.layer_errors)

    def test_rejects_bad_cd_k(self):
        with pytest.raises(ConfigurationError):
            DeepBeliefNetwork(12, self._specs(), cd_k=0)

    def test_features_in_unit_interval(self, binary_batch):
        dbn = DeepBeliefNetwork(12, self._specs(), seed=0).pretrain(binary_batch)
        f = dbn.transform(binary_batch)
        assert (f >= 0).all() and (f <= 1).all()
