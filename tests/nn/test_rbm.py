"""Tests for repro.nn.rbm — RBM conditionals, energies, CD-k (Eqs. 7-13)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.rbm import RBM
from repro.utils.mathx import sigmoid


class TestConstruction:
    def test_shapes(self):
        rbm = RBM(10, 6, seed=0)
        assert rbm.w.shape == (6, 10)
        assert rbm.b.shape == (10,)
        assert rbm.c.shape == (6,)

    def test_seed_reproducible(self):
        np.testing.assert_array_equal(RBM(5, 3, seed=1).w, RBM(5, 3, seed=1).w)

    def test_weight_scale(self):
        rbm = RBM(300, 200, weight_scale=0.01, seed=0)
        assert 0.008 < rbm.w.std() < 0.012


class TestConditionals:
    def test_hidden_probabilities_formula(self, small_rbm, binary_batch):
        """p(h=1|v) = s(c + Wv) — Eq. 9 exactly."""
        probs = small_rbm.hidden_probabilities(binary_batch)
        expected = sigmoid(binary_batch @ small_rbm.w.T + small_rbm.c)
        np.testing.assert_allclose(probs, expected)

    def test_visible_probabilities_formula(self, small_rbm, rng):
        h = (rng.random((9, 7)) < 0.5).astype(float)
        probs = small_rbm.visible_probabilities(h)
        expected = sigmoid(h @ small_rbm.w + small_rbm.b)
        np.testing.assert_allclose(probs, expected)

    def test_probabilities_in_unit_interval(self, small_rbm, binary_batch):
        p = small_rbm.hidden_probabilities(binary_batch)
        assert (p > 0).all() and (p < 1).all()

    def test_sampling_is_binary_and_matches_probs(self, small_rbm, binary_batch):
        probs, samples = small_rbm.sample_hidden(binary_batch, rng=0)
        assert set(np.unique(samples)) <= {0.0, 1.0}
        assert probs.shape == samples.shape

    def test_sampling_frequency_approaches_probability(self, small_rbm):
        v = np.ones((4000, 12)) * 0.0
        probs, samples = small_rbm.sample_hidden(v, rng=1)
        np.testing.assert_allclose(samples.mean(axis=0), probs[0], atol=0.03)

    def test_wrong_width_raises(self, small_rbm):
        with pytest.raises(ShapeError):
            small_rbm.hidden_probabilities(np.ones((3, 5)))


class TestEnergies:
    def test_energy_formula(self, small_rbm, rng):
        v = (rng.random((5, 12)) < 0.5).astype(float)
        h = (rng.random((5, 7)) < 0.5).astype(float)
        e = small_rbm.energy(v, h)
        for i in range(5):
            expected = (
                -small_rbm.b @ v[i] - small_rbm.c @ h[i] - h[i] @ small_rbm.w @ v[i]
            )
            assert e[i] == pytest.approx(expected)

    def test_free_energy_marginalises_energy(self, rng):
        """exp(-F(v)) must equal Σ_h exp(-E(v,h)) — checked by enumeration."""
        rbm = RBM(4, 3, seed=2)
        rbm.b = rng.normal(size=4)
        rbm.c = rng.normal(size=3)
        rbm.w = rng.normal(size=(3, 4))
        v = (rng.random((6, 4)) < 0.5).astype(float)
        all_h = ((np.arange(8)[:, None] >> np.arange(3)[None, :]) & 1).astype(float)
        for i in range(6):
            vi = np.tile(v[i], (8, 1))
            brute = -np.log(np.sum(np.exp(-rbm.energy(vi, all_h))))
            assert rbm.free_energy(v[i : i + 1])[0] == pytest.approx(brute)

    def test_exact_partition_function_normalises(self, rng):
        """Σ_v exp(-F(v)) / Z must be exactly 1."""
        rbm = RBM(5, 3, seed=3)
        rbm.w = rng.normal(scale=0.5, size=(3, 5))
        rbm.b = rng.normal(scale=0.5, size=5)
        rbm.c = rng.normal(scale=0.5, size=3)
        log_z = rbm.log_partition_exact()
        all_v = ((np.arange(32)[:, None] >> np.arange(5)[None, :]) & 1).astype(float)
        total = np.sum(np.exp(-rbm.free_energy(all_v) - log_z))
        assert total == pytest.approx(1.0)

    def test_partition_guard(self):
        with pytest.raises(ValueError):
            RBM(25, 3, seed=0).log_partition_exact()

    def test_fused_energy_matches_unfused_expression(self, small_rbm, rng):
        # regression for the pre-activation-reuse refactor: the fused
        # -v·b - Σ h⊙(vWᵀ+c) must equal the classic three-term energy
        v = rng.random((9, 12))
        h = rng.random((9, 7))
        unfused = -(v @ small_rbm.b) - (h @ small_rbm.c) - np.einsum(
            "ij,ij->i", h @ small_rbm.w, v
        )
        np.testing.assert_allclose(small_rbm.energy(v, h), unfused, atol=1e-10)

    def test_energy_and_probabilities_share_preactivation(self, small_rbm, rng):
        from repro.utils.mathx import sigmoid

        v = (rng.random((6, 12)) < 0.5).astype(float)
        pre = small_rbm.hidden_preactivation(v)
        np.testing.assert_array_equal(
            small_rbm.hidden_probabilities(v), sigmoid(pre)
        )
        np.testing.assert_array_equal(pre, v @ small_rbm.w.T + small_rbm.c)


class TestContrastiveDivergence:
    def test_stat_shapes(self, small_rbm, binary_batch):
        stats = small_rbm.contrastive_divergence(binary_batch)
        assert stats.grad_w.shape == (7, 12)
        assert stats.grad_b.shape == (12,)
        assert stats.grad_c.shape == (7,)
        assert stats.reconstruction_error >= 0

    def test_cd_statistics_match_manual_computation(self):
        """CD-1 grads must equal ⟨vh⟩_data − ⟨vh⟩_recon computed by hand."""
        rbm = RBM(6, 4, seed=0)
        rng_data = np.random.default_rng(10)
        v0 = (rng_data.random((15, 6)) < 0.5).astype(float)
        # Replay the same RNG stream the implementation uses.
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        stats = rbm.contrastive_divergence(v0, k=1, rng=rng_a)
        h0p = rbm.hidden_probabilities(v0)
        h0s = (rng_b.random(h0p.shape) < h0p).astype(float)
        v1 = rbm.visible_probabilities(h0s)
        h1p = rbm.hidden_probabilities(v1)
        m = v0.shape[0]
        np.testing.assert_allclose(stats.grad_w, (h0p.T @ v0 - h1p.T @ v1) / m)
        np.testing.assert_allclose(stats.grad_b, (v0 - v1).mean(axis=0))
        np.testing.assert_allclose(stats.grad_c, (h0p - h1p).mean(axis=0))

    def test_cd_k_greater_than_one_runs(self, small_rbm, binary_batch):
        stats = small_rbm.contrastive_divergence(binary_batch, k=3, rng=0)
        assert np.isfinite(stats.grad_w).all()

    def test_apply_update_direction(self, small_rbm, binary_batch):
        w0 = small_rbm.w.copy()
        stats = small_rbm.contrastive_divergence(binary_batch, rng=0)
        small_rbm.apply_update(stats, learning_rate=0.5)
        np.testing.assert_allclose(small_rbm.w, w0 + 0.5 * stats.grad_w)

    def test_training_grows_free_energy_gap_to_noise(self, binary_batch, rng):
        """CD ascent should make data more probable *relative to* noise:
        the free-energy gap F(noise) − F(data) must grow (comparing raw
        F(data) before/after is confounded by the partition function)."""
        rbm = RBM(12, 8, seed=4)
        noise = (rng.random(binary_batch.shape) < 0.5).astype(float)
        gap0 = rbm.free_energy(noise).mean() - rbm.free_energy(binary_batch).mean()
        gen = np.random.default_rng(0)
        for _ in range(200):
            stats = rbm.contrastive_divergence(binary_batch, rng=gen)
            rbm.apply_update(stats, 0.1)
        gap1 = rbm.free_energy(noise).mean() - rbm.free_energy(binary_batch).mean()
        assert gap1 > gap0

    def test_training_reduces_reconstruction_error(self, binary_batch):
        rbm = RBM(12, 8, seed=5)
        gen = np.random.default_rng(1)
        first = rbm.contrastive_divergence(binary_batch, rng=gen).reconstruction_error
        for _ in range(300):
            stats = rbm.contrastive_divergence(binary_batch, rng=gen)
            rbm.apply_update(stats, 0.1)
        last = rbm.contrastive_divergence(binary_batch, rng=gen).reconstruction_error
        assert last < first

    def test_cd_learns_simple_distribution(self):
        """On data where two visible groups are anticorrelated, samples from
        the trained model should reflect the structure (higher likelihood
        than the untrained model, measured exactly)."""
        rng = np.random.default_rng(0)
        n = 400
        # Two modes: (1,1,1,0,0,0) and (0,0,0,1,1,1) with small flip noise.
        modes = np.array([[1, 1, 1, 0, 0, 0], [0, 0, 0, 1, 1, 1]], dtype=float)
        data = modes[rng.integers(0, 2, n)]
        flips = rng.random(data.shape) < 0.05
        data = np.abs(data - flips)

        rbm = RBM(6, 4, seed=1)
        log_z0 = rbm.log_partition_exact()
        ll0 = float(np.mean(-rbm.free_energy(data) - log_z0))
        gen = np.random.default_rng(2)
        for _ in range(400):
            batch = data[gen.integers(0, n, 50)]
            stats = rbm.contrastive_divergence(batch, rng=gen)
            rbm.apply_update(stats, 0.2)
        log_z1 = rbm.log_partition_exact()
        ll1 = float(np.mean(-rbm.free_energy(data) - log_z1))
        assert ll1 > ll0 + 0.5  # clear likelihood gain, exact computation

    def test_transform_and_reconstruct_shapes(self, small_rbm, binary_batch):
        features = small_rbm.transform(binary_batch)
        assert features.shape == (binary_batch.shape[0], 7)
        recon = small_rbm.reconstruct(binary_batch)
        assert recon.shape == binary_batch.shape

    def test_copy_is_independent(self, small_rbm):
        clone = small_rbm.copy()
        clone.w += 1.0
        assert not np.allclose(clone.w, small_rbm.w)
