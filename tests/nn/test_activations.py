"""Tests for repro.nn.activations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.activations import Identity, Sigmoid, Tanh, get_activation


@pytest.mark.parametrize("cls", [Sigmoid, Identity, Tanh])
class TestForwardGradConsistency:
    def test_grad_matches_finite_difference(self, cls):
        act = cls()
        z = np.linspace(-3, 3, 25)
        eps = 1e-6
        numeric = (act.forward(z + eps) - act.forward(z - eps)) / (2 * eps)
        analytic = act.grad_from_output(act.forward(z))
        np.testing.assert_allclose(analytic, numeric, atol=1e-8)

    def test_forward_preserves_shape(self, cls):
        z = np.zeros((4, 6))
        assert cls().forward(z).shape == (4, 6)


class TestSpecificValues:
    def test_sigmoid_bounds(self):
        out = Sigmoid().forward(np.array([-100.0, 100.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-30)
        assert out[1] == pytest.approx(1.0)

    def test_identity_is_identity(self):
        z = np.array([[1.5, -2.0]])
        np.testing.assert_array_equal(Identity().forward(z), z)
        np.testing.assert_array_equal(Identity().grad_from_output(z), np.ones_like(z))

    def test_tanh_odd(self):
        z = np.linspace(-2, 2, 9)
        np.testing.assert_allclose(Tanh().forward(z), -Tanh().forward(-z))


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_activation("sigmoid"), Sigmoid)
        assert isinstance(get_activation("identity"), Identity)
        assert isinstance(get_activation("tanh"), Tanh)

    def test_instance_passthrough(self):
        act = Sigmoid()
        assert get_activation(act) is act

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="sigmoid"):
            get_activation("relu")

    def test_non_string_non_activation_raises(self):
        with pytest.raises(ConfigurationError):
            get_activation(42)
