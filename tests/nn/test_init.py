"""Tests for repro.nn.init — weight initialisation."""

import numpy as np

from repro.nn.init import normal_init, uniform_fanin_init, zeros_init


class TestUniformFanin:
    def test_shape(self):
        assert uniform_fanin_init(10, 6, rng=0).shape == (6, 10)

    def test_radius_bound(self):
        w = uniform_fanin_init(20, 30, rng=1)
        r = np.sqrt(6.0 / (20 + 30 + 1))
        assert np.abs(w).max() <= r

    def test_radius_is_tight(self):
        # Enough samples should approach the bound.
        w = uniform_fanin_init(100, 100, rng=2)
        r = np.sqrt(6.0 / 201)
        assert np.abs(w).max() > 0.9 * r

    def test_roughly_zero_mean(self):
        w = uniform_fanin_init(200, 200, rng=3)
        assert abs(w.mean()) < 1e-3

    def test_deterministic_with_seed(self):
        np.testing.assert_array_equal(
            uniform_fanin_init(5, 5, rng=9), uniform_fanin_init(5, 5, rng=9)
        )


class TestNormalInit:
    def test_shape_and_scale(self):
        w = normal_init(500, 400, scale=0.01, rng=0)
        assert w.shape == (400, 500)
        assert 0.008 < w.std() < 0.012

    def test_scale_parameter(self):
        w = normal_init(300, 300, scale=0.1, rng=1)
        assert 0.08 < w.std() < 0.12


class TestZerosInit:
    def test_zeros(self):
        b = zeros_init(7)
        assert b.shape == (7,)
        assert (b == 0).all()
        assert b.dtype == np.float64
