"""Tests for repro.nn.finetune — supervised fine-tuning."""

import numpy as np
import pytest

from repro.data.synth_digits import digit_dataset
from repro.errors import ConfigurationError
from repro.nn.finetune import (
    compare_pretrained_vs_random,
    finetune,
    pretrain_then_finetune,
)
from repro.nn.mlp import DeepNetwork
from repro.nn.stacked import LayerSpec, StackedAutoencoder


@pytest.fixture(scope="module")
def digit_split():
    x, y = digit_dataset(400, size=8, seed=0)
    return x[:320], y[:320], x[320:], y[320:]


class TestFinetune:
    def test_loss_decreases_and_accuracy_tracked(self, digit_split):
        x_train, y_train, _, _ = digit_split
        net = DeepNetwork([64, 32, 10], seed=0)
        result = finetune(net, x_train, y_train, epochs=5, learning_rate=0.5, seed=0)
        assert result.losses[-1] < result.losses[0]
        assert len(result.train_accuracy) == 5
        assert result.n_updates == 5 * 5  # ceil(320/64) per epoch

    def test_classifier_learns_digits(self, digit_split):
        x_train, y_train, x_test, y_test = digit_split
        net = DeepNetwork([64, 48, 10], weight_decay=1e-5, seed=1)
        finetune(net, x_train, y_train, epochs=40, learning_rate=0.8, seed=1)
        assert net.accuracy(x_test, y_test) > 0.6  # chance = 0.1

    def test_regression_head_targets(self, rng):
        net = DeepNetwork([5, 4, 2], head="identity", seed=0)
        x = rng.random((30, 5))
        targets = rng.random((30, 2))
        result = finetune(net, x, targets, epochs=10, learning_rate=0.1, seed=0)
        assert result.losses[-1] < result.losses[0]
        assert result.train_accuracy == []  # no accuracy for regression

    def test_rejects_wrong_input_width(self, rng):
        net = DeepNetwork([5, 3], seed=0)
        with pytest.raises(ConfigurationError):
            finetune(net, rng.random((10, 4)), np.zeros(10, dtype=int))

    def test_rejects_wrong_target_shape_for_regression(self, rng):
        net = DeepNetwork([5, 3], head="identity", seed=0)
        with pytest.raises(ConfigurationError):
            finetune(net, rng.random((10, 5)), rng.random((10, 2)))


class TestPretrainThenFinetune:
    def test_end_to_end(self, digit_split):
        x_train, y_train, _, _ = digit_split
        stack = StackedAutoencoder(
            64, [LayerSpec(32, epochs=3, batch_size=32, learning_rate=0.5)], seed=0
        )
        result = pretrain_then_finetune(
            stack, x_train, y_train, n_classes=10, epochs=5, seed=0
        )
        assert result.network.layer_sizes == [64, 32, 10]
        assert result.losses[-1] < result.losses[0]

    def test_already_pretrained_stack_reused(self, digit_split):
        x_train, y_train, _, _ = digit_split
        stack = StackedAutoencoder(
            64, [LayerSpec(32, epochs=3, batch_size=32, learning_rate=0.5)], seed=0
        ).pretrain(x_train)
        w_before = stack.blocks[0].w1.copy()
        pretrain_then_finetune(stack, x_train, y_train, n_classes=10, epochs=1, seed=0)
        # Fine-tuning must not mutate the stack itself (it copies weights).
        np.testing.assert_array_equal(stack.blocks[0].w1, w_before)


class TestPretrainedVsRandom:
    def test_comparison_runs_and_reports_both_arms(self, digit_split):
        x_train, y_train, x_test, y_test = digit_split
        stack = StackedAutoencoder(
            64,
            [LayerSpec(32, epochs=5, batch_size=32, learning_rate=0.5)],
            seed=0,
        ).pretrain(x_train)
        results = compare_pretrained_vs_random(
            stack, x_train, y_train, x_test, y_test, n_classes=10, epochs=6, seed=0
        )
        assert set(results) == {"pretrained", "random"}
        for arm in results.values():
            assert 0.0 <= arm["test_accuracy"] <= 1.0
            assert arm["losses"]

    def test_pretraining_helps_when_labels_are_scarce(self, digit_split):
        """The classic semi-supervised effect: pre-train on all unlabeled
        data, fine-tune on a small labeled subset — the pretrained arm
        generalises at least as well as random init (and typically
        better; the paper's §I motivation for unsupervised learning)."""
        x_train, y_train, x_test, y_test = digit_split
        x_labeled, y_labeled = x_train[:60], y_train[:60]
        stack = StackedAutoencoder(
            64,
            [LayerSpec(40, epochs=10, batch_size=32, learning_rate=0.5)],
            seed=1,
        ).pretrain(x_train)  # unsupervised phase sees all 320 examples
        results = compare_pretrained_vs_random(
            stack, x_labeled, y_labeled, x_test, y_test,
            n_classes=10, epochs=30, learning_rate=0.5, batch_size=20, seed=1,
        )
        assert (
            results["pretrained"]["test_accuracy"]
            >= results["random"]["test_accuracy"]
        )
        assert results["pretrained"]["test_accuracy"] > 0.5

    def test_requires_pretrained_stack(self, digit_split):
        x_train, y_train, x_test, y_test = digit_split
        stack = StackedAutoencoder(64, [LayerSpec(32)], seed=0)
        with pytest.raises(ConfigurationError):
            compare_pretrained_vs_random(
                stack, x_train, y_train, x_test, y_test, n_classes=10
            )
