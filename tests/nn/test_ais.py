"""Tests for repro.nn.ais — annealed importance sampling for RBM log Z.

The gold standard: on small RBMs the exact partition function is
computable by enumeration, so AIS can be validated directly.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.ais import ais_log_partition, estimate_log_likelihood
from repro.nn.rbm import RBM
from repro.utils.mathx import log_sum_exp


def trained_small_rbm(seed=0, n_visible=8, n_hidden=5):
    """An RBM with non-trivial weights (trained briefly on structured data)."""
    rng = np.random.default_rng(seed)
    modes = np.array(
        [[1, 1, 1, 1, 0, 0, 0, 0], [0, 0, 0, 0, 1, 1, 1, 1]], dtype=float
    )[:, :n_visible]
    data = modes[rng.integers(0, 2, 300)]
    data = np.abs(data - (rng.random(data.shape) < 0.05))
    rbm = RBM(n_visible, n_hidden, seed=seed)
    gen = np.random.default_rng(seed + 1)
    for _ in range(200):
        stats = rbm.contrastive_divergence(data[gen.integers(0, 300, 40)], rng=gen)
        rbm.apply_update(stats, 0.2)
    return rbm, data


class TestAISAgainstExact:
    def test_untrained_rbm(self):
        """Near-zero weights: AIS must nail log Z almost exactly."""
        rbm = RBM(8, 5, seed=0)
        exact = rbm.log_partition_exact()
        result = ais_log_partition(rbm, n_particles=50, n_temperatures=200, seed=1)
        assert result.log_z == pytest.approx(exact, abs=0.05)

    def test_trained_rbm(self):
        """Structured weights: AIS within a small tolerance of exact."""
        rbm, data = trained_small_rbm()
        exact = rbm.log_partition_exact()
        result = ais_log_partition(
            rbm, n_particles=200, n_temperatures=2000, data=data, seed=2
        )
        assert result.log_z == pytest.approx(exact, abs=0.3)

    def test_confidence_band_contains_exact(self):
        rbm, data = trained_small_rbm(seed=3)
        exact = rbm.log_partition_exact()
        result = ais_log_partition(
            rbm, n_particles=300, n_temperatures=2000, data=data, seed=4
        )
        lo, hi = result.log_z_confidence(z_sigma=4.0)
        assert lo <= result.log_z <= hi
        assert lo - 0.5 <= exact <= hi + 0.5

    def test_more_temperatures_tighter(self):
        """Variance of the AIS weights shrinks with annealing resolution."""
        rbm, data = trained_small_rbm(seed=5)
        coarse = ais_log_partition(rbm, 100, 50, data=data, seed=6)
        fine = ais_log_partition(rbm, 100, 2000, data=data, seed=6)
        assert np.var(fine.log_weights) < np.var(coarse.log_weights)

    def test_effective_sample_size_bounds(self):
        rbm, data = trained_small_rbm(seed=7)
        result = ais_log_partition(rbm, 100, 500, data=data, seed=8)
        assert 1.0 <= result.effective_sample_size <= 100.0


class TestLogLikelihood:
    def test_matches_exact_likelihood(self):
        rbm, data = trained_small_rbm(seed=9)
        exact_ll = float(
            np.mean(-rbm.free_energy(data)) - rbm.log_partition_exact()
        )
        ais_ll = estimate_log_likelihood(
            rbm, data, n_particles=200, n_temperatures=2000, seed=10
        )
        assert ais_ll == pytest.approx(exact_ll, abs=0.3)

    def test_trained_model_beats_untrained_on_its_data(self):
        rbm, data = trained_small_rbm(seed=11)
        fresh = RBM(rbm.n_visible, rbm.n_hidden, seed=99)
        ll_trained = estimate_log_likelihood(rbm, data, 100, 1000, seed=12)
        ll_fresh = estimate_log_likelihood(fresh, data, 100, 1000, seed=12)
        assert ll_trained > ll_fresh + 0.5

    def test_data_shape_validated(self):
        rbm = RBM(8, 4, seed=0)
        with pytest.raises(ConfigurationError):
            ais_log_partition(rbm, 10, 10, data=np.zeros((5, 9)))

    def test_argument_validation(self):
        rbm = RBM(4, 3, seed=0)
        with pytest.raises(ConfigurationError):
            ais_log_partition(rbm, 0, 10)
        with pytest.raises(ConfigurationError):
            ais_log_partition(rbm, 10, 0)
