"""Tests for repro.nn.sparse_coding — FISTA + dictionary learning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.sparse_coding import (
    SparseCoder,
    fista_inference,
    lasso_objective,
    soft_threshold,
)


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        x = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        out = soft_threshold(x, 1.0)
        np.testing.assert_allclose(out, [-2.0, 0.0, 0.0, 0.0, 2.0])

    def test_zero_threshold_is_identity(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_array_equal(soft_threshold(x, 0.0), x)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigurationError):
            soft_threshold(np.zeros(3), -1.0)

    def test_is_l1_prox(self, rng):
        """soft_threshold(v, t) minimises ½‖a−v‖² + t‖a‖₁ — verify against
        a grid search per coordinate."""
        v, t = 1.3, 0.4
        candidates = np.linspace(-3, 3, 2001)
        objective = 0.5 * (candidates - v) ** 2 + t * np.abs(candidates)
        best = candidates[np.argmin(objective)]
        assert soft_threshold(np.array([v]), t)[0] == pytest.approx(best, abs=1e-2)


class TestFistaInference:
    def test_orthonormal_dictionary_closed_form(self):
        """With D = I the lasso solution is soft_threshold(x, λ)."""
        n = 6
        d = np.eye(n)
        x = np.array([[2.0, -0.05, 0.5, -1.5, 0.0, 0.2]])
        lam = 0.3
        codes = fista_inference(x, d, lam, n_iterations=500)
        np.testing.assert_allclose(codes, soft_threshold(x, lam), atol=1e-6)

    def test_objective_below_initial(self, rng):
        d = rng.normal(size=(12, 8))
        x = rng.normal(size=(5, 8))
        lam = 0.2
        codes = fista_inference(x, d, lam, n_iterations=300)
        start = lasso_objective(x, np.zeros((5, 12)), d, lam)
        end = lasso_objective(x, codes, d, lam)
        assert end < start

    def test_sparser_with_larger_lambda(self, rng):
        d = rng.normal(size=(20, 10))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        x = rng.normal(size=(8, 10))
        loose = fista_inference(x, d, 0.01, 300)
        tight = fista_inference(x, d, 1.0, 300)
        assert np.mean(tight == 0) > np.mean(loose == 0)

    def test_huge_lambda_kills_all_codes(self, rng):
        d = rng.normal(size=(6, 4))
        x = rng.normal(size=(3, 4))
        codes = fista_inference(x, d, 1e6, 50)
        np.testing.assert_array_equal(codes, 0.0)

    def test_zero_lambda_is_least_squares(self, rng):
        """λ=0 reduces to min ‖x − aD‖²; compare against lstsq."""
        d = rng.normal(size=(4, 8))  # under-complete: unique LS solution
        x = rng.normal(size=(3, 8))
        codes = fista_inference(x, d, 0.0, n_iterations=3000, tolerance=1e-12)
        expected = np.linalg.lstsq(d.T, x.T, rcond=None)[0].T
        np.testing.assert_allclose(codes, expected, atol=1e-4)

    def test_recovers_sparse_generating_codes(self, rng):
        """Signals made from 2 atoms of a well-separated dictionary should
        be coded using (mostly) those atoms."""
        n_atoms, n_features = 8, 32
        d = rng.normal(size=(n_atoms, n_features))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        true_codes = np.zeros((4, n_atoms))
        for i in range(4):
            atoms = rng.choice(n_atoms, size=2, replace=False)
            true_codes[i, atoms] = rng.uniform(1.0, 2.0, size=2)
        x = true_codes @ d
        codes = fista_inference(x, d, 0.05, 500)
        # The two truly-active atoms must carry the largest coefficients.
        for i in range(4):
            top2 = set(np.argsort(np.abs(codes[i]))[-2:])
            assert top2 == set(np.flatnonzero(true_codes[i]))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            fista_inference(rng.normal(size=(2, 5)), rng.normal(size=(3, 4)), 0.1)


class TestSparseCoder:
    def test_dictionary_rows_unit_norm(self):
        coder = SparseCoder(16, 32, seed=0)
        np.testing.assert_allclose(
            np.linalg.norm(coder.dictionary, axis=1), 1.0, atol=1e-12
        )

    def test_fit_reduces_objective(self, rng):
        # Data genuinely generated from a sparse code.
        true_dict = rng.normal(size=(10, 16))
        true_dict /= np.linalg.norm(true_dict, axis=1, keepdims=True)
        codes = rng.random((120, 10)) * (rng.random((120, 10)) < 0.2)
        x = codes @ true_dict + 0.01 * rng.normal(size=(120, 16))

        coder = SparseCoder(16, 10, lam=0.05, seed=1)
        obj0 = coder.objective(x)
        coder.fit(x, epochs=8, batch_size=40, learning_rate=0.8, seed=1)
        assert coder.history.objectives[-1] < obj0
        # Norms stay unit through learning.
        np.testing.assert_allclose(
            np.linalg.norm(coder.dictionary, axis=1), 1.0, atol=1e-10
        )

    def test_history_tracks_epochs(self, rng):
        x = rng.normal(size=(40, 8))
        coder = SparseCoder(8, 12, lam=0.1, seed=0).fit(x, epochs=3, batch_size=20)
        assert len(coder.history.objectives) == 3
        assert len(coder.history.sparsity) == 3
        assert all(0.0 <= s <= 1.0 for s in coder.history.sparsity)

    def test_encode_decode_shapes(self, rng):
        coder = SparseCoder(8, 12, seed=0)
        x = rng.normal(size=(5, 8))
        codes = coder.encode(x)
        assert codes.shape == (5, 12)
        assert coder.decode(codes).shape == (5, 8)
        assert coder.reconstruct(x).shape == (5, 8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SparseCoder(0, 4)
        with pytest.raises(ConfigurationError):
            SparseCoder(4, 4, lam=0.0)
