"""Tests for repro.nn.mlp — the deep network used in fine-tuning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.gradcheck import check_gradients
from repro.nn.mlp import DeepNetwork, one_hot, softmax
from repro.nn.stacked import LayerSpec, StackedAutoencoder


class TestSoftmaxAndOneHot:
    def test_softmax_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(10, 5)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert (p > 0).all()

    def test_softmax_stable_for_huge_logits(self):
        p = softmax(np.array([[1e4, 0.0], [-1e4, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_softmax_shift_invariant(self, rng):
        z = rng.normal(size=(4, 3))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            one_hot(np.array([0, 3]), 3)


class TestConstruction:
    def test_layer_shapes(self):
        net = DeepNetwork([10, 6, 4, 3], seed=0)
        assert [(l.n_in, l.n_out) for l in net.layers] == [(10, 6), (6, 4), (4, 3)]
        assert net.n_parameters == (10 * 6 + 6) + (6 * 4 + 4) + (4 * 3 + 3)

    def test_rejects_short_spec(self):
        with pytest.raises(ConfigurationError):
            DeepNetwork([5])

    def test_rejects_bad_head(self):
        with pytest.raises(ConfigurationError):
            DeepNetwork([5, 3], head="relu")

    def test_from_pretrained_stack_copies_encoders(self, digits_25):
        stack = StackedAutoencoder(
            25, [LayerSpec(12, epochs=2, batch_size=16, learning_rate=0.5)], seed=0
        ).pretrain(digits_25)
        net = DeepNetwork.from_pretrained_stack(stack, n_classes=10, seed=0)
        np.testing.assert_array_equal(net.layers[0].w, stack.blocks[0].w1)
        np.testing.assert_array_equal(net.layers[0].b, stack.blocks[0].b1)
        assert net.layer_sizes == [25, 12, 10]

    def test_from_untrained_stack_rejected(self):
        stack = StackedAutoencoder(25, [LayerSpec(12)], seed=0)
        with pytest.raises(ConfigurationError):
            DeepNetwork.from_pretrained_stack(stack, 10)


class TestForward:
    def test_predict_proba_shape_and_normalisation(self, rng):
        net = DeepNetwork([8, 5, 3], seed=0)
        x = rng.random((6, 8))
        p = net.predict_proba(x)
        assert p.shape == (6, 3)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_predict_labels(self, rng):
        net = DeepNetwork([8, 5, 3], seed=0)
        labels = net.predict(rng.random((6, 8)))
        assert labels.shape == (6,)
        assert set(labels) <= {0, 1, 2}

    def test_accuracy_requires_softmax(self, rng):
        net = DeepNetwork([4, 2], head="identity", seed=0)
        with pytest.raises(ConfigurationError):
            net.accuracy(rng.random((3, 4)), np.zeros(3))


@pytest.mark.parametrize(
    "sizes,head",
    [
        ([6, 4, 3], "softmax"),
        ([6, 5, 4, 3], "softmax"),   # deeper
        ([6, 4, 3], "sigmoid"),
        ([6, 4, 2], "identity"),
    ],
)
class TestGradientCorrectness:
    def test_backprop_matches_finite_differences(self, sizes, head, rng):
        net = DeepNetwork(sizes, head=head, weight_decay=1e-3, seed=1)
        x = rng.random((9, sizes[0]))
        if head == "softmax":
            targets = one_hot(rng.integers(0, sizes[-1], 9), sizes[-1])
        else:
            targets = rng.random((9, sizes[-1]))
        theta = net.get_flat_parameters()
        _, grad = net.flat_loss_and_grad(theta, x, targets)
        check_gradients(
            lambda t: net.flat_loss_and_grad(t, x, targets)[0],
            grad,
            theta,
            tolerance=1e-6,
        )


class TestTraining:
    def test_gradient_descent_reduces_loss(self, rng):
        net = DeepNetwork([6, 8, 3], seed=2)
        x = rng.random((60, 6))
        targets = one_hot(rng.integers(0, 3, 60), 3)
        loss0 = net.loss(x, targets)
        for _ in range(80):
            _, grads = net.gradients(x, targets)
            net.apply_update(grads, 1.0)
        assert net.loss(x, targets) < loss0

    def test_learns_linearly_separable_problem(self, rng):
        x = rng.normal(size=(200, 4))
        labels = (x[:, 0] + x[:, 1] > 0).astype(int)
        net = DeepNetwork([4, 8, 2], weight_decay=0.0, seed=3)
        targets = one_hot(labels, 2)
        for _ in range(300):
            _, grads = net.gradients(x, targets)
            net.apply_update(grads, 2.0)
        assert net.accuracy(x, labels) > 0.95

    def test_flat_round_trip(self):
        net = DeepNetwork([5, 4, 3], seed=0)
        theta = net.get_flat_parameters()
        net.set_flat_parameters(theta * 2.0)
        np.testing.assert_allclose(net.get_flat_parameters(), theta * 2.0)

    def test_flat_wrong_size(self):
        net = DeepNetwork([5, 4, 3], seed=0)
        with pytest.raises(ConfigurationError):
            net.set_flat_parameters(np.zeros(3))
