"""Seeded equivalence tests: fused (workspace) kernels vs reference.

The reference allocating implementations are kept as the numerical
oracle; every fused ``*_into`` / workspace-backed path must agree to
within 1e-10 across batch sizes, layer widths and activations (ISSUE
acceptance criterion — in practice agreement is ~1e-13 or bitwise).
"""

import numpy as np
import pytest

from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.mlp import DeepNetwork, one_hot
from repro.nn.rbm import RBM
from repro.runtime.workspace import Workspace

TOL = 1e-10

SHAPES = [(1, 8, 5), (16, 32, 12), (64, 96, 48)]


def _max_sae_diff(ref, fused):
    loss_ref, g_ref = ref
    loss_fused, g_fused = fused
    return max(
        abs(loss_ref - loss_fused),
        float(np.max(np.abs(g_ref.w1 - g_fused.w1))),
        float(np.max(np.abs(g_ref.b1 - g_fused.b1))),
        float(np.max(np.abs(g_ref.w2 - g_fused.w2))),
        float(np.max(np.abs(g_ref.b2 - g_fused.b2))),
    )


class TestAutoencoderFusedGradients:
    @pytest.mark.parametrize("batch,n_visible,n_hidden", SHAPES)
    def test_matches_reference_across_shapes(self, batch, n_visible, n_hidden):
        x = np.random.default_rng(batch).random((batch, n_visible))
        sae = SparseAutoencoder(n_visible, n_hidden, seed=7)
        ws = Workspace()
        assert _max_sae_diff(sae.gradients(x), sae.gradients_into(x, ws)) <= TOL

    @pytest.mark.parametrize(
        "hidden,output,sparsity",
        [
            ("sigmoid", "sigmoid", 0.0),
            ("sigmoid", "sigmoid", 3.0),
            ("sigmoid", "identity", 0.0),
            ("tanh", "identity", 0.0),
            ("tanh", "tanh", 0.0),
        ],
    )
    def test_matches_reference_across_activations(self, hidden, output, sparsity):
        cost = SparseAutoencoderCost(
            weight_decay=1e-3, sparsity_target=0.05, sparsity_weight=sparsity
        )
        sae = SparseAutoencoder(
            20, 9, cost=cost, hidden_activation=hidden,
            output_activation=output, seed=3,
        )
        x = np.random.default_rng(0).random((13, 20))
        ws = Workspace()
        assert _max_sae_diff(sae.gradients(x), sae.gradients_into(x, ws)) <= TOL

    def test_repeated_calls_reuse_buffers_and_stay_exact(self):
        sae = SparseAutoencoder(24, 10, seed=5)
        ws = Workspace()
        gen = np.random.default_rng(1)
        for _ in range(4):
            x = gen.random((8, 24))
            assert _max_sae_diff(sae.gradients(x), sae.gradients_into(x, ws)) <= TOL
        assert ws.misses > 0 and ws.hits > ws.misses

    def test_apply_update_matches_reference(self):
        import copy

        x = np.random.default_rng(2).random((10, 15))
        ref = SparseAutoencoder(15, 6, seed=9)
        fused = copy.deepcopy(ref)
        ws = Workspace()
        _, g_ref = ref.gradients(x)
        _, g_fused = fused.gradients_into(x, ws)
        ref.apply_update(g_ref, 0.1)
        fused.apply_update(g_fused, 0.1, workspace=ws)
        for a, b in ((ref.w1, fused.w1), (ref.b1, fused.b1),
                     (ref.w2, fused.w2), (ref.b2, fused.b2)):
            assert float(np.max(np.abs(a - b))) <= TOL


class TestRBMFusedCD:
    @pytest.mark.parametrize("batch,n_visible,n_hidden", SHAPES)
    @pytest.mark.parametrize("k,sample_visible", [(1, False), (2, True)])
    def test_matches_reference(self, batch, n_visible, n_hidden, k, sample_visible):
        x = (np.random.default_rng(0).random((batch, n_visible)) < 0.5).astype(float)
        rbm = RBM(n_visible, n_hidden, seed=4)
        ws = Workspace()
        s_ref = rbm.contrastive_divergence(
            x, k=k, rng=np.random.default_rng(11), sample_visible=sample_visible
        )
        s_fused = rbm.contrastive_divergence(
            x, k=k, rng=np.random.default_rng(11),
            sample_visible=sample_visible, workspace=ws,
        )
        assert float(np.max(np.abs(s_ref.grad_w - s_fused.grad_w))) <= TOL
        assert float(np.max(np.abs(s_ref.grad_b - s_fused.grad_b))) <= TOL
        assert float(np.max(np.abs(s_ref.grad_c - s_fused.grad_c))) <= TOL
        assert abs(
            s_ref.reconstruction_error - s_fused.reconstruction_error
        ) <= TOL

    def test_gibbs_chain_is_bitwise_identical(self):
        # Sampling compares rand < p, so the chain must be *bit*-exact or
        # sample flips would blow the gradient equivalence up to O(1/m).
        x = (np.random.default_rng(5).random((32, 40)) < 0.5).astype(float)
        rbm = RBM(40, 17, seed=6)
        ws = Workspace()
        s_ref = rbm.contrastive_divergence(x, k=3, rng=np.random.default_rng(2))
        s_fused = rbm.contrastive_divergence(
            x, k=3, rng=np.random.default_rng(2), workspace=ws
        )
        assert s_ref.reconstruction_error == s_fused.reconstruction_error

    def test_apply_update_matches_reference(self):
        import copy

        x = (np.random.default_rng(1).random((12, 20)) < 0.5).astype(float)
        ref = RBM(20, 8, seed=3)
        fused = copy.deepcopy(ref)
        ws = Workspace()
        stats = ref.contrastive_divergence(x, rng=np.random.default_rng(0))
        ref.apply_update(stats, 0.05)
        fused.apply_update(stats, 0.05, workspace=ws)
        assert float(np.max(np.abs(ref.w - fused.w))) <= TOL
        assert float(np.max(np.abs(ref.b - fused.b))) <= TOL
        assert float(np.max(np.abs(ref.c - fused.c))) <= TOL


class TestDeepNetworkFusedGradients:
    @pytest.mark.parametrize("head", ["softmax", "sigmoid", "identity"])
    @pytest.mark.parametrize("batch", [1, 7, 33])
    def test_matches_reference(self, head, batch):
        rng = np.random.default_rng(batch)
        net = DeepNetwork([12, 9, 4], head=head, weight_decay=1e-3, seed=8)
        x = rng.random((batch, 12))
        if head == "softmax":
            targets = one_hot(rng.integers(0, 4, size=batch), 4)
        else:
            targets = rng.random((batch, 4))
        ws = Workspace()
        loss_ref, g_ref = net.gradients(x, targets)
        loss_fused, g_fused = net.gradients_into(x, targets, ws)
        assert abs(loss_ref - loss_fused) <= TOL
        for (gw_r, gb_r), (gw_f, gb_f) in zip(g_ref, g_fused):
            assert float(np.max(np.abs(gw_r - gw_f))) <= TOL
            assert float(np.max(np.abs(gb_r - gb_f))) <= TOL

    def test_apply_update_matches_reference(self):
        import copy

        rng = np.random.default_rng(0)
        ref = DeepNetwork([10, 6, 3], head="softmax", seed=2)
        fused = copy.deepcopy(ref)
        x = rng.random((9, 10))
        targets = one_hot(rng.integers(0, 3, size=9), 3)
        ws = Workspace()
        _, g_ref = ref.gradients(x, targets)
        _, g_fused = fused.gradients_into(x, targets, ws)
        ref.apply_update(g_ref, 0.2)
        fused.apply_update(g_fused, 0.2, workspace=ws)
        for lr_, lf in zip(ref.layers, fused.layers):
            assert float(np.max(np.abs(lr_.w - lf.w))) <= TOL
            assert float(np.max(np.abs(lr_.b - lf.b))) <= TOL


class TestFlatViewMode:
    def test_flat_loss_and_grad_matches_legacy(self):
        x = np.random.default_rng(3).random((11, 14))
        legacy = SparseAutoencoder(14, 6, seed=1)
        view = SparseAutoencoder(14, 6, seed=1)
        view.enable_flat_views()
        theta = legacy.get_flat_parameters()
        l_ref, g_ref = legacy.flat_loss_and_grad(theta, x)
        l_view, g_view = view.flat_loss_and_grad(theta, x)
        assert abs(l_ref - l_view) <= TOL
        assert float(np.max(np.abs(g_ref - g_view))) <= TOL

    def test_view_mode_with_workspace_and_grad_out(self):
        x = np.random.default_rng(4).random((9, 14))
        legacy = SparseAutoencoder(14, 6, seed=1)
        view = SparseAutoencoder(14, 6, seed=1)
        view.enable_flat_views()
        ws = Workspace()
        theta = legacy.get_flat_parameters()
        grad_out = np.empty_like(theta)
        l_ref, g_ref = legacy.flat_loss_and_grad(theta, x)
        l_view, g_view = view.flat_loss_and_grad(
            theta, x, workspace=ws, grad_out=grad_out
        )
        assert g_view is grad_out
        assert abs(l_ref - l_view) <= TOL
        assert float(np.max(np.abs(g_ref - g_view))) <= TOL

    def test_successive_grads_are_independent_arrays(self):
        # L-BFGS keeps old gradients (y = g_new - g_old); the view-mode
        # fast path must not hand back the same mutable buffer twice.
        x = np.random.default_rng(5).random((8, 14))
        sae = SparseAutoencoder(14, 6, seed=1)
        sae.enable_flat_views()
        theta = sae.get_flat_parameters()
        _, g1 = sae.flat_loss_and_grad(theta, x)
        g1_snapshot = g1.copy()
        _, g2 = sae.flat_loss_and_grad(theta + 0.01, x)
        assert float(np.max(np.abs(g1 - g1_snapshot))) == 0.0
        assert g1 is not g2

    def test_get_flat_parameters_out_variant(self):
        sae = SparseAutoencoder(14, 6, seed=1)
        out = np.empty(sae.n_parameters)
        res = sae.get_flat_parameters(out=out)
        assert res is out
        np.testing.assert_array_equal(out, sae.get_flat_parameters())
