"""Tests for repro.nn.filters — receptive-field inspection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.filters import (
    filter_sparsity_profile,
    receptive_fields,
    render_filter,
    render_filter_grid,
)
from repro.nn.mlp import DeepNetwork
from repro.nn.rbm import RBM
from repro.nn.sparse_coding import SparseCoder


class TestReceptiveFields:
    def test_autoencoder_w1(self):
        ae = SparseAutoencoder(16, 4, seed=0)
        assert receptive_fields(ae) is ae.w1

    def test_rbm_w(self):
        rbm = RBM(16, 4, seed=0)
        assert receptive_fields(rbm) is rbm.w

    def test_sparse_coder_dictionary(self):
        coder = SparseCoder(16, 8, seed=0)
        assert receptive_fields(coder) is coder.dictionary

    def test_deep_network_first_layer(self):
        net = DeepNetwork([16, 8, 3], seed=0)
        assert receptive_fields(net) is net.layers[0].w

    def test_unknown_object_rejected(self):
        with pytest.raises(ConfigurationError):
            receptive_fields(object())


class TestRenderFilter:
    def test_square_output(self):
        text = render_filter(np.arange(16, dtype=float))
        rows = text.splitlines()
        assert len(rows) == 4
        assert all(len(r) == 4 for r in rows)

    def test_intensity_mapping(self):
        text = render_filter(np.array([0.0, 0.0, 1.0, 1.0]), side=2)
        rows = text.splitlines()
        assert rows[0] == "  "  # minimum -> darkest (space)
        assert rows[1] == "@@"  # maximum -> brightest

    def test_constant_filter_renders(self):
        text = render_filter(np.zeros(9))
        assert len(text.splitlines()) == 3  # no division-by-zero

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            render_filter(np.zeros(10))


class TestRenderGrid:
    def test_grid_dimensions(self):
        weights = np.random.default_rng(0).normal(size=(10, 16))
        text = render_filter_grid(weights, n_filters=6, columns=3)
        blocks = text.split("\n\n")
        assert len(blocks) == 2  # 6 filters / 3 columns

    def test_model_input(self):
        ae = SparseAutoencoder(25, 6, seed=0)
        text = render_filter_grid(ae, n_filters=4, columns=2)
        assert text  # renders without error

    def test_norm_order_puts_strongest_first(self):
        weights = np.zeros((3, 4))
        weights[1] = [0.0, 10.0, 0.0, 10.0]  # the loudest filter
        weights[0] = [0.0, 1.0, 0.0, 1.0]
        text_norm = render_filter_grid(weights, n_filters=1, columns=1, order="norm")
        assert text_norm == render_filter(weights[1], side=2)
        text_index = render_filter_grid(weights, n_filters=1, columns=1, order="index")
        assert text_index == render_filter(weights[0], side=2)

    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            render_filter_grid(np.zeros((2, 4)), order="random")


class TestSparsityProfile:
    def test_localised_beats_diffuse(self, rng):
        localized = np.zeros((5, 64))
        localized[:, :4] = rng.normal(size=(5, 4))  # all energy in 4 pixels
        diffuse = rng.normal(size=(5, 64))
        assert filter_sparsity_profile(localized).mean() > 0.99
        # Top-quartile share of i.i.d. Gaussian energy sits around 0.6-0.7.
        assert filter_sparsity_profile(diffuse).mean() < 0.75

    def test_zero_filters_safe(self):
        profile = filter_sparsity_profile(np.zeros((3, 16)))
        assert np.isfinite(profile).all()

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            filter_sparsity_profile(np.zeros(5))
        with pytest.raises(ConfigurationError):
            filter_sparsity_profile(np.zeros((2, 4)), top_fraction=1.5)

    def test_trained_autoencoder_filters_localise(self, digits_64):
        """Training on digits should concentrate filter energy relative
        to the random initialisation."""
        ae = SparseAutoencoder(64, 16, seed=0)
        before = filter_sparsity_profile(ae.w1).mean()
        for _ in range(200):
            _, g = ae.gradients(digits_64)
            ae.apply_update(g, 0.5)
        after = filter_sparsity_profile(ae.w1).mean()
        assert after > before
