"""Allocation-regression tests: the fused hot path must not allocate.

After a warm-up step populates the workspace arena, the workspace is
frozen (so any buffer miss raises) and ``tracemalloc`` watches further
training steps.  The peak traced allocation must stay far below one
batch- or weight-sized array — catching any reintroduced temporary, not
just gross leaks.  NumPy array data goes through the traced allocator,
so a single accidental ``a * b`` on the hot path fails the test.
"""

import tracemalloc

import numpy as np
import pytest

from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.mlp import DeepNetwork, one_hot
from repro.nn.rbm import RBM
from repro.runtime.workspace import Workspace

BATCH, N_VISIBLE, N_HIDDEN = 32, 128, 48

#: One (BATCH, N_VISIBLE) float64 batch is ~32 KiB and the weight matrix
#: is ~48 KiB; anything array-sized on the hot path trips this ceiling.
#: Small slack absorbs interpreter noise (frames, ints, tracemalloc's
#: own bookkeeping) without masking a real temporary.
PEAK_CEILING_BYTES = 16 * 1024


def _measure_steady_state_peak(step, warmup=3, steps=5) -> int:
    for _ in range(warmup):
        step()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        for _ in range(steps):
            step()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


class TestZeroAllocationSteadyState:
    def test_sae_training_step(self):
        x = np.random.default_rng(0).random((BATCH, N_VISIBLE))
        sae = SparseAutoencoder(N_VISIBLE, N_HIDDEN, seed=1)
        ws = Workspace(name="alloc-test-sae")

        def step():
            _, grads = sae.gradients_into(x, ws)
            sae.apply_update(grads, 0.01, workspace=ws)

        step()
        ws.freeze()  # a buffer miss is now a hard error, not a silent alloc
        peak = _measure_steady_state_peak(step)
        assert peak < PEAK_CEILING_BYTES, f"hot path allocated {peak} bytes"

    def test_rbm_training_step(self):
        x = (np.random.default_rng(0).random((BATCH, N_VISIBLE)) < 0.5).astype(
            np.float64
        )
        rbm = RBM(N_VISIBLE, N_HIDDEN, seed=2)
        ws = Workspace(name="alloc-test-rbm")
        gen = np.random.default_rng(3)

        def step():
            stats = rbm.contrastive_divergence(x, rng=gen, workspace=ws)
            rbm.apply_update(stats, 0.01, workspace=ws)

        step()
        ws.freeze()
        peak = _measure_steady_state_peak(step)
        assert peak < PEAK_CEILING_BYTES, f"hot path allocated {peak} bytes"

    def test_mlp_training_step(self):
        rng = np.random.default_rng(0)
        net = DeepNetwork([N_VISIBLE, N_HIDDEN, 10], head="softmax", seed=4)
        x = rng.random((BATCH, N_VISIBLE))
        targets = one_hot(rng.integers(0, 10, size=BATCH), 10)
        ws = Workspace(name="alloc-test-mlp")

        def step():
            _, grads = net.gradients_into(x, targets, ws)
            net.apply_update(grads, 0.01, workspace=ws)

        step()
        ws.freeze()
        peak = _measure_steady_state_peak(step)
        assert peak < PEAK_CEILING_BYTES, f"hot path allocated {peak} bytes"

    def test_reference_path_does_allocate(self):
        # Sanity check that the methodology can see allocations at all:
        # the reference kernels must trip the same ceiling the fused
        # kernels stay under.
        x = np.random.default_rng(0).random((BATCH, N_VISIBLE))
        sae = SparseAutoencoder(N_VISIBLE, N_HIDDEN, seed=1)

        def step():
            _, grads = sae.gradients(x)
            sae.apply_update(grads, 0.01)

        peak = _measure_steady_state_peak(step)
        assert peak > PEAK_CEILING_BYTES
