"""Inference-mode inverted dropout on the MLP and the stacked encoders.

Inverted scaling pays the ``1/(1-p)`` rescale at train time, so the
evaluation path (``training=False``, the default) must be a strict
no-op — a trained model serves unscaled.  The masked forward/backward
is also the substrate of the shard subsystem (structural keep-masks ride
the same ``dropout_masks=`` arguments), so determinism and the fused
parity here are load-bearing beyond regularisation.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.mlp import DeepNetwork, one_hot
from repro.nn.stacked import LayerSpec, StackedAutoencoder
from repro.runtime.workspace import Workspace


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(0).random((24, 12))


@pytest.fixture(scope="module")
def net():
    return DeepNetwork([12, 10, 8, 5], seed=0)


@pytest.fixture(scope="module")
def sae(x):
    model = StackedAutoencoder(
        12,
        [LayerSpec(10, epochs=1, batch_size=8), LayerSpec(8, epochs=1, batch_size=8)],
        seed=0,
    )
    model.pretrain(x)
    return model


class TestMaskSampling:
    def test_entries_are_zero_or_inverse_keep(self, net):
        masks = net.sample_dropout_masks(0.25, rng=3)
        assert len(masks) == 2  # one per hidden layer
        for mask, width in zip(masks, (10, 8)):
            assert mask.shape == (width,)
            assert set(np.unique(mask)) <= {0.0, 1.0 / 0.75}

    def test_deterministic_in_the_rng(self, net):
        a = net.sample_dropout_masks(0.5, rng=11)
        b = net.sample_dropout_masks(0.5, rng=11)
        assert all(np.array_equal(m, n) for m, n in zip(a, b))

    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_dropout_out_of_range_rejected(self, net, bad):
        with pytest.raises(ConfigurationError, match="dropout"):
            net.sample_dropout_masks(bad)

    def test_stack_masks_match_block_widths(self, sae):
        masks = sae.sample_dropout_masks(0.25, rng=3)
        assert [m.shape for m in masks] == [(10,), (8,)]
        for mask in masks:
            assert set(np.unique(mask)) <= {0.0, 1.0 / 0.75}


class TestEvalIsNoOp:
    def test_mlp_eval_ignores_dropout_rate(self, net, x):
        plain = net.predict_proba(x)
        served = net.predict_proba(x, dropout=0.5, rng=1)  # training=False
        assert np.array_equal(plain, served)

    def test_stack_eval_ignores_dropout_rate(self, sae, x):
        assert np.array_equal(
            sae.transform(x), sae.transform(x, dropout=0.5, rng=1)
        )

    def test_training_true_zero_dropout_is_still_clean(self, net, x):
        assert np.array_equal(
            net.predict_proba(x), net.predict_proba(x, dropout=0.0, training=True)
        )


class TestTrainingForward:
    def test_training_pass_is_deterministic_in_the_rng(self, net, x):
        a = net.predict_proba(x, dropout=0.4, rng=7, training=True)
        b = net.predict_proba(x, dropout=0.4, rng=7, training=True)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, net.predict_proba(x))

    def test_explicit_masks_pin_the_forward(self, net, x):
        masks = net.sample_dropout_masks(0.4, rng=7)
        pinned = net.predict_proba(x, dropout_masks=masks)
        sampled = net.predict_proba(x, dropout=0.4, rng=7, training=True)
        assert np.array_equal(pinned, sampled)

    def test_stack_training_matches_pinned_masks(self, sae, x):
        masks = sae.sample_dropout_masks(0.3, rng=5)
        assert np.array_equal(
            sae.transform(x, dropout=0.3, rng=5, training=True),
            sae.transform(x, dropout_masks=masks),
        )

    def test_stack_accepts_per_layer_none_entries(self, sae, x):
        masks = sae.sample_dropout_masks(0.3, rng=5)
        mixed = sae.transform(x, dropout_masks=[masks[0], None])
        only_first = sae.transform(x, dropout_masks=[masks[0], np.ones(8)])
        assert np.array_equal(mixed, only_first)

    def test_mask_count_validated(self, net, sae, x):
        with pytest.raises(ConfigurationError, match="dropout_masks"):
            net.predict_proba(x, dropout_masks=[np.ones(10)])
        with pytest.raises(ConfigurationError, match="dropout_masks"):
            sae.transform(x, dropout_masks=[np.ones(10)])


class TestMaskedGradients:
    def _problem(self, net, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.random((16, net.n_in))
        targets = one_hot(rng.integers(0, net.layers[-1].n_out, 16), net.layers[-1].n_out)
        return x, targets

    def test_dropped_unit_gets_no_gradient(self, net):
        x, targets = self._problem(net)
        masks = [np.ones(10), np.ones(8)]
        masks[0][3] = 0.0  # drop hidden unit 3 of layer 1
        _, grads = net.gradients(x, targets, dropout_masks=masks)
        dw0, db0 = grads[0]
        assert np.all(dw0[3] == net.weight_decay * net.layers[0].w[3])
        assert db0[3] == 0.0

    def test_fused_matches_reference_under_masks(self, net):
        x, targets = self._problem(net, seed=2)
        masks = net.sample_dropout_masks(0.4, rng=9)
        loss_ref, g_ref = net.gradients(x, targets, dropout_masks=masks)
        loss_fused, g_fused = net.gradients_into(
            x, targets, Workspace(), dropout_masks=masks
        )
        assert loss_ref == loss_fused
        for (dw_r, db_r), (dw_f, db_f) in zip(g_ref, g_fused):
            assert np.max(np.abs(dw_r - dw_f)) <= 1e-10
            assert np.max(np.abs(db_r - db_f)) <= 1e-10

    def test_masked_gradient_is_the_masked_loss_gradient(self, net):
        """Finite differences against the *masked* forward loss: the
        backward pass must differentiate exactly the function the masked
        forward computes."""
        x, targets = self._problem(net, seed=4)
        masks = net.sample_dropout_masks(0.3, rng=6)

        def masked_loss():
            out = net.predict_proba(x, dropout_masks=masks)
            data = -float(np.sum(targets * np.log(np.clip(out, 1e-12, None))))
            data /= x.shape[0]
            decay = 0.5 * net.weight_decay * sum(
                float(np.sum(l.w * l.w)) for l in net.layers
            )
            return data + decay

        _, grads = net.gradients(x, targets, dropout_masks=masks)
        eps = 1e-6
        rng = np.random.default_rng(8)
        for layer_index in range(len(net.layers)):
            w = net.layers[layer_index].w
            for _ in range(4):
                i = int(rng.integers(w.shape[0]))
                j = int(rng.integers(w.shape[1]))
                orig = w[i, j]
                w[i, j] = orig + eps
                hi = masked_loss()
                w[i, j] = orig - eps
                lo = masked_loss()
                w[i, j] = orig
                numeric = (hi - lo) / (2 * eps)
                analytic = grads[layer_index][0][i, j]
                assert abs(numeric - analytic) < 1e-5
