"""Tests for repro.nn.cost — the sparse-autoencoder objective (Eqs. 3-6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.cost import SparseAutoencoderCost


class TestConstruction:
    def test_defaults_valid(self):
        cost = SparseAutoencoderCost()
        assert cost.sparsity_weight == 0.0

    def test_rejects_negative_decay(self):
        with pytest.raises(ConfigurationError):
            SparseAutoencoderCost(weight_decay=-1.0)

    def test_rejects_target_outside_open_interval(self):
        with pytest.raises(ConfigurationError):
            SparseAutoencoderCost(sparsity_target=0.0)
        with pytest.raises(ConfigurationError):
            SparseAutoencoderCost(sparsity_target=1.0)

    def test_rejects_negative_beta(self):
        with pytest.raises(ConfigurationError):
            SparseAutoencoderCost(sparsity_weight=-0.1)

    def test_frozen(self):
        cost = SparseAutoencoderCost()
        with pytest.raises(Exception):
            cost.weight_decay = 1.0


class TestReconstruction:
    def test_zero_for_perfect_reconstruction(self):
        cost = SparseAutoencoderCost()
        x = np.random.default_rng(0).random((6, 4))
        assert cost.reconstruction(x, x) == 0.0

    def test_known_value(self):
        cost = SparseAutoencoderCost()
        x = np.zeros((2, 3))
        z = np.ones((2, 3))
        # 0.5 * sum(1) / m = 0.5 * 6 / 2
        assert cost.reconstruction(z, x) == pytest.approx(1.5)

    def test_scales_inverse_with_batch(self):
        cost = SparseAutoencoderCost()
        x = np.zeros((4, 3))
        z = np.ones((4, 3))
        half = cost.reconstruction(z[:2], x[:2])
        full = cost.reconstruction(z, x)
        assert half == pytest.approx(full)  # per-example mean is batch invariant


class TestDecay:
    def test_known_value(self):
        cost = SparseAutoencoderCost(weight_decay=0.2)
        w1 = np.ones((2, 2))
        w2 = 2 * np.ones((1, 2))
        # 0.5*0.2*(4 + 8)
        assert cost.decay(w1, w2) == pytest.approx(1.2)

    def test_zero_decay(self):
        cost = SparseAutoencoderCost(weight_decay=0.0)
        assert cost.decay(np.ones((3, 3)), np.ones((3, 3))) == 0.0


class TestSparsity:
    def test_disabled_when_beta_zero(self):
        cost = SparseAutoencoderCost(sparsity_weight=0.0)
        assert cost.sparsity(np.array([0.9, 0.9])) == 0.0
        assert (cost.sparsity_delta(np.array([0.9])) == 0).all()

    def test_zero_at_target(self):
        cost = SparseAutoencoderCost(sparsity_target=0.2, sparsity_weight=3.0)
        assert cost.sparsity(np.full(5, 0.2)) == pytest.approx(0.0, abs=1e-10)

    def test_positive_off_target(self):
        cost = SparseAutoencoderCost(sparsity_target=0.05, sparsity_weight=1.0)
        assert cost.sparsity(np.array([0.5])) > 0

    def test_delta_scales_with_beta(self):
        c1 = SparseAutoencoderCost(sparsity_target=0.05, sparsity_weight=1.0)
        c2 = SparseAutoencoderCost(sparsity_target=0.05, sparsity_weight=2.0)
        rho_hat = np.array([0.3, 0.7])
        np.testing.assert_allclose(
            2 * c1.sparsity_delta(rho_hat), c2.sparsity_delta(rho_hat)
        )


class TestTotal:
    def test_total_is_sum_of_terms(self):
        cost = SparseAutoencoderCost(
            weight_decay=0.01, sparsity_target=0.1, sparsity_weight=0.5
        )
        rng = np.random.default_rng(1)
        x = rng.random((5, 4))
        z = rng.random((5, 4))
        w1 = rng.random((3, 4))
        w2 = rng.random((4, 3))
        rho = rng.uniform(0.05, 0.9, 3)
        expected = cost.reconstruction(z, x) + cost.decay(w1, w2) + cost.sparsity(rho)
        assert cost.total(z, x, w1, w2, rho) == pytest.approx(expected)
