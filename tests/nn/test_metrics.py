"""Tests for repro.nn.metrics and the guided parallel-for schedule."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.metrics import (
    accuracy_score,
    confusion_matrix,
    macro_f1,
    mean_squared_reconstruction,
    peak_signal_to_noise,
    per_class_report,
)


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        y = np.array([0, 1, 2, 1, 0])
        m = confusion_matrix(y, y)
        assert (m == np.diag([2, 2, 1])).all()

    def test_known_errors(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 1, 1])
        m = confusion_matrix(true, pred)
        assert m[0, 0] == 1 and m[0, 1] == 1 and m[1, 1] == 2

    def test_explicit_n_classes(self):
        m = confusion_matrix(np.array([0]), np.array([0]), n_classes=5)
        assert m.shape == (5, 5)

    def test_total_count_preserved(self, rng):
        true = rng.integers(0, 4, 100)
        pred = rng.integers(0, 4, 100)
        assert confusion_matrix(true, pred).sum() == 100

    def test_validation(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.zeros(3), np.zeros(4))
        with pytest.raises(ConfigurationError):
            confusion_matrix(np.array([-1]), np.array([0]))
        with pytest.raises(ConfigurationError):
            confusion_matrix(np.array([5]), np.array([0]), n_classes=3)
        with pytest.raises(ConfigurationError):
            confusion_matrix(np.array([]), np.array([]))


class TestScores:
    def test_accuracy(self):
        assert accuracy_score(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_per_class_report_values(self):
        true = np.array([0, 0, 1, 1, 1])
        pred = np.array([0, 1, 1, 1, 0])
        report = per_class_report(true, pred)
        assert report[0]["recall"] == pytest.approx(0.5)
        assert report[0]["precision"] == pytest.approx(0.5)
        assert report[1]["recall"] == pytest.approx(2 / 3)
        assert report[1]["precision"] == pytest.approx(2 / 3)
        assert report[0]["support"] == 2

    def test_absent_class_omitted(self):
        report = per_class_report(np.array([0, 0]), np.array([0, 0]))
        assert set(report) == {0}

    def test_macro_f1_perfect(self):
        y = np.array([0, 1, 2])
        assert macro_f1(y, y) == pytest.approx(1.0)

    def test_macro_f1_degenerate(self):
        # Predicting only class 0: class 1 F1 = 0, macro averages down.
        true = np.array([0, 1])
        pred = np.array([0, 0])
        assert 0.0 < macro_f1(true, pred) < 1.0


class TestReconstructionMetrics:
    def test_mse(self):
        x = np.zeros((2, 2))
        r = np.ones((2, 2))
        assert mean_squared_reconstruction(x, r) == 1.0

    def test_psnr_perfect_is_infinite(self):
        x = np.random.default_rng(0).random((3, 3))
        assert peak_signal_to_noise(x, x) == float("inf")

    def test_psnr_known_value(self):
        x = np.zeros((1, 4))
        r = np.full((1, 4), 0.1)  # mse = 0.01 -> psnr = 20 dB at peak 1
        assert peak_signal_to_noise(x, r) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ShapeError):
            mean_squared_reconstruction(np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            peak_signal_to_noise(np.zeros((1, 1)), np.zeros((1, 1)), peak=0)


class TestGuidedSchedule:
    def test_guided_between_static_and_dynamic_dispatch(self):
        """Guided pays far fewer dispatches than dynamic chunk=1 while
        keeping dynamic's balancing."""
        from repro.phi.spec import XEON_PHI_5110P
        from repro.runtime.parallel_for import simulate_parallel_for

        n, body = 100_000, 1e-7
        static = simulate_parallel_for(n, body, XEON_PHI_5110P, schedule="static")
        guided = simulate_parallel_for(n, body, XEON_PHI_5110P, schedule="guided")
        dynamic = simulate_parallel_for(
            n, body, XEON_PHI_5110P, schedule="dynamic", chunk_size=1
        )
        assert guided.total_s < dynamic.total_s
        # Guided's dispatch overhead is modest vs static's zero.
        assert guided.total_s < 2.0 * static.total_s

    def test_guided_single_thread_serial(self):
        from repro.phi.spec import XEON_PHI_5110P
        from repro.runtime.parallel_for import simulate_parallel_for

        t = simulate_parallel_for(100, 1e-3, XEON_PHI_5110P, n_threads=1, schedule="guided")
        assert t.total_s == pytest.approx(0.1)

    def test_guided_respects_min_chunk(self):
        from repro.phi.spec import XEON_PHI_5110P
        from repro.runtime.parallel_for import simulate_parallel_for

        fine = simulate_parallel_for(
            10_000, 1e-7, XEON_PHI_5110P, schedule="guided", chunk_size=1
        )
        coarse = simulate_parallel_for(
            10_000, 1e-7, XEON_PHI_5110P, schedule="guided", chunk_size=512
        )
        assert coarse.total_s <= fine.total_s + 1e-12
