"""Tests for repro.workloads.trace — format, validation, round-trip."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.trace import (
    TRACE_SCHEMA,
    Trace,
    TraceEvent,
    merge_events,
    trace_from_arrivals,
)


def make_trace(events=None, **overrides):
    kwargs = dict(
        name="t",
        seed=0,
        duration_s=1.0,
        payload_pool=8,
        events=tuple(events or (TraceEvent(0.1, "request", 3),
                                TraceEvent(0.2, "train"),
                                TraceEvent(0.2, "request", 7))),
    )
    kwargs.update(overrides)
    return Trace(**kwargs)


class TestEventJson:
    def test_request_round_trip(self):
        e = TraceEvent(0.125, "request", 42)
        assert TraceEvent.from_json(e.to_json()) == e

    def test_train_omits_key(self):
        e = TraceEvent(0.5, "train")
        obj = json.loads(e.to_json())
        assert "key" not in obj
        assert TraceEvent.from_json(e.to_json()) == e


class TestValidation:
    def test_valid_trace_passes(self):
        make_trace().validate()

    def test_unknown_schema(self):
        with pytest.raises(ConfigurationError, match="schema"):
            make_trace(schema="repro.trace/v99").validate()

    def test_bad_duration(self):
        with pytest.raises(ConfigurationError, match="duration_s"):
            make_trace(duration_s=0.0).validate()

    def test_bad_pool(self):
        with pytest.raises(ConfigurationError, match="payload_pool"):
            make_trace(payload_pool=0).validate()

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown kind"):
            make_trace(events=(TraceEvent(0.1, "teleport"),)).validate()

    def test_negative_time(self):
        with pytest.raises(ConfigurationError, match="negative time"):
            make_trace(events=(TraceEvent(-0.1),)).validate()

    def test_out_of_order_times(self):
        events = (TraceEvent(0.2), TraceEvent(0.1))
        with pytest.raises(ConfigurationError, match="precedes"):
            make_trace(events=events).validate()

    def test_key_outside_pool(self):
        with pytest.raises(ConfigurationError, match="outside payload pool"):
            make_trace(events=(TraceEvent(0.1, "request", 8),)).validate()


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        trace = make_trace(params={"rate_rps": 100.0}, pattern="p")
        path = trace.save(tmp_path / "t.trace.jsonl")
        loaded = Trace.load(path)
        assert loaded == trace
        assert loaded.fingerprint() == trace.fingerprint()

    def test_load_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            Trace.load(path)

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "raw.jsonl"
        path.write_text('{"t": 0.1, "kind": "request", "key": 0}\n')
        with pytest.raises(ConfigurationError, match="schema header"):
            Trace.load(path)

    def test_load_rejects_event_count_mismatch(self, tmp_path):
        trace = make_trace()
        path = trace.save(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one event
        with pytest.raises(ConfigurationError, match="declares"):
            Trace.load(path)

    def test_load_validate_flag(self, tmp_path):
        bad = make_trace(events=(TraceEvent(0.2), TraceEvent(0.1)))
        path = bad.save(tmp_path / "bad.jsonl")
        with pytest.raises(ConfigurationError):
            Trace.load(path)
        assert Trace.load(path, validate=False).n_requests == 2


class TestDeterminism:
    def test_same_seed_same_fingerprint(self):
        a = trace_from_arrivals(PoissonArrivals(500.0), 0.5, seed=7)
        b = trace_from_arrivals(PoissonArrivals(500.0), 0.5, seed=7)
        assert a.events == b.events
        assert a.fingerprint() == b.fingerprint()

    def test_different_seed_differs(self):
        a = trace_from_arrivals(PoissonArrivals(500.0), 0.5, seed=1)
        b = trace_from_arrivals(PoissonArrivals(500.0), 0.5, seed=2)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_sensitive_to_header(self):
        a = make_trace()
        b = make_trace(name="other")
        assert a.fingerprint() != b.fingerprint()

    def test_counts(self):
        trace = make_trace()
        assert trace.n_requests == 2
        assert trace.n_train == 1

    def test_bad_pool_rejected_up_front(self):
        with pytest.raises(ConfigurationError, match="payload_pool"):
            trace_from_arrivals(PoissonArrivals(10.0), 0.5, payload_pool=0)


class TestMerge:
    def test_time_ordered(self):
        a = [TraceEvent(0.1), TraceEvent(0.3)]
        b = [TraceEvent(0.2, "train")]
        merged = merge_events(a, b)
        assert [e.t for e in merged] == [0.1, 0.2, 0.3]

    def test_ties_keep_group_order(self):
        requests = [TraceEvent(0.5, "request", 1)]
        train = [TraceEvent(0.5, "train")]
        assert merge_events(requests, train)[0].kind == "request"
        assert merge_events(train, requests)[0].kind == "train"
