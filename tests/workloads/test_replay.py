"""Tests for repro.workloads.replay — the duck-typed trace replayer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serve.batcher import BatchPolicy
from repro.serve.cache import FeatureCache
from repro.serve.engine import ConstantServiceModel, ServingEngine
from repro.serve.registry import ServableModel
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.replay import TraceReplayer
from repro.workloads.trace import Trace, TraceEvent, trace_from_arrivals


@pytest.fixture
def servable(small_ae):
    return ServableModel("ae", small_ae)


def make_engine(servable, max_batch=16, queue_depth=64, cache=None):
    return ServingEngine(
        servable,
        policy=BatchPolicy(max_batch_size=max_batch, max_wait_s=2e-3,
                           max_queue_depth=queue_depth),
        service_model=ConstantServiceModel(base_s=1e-3, per_example_s=5e-5),
        cache=cache,
    )


def poisson_trace(seed=0, rate=1000.0, duration=0.3, **kwargs):
    return trace_from_arrivals(
        PoissonArrivals(rate), duration, seed=seed, **kwargs
    )


class TestReplay:
    def test_accounting_consistent(self, servable):
        trace = poisson_trace()
        report = TraceReplayer(make_engine(servable), trace).run()
        assert report.offered == trace.n_requests
        assert report.completed + report.shed + report.errors == report.offered
        assert report.errors == 0
        assert report.makespan_s >= trace.duration_s
        assert report.latency_p50_s <= report.latency_p95_s <= report.latency_p99_s
        assert report.fingerprint == trace.fingerprint()

    def test_bit_identical_across_runs(self, servable, small_ae):
        trace = poisson_trace(seed=42)
        first = TraceReplayer(make_engine(servable), trace).run()
        second = TraceReplayer(
            make_engine(ServableModel("ae2", small_ae)), trace
        ).run()
        assert first == second  # every field, including p99

    def test_single_use(self, servable):
        replayer = TraceReplayer(make_engine(servable), poisson_trace())
        replayer.run()
        with pytest.raises(ServingError, match="single-use"):
            replayer.run()

    def test_invalid_trace_rejected_on_construction(self, servable):
        bad = Trace(name="bad", seed=0, duration_s=1.0, payload_pool=4,
                    events=(TraceEvent(0.2), TraceEvent(0.1)))
        with pytest.raises(ConfigurationError, match="precedes"):
            TraceReplayer(make_engine(servable), bad)

    def test_train_events_require_trainer(self, servable):
        trace = Trace(name="t", seed=0, duration_s=1.0, payload_pool=4,
                      events=(TraceEvent(0.1, "train"),))
        with pytest.raises(ConfigurationError, match="trainer"):
            TraceReplayer(make_engine(servable), trace)

    def test_explicit_payloads_validated(self, servable):
        trace = poisson_trace(payload_pool=8)
        with pytest.raises(ConfigurationError, match="payloads"):
            TraceReplayer(make_engine(servable), trace,
                          payloads=np.zeros((8, 7)))
        with pytest.raises(ConfigurationError, match="rows"):
            TraceReplayer(make_engine(servable), trace,
                          payloads=np.zeros((4, 25)))

    def test_shed_counted_when_target_refuses(self, servable):
        engine = make_engine(servable, max_batch=1, queue_depth=2)
        report = TraceReplayer(engine, poisson_trace(rate=4000.0)).run()
        assert report.shed > 0
        assert report.shed == engine.metrics.rejected
        assert report.shed_rate == pytest.approx(report.shed / report.offered)

    def test_inline_cache_hits_counted_once(self, servable):
        trace = poisson_trace(rate=2000.0, payload_pool=4)
        engine = make_engine(servable, cache=FeatureCache())
        report = TraceReplayer(engine, trace).run()
        assert report.cache_hits > 0
        assert report.completed == report.offered  # hits aren't double-counted
        assert report.errors == 0


class _FlakyTrainer:
    """step() fails on the second call; charges 1 ms otherwise."""

    def __init__(self):
        self.calls = 0

    def step(self, now):
        self.calls += 1
        if self.calls == 2:
            raise RuntimeError("optimizer diverged")
        return 1e-3


class TestTrainEvents:
    def trace_with_train(self):
        events = (
            TraceEvent(0.01, "request", 0),
            TraceEvent(0.02, "train"),
            TraceEvent(0.03, "train"),
            TraceEvent(0.04, "train"),
            TraceEvent(0.05, "request", 1),
        )
        return Trace(name="mixed", seed=0, duration_s=0.1, payload_pool=4,
                     events=events)

    def test_trainer_steps_counted(self, servable):
        trainer = _FlakyTrainer()
        report = TraceReplayer(
            make_engine(servable), self.trace_with_train(), trainer=trainer
        ).run()
        assert trainer.calls == 3
        assert report.train_steps == 2
        assert report.train_failures == 1
        assert report.train_seconds == pytest.approx(2e-3)
        assert "optimizer diverged" in report.first_train_error

    def test_trainer_failure_never_kills_serving(self, servable):
        report = TraceReplayer(
            make_engine(servable), self.trace_with_train(),
            trainer=_FlakyTrainer(),
        ).run()
        assert report.completed == 2
        assert report.errors == 0


class TestActions:
    def test_actions_fire_at_their_instant(self, servable):
        seen = []
        report = TraceReplayer(
            make_engine(servable),
            poisson_trace(duration=0.2),
            actions=[(0.05, seen.append), (0.15, seen.append)],
        ).run()
        assert seen == [0.05, 0.15]
        assert report.errors == 0
