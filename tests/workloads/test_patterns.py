"""Tests for repro.workloads.patterns — the named workload catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    PATTERNS,
    QUICK_OVERRIDES,
    cache_busting,
    diurnal,
    flash_crowd,
    generate,
    mixed_train_serve,
)


class TestCatalog:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_generates_valid_trace(self, name):
        trace = generate(name, seed=3, quick=True)
        trace.validate()
        assert trace.pattern == name
        assert trace.n_requests > 0

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_bit_identical_at_fixed_seed(self, name):
        """The acceptance criterion: every pattern replays bit-identically."""
        a = generate(name, seed=11, quick=True)
        b = generate(name, seed=11, quick=True)
        assert a.events == b.events
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_seeds_decorrelate(self, name):
        a = generate(name, seed=1, quick=True)
        b = generate(name, seed=2, quick=True)
        assert a.fingerprint() != b.fingerprint()

    def test_quick_overrides_shrink_every_pattern(self):
        assert set(QUICK_OVERRIDES) == set(PATTERNS)
        for name in PATTERNS:
            quick = generate(name, seed=0, quick=True)
            full = generate(name, seed=0)
            assert quick.duration_s < full.duration_s
            assert quick.n_requests < full.n_requests

    def test_overrides_compose_with_quick(self):
        trace = generate("diurnal", seed=0, quick=True, payload_pool=16)
        assert trace.payload_pool == 16
        assert trace.duration_s == QUICK_OVERRIDES["diurnal"]["duration_s"]

    def test_unknown_pattern(self):
        with pytest.raises(ConfigurationError, match="unknown pattern"):
            generate("tsunami")


class TestDiurnal:
    def test_rate_tracks_the_curve(self):
        trace = diurnal(seed=0, duration_s=1.0, base_rps=100.0,
                        peak_rps=4000.0, period_s=1.0)
        # Crest is the middle half-period; trough the outer quarters.
        crest = sum(1 for e in trace.events if 0.25 <= e.t < 0.75)
        trough = trace.n_requests - crest
        assert crest > 2 * trough

    def test_key_popularity_skewed(self):
        trace = diurnal(seed=0, payload_pool=64, skew=2.0)
        low = sum(1 for e in trace.events if e.key < 32)
        # key < 32 ⇔ u² < 0.5 ⇔ u < 0.707: ~71% under skew, 50% uniform.
        assert low > 0.6 * trace.n_requests

    def test_peak_below_base_rejected(self):
        with pytest.raises(ConfigurationError, match="peak_rps"):
            diurnal(peak_rps=10.0, base_rps=100.0)


class TestFlashCrowd:
    def test_spike_dominates_its_window(self):
        trace = flash_crowd(seed=0, duration_s=1.0, base_rps=200.0,
                            crowd_factor=10.0, at_s=0.4, hold_s=0.2)
        in_spike = sum(1 for e in trace.events if 0.4 <= e.t < 0.6)
        outside = trace.n_requests - in_spike
        # 0.2 s at 2000 rps ≈ 400 vs 0.8 s at 200 rps ≈ 160.
        assert in_spike > outside

    def test_spike_concentrates_on_hot_keys(self):
        trace = flash_crowd(seed=0, n_hot=4, hot_prob=0.9)
        spike = [e for e in trace.events if 0.4 <= e.t < 0.6]
        hot = sum(1 for e in spike if e.key < 4)
        assert hot > 0.7 * len(spike)

    def test_spike_must_start_inside_window(self):
        with pytest.raises(ConfigurationError, match="at_s"):
            flash_crowd(at_s=2.0, duration_s=1.0)


class TestCacheBusting:
    def test_keys_sweep_sequentially(self):
        trace = cache_busting(seed=0, duration_s=0.2, rate_rps=500.0,
                              payload_pool=32)
        keys = [e.key for e in trace.events]
        assert keys == [i % 32 for i in range(len(keys))]


class TestMixedTrainServe:
    def test_train_cadence(self):
        trace = mixed_train_serve(seed=0, duration_s=1.0, train_every_s=0.1)
        train_ts = [e.t for e in trace.events if e.kind == "train"]
        assert train_ts == pytest.approx([0.05 + 0.1 * i for i in range(10)])

    def test_events_interleaved_in_order(self):
        trace = generate("mixed_train_serve", seed=0, quick=True)
        assert trace.n_train > 0
        times = [e.t for e in trace.events]
        assert times == sorted(times)
