"""Tests for repro.workloads.slo — the SLO gate."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.replay import ReplayReport
from repro.workloads.slo import SLOGate


def report(offered=100, completed=95, shed=5, errors=0, p99_s=0.01):
    return ReplayReport(
        trace_name="t",
        fingerprint="f",
        offered=offered,
        completed=completed,
        shed=shed,
        errors=errors,
        cache_hits=0,
        train_steps=0,
        train_failures=0,
        train_seconds=0.0,
        makespan_s=1.0,
        throughput_rps=float(completed),
        goodput_fraction=completed / offered if offered else 0.0,
        latency_p50_s=p99_s / 2,
        latency_p95_s=p99_s * 0.9,
        latency_p99_s=p99_s,
    )


class TestValidation:
    def test_bad_p99(self):
        with pytest.raises(ConfigurationError, match="p99_ms"):
            SLOGate(p99_ms=0.0)

    @pytest.mark.parametrize("field", ["error_budget", "shed_budget"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_budgets_must_be_fractions(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            SLOGate(p99_ms=10.0, **{field: value})


class TestEvaluate:
    def test_clean_report_passes(self):
        gate = SLOGate(p99_ms=20.0, error_budget=0.0, shed_budget=0.1)
        assert gate.evaluate(report()) == []
        assert gate.check(report())

    def test_p99_violation(self):
        gate = SLOGate(p99_ms=5.0)
        failures = gate.evaluate(report(p99_s=0.01))
        assert len(failures) == 1
        assert "p99" in failures[0]

    def test_error_budget_violation(self):
        gate = SLOGate(p99_ms=20.0, error_budget=0.01)
        failures = gate.evaluate(report(completed=90, errors=5))
        assert any("error rate" in f for f in failures)
        assert not gate.check(report(completed=90, errors=5))

    def test_shed_budget_violation(self):
        gate = SLOGate(p99_ms=20.0, shed_budget=0.01)
        assert any("shed rate" in f for f in gate.evaluate(report(shed=5)))

    def test_all_three_reported_together(self):
        gate = SLOGate(p99_ms=1.0, error_budget=0.0, shed_budget=0.0)
        failures = gate.evaluate(report(completed=80, shed=10, errors=10,
                                        p99_s=0.05))
        assert len(failures) == 3

    def test_empty_report_passes(self):
        gate = SLOGate(p99_ms=1.0)
        empty = report(offered=0, completed=0, shed=0, p99_s=0.0)
        assert gate.check(empty)  # 0/0 rates are 0, p99 is 0


class TestAsRow:
    def test_row_fields(self):
        row = SLOGate(p99_ms=30.0, error_budget=0.0, shed_budget=0.05).as_row()
        assert row == {
            "slo_p99_ms": 30.0,
            "slo_error_budget": 0.0,
            "slo_shed_budget": 0.05,
        }
