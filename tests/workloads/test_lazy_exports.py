"""Smoke tests: repro.workloads is reachable from `repro` without import cost."""

import subprocess
import sys

import pytest

import repro


class TestLazyWorkloadsExports:
    def test_import_repro_does_not_import_workloads(self):
        code = (
            "import sys; import repro; "
            "sys.exit(1 if any(m.startswith('repro.workloads') "
            "for m in sys.modules) else 0)"
        )
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0, "importing repro eagerly imported repro.workloads"

    def test_workloads_names_resolve_lazily(self):
        assert repro.Trace is not None
        assert repro.SLOGate(p99_ms=10.0).p99_ms == 10.0
        from repro.workloads import Trace, generate

        assert repro.Trace is Trace
        assert repro.generate_trace is generate  # aliased to avoid a generic name

    def test_lazy_names_in_all(self):
        for name in ("Trace", "TraceReplayer", "SLOGate", "generate_trace"):
            assert name in repro.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing
