"""Tests for repro.data.natural_images — 1/f synthetic natural images."""

import numpy as np
import pytest

from repro.data.natural_images import make_natural_images, whiten_patches


class TestMakeNaturalImages:
    def test_shape(self):
        imgs = make_natural_images(5, size=32, seed=0)
        assert imgs.shape == (5, 32, 32)

    def test_standardised(self):
        imgs = make_natural_images(3, size=64, seed=1)
        for img in imgs:
            assert abs(img.mean()) < 1e-10
            assert img.std() == pytest.approx(1.0)

    def test_seed_reproducible(self):
        a = make_natural_images(2, size=16, seed=7)
        b = make_natural_images(2, size=16, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_spectrum_falls_with_frequency(self):
        """The defining property: radially averaged power decreasing in f."""
        imgs = make_natural_images(8, size=64, spectral_exponent=1.0, seed=3)
        power = np.zeros((64, 64))
        for img in imgs:
            power += np.abs(np.fft.fft2(img)) ** 2
        fy = np.fft.fftfreq(64)[:, None]
        fx = np.fft.fftfreq(64)[None, :]
        freq = np.hypot(fy, fx).ravel()
        p = power.ravel()
        low = p[(freq > 0.02) & (freq < 0.08)].mean()
        high = p[(freq > 0.3) & (freq < 0.5)].mean()
        assert low > 10 * high

    def test_exponent_zero_is_white_noise(self):
        imgs = make_natural_images(8, size=64, spectral_exponent=0.0, seed=4)
        power = np.zeros((64, 64))
        for img in imgs:
            power += np.abs(np.fft.fft2(img)) ** 2
        fy = np.fft.fftfreq(64)[:, None]
        fx = np.fft.fftfreq(64)[None, :]
        freq = np.hypot(fy, fx).ravel()
        p = power.ravel()
        low = p[(freq > 0.02) & (freq < 0.1)].mean()
        high = p[(freq > 0.3) & (freq < 0.5)].mean()
        assert 0.5 < low / high < 2.0  # flat spectrum

    def test_spatial_correlation_present(self):
        img = make_natural_images(1, size=64, seed=5)[0]
        neighbour_corr = np.corrcoef(img[:, :-1].ravel(), img[:, 1:].ravel())[0, 1]
        assert neighbour_corr > 0.5


class TestWhitenPatches:
    def test_output_shape(self, rng):
        x = rng.normal(size=(200, 16))
        assert whiten_patches(x).shape == (200, 16)

    def test_whitened_covariance_near_identity(self, rng):
        # Correlated data in, ~identity covariance out.
        base = rng.normal(size=(5000, 4))
        mix = rng.normal(size=(4, 8))
        x = base @ mix + rng.normal(scale=0.5, size=(5000, 8))
        w = whiten_patches(x, epsilon=1e-6)
        cov = w.T @ w / w.shape[0]
        np.testing.assert_allclose(cov, np.eye(8), atol=0.1)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            whiten_patches(np.zeros((2, 2, 2)))

    def test_epsilon_regularises_degenerate_data(self, rng):
        x = np.tile(rng.normal(size=(1, 6)), (50, 1))  # rank-0 after centering
        w = whiten_patches(x, epsilon=0.1)
        assert np.isfinite(w).all()
