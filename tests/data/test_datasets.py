"""Tests for repro.data.datasets — Dataset, mini-batches, chunk planning."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.data.datasets import ChunkPlan, Dataset, minibatch_indices, plan_chunks


class TestDataset:
    def test_properties(self, rng):
        ds = Dataset(rng.random((30, 7)))
        assert ds.n_examples == 30
        assert ds.n_features == 7
        assert len(ds) == 30
        assert ds.nbytes == 30 * 7 * 8

    def test_labels_length_checked(self, rng):
        with pytest.raises(ConfigurationError):
            Dataset(rng.random((10, 3)), labels=np.zeros(9))

    def test_minibatches_cover_everything_once(self, rng):
        x = np.arange(20, dtype=float).reshape(10, 2)
        ds = Dataset(x)
        seen = np.concatenate([b[:, 0] for b in ds.minibatches(3, seed=0)])
        assert sorted(seen) == sorted(x[:, 0])

    def test_minibatch_sizes(self, rng):
        ds = Dataset(rng.random((10, 2)))
        sizes = [len(b) for b in ds.minibatches(4, seed=0)]
        assert sizes == [4, 4, 2]

    def test_no_shuffle_keeps_order(self):
        x = np.arange(12, dtype=float).reshape(6, 2)
        ds = Dataset(x)
        first = next(iter(ds.minibatches(2, shuffle=False)))
        np.testing.assert_array_equal(first, x[:2])

    def test_subset(self, rng):
        ds = Dataset(rng.random((10, 2)), labels=np.arange(10))
        sub = ds.subset([1, 3, 5])
        assert sub.n_examples == 3
        np.testing.assert_array_equal(sub.labels, [1, 3, 5])

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            Dataset(np.zeros(5))


class TestMinibatchIndices:
    def test_partition(self):
        batches = minibatch_indices(10, 3, seed=0)
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert sorted(np.concatenate(batches)) == list(range(10))

    def test_deterministic(self):
        a = minibatch_indices(20, 5, seed=2)
        b = minibatch_indices(20, 5, seed=2)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestPlanChunks:
    def test_even_split(self):
        plan = plan_chunks(100, 8, chunk_examples=25, batch_size=5)
        assert plan.chunk_sizes == (25, 25, 25, 25)
        assert plan.n_chunks == 4
        assert plan.total_bytes == 100 * 8 * 8

    def test_ragged_tail(self):
        plan = plan_chunks(90, 4, chunk_examples=40, batch_size=10)
        assert plan.chunk_sizes == (40, 40, 10)

    def test_chunk_bytes(self):
        plan = plan_chunks(90, 4, 40, 10)
        assert plan.chunk_bytes(0) == 40 * 4 * 8
        assert plan.chunk_bytes(2) == 10 * 4 * 8

    def test_batches_in_chunk(self):
        plan = plan_chunks(90, 4, 40, 15)
        assert plan.batches_in_chunk(0) == 3  # ceil(40/15)
        assert plan.batches_in_chunk(2) == 1  # ceil(10/15)
        assert plan.total_batches == 7

    def test_single_chunk(self):
        plan = plan_chunks(50, 4, 1000, 10)
        assert plan.chunk_sizes == (50,)

    def test_batch_larger_than_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_chunks(100, 4, chunk_examples=10, batch_size=20)

    def test_itemsize_respected(self):
        plan = plan_chunks(10, 4, 10, 2, itemsize=4)
        assert plan.bytes_per_example == 16
