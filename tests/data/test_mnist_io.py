"""Tests for repro.data.mnist_io — IDX format round trips."""

import numpy as np
import pytest

from repro.data.mnist_io import (
    export_synthetic_digits,
    load_image_label_pair,
    read_idx,
    write_idx,
)
from repro.errors import ConfigurationError


class TestRoundTrips:
    @pytest.mark.parametrize(
        "array",
        [
            np.arange(24, dtype=np.uint8).reshape(2, 3, 4),
            np.arange(10, dtype=np.uint8),
            (np.random.default_rng(0).random((5, 6)) * 100).astype(np.float64),
            np.arange(-5, 5, dtype=np.int32).reshape(2, 5),
            np.array([1.5, -2.5], dtype=np.float32),
            np.array([-1, 0, 1], dtype=np.int8),
        ],
    )
    def test_write_read_preserves_values(self, tmp_path, array):
        path = tmp_path / "data.idx"
        write_idx(path, array)
        out = read_idx(path)
        assert out.shape == array.shape
        np.testing.assert_allclose(out, array)

    def test_gzip_round_trip(self, tmp_path):
        array = np.arange(100, dtype=np.uint8).reshape(10, 10)
        path = tmp_path / "data.idx.gz"
        write_idx(path, array)
        np.testing.assert_array_equal(read_idx(path), array)
        # Really gzip: magic bytes.
        assert open(path, "rb").read(2) == b"\x1f\x8b"

    def test_native_byte_order_on_read(self, tmp_path):
        path = tmp_path / "x.idx"
        write_idx(path, np.arange(6, dtype=np.int32).reshape(2, 3))
        out = read_idx(path)
        assert out.dtype.byteorder in ("=", "<", ">")[:2] or out.dtype.byteorder == "|"


class TestValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.idx"
        path.write_bytes(b"\x01\x02\x03\x04rest")
        with pytest.raises(ConfigurationError, match="magic"):
            read_idx(path)

    def test_unknown_type_byte_rejected(self, tmp_path):
        path = tmp_path / "junk.idx"
        path.write_bytes(bytes([0, 0, 0x42, 1]) + (4).to_bytes(4, "big") + b"abcd")
        with pytest.raises(ConfigurationError, match="type byte"):
            read_idx(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "short.idx"
        write_idx(path, np.arange(10, dtype=np.uint8))
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(ConfigurationError, match="truncated"):
            read_idx(path)

    def test_unsupported_dtype_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_idx(tmp_path / "x.idx", np.array([True, False]))


class TestImageLabelPair:
    def test_load_pair(self, tmp_path):
        images = (np.random.default_rng(1).random((7, 4, 4)) * 255).astype(np.uint8)
        labels = np.arange(7, dtype=np.uint8)
        write_idx(tmp_path / "img.idx", images)
        write_idx(tmp_path / "lbl.idx", labels)
        x, y = load_image_label_pair(tmp_path / "img.idx", tmp_path / "lbl.idx")
        assert x.shape == (7, 16)
        assert x.max() <= 1.0  # normalised from uint8
        np.testing.assert_array_equal(y, labels)

    def test_count_mismatch_rejected(self, tmp_path):
        write_idx(tmp_path / "img.idx", np.zeros((5, 2, 2), dtype=np.uint8))
        write_idx(tmp_path / "lbl.idx", np.zeros(6, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            load_image_label_pair(tmp_path / "img.idx", tmp_path / "lbl.idx")


class TestExportSynthetic:
    def test_export_and_reload(self, tmp_path):
        img_path, lbl_path = export_synthetic_digits(tmp_path, 20, size=10, seed=0)
        assert img_path.exists() and lbl_path.exists()
        x, y = load_image_label_pair(img_path, lbl_path)
        assert x.shape == (20, 100)
        assert set(np.unique(y)) <= set(range(10))
        assert x.max() <= 1.0 and x.min() >= 0.0
