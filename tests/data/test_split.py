"""Tests for repro.data.datasets.train_test_split and SGD's Nesterov flag."""

import numpy as np
import pytest

from repro.data.datasets import train_test_split
from repro.errors import ConfigurationError
from repro.optim.sgd import SGD


class TestTrainTestSplit:
    def test_sizes(self, rng):
        x = rng.random((100, 4))
        train, test = train_test_split(x, test_fraction=0.2, seed=0)
        assert train.shape == (80, 4)
        assert test.shape == (20, 4)

    def test_partition_is_exact(self, rng):
        x = np.arange(50, dtype=float).reshape(25, 2)
        train, test = train_test_split(x, test_fraction=0.4, seed=1)
        combined = sorted(np.concatenate([train[:, 0], test[:, 0]]))
        assert combined == sorted(x[:, 0])

    def test_labels_follow_rows(self, rng):
        x = np.arange(20, dtype=float).reshape(10, 2)
        labels = np.arange(10)
        x_tr, y_tr, x_te, y_te = train_test_split(x, labels, test_fraction=0.3, seed=2)
        np.testing.assert_array_equal(x_tr[:, 0] // 2, y_tr)
        np.testing.assert_array_equal(x_te[:, 0] // 2, y_te)

    def test_both_sides_nonempty_for_extreme_fractions(self, rng):
        x = rng.random((5, 2))
        train, test = train_test_split(x, test_fraction=0.01, seed=0)
        assert len(test) == 1 and len(train) == 4
        train, test = train_test_split(x, test_fraction=0.99, seed=0)
        assert len(train) == 1 and len(test) == 4

    def test_seed_reproducible(self, rng):
        x = rng.random((30, 3))
        a = train_test_split(x, test_fraction=0.3, seed=9)
        b = train_test_split(x, test_fraction=0.3, seed=9)
        np.testing.assert_array_equal(a[0], b[0])

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            train_test_split(rng.random((10, 2)), test_fraction=0.0)
        with pytest.raises(ConfigurationError):
            train_test_split(rng.random((1, 2)), test_fraction=0.5)
        with pytest.raises(ConfigurationError):
            train_test_split(rng.random((10, 2)), labels=np.zeros(9))


class TestNesterov:
    def _objective(self, theta, batch):
        diff = theta[None, :] - batch
        return 0.5 * float(np.mean(np.sum(diff**2, axis=1))), diff.mean(axis=0)

    def test_requires_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(nesterov=True, momentum=0.0)

    def test_converges(self, rng):
        data = rng.normal(loc=2.0, size=(200, 3))
        result = SGD(learning_rate=0.05, momentum=0.9, nesterov=True, seed=0).minimize(
            self._objective, np.zeros(3), data, batch_size=25, epochs=40
        )
        np.testing.assert_allclose(result.theta, data.mean(axis=0), atol=0.2)

    def test_differs_from_classical_momentum(self, rng):
        data = rng.normal(size=(100, 2))
        classical = SGD(learning_rate=0.1, momentum=0.9, seed=0).minimize(
            self._objective, np.full(2, 5.0), data, batch_size=20, epochs=2
        )
        nesterov = SGD(
            learning_rate=0.1, momentum=0.9, nesterov=True, seed=0
        ).minimize(self._objective, np.full(2, 5.0), data, batch_size=20, epochs=2)
        assert not np.allclose(classical.theta, nesterov.theta)
