"""Tests for repro.data.synth_digits — stroke-rendered digit images."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.data.synth_digits import digit_dataset, make_digit_images, render_digit


class TestRenderDigit:
    def test_shape_and_range(self):
        img = render_digit(3, size=16)
        assert img.shape == (16, 16)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_nonempty(self):
        for d in range(10):
            assert render_digit(d, size=16).sum() > 0, f"digit {d} rendered blank"

    def test_digits_are_distinct(self):
        imgs = [render_digit(d, size=16) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.allclose(imgs[i], imgs[j]), f"{i} and {j} identical"

    def test_rejects_bad_digit(self):
        with pytest.raises(ConfigurationError):
            render_digit(10)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ConfigurationError):
            render_digit(1, size=2)

    def test_shift_moves_mass(self):
        base = render_digit(1, size=24)
        shifted = render_digit(1, size=24, shift=(0.2, 0.0))
        cy_base = (np.arange(24)[None, :] * base).sum() / base.sum()
        cy_shift = (np.arange(24)[None, :] * shifted).sum() / shifted.sum()
        assert cy_shift > cy_base + 2  # moved right by ~0.2*24 pixels

    def test_stroke_width_increases_mass(self):
        thin = render_digit(0, size=24, stroke_width=0.03)
        thick = render_digit(0, size=24, stroke_width=0.1)
        assert thick.sum() > thin.sum()

    def test_deterministic(self):
        np.testing.assert_array_equal(render_digit(5, size=12), render_digit(5, size=12))


class TestMakeDigitImages:
    def test_shapes(self):
        imgs, labels = make_digit_images(20, size=10, seed=0)
        assert imgs.shape == (20, 10, 10)
        assert labels.shape == (20,)
        assert set(np.unique(labels)) <= set(range(10))

    def test_seed_reproducible(self):
        a, la = make_digit_images(10, size=8, seed=4)
        b, lb = make_digit_images(10, size=8, seed=4)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_jitter_varies_same_digit(self):
        imgs, labels = make_digit_images(200, size=12, seed=1)
        ones = imgs[labels == 1]
        assert len(ones) > 2
        assert not np.allclose(ones[0], ones[1])

    def test_no_jitter_is_canonical(self):
        imgs, labels = make_digit_images(50, size=12, seed=2, jitter=False)
        for img, d in zip(imgs, labels):
            np.testing.assert_array_equal(img, render_digit(int(d), size=12))


class TestDigitDataset:
    def test_flattened_shape(self):
        x, labels = digit_dataset(30, size=6, seed=0)
        assert x.shape == (30, 36)
        assert (x >= 0).all() and (x <= 1).all()

    def test_rows_vary(self):
        x, _ = digit_dataset(30, size=6, seed=0)
        assert np.std(x, axis=0).max() > 0.05
