"""Tests for repro.data.patches — random patch extraction + normalisation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.data.patches import extract_patches, normalize_patches


class TestExtractPatches:
    @pytest.fixture
    def images(self, rng):
        return rng.random((4, 20, 20))

    def test_flattened_shape(self, images):
        p = extract_patches(images, patch_size=5, n_patches=30, seed=0)
        assert p.shape == (30, 25)

    def test_unflattened_shape(self, images):
        p = extract_patches(images, 5, 30, seed=0, flatten=False)
        assert p.shape == (30, 5, 5)

    def test_patches_are_actual_subwindows(self, rng):
        # With one image and unique values we can locate each patch exactly.
        img = np.arange(100, dtype=float).reshape(1, 10, 10)
        patches = extract_patches(img, 3, 20, seed=1, flatten=False)
        for p in patches:
            top_left = p[0, 0]
            r, c = int(top_left) // 10, int(top_left) % 10
            np.testing.assert_array_equal(p, img[0, r : r + 3, c : c + 3])

    def test_seed_reproducible(self, images):
        a = extract_patches(images, 4, 10, seed=3)
        b = extract_patches(images, 4, 10, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_full_image_patch(self, images):
        p = extract_patches(images, 20, 5, seed=0, flatten=False)
        assert p.shape == (5, 20, 20)

    def test_rejects_oversize_patch(self, images):
        with pytest.raises(ShapeError):
            extract_patches(images, 21, 5)

    def test_rejects_2d_input(self):
        with pytest.raises(ShapeError):
            extract_patches(np.zeros((10, 10)), 3, 5)


class TestNormalizePatches:
    def test_output_range(self, rng):
        x = rng.normal(scale=5.0, size=(100, 16))
        out = normalize_patches(x)
        assert out.min() >= 0.1 - 1e-12
        assert out.max() <= 0.9 + 1e-12

    def test_custom_range(self, rng):
        x = rng.normal(size=(50, 9))
        out = normalize_patches(x, output_range=(0.0, 1.0))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_per_patch_dc_removed_before_scaling(self):
        # Two patches identical up to a DC offset must normalise identically.
        base = np.linspace(-1, 1, 8)
        x = np.vstack([base, base + 100.0])
        out = normalize_patches(x)
        np.testing.assert_allclose(out[0], out[1])

    def test_constant_patches_map_to_midpoint(self):
        x = np.full((3, 4), 7.0)
        out = normalize_patches(x)
        np.testing.assert_allclose(out, 0.5)

    def test_clipping_bounds_extremes(self, rng):
        x = rng.normal(size=(200, 10))
        x[0, 0] = 1e6  # a huge outlier
        out = normalize_patches(x, clip_std=3.0)
        assert out[0, 0] == pytest.approx(0.9)

    def test_rejects_non_2d(self):
        with pytest.raises(ShapeError):
            normalize_patches(np.zeros(5))

    def test_rejects_bad_range(self, rng):
        with pytest.raises(ValueError):
            normalize_patches(rng.normal(size=(5, 5)), output_range=(0.9, 0.1))
