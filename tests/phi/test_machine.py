"""Tests for repro.phi.machine — the simulated machine."""

import pytest

from repro.phi.kernels import elementwise, gemm
from repro.phi.machine import SimulatedMachine
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.backend import (
    OptimizationLevel,
    backend_for_level,
    optimized_cpu_backend,
)

IMPROVED = backend_for_level(OptimizationLevel.IMPROVED)
MKL = backend_for_level(OptimizationLevel.OPENMP_MKL)


@pytest.fixture
def machine():
    return SimulatedMachine(XEON_PHI_5110P, IMPROVED, record_trace=True)


class TestExecute:
    def test_clock_advances_by_kernel_total(self, machine):
        timing = machine.execute(gemm(1000, 500, 500))
        assert machine.clock == pytest.approx(timing.total_s)

    def test_stream_accumulates(self, machine):
        kernels = [gemm(100, 100, 100), elementwise(10_000)]
        elapsed = machine.execute_stream(kernels)
        assert machine.clock == pytest.approx(elapsed)
        assert len(machine.trace) == 2

    def test_breakdown_total_matches_clock(self, machine):
        machine.execute_stream([gemm(500, 200, 300), elementwise(5000), gemm(64, 64, 64)])
        assert machine.breakdown().total_s == pytest.approx(machine.clock)

    def test_reset_zeroes_clock_keeps_memory(self, machine):
        machine.memory.allocate("params", 1024)
        machine.execute(gemm(64, 64, 64))
        machine.reset()
        assert machine.clock == 0.0
        assert len(machine.trace) == 0
        assert machine.memory.in_use == 1024  # parameters stay resident

    def test_threads_property(self, machine):
        assert machine.threads == 240
        single = SimulatedMachine(XEON_E5620, optimized_cpu_backend(1))
        assert single.threads == 1


class TestWavefronts:
    def test_wavefront_of_one_equals_stream(self):
        a = SimulatedMachine(XEON_PHI_5110P, IMPROVED)
        b = SimulatedMachine(XEON_PHI_5110P, IMPROVED)
        k = gemm(256, 256, 256)
        a.execute_wavefront([k])
        b.execute_stream([k])
        assert a.clock == pytest.approx(b.clock)

    def test_overlap_saves_sync_not_busy(self):
        """Fig. 6 scheduling: a level of independent kernels pays every
        kernel's busy time but only one join."""
        kernels = [gemm(512, 256, 256), gemm(512, 256, 256), elementwise(100_000)]
        overlapping = SimulatedMachine(XEON_PHI_5110P, IMPROVED)
        serial = SimulatedMachine(XEON_PHI_5110P, MKL)  # no overlap_independent
        t_overlap = overlapping.execute_wavefront(list(kernels))
        t_serial = serial.execute_wavefront(list(kernels))
        assert t_overlap < t_serial
        # Busy time is preserved, only sync/overhead collapse.
        assert overlapping.breakdown().busy_s == pytest.approx(
            sum(overlapping.cost_model.time(k).busy_s for k in kernels)
        )

    def test_empty_wavefront_is_free(self):
        m = SimulatedMachine(XEON_PHI_5110P, IMPROVED)
        assert m.execute_wavefront([]) == 0.0
        assert m.clock == 0.0

    def test_execute_levels(self):
        m = SimulatedMachine(XEON_PHI_5110P, IMPROVED)
        levels = [[gemm(64, 64, 64)], [elementwise(1000), elementwise(1000)]]
        elapsed = m.execute_levels(levels)
        assert m.clock == pytest.approx(elapsed)
        assert len(m.trace) == 3

    def test_wavefront_trace_entries_cover_interval(self):
        m = SimulatedMachine(XEON_PHI_5110P, IMPROVED, record_trace=True)
        m.execute_wavefront([gemm(128, 128, 128), gemm(128, 128, 128)])
        entries = m.trace.entries
        assert entries[0].start_s == 0.0
        assert entries[-1].end_s == pytest.approx(m.clock)


class TestDeviceMemoryIntegration:
    def test_coprocessor_has_capacity(self):
        m = SimulatedMachine(XEON_PHI_5110P, IMPROVED)
        assert m.memory.capacity == 8 * 1024**3

    def test_host_is_uncapped(self):
        m = SimulatedMachine(XEON_E5620, optimized_cpu_backend())
        assert m.memory.capacity is None
