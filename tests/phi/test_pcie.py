"""Tests for repro.phi.pcie — the host↔device transfer model."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.pcie import PAPER_CHUNK_BYTES, PAPER_CHUNK_SECONDS, PCIeModel
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P


class TestBasics:
    def test_time_formula(self):
        model = PCIeModel(bandwidth=1e9, latency_s=1e-3, efficiency=0.5)
        assert model.time(5e8) == pytest.approx(1e-3 + 5e8 / 5e8)

    def test_zero_bytes_is_free(self):
        assert PCIeModel(bandwidth=1e9).time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            PCIeModel(bandwidth=1e9).time(-1)

    def test_time_monotone_in_bytes(self):
        model = PCIeModel(bandwidth=1e9)
        assert model.time(2e6) > model.time(1e6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PCIeModel(bandwidth=0)
        with pytest.raises(ConfigurationError):
            PCIeModel(bandwidth=1e9, efficiency=0.0)
        with pytest.raises(ConfigurationError):
            PCIeModel(bandwidth=1e9, latency_s=-1.0)


class TestCalibrations:
    def test_paper_calibrated_reproduces_13_seconds(self):
        """§IV.A: 'it costs 13s to transfer 10,000*4096 samples'."""
        model = PCIeModel.paper_calibrated()
        assert model.time(PAPER_CHUNK_BYTES) == pytest.approx(
            PAPER_CHUNK_SECONDS, rel=0.01
        )

    def test_for_spec_uses_link_capability(self):
        model = PCIeModel.for_spec(XEON_PHI_5110P)
        assert model.effective_bandwidth == pytest.approx(6.0e9 * 0.85)
        # The same chunk crosses the raw link in well under a second.
        assert model.time(PAPER_CHUNK_BYTES) < 0.1

    def test_for_spec_rejects_hosts(self):
        with pytest.raises(ConfigurationError, match="host"):
            PCIeModel.for_spec(XEON_E5620)

    def test_paper_rate_is_far_below_link_rate(self):
        """The measured staging path is orders of magnitude slower than the
        link — the reason DESIGN.md splits the two calibrations."""
        paper = PCIeModel.paper_calibrated().effective_bandwidth
        link = PCIeModel.for_spec(XEON_PHI_5110P).effective_bandwidth
        assert link / paper > 100
