"""Tests for repro.phi.ring — the bidirectional ring interconnect."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.ring import RingBus
from repro.phi.spec import XEON_PHI_5110P


@pytest.fixture
def ring():
    return RingBus(n_stops=8, hop_latency_s=1e-9)


class TestHops:
    def test_adjacent(self, ring):
        assert ring.hops(0, 1) == 1
        assert ring.hops(1, 0) == 1

    def test_wraparound_shortcut(self, ring):
        assert ring.hops(0, 7) == 1  # backwards around the ring

    def test_diameter(self, ring):
        assert ring.hops(0, 4) == 4
        assert ring.max_hops == 4

    def test_self_distance_zero(self, ring):
        assert ring.hops(3, 3) == 0

    def test_symmetry(self, ring):
        for i in range(8):
            for j in range(8):
                assert ring.hops(i, j) == ring.hops(j, i)

    def test_out_of_range_raises(self, ring):
        with pytest.raises(ConfigurationError):
            ring.hops(0, 8)

    def test_average_hops_closed_form(self, ring):
        # For 8 stops: distances from 0 are [1,2,3,4,3,2,1] -> mean 16/7.
        assert ring.average_hops == pytest.approx(16 / 7)


class TestTimes:
    def test_latency(self, ring):
        assert ring.latency(0, 2) == pytest.approx(2e-9)

    def test_broadcast_reaches_farthest(self, ring):
        assert ring.broadcast_time() == pytest.approx(4e-9)

    def test_barrier_two_traversals(self, ring):
        assert ring.barrier_time() == pytest.approx(8e-9)

    def test_transfer_adds_serialisation(self, ring):
        t = ring.transfer_time(1e9, 0, 1)
        assert t == pytest.approx(1e-9 + 1e9 / ring.link_bandwidth)

    def test_rejects_negative_bytes(self, ring):
        with pytest.raises(ConfigurationError):
            ring.transfer_time(-1, 0, 1)


class TestForSpec:
    def test_phi_ring(self):
        ring = RingBus.for_spec(XEON_PHI_5110P)
        assert ring.n_stops == 60
        assert ring.hop_latency_s == XEON_PHI_5110P.ring_hop_latency_s

    def test_barrier_time_below_spec_barrier_cost(self):
        """The spec's modeled software barrier must dominate the raw ring
        traversal (software overhead >> wire latency)."""
        ring = RingBus.for_spec(XEON_PHI_5110P)
        assert ring.barrier_time() < XEON_PHI_5110P.barrier_cost(240)

    def test_needs_two_stops(self):
        with pytest.raises(ConfigurationError):
            RingBus(n_stops=1, hop_latency_s=1e-9)
