"""Tests for repro.phi.kernels — the kernel vocabulary."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.kernels import (
    Kernel,
    KernelKind,
    barrier,
    elementwise,
    gemm,
    reduction,
    sample,
    transfer,
)


class TestGemm:
    def test_flops(self):
        k = gemm(10, 20, 30)
        assert k.flops == 2 * 10 * 20 * 30
        assert k.gemm_shape == (10, 20, 30)

    def test_traffic_counts_each_operand_once(self):
        k = gemm(10, 20, 30)
        assert k.bytes_read == 8 * (10 * 30 + 30 * 20)
        assert k.bytes_written == 8 * 10 * 20

    def test_rejects_zero_dim(self):
        with pytest.raises(ConfigurationError):
            gemm(0, 5, 5)

    def test_kernel_requires_shape(self):
        with pytest.raises(ConfigurationError):
            Kernel(kind=KernelKind.GEMM, name="bad")


class TestElementwise:
    def test_work_quantities(self):
        k = elementwise(100, flops_per_element=5, reads_per_element=2, writes_per_element=1)
        assert k.flops == 500
        assert k.bytes_read == 100 * 2 * 8
        assert k.bytes_written == 100 * 8
        assert k.n_elements == 100

    def test_bytes_total(self):
        k = elementwise(10)
        assert k.bytes_total == k.bytes_read + k.bytes_written

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            elementwise(0)


class TestReductionAndSample:
    def test_reduction_writes_outputs_only(self):
        k = reduction(1000, outputs=10)
        assert k.bytes_written == 80
        assert k.bytes_read == 8000

    def test_sample_cost_per_element(self):
        k = sample(50)
        assert k.kind is KernelKind.SAMPLE
        assert k.flops == 500  # 10 flops/elt: PRNG + compare


class TestTransferAndBarrier:
    def test_transfer_directions(self):
        assert transfer(100, to_device=True).kind is KernelKind.TRANSFER_H2D
        assert transfer(100, to_device=False).kind is KernelKind.TRANSFER_D2H
        assert transfer(64).is_transfer

    def test_transfer_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            transfer(0)

    def test_barrier_is_workless(self):
        b = barrier()
        assert b.flops == 0 and b.bytes_total == 0


class TestScaled:
    def test_scaled_multiplies_work(self):
        k = elementwise(10, flops_per_element=2)
        s = k.scaled(5)
        assert s.flops == 5 * k.flops
        assert s.bytes_read == 5 * k.bytes_read
        assert s.n_elements == 50

    def test_scaled_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            elementwise(10).scaled(0)

    def test_kernels_are_frozen(self):
        k = elementwise(10)
        with pytest.raises(Exception):
            k.flops = 99

    def test_negative_work_rejected(self):
        with pytest.raises(ConfigurationError):
            Kernel(kind=KernelKind.ELEMENTWISE, name="x", flops=-1)
