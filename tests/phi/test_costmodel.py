"""Tests for repro.phi.costmodel — roofline kernel timing."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.phi.costmodel import CostModel
from repro.phi.kernels import Kernel, KernelKind, barrier, elementwise, gemm, sample, transfer
from repro.phi.pcie import PCIeModel
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.backend import (
    OptimizationLevel,
    backend_for_level,
    matlab_backend,
    optimized_cpu_backend,
)

BASELINE = backend_for_level(OptimizationLevel.BASELINE)
OPENMP = backend_for_level(OptimizationLevel.OPENMP)
MKL = backend_for_level(OptimizationLevel.OPENMP_MKL)
IMPROVED = backend_for_level(OptimizationLevel.IMPROVED)


class TestGemmTiming:
    def test_all_times_nonnegative(self):
        model = CostModel(XEON_PHI_5110P, IMPROVED)
        t = model.time(gemm(1000, 500, 200))
        for field in ("compute_s", "memory_s", "sync_s", "overhead_s", "transfer_s"):
            assert getattr(t, field) >= 0

    def test_total_is_busy_plus_overheads(self):
        model = CostModel(XEON_PHI_5110P, IMPROVED)
        t = model.time(gemm(1000, 500, 200))
        assert t.total_s == pytest.approx(
            max(t.compute_s, t.memory_s) + t.sync_s + t.overhead_s + t.transfer_s
        )

    def test_mkl_beats_naive_dramatically(self):
        k = gemm(2000, 1000, 1000)
        naive = CostModel(XEON_PHI_5110P, BASELINE).time(k).total_s
        mkl = CostModel(XEON_PHI_5110P, IMPROVED).time(k).total_s
        assert naive / mkl > 100

    def test_openmp_beats_baseline(self):
        k = gemm(2000, 1000, 1000)
        base = CostModel(XEON_PHI_5110P, BASELINE).time(k).total_s
        omp = CostModel(XEON_PHI_5110P, OPENMP).time(k).total_s
        assert base / omp > 5

    def test_time_monotone_in_batch(self):
        model = CostModel(XEON_PHI_5110P, IMPROVED)
        times = [model.time(gemm(m, 512, 1024)).total_s for m in (100, 1000, 10000)]
        assert times[0] < times[1] < times[2]

    def test_small_gemm_less_efficient_on_phi(self):
        """Fig. 7's small-network effect: flops/s drop for small shapes."""
        model = CostModel(XEON_PHI_5110P, IMPROVED)
        small = gemm(100, 64, 64)
        big = gemm(10000, 4096, 1024)
        small_rate = small.flops / model.time(small).busy_s
        big_rate = big.flops / model.time(big).busy_s
        assert big_rate / small_rate > 5

    def test_cpu_less_shape_sensitive_than_phi(self):
        """A single Xeon core keeps its efficiency at small shapes —
        the reason the Phi advantage shrinks for small networks."""
        phi = CostModel(XEON_PHI_5110P, IMPROVED)
        cpu = CostModel(XEON_E5620, optimized_cpu_backend(1))

        def efficiency_drop(model):
            small, big = gemm(200, 256, 256), gemm(10000, 4096, 1024)
            rate = lambda k: k.flops / model.time(k).busy_s
            return rate(big) / rate(small)

        assert efficiency_drop(phi) > 2 * efficiency_drop(cpu)


class TestStreamingTiming:
    def test_simd_speeds_up_compute_bound_elementwise(self):
        # Heavy per-element flops => compute bound; SIMD must matter.
        k = elementwise(10_000_000, flops_per_element=200)
        scalar = CostModel(XEON_PHI_5110P, OPENMP).time(k)
        vector = CostModel(XEON_PHI_5110P, MKL).time(k)
        assert scalar.compute_s / vector.compute_s > 5

    def test_unfused_backend_pays_many_barriers(self):
        k = elementwise(1_000_000)
        fused = CostModel(XEON_PHI_5110P, IMPROVED).time(k)
        unfused = CostModel(XEON_PHI_5110P, MKL).time(k)
        assert unfused.sync_s == pytest.approx(200 * fused.sync_s)

    def test_region_count_capped_by_elements(self):
        k = elementwise(3)  # fewer iterations than the region count
        t = CostModel(XEON_PHI_5110P, MKL).time(k)
        assert t.sync_s == pytest.approx(3 * XEON_PHI_5110P.barrier_cost(240))

    def test_matlab_temp_traffic_inflates_memory_time(self):
        k = elementwise(1_000_000)
        c = CostModel(XEON_E5620, optimized_cpu_backend()).time(k)
        m = CostModel(XEON_E5620, matlab_backend()).time(k)
        assert m.memory_s > 2 * c.memory_s

    def test_matlab_per_op_overhead(self):
        k = elementwise(10)
        t = CostModel(XEON_E5620, matlab_backend()).time(k)
        assert t.overhead_s == pytest.approx(1e-3)

    def test_sample_kernel_timed(self):
        t = CostModel(XEON_PHI_5110P, IMPROVED).time(sample(1_000_000))
        assert t.total_s > 0

    def test_single_thread_no_sync(self):
        t = CostModel(XEON_PHI_5110P, BASELINE).time(elementwise(1000))
        assert t.sync_s == 0.0


class TestTransferTiming:
    def test_coprocessor_pays_pcie(self):
        model = CostModel(XEON_PHI_5110P, IMPROVED)
        t = model.time(transfer(1_000_000_000))
        assert t.transfer_s == pytest.approx(model.pcie.time(1_000_000_000))

    def test_custom_pcie_model_respected(self):
        slow = PCIeModel(bandwidth=1e6)
        model = CostModel(XEON_PHI_5110P, IMPROVED, pcie=slow)
        assert model.time(transfer(1e6)).transfer_s == pytest.approx(slow.time(1e6))

    def test_host_transfer_is_memcpy(self):
        model = CostModel(XEON_E5620, optimized_cpu_backend())
        t = model.time(transfer(1_000_000_000))
        assert t.transfer_s == 0.0
        assert t.memory_s > 0

    def test_barrier_kernel(self):
        t = CostModel(XEON_PHI_5110P, IMPROVED).time(barrier())
        assert t.sync_s == pytest.approx(XEON_PHI_5110P.barrier_cost(240))

    def test_unknown_kind_rejected(self):
        model = CostModel(XEON_PHI_5110P, IMPROVED)
        bogus = dataclasses.replace(elementwise(10), kind="nonsense")
        with pytest.raises(ConfigurationError):
            model.time(bogus)
