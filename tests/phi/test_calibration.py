"""Calibration tests: the simulator must reproduce the paper's anchors.

These are the reproduction's acceptance tests.  Absolute seconds are held
to generous bands (we model, not emulate); *ratios and orderings* — the
paper's actual claims — are held tighter.  Paper values and the OCR
caveats are catalogued in DESIGN.md §2 and EXPERIMENTS.md.
"""

import pytest

from repro.bench.harness import (
    TABLE1_PAPER_SECONDS,
    run_fig10,
    run_headline_claims,
    run_table1,
    run_transfer_overlap,
)
from repro.bench.workloads import table1_pretrainer
from repro.phi.spec import XEON_PHI_5110P, phi_with_cores
from repro.runtime.backend import OptimizationLevel


@pytest.fixture(scope="module")
def table1():
    """level-value -> {'60c_s': …, '30c_s': …} for the whole grid."""
    rows = run_table1()
    return {row["step"]: row for row in rows}


class TestTable1Anchors:
    def test_baseline_60_cores(self, table1):
        """Paper: 16042 s (undamaged anchor) — hold to ±15 %."""
        ours = table1["baseline"]["60c_s"]
        assert ours == pytest.approx(16042, rel=0.15)

    def test_improved_60_cores(self, table1):
        """Paper: 53 s (undamaged anchor) — hold to ±35 %."""
        assert table1["improved_openmp_mkl"]["60c_s"] == pytest.approx(53, rel=0.35)

    def test_improved_30_cores(self, table1):
        """Paper: 81 s (undamaged anchor)."""
        assert table1["improved_openmp_mkl"]["30c_s"] == pytest.approx(81, rel=0.35)

    def test_headline_speedup_over_300(self, table1):
        """Abstract: 'more than 300-fold speedup … compared with the
        original sequential algorithm'."""
        speedup = table1["baseline"]["60c_s"] / table1["improved_openmp_mkl"]["60c_s"]
        assert speedup > 300
        assert speedup < 500  # and not absurdly more

    def test_30_core_speedup_band(self, table1):
        """Paper Table I last line at 30 cores: ≈197×."""
        speedup = table1["baseline"]["30c_s"] / table1["improved_openmp_mkl"]["30c_s"]
        assert 140 < speedup < 280

    def test_each_optimization_step_helps(self, table1):
        """Cumulative steps must be monotonically faster (Table I's story)."""
        order = ["baseline", "openmp", "openmp_mkl", "improved_openmp_mkl"]
        for cores in ("60c_s", "30c_s"):
            times = [table1[step][cores] for step in order]
            assert times == sorted(times, reverse=True), f"{cores}: {times}"

    def test_openmp_step_order_of_magnitude(self, table1):
        """The OCR-damaged OpenMP row: hold only to the right decade and
        the adopted reading's neighbourhood."""
        ours = table1["openmp"]["60c_s"]
        paper = TABLE1_PAPER_SECONDS[(OptimizationLevel.OPENMP, 60)]
        assert paper / 3 < ours < paper * 3

    def test_openmp_mkl_step(self, table1):
        ours = table1["openmp_mkl"]["60c_s"]
        paper = TABLE1_PAPER_SECONDS[(OptimizationLevel.OPENMP_MKL, 60)]
        assert paper / 2 < ours < paper * 2

    def test_halving_cores_barely_affects_baseline(self, table1):
        """A single-threaded baseline cannot care how many cores idle."""
        assert table1["baseline"]["60c_s"] == pytest.approx(
            table1["baseline"]["30c_s"], rel=0.01
        )

    def test_halving_cores_slows_optimized_code(self, table1):
        """But the optimized code must lose real throughput at 30 cores —
        paper: 53 s → 81 s (×1.53)."""
        ratio = (
            table1["improved_openmp_mkl"]["30c_s"]
            / table1["improved_openmp_mkl"]["60c_s"]
        )
        assert 1.3 < ratio < 2.0


class TestHeadlineClaims:
    @pytest.fixture(scope="class")
    def claims(self):
        return run_headline_claims()

    def test_vs_baseline_over_300(self, claims):
        assert claims["vs_baseline"].speedup > 300

    def test_vs_xeon_chip_7_to_10(self, claims):
        """Abstract: '7 to 10 times faster than the Intel Xeon CPU'."""
        assert 6.0 <= claims["vs_xeon"].speedup <= 11.0

    def test_vs_matlab_about_16(self, claims):
        """Abstract/Fig. 10: '16 times faster than the Matlab implementation'."""
        assert 12.0 <= claims["vs_matlab"].speedup <= 20.0

    def test_fig10_consistent_with_headline(self, claims):
        fig10 = run_fig10()
        assert fig10["speedup"] == pytest.approx(claims["vs_matlab"].speedup, rel=0.01)


class TestTransferOverlapAnchor:
    def test_seventeen_percent_unoverlapped(self):
        """§IV.A: 'about 17% of the total time is spent on transferring'."""
        result = run_transfer_overlap()
        assert result["transfer_fraction_serial"] == pytest.approx(0.17, abs=0.02)

    def test_loading_thread_hides_almost_everything(self):
        """Fig. 5's point: with double buffering the visible transfer share
        collapses (only the first chunk's staging remains exposed)."""
        result = run_transfer_overlap()
        assert result["transfer_fraction_overlapped"] < 0.03
        assert result["seconds_saved"] > 0


class TestCoreScalingSanity:
    def test_more_cores_never_slower_for_optimized(self):
        times = [
            table1_pretrainer(phi_with_cores(c), OptimizationLevel.IMPROVED)
            .simulate()
            .total_seconds
            for c in (15, 30, 60)
        ]
        assert times[0] > times[1] > times[2]

    def test_scaling_is_sublinear(self):
        """4× the cores should give less than 4× the speed (sync + memory
        effects) — the paper's 'relatively coarse' admission."""
        t15 = table1_pretrainer(phi_with_cores(15), OptimizationLevel.IMPROVED).simulate().total_seconds
        t60 = table1_pretrainer(XEON_PHI_5110P, OptimizationLevel.IMPROVED).simulate().total_seconds
        assert 1.5 < t15 / t60 < 4.0
