"""Tests for Trace.to_chrome_trace — Chrome trace-event export."""

import json

import pytest

from repro.phi.kernels import elementwise, gemm, transfer
from repro.phi.machine import SimulatedMachine
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.backend import OptimizationLevel, backend_for_level


@pytest.fixture
def machine():
    m = SimulatedMachine(
        XEON_PHI_5110P,
        backend_for_level(OptimizationLevel.IMPROVED),
        record_trace=True,
    )
    m.execute_stream([gemm(256, 128, 128), elementwise(10_000), transfer(1_000_000)])
    return m


class TestChromeTrace:
    def test_valid_json(self, machine):
        doc = machine.trace.to_chrome_trace()
        text = json.dumps(doc)  # must be serialisable
        assert json.loads(text)["displayTimeUnit"] == "ms"

    def test_one_duration_event_per_kernel(self, machine):
        doc = machine.trace.to_chrome_trace()
        duration_events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(duration_events) == 3

    def test_lanes_per_kernel_kind(self, machine):
        doc = machine.trace.to_chrome_trace()
        thread_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert {"gemm", "elementwise", "transfer_h2d"} == thread_names

    def test_timestamps_in_microseconds_and_ordered(self, machine):
        doc = machine.trace.to_chrome_trace()
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        # Clock is seconds; export is µs.
        assert events[-1]["ts"] + events[-1]["dur"] == pytest.approx(
            machine.clock * 1e6
        )
        starts = [e["ts"] for e in events]
        assert starts == sorted(starts)

    def test_process_name_metadata(self, machine):
        doc = machine.trace.to_chrome_trace(process_name="phi-run")
        meta = next(e for e in doc["traceEvents"] if e.get("name") == "process_name")
        assert meta["args"]["name"] == "phi-run"

    def test_empty_trace(self):
        m = SimulatedMachine(
            XEON_PHI_5110P, backend_for_level(OptimizationLevel.IMPROVED),
            record_trace=True,
        )
        doc = m.trace.to_chrome_trace()
        assert [e for e in doc["traceEvents"] if e.get("ph") == "X"] == []
