"""Tests for repro.phi.energy — the power/energy-to-solution model."""

import pytest

from repro.errors import ConfigurationError
from repro.phi.energy import (
    PHI_POWER,
    XEON_DUAL_POWER,
    XEON_POWER,
    EnergyReport,
    PowerSpec,
    energy_for_run,
    energy_to_solution,
    power_spec_for,
)
from repro.phi.trace import TimingBreakdown


class TestPowerSpec:
    def test_catalogue_values(self):
        assert PHI_POWER.tdp_w == 225.0
        assert XEON_POWER.tdp_w == 80.0
        assert XEON_DUAL_POWER.tdp_w == 2 * XEON_POWER.tdp_w

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerSpec("bad", tdp_w=0, idle_w=0)
        with pytest.raises(ConfigurationError):
            PowerSpec("bad", tdp_w=10, idle_w=20)

    def test_lookup_base_and_derived_names(self):
        assert power_spec_for("xeon_phi_5110p") is PHI_POWER
        assert power_spec_for("xeon_phi_5110p_30c") is PHI_POWER
        assert power_spec_for("xeon_e5620_1c") is XEON_POWER
        assert power_spec_for("xeon_e5620_dual") is XEON_DUAL_POWER

    def test_unknown_machine_raises(self):
        with pytest.raises(ConfigurationError):
            power_spec_for("gpu_k20")


class TestEnergyToSolution:
    def test_fully_busy_run(self):
        bd = TimingBreakdown(total_s=10.0, busy_s=10.0)
        report = energy_to_solution("xeon_phi_5110p", bd, 10.0, utilisation_busy=1.0)
        assert report.energy_joules == pytest.approx(10.0 * 225.0)
        assert report.average_watts == pytest.approx(225.0)

    def test_fully_idle_run(self):
        bd = TimingBreakdown(total_s=10.0, busy_s=0.0)
        report = energy_to_solution("xeon_phi_5110p", bd, 10.0)
        assert report.energy_joules == pytest.approx(10.0 * 100.0)

    def test_mixed_run(self):
        bd = TimingBreakdown(total_s=10.0, busy_s=4.0)
        report = energy_to_solution("xeon_e5620", bd, 10.0, utilisation_busy=1.0)
        assert report.energy_joules == pytest.approx(4 * 80.0 + 6 * 25.0)

    def test_busy_clamped_to_wall_time(self):
        bd = TimingBreakdown(total_s=2.0, busy_s=5.0)  # overlapped accounting
        report = energy_to_solution("xeon_e5620", bd, 2.0, utilisation_busy=1.0)
        assert report.busy_seconds == 2.0

    def test_watt_hours(self):
        bd = TimingBreakdown(busy_s=3600.0)
        report = energy_to_solution("xeon_e5620", bd, 3600.0, utilisation_busy=1.0)
        assert report.watt_hours == pytest.approx(80.0)

    def test_validation(self):
        bd = TimingBreakdown()
        with pytest.raises(ConfigurationError):
            energy_to_solution("xeon_e5620", bd, -1.0)
        with pytest.raises(ConfigurationError):
            energy_to_solution("xeon_e5620", bd, 1.0, utilisation_busy=0.0)


class TestEnergyForTrainingRuns:
    def test_phi_wins_energy_despite_higher_power(self):
        """The Phi draws ~3x a socket but finishes ~8x sooner than the
        dual host — energy-to-solution must favour it."""
        from repro.bench.workloads import fig10_config
        from repro.core.ae_trainer import SparseAutoencoderTrainer
        from repro.phi.spec import XEON_E5620_DUAL, XEON_PHI_5110P
        from repro.runtime.backend import optimized_cpu_backend

        phi = SparseAutoencoderTrainer(fig10_config(machine=XEON_PHI_5110P)).simulate()
        cpu = SparseAutoencoderTrainer(
            fig10_config(machine=XEON_E5620_DUAL, backend=optimized_cpu_backend())
        ).simulate()
        e_phi = energy_for_run(phi)
        e_cpu = energy_for_run(cpu)
        assert e_phi.energy_joules < e_cpu.energy_joules
        assert e_phi.average_watts > e_cpu.average_watts  # but it burns hotter
