"""Tests for repro.phi.memory — the 8 GB device allocator."""

import pytest

from repro.errors import ConfigurationError, DeviceMemoryError
from repro.phi.memory import DeviceMemory


class TestAllocate:
    def test_tracks_in_use_and_peak(self):
        mem = DeviceMemory(1000)
        a = mem.allocate("a", 400)
        b = mem.allocate("b", 300)
        assert mem.in_use == 700
        mem.free(a)
        assert mem.in_use == 300
        assert mem.peak == 700
        mem.free(b)
        assert mem.in_use == 0
        assert mem.peak == 700

    def test_overflow_raises_with_context(self):
        mem = DeviceMemory(1000)
        mem.allocate("params", 800)
        with pytest.raises(DeviceMemoryError, match="loading_buffer"):
            mem.allocate("loading_buffer", 300)

    def test_exactly_full_is_allowed(self):
        mem = DeviceMemory(1000)
        mem.allocate("all", 1000)
        assert mem.available == 0

    def test_uncapped_memory(self):
        mem = DeviceMemory(None)
        mem.allocate("huge", 10**15)
        assert mem.available is None

    def test_rejects_nonpositive_alloc(self):
        with pytest.raises(ConfigurationError):
            DeviceMemory(100).allocate("x", 0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            DeviceMemory(0)


class TestFree:
    def test_double_free_raises(self):
        mem = DeviceMemory(100)
        a = mem.allocate("a", 10)
        mem.free(a)
        with pytest.raises(DeviceMemoryError, match="double free"):
            mem.free(a)

    def test_freed_space_is_reusable(self):
        mem = DeviceMemory(100)
        a = mem.allocate("a", 100)
        mem.free(a)
        mem.allocate("b", 100)  # must not raise


class TestDiagnostics:
    def test_live_allocations(self):
        mem = DeviceMemory(100)
        mem.allocate("w", 40)
        mem.allocate("buf", 20)
        assert mem.live_allocations() == {"w": 40, "buf": 20}

    def test_reset_frees_everything(self):
        mem = DeviceMemory(100)
        mem.allocate("a", 60)
        mem.reset()
        assert mem.in_use == 0
        assert mem.live_allocations() == {}


class TestScoped:
    def test_scoped_frees_on_exit(self):
        mem = DeviceMemory(100)
        with mem.scoped("tmp", 50):
            assert mem.in_use == 50
        assert mem.in_use == 0

    def test_scoped_frees_on_exception(self):
        mem = DeviceMemory(100)
        with pytest.raises(RuntimeError):
            with mem.scoped("tmp", 50):
                raise RuntimeError("boom")
        assert mem.in_use == 0

    def test_scoped_overflow_propagates(self):
        mem = DeviceMemory(10)
        with pytest.raises(DeviceMemoryError):
            with mem.scoped("big", 100):
                pass
