"""Tests for repro.phi.trace — traces and timing breakdowns."""

import pytest

from repro.phi.kernels import KernelKind, elementwise, gemm
from repro.phi.trace import TimingBreakdown, Trace


def _record(trace, kernel, start, compute, memory, sync=0.0, overhead=0.0, transfer=0.0):
    duration = max(compute, memory) + sync + overhead + transfer
    trace.record(kernel, start, start + duration, compute, memory, sync, overhead, transfer)
    return start + duration


class TestTimingBreakdown:
    def test_addition(self):
        a = TimingBreakdown(total_s=1.0, compute_s=0.5, n_kernels=2)
        b = TimingBreakdown(total_s=2.0, compute_s=1.0, n_kernels=3)
        c = a + b
        assert c.total_s == 3.0
        assert c.compute_s == 1.5
        assert c.n_kernels == 5

    def test_scaled(self):
        a = TimingBreakdown(total_s=1.0, sync_s=0.25, n_kernels=4)
        s = a.scaled(10)
        assert s.total_s == 10.0
        assert s.sync_s == 2.5
        assert s.n_kernels == 40

    def test_fraction(self):
        a = TimingBreakdown(total_s=4.0, sync_s=1.0)
        assert a.fraction("sync_s") == 0.25

    def test_fraction_of_empty(self):
        assert TimingBreakdown().fraction("sync_s") == 0.0


class TestTrace:
    def test_records_entries_when_enabled(self):
        trace = Trace(enabled=True)
        t = _record(trace, gemm(10, 10, 10), 0.0, 1.0, 0.2)
        _record(trace, elementwise(5), t, 0.1, 0.4)
        assert len(trace) == 2
        assert len(trace.entries) == 2
        assert trace.entries[0].duration_s == pytest.approx(1.0)

    def test_counters_without_entries_when_disabled(self):
        trace = Trace(enabled=False)
        _record(trace, gemm(10, 10, 10), 0.0, 1.0, 0.2)
        assert len(trace) == 1
        assert trace.entries == []
        assert trace.breakdown().compute_s == 1.0

    def test_breakdown_busy_is_max_per_kernel(self):
        trace = Trace()
        t = _record(trace, gemm(10, 10, 10), 0.0, 1.0, 0.2)   # busy 1.0
        _record(trace, elementwise(5), t, 0.1, 0.4)           # busy 0.4
        bd = trace.breakdown()
        assert bd.busy_s == pytest.approx(1.4)
        assert bd.compute_s == pytest.approx(1.1)
        assert bd.memory_s == pytest.approx(0.6)

    def test_time_by_kind(self):
        trace = Trace()
        t = _record(trace, gemm(10, 10, 10), 0.0, 1.0, 0.2)
        _record(trace, elementwise(5), t, 0.1, 0.4)
        by_kind = trace.time_by_kind()
        assert by_kind[KernelKind.GEMM.value] == pytest.approx(1.0)
        assert by_kind[KernelKind.ELEMENTWISE.value] == pytest.approx(0.4)

    def test_reset(self):
        trace = Trace()
        _record(trace, gemm(10, 10, 10), 0.0, 1.0, 0.2)
        trace.reset()
        assert len(trace) == 0
        assert trace.breakdown().total_s == 0.0
        assert trace.time_by_kind() == {}
