"""Tests for repro.phi.roofline — roofline analysis."""

import pytest

from repro.core.oplist import autoencoder_step_kernels
from repro.phi.kernels import barrier, elementwise, gemm
from repro.phi.roofline import (
    analyze_kernels,
    arithmetic_intensity,
    ridge_point,
    roofline_report,
)
from repro.phi.spec import XEON_E5620, XEON_PHI_5110P
from repro.runtime.backend import OptimizationLevel, backend_for_level

IMPROVED = backend_for_level(OptimizationLevel.IMPROVED)


class TestArithmeticIntensity:
    def test_gemm_intensity_grows_with_size(self):
        # AI of an n^3 GEMM ≈ n/12 flops/byte: bigger is more compute-rich.
        small = arithmetic_intensity(gemm(64, 64, 64))
        big = arithmetic_intensity(gemm(1024, 1024, 1024))
        assert big > 10 * small

    def test_elementwise_intensity_is_constant_and_low(self):
        a = arithmetic_intensity(elementwise(1000, flops_per_element=5))
        b = arithmetic_intensity(elementwise(10_000_000, flops_per_element=5))
        assert a == pytest.approx(b)
        assert a < 1.0  # fewer flops than bytes

    def test_workless_kernel_infinite(self):
        import dataclasses

        k = dataclasses.replace(elementwise(10), bytes_read=0.0, bytes_written=0.0)
        assert arithmetic_intensity(k) == float("inf")


class TestRidgePoint:
    def test_phi_ridge_higher_than_xeon(self):
        """1 Tflop/s on 320 GB/s needs ~3 flops/byte; the Xeon's ridge is
        lower — the Phi punishes low-intensity code harder."""
        assert ridge_point(XEON_PHI_5110P) > ridge_point(XEON_E5620)

    def test_phi_ridge_plausible(self):
        r = ridge_point(XEON_PHI_5110P)
        assert 2.0 < r < 5.0

    def test_scalar_ridge_lower(self):
        assert ridge_point(XEON_PHI_5110P, simd=False) < ridge_point(
            XEON_PHI_5110P, simd=True
        )


class TestAnalyzeKernels:
    @pytest.fixture
    def points(self):
        kernels = autoencoder_step_kernels(10_000, 1024, 4096)
        return analyze_kernels(kernels, XEON_PHI_5110P, IMPROVED)

    def test_gemms_compute_bound_elementwise_memory_bound(self, points):
        by_name = {p.name: p for p in points}
        assert by_name["fwd1:X*W1T"].bound == "compute"
        assert by_name["sigmoid:y"].bound == "memory"

    def test_modeled_never_beats_roofline_for_streaming(self, points):
        for p in points:
            if p.bound == "memory":
                assert p.modeled_flops <= p.attainable_flops * (1 + 1e-9)

    def test_fraction_in_unit_interval(self, points):
        for p in points:
            assert 0.0 < p.roofline_fraction <= 1.0 + 1e-9

    def test_workless_kernels_skipped(self):
        points = analyze_kernels([barrier()], XEON_PHI_5110P, IMPROVED)
        assert points == []

    def test_report_rows(self, points):
        rows = roofline_report(points)
        assert len(rows) == len(points)
        assert {"kernel", "bound", "gflops_modeled", "roof_fraction"} <= set(rows[0])
