"""Tests for repro.phi.spec — the machine catalogue."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.phi.spec import (
    XEON_E5620,
    XEON_E5620_DUAL,
    XEON_E5620_SINGLE_CORE,
    XEON_PHI_5110P,
    XEON_PHI_5110P_30C,
    get_machine,
    phi_with_cores,
)


class TestPhiSpec:
    def test_paper_parameters(self):
        """§V.A.1: 60 active cores at ~1.053 GHz, 8 GB global memory."""
        assert XEON_PHI_5110P.n_cores == 60
        assert XEON_PHI_5110P.threads_per_core == 4
        assert XEON_PHI_5110P.max_threads == 240
        assert XEON_PHI_5110P.mem_capacity == 8 * 1024**3
        assert XEON_PHI_5110P.is_coprocessor

    def test_peak_flops_near_one_teraflop(self):
        """60 cores × 1.053 GHz × 8 lanes × 2 (FMA) ≈ 1.01 Tflop/s DP."""
        assert XEON_PHI_5110P.peak_flops == pytest.approx(1.011e12, rel=0.01)

    def test_scalar_peak_much_lower(self):
        scalar = XEON_PHI_5110P.peak_flops_threads(1, simd=False)
        simd = XEON_PHI_5110P.peak_flops_threads(1, simd=True)
        assert simd / scalar > 8  # the 512-bit VPU's reason to exist

    def test_smt_needed_to_fill_the_vector_pipeline(self):
        """In-order cores: one thread/core reaches only half the SIMD
        peak; four threads/core reach all of it (KNC's SMT design)."""
        at_cores = XEON_PHI_5110P.peak_flops_threads(60, simd=True)
        at_max = XEON_PHI_5110P.peak_flops_threads(240, simd=True)
        assert at_max == pytest.approx(2 * at_cores)
        assert at_max == pytest.approx(XEON_PHI_5110P.peak_flops)

    def test_out_of_order_cpu_needs_no_smt(self):
        one_per_core = XEON_E5620.peak_flops_threads(4, simd=True)
        smt = XEON_E5620.peak_flops_threads(8, simd=True)
        assert one_per_core == smt

    def test_bandwidth_saturates(self):
        one = XEON_PHI_5110P.bandwidth_threads(1)
        many = XEON_PHI_5110P.bandwidth_threads(240)
        assert many == XEON_PHI_5110P.mem_bandwidth
        assert one < 0.05 * many  # a single Phi thread can't drive GDDR5

    def test_barrier_grows_with_threads(self):
        assert XEON_PHI_5110P.barrier_cost(1) == 0.0
        assert XEON_PHI_5110P.barrier_cost(240) > XEON_PHI_5110P.barrier_cost(4) > 0

    def test_barrier_log_scaling(self):
        b60 = XEON_PHI_5110P.barrier_cost(64)
        b120 = XEON_PHI_5110P.barrier_cost(128)
        expected_delta = XEON_PHI_5110P.barrier_per_log2_thread_s
        assert b120 - b60 == pytest.approx(expected_delta)


class TestXeonSpec:
    def test_host_has_no_capacity_limit(self):
        assert XEON_E5620.mem_capacity is None
        assert not XEON_E5620.is_coprocessor

    def test_single_core_variant(self):
        assert XEON_E5620_SINGLE_CORE.n_cores == 1
        assert XEON_E5620_SINGLE_CORE.frequency_hz == XEON_E5620.frequency_hz

    def test_dual_socket_doubles_cores_and_bandwidth(self):
        assert XEON_E5620_DUAL.n_cores == 2 * XEON_E5620.n_cores
        assert XEON_E5620_DUAL.mem_bandwidth == 2 * XEON_E5620.mem_bandwidth

    def test_phi_peak_dwarfs_one_xeon_core(self):
        phi = XEON_PHI_5110P.peak_flops
        core = XEON_E5620_SINGLE_CORE.peak_flops
        assert phi / core > 80


class TestWithCores:
    def test_30_core_variant(self):
        assert XEON_PHI_5110P_30C.n_cores == 30
        assert XEON_PHI_5110P_30C.max_threads == 120
        assert XEON_PHI_5110P_30C.peak_flops == pytest.approx(
            XEON_PHI_5110P.peak_flops / 2
        )

    def test_phi_with_cores_naming(self):
        assert phi_with_cores(15).name == "xeon_phi_5110p_15c"

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            XEON_PHI_5110P.with_cores(0)
        with pytest.raises(ConfigurationError):
            XEON_PHI_5110P.with_cores(61)


class TestCatalogue:
    def test_lookup(self):
        assert get_machine("xeon_phi_5110p") is XEON_PHI_5110P
        assert get_machine("xeon_e5620_dual") is XEON_E5620_DUAL

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="xeon_phi_5110p"):
            get_machine("knights_landing")

    def test_validation(self):
        import dataclasses

        with pytest.raises(ConfigurationError):
            dataclasses.replace(XEON_PHI_5110P, n_cores=0)
        with pytest.raises(ConfigurationError):
            dataclasses.replace(XEON_PHI_5110P, single_thread_bw_fraction=0.0)
        with pytest.raises(ConfigurationError):
            XEON_PHI_5110P.peak_flops_threads(0, simd=True)
        with pytest.raises(ConfigurationError):
            XEON_PHI_5110P.bandwidth_threads(0)
