"""Tests for repro.phi.events — the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.phi.events import EventSimulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = EventSimulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = EventSimulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_cannot_schedule_in_the_past(self):
        sim = EventSimulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        sim = EventSimulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = EventSimulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "dead")
        sim.schedule(2.0, fired.append, "alive")
        ev.cancel()
        sim.run()
        assert fired == ["alive"]


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_step_returns_false_when_empty(self):
        assert EventSimulator().step() is False

    def test_runaway_guard(self):
        sim = EventSimulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = EventSimulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5
