"""Additional energy-model coverage: trainer integration across machines
and the fine-tuning phase."""

import pytest

from repro.core.config import OptimizationLevel, TrainingConfig
from repro.core.finetune_trainer import FinetuneTrainer
from repro.phi.energy import energy_for_run, power_spec_for
from repro.phi.spec import XEON_PHI_5110P, phi_with_cores


class TestEnergyAcrossScenarios:
    def test_derived_core_counts_share_the_card_envelope(self):
        assert power_spec_for(phi_with_cores(15).name) is power_spec_for(
            XEON_PHI_5110P.name
        )

    def test_fewer_cores_cost_more_energy_for_same_work(self):
        """Halving active cores nearly doubles wall time while the card
        keeps leaking idle power — energy to solution must rise."""
        from repro.bench.workloads import table1_pretrainer

        full = table1_pretrainer(XEON_PHI_5110P, OptimizationLevel.IMPROVED).simulate()
        half = table1_pretrainer(phi_with_cores(30), OptimizationLevel.IMPROVED).simulate()

        def pipeline_energy(result):
            total = 0.0
            for layer in result.layers:
                total += energy_for_run(layer.result).energy_joules
            return total

        assert pipeline_energy(half) > pipeline_energy(full)

    def test_finetune_runs_account_energy(self):
        cfg = TrainingConfig(
            n_visible=1024, n_hidden=512, n_examples=10_000, batch_size=10_000,
            epochs=20, machine=XEON_PHI_5110P,
        )
        result = FinetuneTrainer(cfg, layer_sizes=[1024, 512, 10]).simulate()
        report = energy_for_run(result)
        assert report.energy_joules > 0
        spec = power_spec_for(result.machine_name)
        assert spec.idle_w <= report.average_watts <= spec.tdp_w

    def test_baseline_burns_orders_of_magnitude_more_energy(self):
        """The >300x speedup is also a >100x energy win: the idle draw of
        16000 sequential seconds dwarfs 44 busy ones."""
        from repro.bench.workloads import table1_pretrainer

        def pipeline_energy(result):
            return sum(
                energy_for_run(l.result).energy_joules for l in result.layers
            )

        baseline = table1_pretrainer(
            XEON_PHI_5110P, OptimizationLevel.BASELINE
        ).simulate()
        improved = table1_pretrainer(
            XEON_PHI_5110P, OptimizationLevel.IMPROVED
        ).simulate()
        assert pipeline_energy(baseline) > 100 * pipeline_energy(improved)
