"""The import-layering lint passes on the real tree and catches violations."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_layering  # noqa: E402


class TestRealTree:
    def test_src_tree_is_clean(self):
        assert check_layering.check(REPO / "src") == []

    def test_cli_entry_point(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_layering.py"), "src"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "import layering OK" in proc.stdout


class TestDetection:
    def _tree(self, tmp_path, body):
        pkg = tmp_path / "repro" / "train"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "loop.py").write_text(body)
        return tmp_path

    def test_flags_module_level_violation(self, tmp_path):
        root = self._tree(tmp_path, "from repro.phi.spec import XEON_PHI_5110P\n")
        violations = check_layering.check(root)
        assert len(violations) == 1
        _, lineno, mod, imported, banned = violations[0]
        assert (lineno, mod, imported, banned) == (
            1, "repro.train.loop", "repro.phi.spec", "repro.phi"
        )

    def test_flags_function_level_violation(self, tmp_path):
        root = self._tree(
            tmp_path,
            "def f():\n    import repro.nn.mlp\n",
        )
        violations = check_layering.check(root)
        assert [v[3] for v in violations] == ["repro.nn.mlp"]

    def test_flags_pipeline_module_reaching_into_nn(self, tmp_path):
        """repro.train.pipeline schedules opaque StagePlans — a model
        import there is a boundary break the lint must catch."""
        root = self._pkg(
            tmp_path, "repro.train", "pipeline.py",
            "from repro.nn.stacked import StackedAutoencoder\n",
        )
        violations = check_layering.check(root)
        assert [(v[2], v[4]) for v in violations] == [
            ("repro.train.pipeline", "repro.nn")
        ]

    def test_allows_permitted_imports(self, tmp_path):
        root = self._tree(
            tmp_path,
            "import numpy\nfrom repro.runtime.executor import ChunkPrefetcher\n",
        )
        assert check_layering.check(root) == []

    def test_nn_must_not_import_core(self, tmp_path):
        pkg = tmp_path / "repro" / "nn"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "bad.py").write_text("from repro.core import TrainingConfig\n")
        violations = check_layering.check(tmp_path)
        assert [v[4] for v in violations] == ["repro.core"]

    def _pkg(self, tmp_path, dotted, filename, body):
        pkg = tmp_path / Path(*dotted.split("."))
        pkg.mkdir(parents=True)
        for parent in [pkg, *pkg.parents]:
            if parent == tmp_path:
                break
            (parent / "__init__.py").write_text("")
        (pkg / filename).write_text(body)
        return tmp_path

    def test_serve_must_not_import_cluster(self, tmp_path):
        root = self._pkg(
            tmp_path, "repro.serve", "bad.py",
            "from repro.cluster.router import Router\n",
        )
        violations = check_layering.check(root)
        assert [v[4] for v in violations] == ["repro.cluster"]

    def test_cluster_must_not_reach_model_internals(self, tmp_path):
        root = self._pkg(
            tmp_path, "repro.cluster", "bad.py",
            "from repro.nn.mlp import DeepNetwork\n"
            "def f():\n    import repro.train.loop\n",
        )
        violations = check_layering.check(root)
        assert sorted(v[4] for v in violations) == ["repro.nn", "repro.train"]

    def test_cluster_may_import_serve(self, tmp_path):
        root = self._pkg(
            tmp_path, "repro.cluster", "ok.py",
            "from repro.serve.engine import ServingEngine\n"
            "from repro.serve.registry import ServableModel\n",
        )
        assert check_layering.check(root) == []

    def test_workloads_must_not_import_the_tiers_it_drives(self, tmp_path):
        """Traces drive targets through the duck-typed submit/poll
        surface — a serve/cluster import in repro.workloads would close
        the dependency cycle the replayer exists to avoid."""
        root = self._pkg(
            tmp_path, "repro.workloads", "bad.py",
            "from repro.serve.engine import ServingEngine\n"
            "def f():\n    import repro.cluster.router\n"
            "def g():\n    from repro.train.loop import TrainLoop\n",
        )
        violations = check_layering.check(root)
        assert sorted(v[4] for v in violations) == [
            "repro.cluster", "repro.serve", "repro.train"
        ]

    def test_workloads_may_import_utility_layers(self, tmp_path):
        root = self._pkg(
            tmp_path, "repro.workloads", "ok.py",
            "import numpy\n"
            "from repro.errors import ConfigurationError\n"
            "from repro.utils.rng import spawn_generators\n"
            "from repro.phi.events import EventSimulator\n",
        )
        assert check_layering.check(root) == []

    def test_shard_must_not_import_train_or_cluster(self, tmp_path):
        """repro.shard is a model-substrate extension: the training loop
        composes *it* (via ShardedTrainStep closures) and the cluster
        tier wraps its servables — a reverse import is a cycle."""
        root = self._pkg(
            tmp_path, "repro.shard", "bad.py",
            "from repro.train.loop import TrainLoop\n"
            "def f():\n    import repro.cluster.shardrouter\n"
            "def g():\n    from repro.workloads import Trace\n",
        )
        violations = check_layering.check(root)
        assert sorted(v[4] for v in violations) == [
            "repro.cluster", "repro.train", "repro.workloads"
        ]

    def test_shard_may_import_nn_and_serve(self, tmp_path):
        """Slicing repro.nn models and wrapping them as repro.serve
        servables is the package's job — both edges are legal."""
        root = self._pkg(
            tmp_path, "repro.shard", "ok.py",
            "from repro.nn.mlp import DeepNetwork\n"
            "from repro.serve.registry import ServableModel\n"
            "from repro.runtime.checkpoint import CheckpointStore\n",
        )
        assert check_layering.check(root) == []

    def test_cluster_may_import_shard(self, tmp_path):
        root = self._pkg(
            tmp_path, "repro.cluster", "ok2.py",
            "from repro.shard.servables import gather_outputs\n"
            "from repro.shard.shards import ModelShard\n",
        )
        assert check_layering.check(root) == []
