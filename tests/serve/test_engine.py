"""Tests for repro.serve.engine — dispatch, workers, cache, service models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serve.batcher import BatchPolicy
from repro.serve.cache import FeatureCache
from repro.serve.engine import (
    ConstantServiceModel,
    ServingEngine,
    SimulatedServiceModel,
    WorkerPool,
)
from repro.serve.registry import ServableModel


@pytest.fixture
def servable(small_ae):
    return ServableModel("ae", small_ae)


def make_engine(servable, **kwargs):
    kwargs.setdefault("service_model", ConstantServiceModel(base_s=0.01, per_example_s=0.001))
    return ServingEngine(servable, **kwargs)


class TestServiceModels:
    def test_constant_affine(self):
        model = ConstantServiceModel(base_s=0.01, per_example_s=0.001)
        assert model.seconds(1) == pytest.approx(0.011)
        assert model.seconds(10) == pytest.approx(0.02)

    def test_simulated_sublinear_in_batch(self, servable):
        model = SimulatedServiceModel(servable)
        t1, t32 = model.seconds(1), model.seconds(32)
        assert t32 > t1  # bigger batches cost more in total...
        assert t32 < 32 * t1  # ...but far less per example
        assert model.seconds(32) == t32  # cached and deterministic

    def test_bad_batch_size(self, servable):
        with pytest.raises(ServingError):
            SimulatedServiceModel(servable).seconds(0)


class TestWorkerPool:
    def test_acquire_and_busy(self):
        pool = WorkerPool(2)
        assert pool.acquire(0.0) == 0
        pool.busy_until(0, 5.0)
        assert pool.acquire(0.0) == 1
        pool.busy_until(1, 3.0)
        assert pool.acquire(0.0) is None
        assert pool.next_free_time() == 3.0
        assert pool.acquire(3.0) == 1

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)

    def test_fresh_pool_is_immediately_free(self):
        pool = WorkerPool(3)
        assert pool.n_workers == 3
        assert pool.next_free_time() == 0.0
        assert pool.acquire(0.0) == 0  # lowest index wins

    def test_acquire_at_exact_free_boundary(self):
        pool = WorkerPool(1)
        pool.busy_until(0, 2.0)
        assert pool.acquire(1.999) is None
        assert pool.acquire(2.0) == 0  # boundary counts as free

    def test_simultaneous_frees_pick_lowest_index(self):
        pool = WorkerPool(3)
        for w in range(3):
            pool.busy_until(w, 5.0)
        assert pool.next_free_time() == 5.0
        assert pool.acquire(5.0) == 0

    def test_full_occupancy_reports_earliest_release(self):
        pool = WorkerPool(2)
        pool.busy_until(0, 9.0)
        pool.busy_until(1, 4.0)
        assert pool.acquire(3.0) is None
        assert pool.next_free_time() == 4.0
        assert pool.acquire(4.5) == 1


class TestServingEngine:
    def test_requires_servable_wrapper(self, small_ae):
        with pytest.raises(ServingError, match="ServableModel"):
            ServingEngine(small_ae)

    def test_rejects_wrong_payload_shape(self, servable):
        engine = make_engine(servable)
        with pytest.raises(ServingError, match="features"):
            engine.submit(np.zeros(7), now=0.0)

    def test_full_batch_dispatches_and_completes(self, servable, rng):
        engine = make_engine(servable, policy=BatchPolicy(max_batch_size=2, max_wait_s=1.0))
        r1 = engine.submit(rng.random(25), now=0.0)
        r2 = engine.submit(rng.random(25), now=0.001)
        assert engine.poll(0.001) == []  # dispatched, service takes 0.012s
        assert r1.dispatch_s == pytest.approx(0.001)
        done = engine.poll(0.001 + 0.012)
        assert done == [r1, r2]
        assert r1.result.shape == (9,)
        # The real forward pass ran: result matches a direct encode.
        np.testing.assert_allclose(r1.result, servable.predict(r1.payload[None, :])[0])

    def test_partial_batch_waits_until_deadline(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=8, max_wait_s=0.005)
        )
        request = engine.submit(rng.random(25), now=0.0)
        engine.poll(0.004)
        assert request.dispatch_s is None
        assert engine.next_event_time() == pytest.approx(0.005)
        engine.poll(0.005)
        assert request.dispatch_s == pytest.approx(0.005)

    def test_backpressure_rejects_and_counts(self, servable, rng):
        engine = make_engine(
            servable,
            policy=BatchPolicy(max_batch_size=4, max_wait_s=10.0, max_queue_depth=2),
        )
        assert engine.submit(rng.random(25), now=0.0) is not None
        assert engine.submit(rng.random(25), now=0.0) is not None
        assert engine.submit(rng.random(25), now=0.0) is None
        assert engine.metrics.rejected == 1
        assert engine.metrics.received == 3

    def test_single_worker_serialises_batches(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=1, max_wait_s=0.0), n_workers=1
        )
        engine.submit(rng.random(25), now=0.0)
        engine.submit(rng.random(25), now=0.0)
        engine.poll(0.0)
        # Only one batch in flight; the second waits for the worker.
        assert engine.metrics.batches == 1
        assert engine.next_event_time() == pytest.approx(0.011)
        engine.poll(0.011)
        assert engine.metrics.batches == 2

    def test_two_workers_run_batches_concurrently(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=1, max_wait_s=0.0), n_workers=2
        )
        engine.submit(rng.random(25), now=0.0)
        engine.submit(rng.random(25), now=0.0)
        engine.poll(0.0)
        assert engine.metrics.batches == 2

    def test_cache_hit_completes_immediately(self, servable):
        cache = FeatureCache()
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=1, max_wait_s=0.0), cache=cache
        )
        payload = np.full(25, 0.5)
        first = engine.submit(payload, now=0.0)
        engine.poll(0.0)
        engine.poll(1.0)  # retire → populates the cache
        assert first.complete_s is not None and not first.cache_hit
        second = engine.submit(payload, now=2.0)
        assert second.cache_hit
        assert second.complete_s == 2.0
        np.testing.assert_array_equal(second.result, first.result)
        assert engine.metrics.cache_hits == 1

    def test_cache_miss_counted_and_hit_rate_tracks(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=1, max_wait_s=0.0),
            cache=FeatureCache(),
        )
        payload = rng.random(25)
        engine.submit(payload, now=0.0)
        engine.poll(0.0)
        engine.poll(1.0)
        assert engine.metrics.cache_misses == 1
        assert engine.metrics.cache_hit_rate == 0.0
        engine.submit(payload, now=2.0)
        assert engine.metrics.cache_hit_rate == pytest.approx(0.5)

    def test_cache_evictions_surface_in_metrics(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=4, max_wait_s=0.0),
            cache=FeatureCache(max_entries=2),
        )
        for i in range(4):
            engine.submit(rng.random(25), now=0.0)
        engine.poll(0.0)
        engine.poll(1.0)  # retiring 4 distinct entries evicts 2
        assert engine.metrics.cache_evictions == 2

    def test_cancel_withdraws_queued_request(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=8, max_wait_s=10.0)
        )
        request = engine.submit(rng.random(25), now=0.0)
        assert engine.cancel(request, 0.1)
        assert engine.metrics.cancelled == 1
        assert engine.queue_depth == 0
        assert not engine.cancel(request, 0.2)  # already gone

    def test_cancel_cannot_recall_in_flight_work(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=1, max_wait_s=0.0)
        )
        request = engine.submit(rng.random(25), now=0.0)
        engine.poll(0.0)  # dispatched to the device
        assert not engine.cancel(request, 0.001)
        assert engine.metrics.cancelled == 0

    def test_load_surface_tracks_lifecycle(self, servable, rng):
        engine = make_engine(
            servable, policy=BatchPolicy(max_batch_size=2, max_wait_s=10.0)
        )
        assert engine.outstanding == 0
        engine.submit(rng.random(25), now=0.0)
        assert (engine.queue_depth, engine.in_flight, engine.outstanding) == (1, 0, 1)
        engine.submit(rng.random(25), now=0.0)
        engine.poll(0.0)  # full batch dispatches
        assert (engine.queue_depth, engine.in_flight, engine.outstanding) == (0, 2, 2)
        engine.poll(1.0)
        assert engine.outstanding == 0

    def test_idle_engine_has_no_next_event(self, servable):
        assert make_engine(servable).next_event_time() is None

    def test_predict_bypasses_queue(self, servable, rng):
        engine = make_engine(servable)
        x = rng.random((3, 25))
        np.testing.assert_array_equal(engine.predict(x), servable.predict(x))
