"""Tests for repro.serve.registry — servable wrappers and the registry."""

import numpy as np
import pytest

from repro.errors import ServingError, ShapeError
from repro.nn.gaussian_rbm import GaussianBernoulliRBM
from repro.nn.mlp import DeepNetwork
from repro.nn.rbm import RBM
from repro.nn.stacked import LayerSpec, StackedAutoencoder
from repro.phi.kernels import KernelKind
from repro.serve.registry import ModelRegistry, ServableModel
from repro.utils.serialization import save_model


class TestServableModel:
    def test_autoencoder_predict_is_encode(self, small_ae, rng):
        servable = ServableModel("ae", small_ae)
        x = rng.random((4, 25))
        np.testing.assert_array_equal(servable.predict(x), small_ae.encode(x))
        assert (servable.n_inputs, servable.n_outputs) == (25, 9)

    def test_rbm_predict_is_transform(self, rng):
        model = RBM(10, 6, seed=0)
        servable = ServableModel("rbm", model)
        v = (rng.random((3, 10)) > 0.5).astype(float)
        np.testing.assert_array_equal(servable.predict(v), model.transform(v))

    def test_gaussian_rbm_served(self, rng):
        model = GaussianBernoulliRBM(5, 4, seed=0)
        servable = ServableModel("grbm", model)
        assert servable.predict(rng.normal(size=(2, 5))).shape == (2, 4)

    def test_stack_predict_is_full_transform(self, digits_25):
        stack = StackedAutoencoder(
            25, [LayerSpec(9, epochs=1), LayerSpec(4, epochs=1)], seed=0
        ).pretrain(digits_25)
        servable = ServableModel("stack", stack)
        np.testing.assert_array_equal(
            servable.predict(digits_25), stack.transform(digits_25)
        )
        assert servable.widths == [25, 9, 4]

    def test_untrained_stack_rejected(self):
        stack = StackedAutoencoder(25, [LayerSpec(9)])
        with pytest.raises(ServingError, match="un-pretrained"):
            ServableModel("stack", stack)

    def test_softmax_network_serves_probabilities(self, rng):
        net = DeepNetwork([6, 5, 3], head="softmax", seed=0)
        servable = ServableModel("clf", net)
        out = servable.predict(rng.random((4, 6)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_regression_network_serves_outputs(self, rng):
        net = DeepNetwork([6, 4, 2], head="identity", seed=0)
        servable = ServableModel("reg", net)
        x = rng.random((3, 6))
        np.testing.assert_array_equal(servable.predict(x), net.predict(x))

    def test_unsupported_model_rejected(self):
        with pytest.raises(ServingError, match="cannot serve"):
            ServableModel("x", object())

    def test_wrong_input_width_rejected(self, small_ae, rng):
        servable = ServableModel("ae", small_ae)
        with pytest.raises(ShapeError):
            servable.predict(rng.random((3, 7)))

    def test_forward_levels_one_gemm_per_layer(self, digits_25):
        stack = StackedAutoencoder(
            25, [LayerSpec(9, epochs=1), LayerSpec(4, epochs=1)], seed=0
        ).pretrain(digits_25)
        levels = ServableModel("stack", stack).forward_levels(16)
        gemms = [k for level in levels for k in level if k.kind is KernelKind.GEMM]
        assert len(gemms) == 2
        # GEMM shape of layer 0: batch x hidden x visible.
        assert gemms[0].gemm_shape == (16, 9, 25)

    def test_forward_levels_rejects_bad_batch(self, small_ae):
        with pytest.raises(ServingError):
            ServableModel("ae", small_ae).forward_levels(0)


class TestModelRegistry:
    def test_register_get_names(self, small_ae):
        registry = ModelRegistry()
        servable = registry.register("ae", small_ae)
        assert registry.get("ae") is servable
        assert registry.names() == ["ae"]
        assert "ae" in registry and len(registry) == 1

    def test_double_register_rejected(self, small_ae):
        registry = ModelRegistry()
        registry.register("ae", small_ae)
        with pytest.raises(ServingError, match="already registered"):
            registry.register("ae", small_ae)

    def test_unknown_name_lists_known(self, small_ae):
        registry = ModelRegistry()
        registry.register("ae", small_ae)
        with pytest.raises(ServingError, match="ae"):
            registry.get("missing")

    def test_unknown_name_raises_typed_error(self, small_ae):
        from repro.errors import ModelNotFoundError

        registry = ModelRegistry()
        registry.register("zeta", small_ae)
        registry.register("alpha", small_ae)
        with pytest.raises(ModelNotFoundError) as excinfo:
            registry.get("missing")
        # Dictionary-style handlers keep working...
        assert isinstance(excinfo.value, KeyError)
        # ...and the message lists every registered name, sorted.
        assert "alpha, zeta" in str(excinfo.value)
        assert excinfo.value.name == "missing"

    def test_empty_registry_error_says_none(self):
        from repro.errors import ModelNotFoundError

        with pytest.raises(ModelNotFoundError, match=r"\(none\)"):
            ModelRegistry().get("anything")

    def test_replace_swaps_existing_name(self, small_ae, rng):
        registry = ModelRegistry()
        old = registry.register("ae", small_ae)
        from repro.nn.autoencoder import SparseAutoencoder

        new_model = SparseAutoencoder(25, 9, seed=99)
        new = registry.replace("ae", new_model)
        assert registry.get("ae") is new
        assert registry.get("ae") is not old
        assert len(registry) == 1

    def test_replace_unknown_name_rejected(self, small_ae):
        from repro.errors import ModelNotFoundError

        with pytest.raises(ModelNotFoundError):
            ModelRegistry().replace("ae", small_ae)

    def test_replace_validates_before_flipping(self, small_ae):
        registry = ModelRegistry()
        old = registry.register("ae", small_ae)
        with pytest.raises(ServingError, match="cannot serve"):
            registry.replace("ae", object())
        # The failed replace never touched the registered entry.
        assert registry.get("ae") is old

    def test_unregister(self, small_ae):
        registry = ModelRegistry()
        registry.register("ae", small_ae)
        registry.unregister("ae")
        assert len(registry) == 0

    def test_load_from_archive(self, small_ae, tmp_path, rng):
        path = save_model(small_ae, tmp_path / "ae.npz")
        servable = ModelRegistry().load("ae", path)
        x = rng.random((4, 25))
        np.testing.assert_array_equal(servable.predict(x), small_ae.encode(x))
