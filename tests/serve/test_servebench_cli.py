"""End-to-end: the `serve-bench` CLI artefact on a freshly trained model."""

import pytest

from repro.cli import main
from repro.serve.benchrun import run_serve_bench, train_demo_servable


class TestServeBenchRows:
    @pytest.fixture(scope="class")
    def rows(self):
        servable = train_demo_servable(n_examples=96, epochs=1, seed=0)
        return run_serve_bench(
            servable=servable,
            batch_sizes=(1, 16),
            rates=(500.0, 20_000.0),
            duration_s=0.25,
            seed=0,
        )

    def test_grid_shape(self, rows):
        assert len(rows) == 4
        assert {(r["max_batch"], r["rate_rps"]) for r in rows} == {
            (1, 500.0), (1, 20_000.0), (16, 500.0), (16, 20_000.0),
        }

    def test_rows_have_report_columns(self, rows):
        for row in rows:
            for column in ("throughput_rps", "p50_ms", "p95_ms", "p99_ms", "mean_batch"):
                assert column in row
            assert row["served"] + row["rejected"] == row["offered"]

    def test_batching_wins_at_saturation(self, rows):
        by_cell = {(r["max_batch"], r["rate_rps"]): r for r in rows}
        slow = by_cell[(1, 20_000.0)]
        fast = by_cell[(16, 20_000.0)]
        assert fast["throughput_rps"] >= 2.0 * slow["throughput_rps"]


class TestServeBenchCli:
    def test_cli_emits_full_report(self, capsys):
        assert main(["serve-bench", "--duration", "0.2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Serving sweep" in out
        for column in ("throughput_rps", "p50_ms", "p95_ms", "p99_ms", "mean_batch"):
            assert column in out

    def test_cli_csv_export(self, tmp_path, capsys):
        path = tmp_path / "serve.csv"
        assert main(["serve-bench", "--duration", "0.1", "--csv", str(path)]) == 0
        header = path.read_text().splitlines()[0]
        assert "max_batch" in header and "throughput_rps" in header
