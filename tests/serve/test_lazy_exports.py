"""Smoke tests: repro.serve is reachable from `repro` without import-time cost."""

import subprocess
import sys

import repro


class TestLazyServeExports:
    def test_import_repro_does_not_import_serve(self):
        """Training-only users must not pay for the serving subsystem."""
        code = (
            "import sys; import repro; "
            "sys.exit(1 if any(m.startswith('repro.serve') for m in sys.modules) else 0)"
        )
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0, "importing repro eagerly imported repro.serve"

    def test_serve_names_resolve_lazily(self):
        assert repro.ServingEngine is not None
        assert repro.ModelRegistry is not None
        assert repro.BatchPolicy(max_batch_size=4).max_batch_size == 4
        from repro.serve import ServingEngine

        assert repro.ServingEngine is ServingEngine

    def test_lazy_names_in_all(self):
        for name in ("ServingEngine", "ModelRegistry", "LoadTestHarness"):
            assert name in repro.__all__

    def test_unknown_attribute_still_raises(self):
        try:
            repro.definitely_not_a_symbol
        except AttributeError as err:
            assert "definitely_not_a_symbol" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected AttributeError")
