"""Tests for repro.serve.batcher — batch policy and queue semantics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.batcher import BatchPolicy, MicroBatcher, Request


def make_request(i, t):
    return Request(id=i, payload=np.zeros(4), arrival_s=t)


class TestBatchPolicy:
    def test_defaults_valid(self):
        policy = BatchPolicy()
        assert policy.max_batch_size >= 1 and policy.max_queue_depth >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_s": -1e-3},
            {"max_queue_depth": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchPolicy(**kwargs)


class TestMicroBatcher:
    def test_not_ready_while_empty(self):
        batcher = MicroBatcher(BatchPolicy(max_batch_size=4, max_wait_s=1.0))
        assert not batcher.ready(1e9)
        assert batcher.oldest_deadline() is None

    def test_full_batch_is_ready_immediately(self):
        batcher = MicroBatcher(BatchPolicy(max_batch_size=3, max_wait_s=10.0))
        for i in range(3):
            assert batcher.offer(make_request(i, 0.0))
        assert batcher.ready(0.0)

    def test_partial_batch_waits_for_deadline(self):
        batcher = MicroBatcher(BatchPolicy(max_batch_size=8, max_wait_s=0.5))
        batcher.offer(make_request(0, 1.0))
        assert not batcher.ready(1.4)
        assert batcher.ready(1.5)
        assert batcher.oldest_deadline() == pytest.approx(1.5)

    def test_zero_wait_dispatches_each_request_alone(self):
        batcher = MicroBatcher(BatchPolicy(max_batch_size=8, max_wait_s=0.0))
        batcher.offer(make_request(0, 2.0))
        assert batcher.ready(2.0)

    def test_next_batch_fifo_and_capped(self):
        batcher = MicroBatcher(BatchPolicy(max_batch_size=2, max_wait_s=0.0))
        for i in range(5):
            batcher.offer(make_request(i, 0.0))
        batch = batcher.next_batch()
        assert [r.id for r in batch] == [0, 1]
        assert batcher.queue_depth == 3

    def test_admission_control_rejects_when_full(self):
        batcher = MicroBatcher(BatchPolicy(max_queue_depth=2))
        assert batcher.offer(make_request(0, 0.0))
        assert batcher.offer(make_request(1, 0.0))
        assert not batcher.offer(make_request(2, 0.0))
        assert batcher.queue_depth == 2

    def test_remove_withdraws_exact_instance(self):
        batcher = MicroBatcher(BatchPolicy(max_batch_size=8, max_wait_s=10.0))
        a, b = make_request(0, 0.0), make_request(1, 0.0)
        batcher.offer(a)
        batcher.offer(b)
        assert batcher.remove(a)
        assert batcher.queue_depth == 1
        # Identity, not equality: a's twin payload (b) must stay queued.
        assert not batcher.remove(a)
        assert batcher.remove(b)
        assert batcher.queue_depth == 0

    def test_remove_matches_identity_not_payload_value(self):
        batcher = MicroBatcher(BatchPolicy(max_batch_size=8, max_wait_s=10.0))
        twin_a, twin_b = make_request(0, 0.0), make_request(0, 0.0)
        batcher.offer(twin_a)
        assert not batcher.remove(twin_b)  # equal fields, different object
        assert batcher.queue_depth == 1

    def test_remove_frees_queue_capacity(self):
        batcher = MicroBatcher(BatchPolicy(max_queue_depth=1))
        first = make_request(0, 0.0)
        batcher.offer(first)
        assert not batcher.offer(make_request(1, 0.0))
        batcher.remove(first)
        assert batcher.offer(make_request(2, 0.0))


class TestRequestTimings:
    def test_latency_properties(self):
        request = make_request(0, 1.0)
        assert request.wait_s is None and request.latency_s is None
        request.dispatch_s = 1.5
        request.complete_s = 2.0
        assert request.wait_s == pytest.approx(0.5)
        assert request.latency_s == pytest.approx(1.0)
