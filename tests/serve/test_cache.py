"""Tests for repro.serve.cache — the LRU feature cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.cache import FeatureCache


class TestFeatureCache:
    def test_miss_then_hit(self):
        cache = FeatureCache()
        x = np.array([1.0, 2.0, 3.0])
        assert cache.get(x) is None
        cache.put(x, np.array([9.0]))
        np.testing.assert_array_equal(cache.get(x), [9.0])
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_exact_bytes_keying(self):
        cache = FeatureCache()
        cache.put(np.array([1.0, 2.0]), np.array([0.0]))
        assert cache.get(np.array([1.0, 2.0 + 1e-12])) is None

    def test_shape_distinguished(self):
        cache = FeatureCache()
        cache.put(np.zeros(4), np.array([1.0]))
        assert cache.get(np.zeros((2, 2))) is None

    def test_lru_eviction_order(self):
        cache = FeatureCache(max_entries=2)
        a, b, c = np.array([1.0]), np.array([2.0]), np.array([3.0])
        cache.put(a, a)
        cache.put(b, b)
        cache.get(a)  # refresh a; b is now least recent
        cache.put(c, c)
        assert cache.get(b) is None
        assert cache.get(a) is not None
        assert cache.evictions == 1

    def test_put_existing_updates_without_evicting(self):
        cache = FeatureCache(max_entries=1)
        x = np.array([1.0])
        cache.put(x, np.array([1.0]))
        cache.put(x, np.array([2.0]))
        np.testing.assert_array_equal(cache.get(x), [2.0])
        assert cache.evictions == 0

    def test_clear(self):
        cache = FeatureCache()
        cache.put(np.zeros(2), np.ones(1))
        cache.clear()
        assert len(cache) == 0

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FeatureCache(max_entries=0)
