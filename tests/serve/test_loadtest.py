"""Tests for repro.serve.loadtest — arrivals, determinism, batching gains."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serve.batcher import BatchPolicy
from repro.serve.cache import FeatureCache
from repro.serve.engine import ConstantServiceModel, ServingEngine
from repro.serve.loadtest import BurstArrivals, LoadTestHarness, PoissonArrivals
from repro.serve.registry import ServableModel


@pytest.fixture
def servable(small_ae):
    return ServableModel("ae", small_ae)


def make_harness(servable, max_batch, rate, duration=0.5, seed=0, **engine_kwargs):
    engine_kwargs.setdefault(
        # 1 ms dispatch overhead + 0.05 ms/example: strong batching incentive.
        "service_model",
        ConstantServiceModel(base_s=1e-3, per_example_s=5e-5),
    )
    engine = ServingEngine(
        servable,
        policy=BatchPolicy(max_batch_size=max_batch, max_wait_s=2e-3),
        **engine_kwargs,
    )
    return LoadTestHarness(engine, PoissonArrivals(rate), duration_s=duration, seed=seed)


class TestArrivalProcesses:
    def test_poisson_rate_roughly_respected(self):
        rng = np.random.default_rng(0)
        times = PoissonArrivals(1000.0).arrival_times(2.0, rng)
        assert 1600 < len(times) < 2400
        assert all(0 <= t < 2.0 for t in times)
        assert times == sorted(times)

    def test_poisson_deterministic_given_rng(self):
        a = PoissonArrivals(500.0).arrival_times(1.0, np.random.default_rng(7))
        b = PoissonArrivals(500.0).arrival_times(1.0, np.random.default_rng(7))
        assert a == b

    def test_burst_rate_profile(self):
        rng = np.random.default_rng(0)
        arrivals = BurstArrivals(100.0, 5000.0, period_s=1.0, burst_len_s=0.1)
        times = arrivals.arrival_times(1.0, rng)
        in_burst = sum(1 for t in times if t < 0.1)
        assert in_burst > len(times) / 2  # the 10% burst window dominates

    @pytest.mark.parametrize(
        "ctor",
        [
            lambda: PoissonArrivals(0.0),
            lambda: BurstArrivals(100.0, 50.0, 1.0, 0.1),
            lambda: BurstArrivals(100.0, 200.0, 1.0, 2.0),
        ],
    )
    def test_invalid_processes(self, ctor):
        with pytest.raises(ConfigurationError):
            ctor()

    def test_burst_len_equal_to_period_is_valid_boundary(self):
        """burst_len_s == period_s: the burst never closes, so the
        process degenerates to constant Poisson at burst_rps."""
        burst = BurstArrivals(100.0, 800.0, period_s=0.25, burst_len_s=0.25)
        a = burst.arrival_times(0.5, np.random.default_rng(5))
        b = PoissonArrivals(800.0).arrival_times(0.5, np.random.default_rng(5))
        assert a == b

    def test_reexport_is_the_workloads_class(self):
        """serve.loadtest re-exports the classes that moved to workloads."""
        from repro.workloads import arrivals

        assert PoissonArrivals is arrivals.PoissonArrivals
        assert BurstArrivals is arrivals.BurstArrivals


class TestLoadTestHarness:
    def test_report_accounting_consistent(self, servable):
        report = make_harness(servable, max_batch=8, rate=2000.0).run()
        assert report.offered == report.served + report.rejected
        assert report.served > 0
        assert report.throughput_rps == pytest.approx(report.served / report.makespan_s)
        assert report.latency_p50_s <= report.latency_p95_s <= report.latency_p99_s
        assert 1.0 <= report.mean_batch_size <= 8.0

    def test_deterministic_across_runs(self, servable, small_ae):
        """Same seed ⇒ bit-identical latency histograms and report."""
        first = make_harness(servable, max_batch=16, rate=3000.0, seed=42).run()
        second = make_harness(
            ServableModel("ae2", small_ae), max_batch=16, rate=3000.0, seed=42
        ).run()
        assert first.latency_buckets == second.latency_buckets
        assert first.served == second.served
        assert first.throughput_rps == second.throughput_rps
        assert first.latency_p99_s == second.latency_p99_s

    def test_different_seeds_differ(self, servable, small_ae):
        first = make_harness(servable, max_batch=16, rate=3000.0, seed=1).run()
        second = make_harness(
            ServableModel("ae2", small_ae), max_batch=16, rate=3000.0, seed=2
        ).run()
        assert first.latency_buckets != second.latency_buckets

    def test_batching_at_least_doubles_saturated_throughput(self, servable, small_ae):
        """The acceptance gate: at high arrival rate, dynamic batching
        must deliver ≥ 2× the throughput of batch-size-1 serving."""
        # base_s=1ms ⇒ batch-1 capacity ≈ 950 rps; offered 8000 rps.
        unbatched = make_harness(servable, max_batch=1, rate=8000.0).run()
        batched = make_harness(
            ServableModel("ae2", small_ae), max_batch=32, rate=8000.0
        ).run()
        assert unbatched.rejected > 0  # the unbatched server saturates
        assert batched.throughput_rps >= 2.0 * unbatched.throughput_rps
        assert batched.mean_batch_size > 2.0

    def test_cache_accelerates_repetitive_traffic(self, servable):
        harness = make_harness(servable, max_batch=8, rate=2000.0, cache=FeatureCache())
        harness.payload_pool = 4  # heavy payload reuse
        report = harness.run()
        assert report.cache_hits > report.served / 2

    def test_harness_is_single_use(self, servable):
        harness = make_harness(servable, max_batch=4, rate=500.0, duration=0.1)
        harness.run()
        with pytest.raises(ServingError, match="single-use"):
            harness.run()

    def test_all_served_requests_carry_results(self, servable):
        engine = ServingEngine(
            servable,
            policy=BatchPolicy(max_batch_size=4, max_wait_s=1e-3),
            service_model=ConstantServiceModel(base_s=1e-4, per_example_s=1e-5),
        )
        harness = LoadTestHarness(engine, PoissonArrivals(500.0), duration_s=0.2, seed=3)
        report = harness.run()
        assert report.rejected == 0
        assert report.goodput_fraction == 1.0

    def test_explicit_payloads_validated(self, servable):
        engine = ServingEngine(servable, service_model=ConstantServiceModel())
        with pytest.raises(ConfigurationError, match="payloads"):
            LoadTestHarness(
                engine, PoissonArrivals(100.0), payloads=np.zeros((4, 7))
            ).run()


class TestTraceMode:
    def test_arrivals_and_trace_mutually_exclusive(self, servable):
        from repro.workloads import trace_from_arrivals

        engine = ServingEngine(servable, service_model=ConstantServiceModel())
        trace = trace_from_arrivals(PoissonArrivals(200.0), 0.1, seed=0)
        with pytest.raises(ConfigurationError, match="exactly one"):
            LoadTestHarness(engine, PoissonArrivals(200.0), trace=trace)
        with pytest.raises(ConfigurationError, match="exactly one"):
            LoadTestHarness(engine)

    def test_trace_mode_matches_arrivals_mode(self, servable, small_ae):
        """Replaying the trace the harness would sample gives the same
        report as sampling it in-line — the refactor's bit-compat contract."""
        from repro.serve.registry import ServableModel
        from repro.utils.rng import spawn_generators
        from repro.workloads.trace import trace_from_streams

        inline = make_harness(servable, max_batch=8, rate=2000.0, seed=9).run()
        arrival_rng, payload_rng, pick_rng = spawn_generators(9, 3)
        pool = payload_rng.random((64, 25))
        trace = trace_from_streams(
            PoissonArrivals(2000.0), 0.5, arrival_rng, pick_rng, 64,
            seed=9, name="loadtest",
        )
        engine = ServingEngine(
            ServableModel("ae2", small_ae),
            policy=BatchPolicy(max_batch_size=8, max_wait_s=2e-3),
            service_model=ConstantServiceModel(base_s=1e-3, per_example_s=5e-5),
        )
        replayed = LoadTestHarness(engine, trace=trace, payloads=pool).run()
        assert replayed.latency_buckets == inline.latency_buckets
        assert replayed.served == inline.served
        assert replayed.latency_p99_s == inline.latency_p99_s
