"""Tests for repro.serve.metrics — histograms and the metrics bundle."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.metrics import LatencyHistogram, ServingMetrics


class TestLatencyHistogram:
    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0

    def test_percentiles_nearest_rank(self):
        hist = LatencyHistogram()
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]:
            hist.record(v)
        assert hist.percentile(50) == 5.0
        assert hist.percentile(95) == 10.0
        assert hist.percentile(100) == 10.0
        assert hist.percentile(0) == 1.0

    def test_mean(self):
        hist = LatencyHistogram()
        for v in (1.0, 3.0):
            hist.record(v)
        assert hist.mean == pytest.approx(2.0)

    def test_bucket_counts_partition_samples(self):
        hist = LatencyHistogram()
        values = [0.0, 1e-9, 3.7e-4, 0.02, 5.0, 1e6]
        for v in values:
            hist.record(v)
        counts = hist.bucket_counts()
        assert sum(counts) == len(values)
        assert counts[0] == 2  # 0.0 and 1e-9 underflow
        assert counts[-1] == 1  # 1e6 overflows

    def test_bucket_edges_consistent_with_samples(self):
        # Values at awkward float positions must land in exactly one bucket.
        hist = LatencyHistogram()
        for exp in range(-6, 3):
            hist.record(10.0**exp)
        assert sum(hist.bucket_counts()) == 9

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().record(-1.0)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().percentile(101)


class TestServingMetrics:
    def test_counters_roll_up(self):
        metrics = ServingMetrics()
        metrics.on_received()
        metrics.on_received()
        metrics.on_rejected()
        metrics.on_batch(4)
        metrics.on_batch(2)
        metrics.on_served(0.001, 0.002, 0.003)
        metrics.on_queue_depth(7)
        metrics.on_queue_depth(3)
        assert metrics.received == 2
        assert metrics.rejected == 1
        assert metrics.served == 1
        assert metrics.mean_batch_size == pytest.approx(3.0)
        assert metrics.max_queue_depth == 7

    def test_rows_render_as_table(self):
        from repro.bench.report import format_table

        metrics = ServingMetrics()
        metrics.on_received()
        metrics.on_served(0.001, 0.002, 0.003)
        text = format_table(metrics.rows(), title="serving")
        assert "latency_p99_s" in text
        assert "requests_served" in text

    def test_cache_accounting_in_rows(self):
        metrics = ServingMetrics()
        metrics.on_cache_hit()
        metrics.on_cache_miss()
        metrics.on_cache_miss()
        metrics.on_cache_miss()
        metrics.on_evictions(5)
        by_name = {row["metric"]: row["value"] for row in metrics.rows()}
        assert by_name["cache_hits"] == 1
        assert by_name["cache_misses"] == 3
        assert by_name["cache_hit_rate"] == pytest.approx(0.25)
        assert by_name["cache_evictions"] == 5

    def test_cold_cache_hit_rate_is_zero(self):
        assert ServingMetrics().cache_hit_rate == 0.0

    def test_eviction_gauge_monotone(self):
        metrics = ServingMetrics()
        metrics.on_evictions(3)
        metrics.on_evictions(3)  # no change is fine
        metrics.on_evictions(7)
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            metrics.on_evictions(2)

    def test_cancelled_counter_in_rows(self):
        metrics = ServingMetrics()
        metrics.on_cancelled()
        metrics.on_cancelled()
        by_name = {row["metric"]: row["value"] for row in metrics.rows()}
        assert by_name["requests_cancelled"] == 2
