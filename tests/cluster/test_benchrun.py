"""Tests for repro.cluster.benchrun — schema, gates, baseline compare."""

import pytest

from repro.cluster.benchrun import (
    SCHEMA,
    compare_to_baseline,
    drill_replica_config,
    enforce_gates,
    load_report,
    replica_capacity_rps,
    run_saturation_sweep,
    validate_report,
    write_report,
)
from repro.errors import ConfigurationError


def saturation_row(n, speedup, p99_ratio=1.0):
    return {
        "kind": "saturation", "n_replicas": n, "rate_rps": 1e5,
        "offered": 1000, "completed": 900, "shed": 100, "failed": 0,
        "throughput_rps": 1e5 * speedup, "p99_ms": 2.0,
        "speedup_vs_1": speedup, "p99_ratio_vs_1": p99_ratio,
    }


def synthetic_report(
    scaling=3.5, p99_ratio=1.0, hedge_gain=2.0,
    swap_failed=0, kill_failed=0, deaths=1, scale_ups=2,
):
    return {
        "schema": SCHEMA,
        "seed": 0,
        "quick": True,
        "rows": [
            saturation_row(1, 1.0),
            saturation_row(4, scaling, p99_ratio),
            {"kind": "hedge", "n_replicas": 4, "slow_factor": 20.0,
             "offered": 500, "completed": 500, "failed": 0,
             "p99_off_ms": 50.0, "p99_on_ms": 50.0 / hedge_gain,
             "p99_gain": hedge_gain, "hedges_launched": 40, "hedges_won": 39},
            {"kind": "swap", "n_replicas": 2, "offered": 500, "completed": 500,
             "failed": swap_failed, "shed": 0, "swaps": 1, "drained": True,
             "old_version_retired": True, "post_swap_model": "drill@v2",
             "active_version": 2},
            {"kind": "kill", "n_replicas": 3, "victim": 1, "offered": 500,
             "completed": 500, "failed": kill_failed, "shed": 0,
             "deaths": deaths, "rerouted": 10, "replicas_final": 2},
            {"kind": "autoscale", "offered": 500, "completed": 480, "failed": 0,
             "scale_ups": scale_ups, "scale_downs": 1, "replicas_final": 1,
             "peak_replicas": 3},
        ],
    }


class TestValidation:
    def test_valid_report_passes(self):
        validate_report(synthetic_report())

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigurationError, match="schema"):
            validate_report({"schema": "other/v9", "rows": [{}]})

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError, match="no rows"):
            validate_report({"schema": SCHEMA, "rows": []})

    def test_unknown_kind_rejected(self):
        report = synthetic_report()
        report["rows"][0]["kind"] = "mystery"
        with pytest.raises(ConfigurationError, match="unknown kind"):
            validate_report(report)

    def test_missing_key_rejected(self):
        report = synthetic_report()
        del report["rows"][2]["p99_gain"]
        with pytest.raises(ConfigurationError, match="p99_gain"):
            validate_report(report)

    def test_missing_drill_kind_rejected(self):
        report = synthetic_report()
        report["rows"] = [r for r in report["rows"] if r["kind"] != "autoscale"]
        with pytest.raises(ConfigurationError, match="autoscale"):
            validate_report(report)

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(synthetic_report(), path)
        validate_report(load_report(path))


class TestGates:
    def test_clean_report_passes(self):
        assert enforce_gates(synthetic_report()) == []

    def test_scaling_floor(self):
        failures = enforce_gates(synthetic_report(scaling=2.4))
        assert any("speedup" in f for f in failures)

    def test_p99_inflation(self):
        failures = enforce_gates(synthetic_report(p99_ratio=1.5))
        assert any("p99 ratio" in f for f in failures)

    def test_hedge_floor(self):
        failures = enforce_gates(synthetic_report(hedge_gain=1.2))
        assert any("hedge" in f for f in failures)

    def test_swap_contract(self):
        failures = enforce_gates(synthetic_report(swap_failed=3))
        assert any("zero-downtime" in f for f in failures)

    def test_kill_contract(self):
        failures = enforce_gates(synthetic_report(kill_failed=1))
        assert any("fail-over" in f for f in failures)
        failures = enforce_gates(synthetic_report(deaths=0))
        assert any("deaths=0" in f for f in failures)

    def test_autoscale_contract(self):
        failures = enforce_gates(synthetic_report(scale_ups=0))
        assert any("autoscale" in f for f in failures)


class TestBaselineCompare:
    def test_no_regression(self):
        assert compare_to_baseline(synthetic_report(), synthetic_report()) == []

    def test_scaling_regression_flagged(self):
        current = synthetic_report(scaling=2.0)
        failures = compare_to_baseline(current, synthetic_report(scaling=3.5))
        assert any("saturation speedup [4]" in f for f in failures)

    def test_hedge_regression_flagged(self):
        current = synthetic_report(hedge_gain=1.0)
        failures = compare_to_baseline(current, synthetic_report(hedge_gain=2.0))
        assert any("hedge p99 gain" in f for f in failures)

    def test_within_allowance_passes(self):
        current = synthetic_report(scaling=3.0)
        assert compare_to_baseline(
            current, synthetic_report(scaling=3.5), max_regression=0.25
        ) == []


class TestRealDrillPlumbing:
    def test_capacity_is_positive_and_batch_bound(self, servable):
        capacity = replica_capacity_rps(servable)
        assert capacity > 0
        config = drill_replica_config(cache_entries=16)
        assert config.cache_entries == 16
        assert drill_replica_config().cache_entries == 0

    def test_tiny_saturation_sweep_shape(self, servable):
        rows = run_saturation_sweep(
            servable, replica_counts=(1, 2), duration_s=0.002, seed=0
        )
        assert [r["n_replicas"] for r in rows] == [1, 2]
        assert rows[0]["speedup_vs_1"] == 1.0
        assert rows[1]["completed"] > rows[0]["completed"]
        assert all(r["failed"] == 0 for r in rows)

    def test_saturation_rejects_bad_counts(self, servable):
        with pytest.raises(ConfigurationError):
            run_saturation_sweep(servable, replica_counts=())
        with pytest.raises(ConfigurationError):
            run_saturation_sweep(servable, replica_counts=(0, 2))
