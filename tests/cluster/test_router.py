"""Tests for repro.cluster.router — policies, spillover, hedging, fail-over."""

import numpy as np
import pytest

from repro.cluster.router import (
    NO_HEDGING,
    ConsistentHashPolicy,
    HedgePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    Router,
    payload_key,
)
from repro.errors import ConfigurationError, ServingError
from repro.testing.faults import FaultPlan, inject

from tests.cluster.conftest import BASE_S, PER_EXAMPLE_S, PreferLowestId, fast_config


def make_router(servable, n=2, policy=None, hedge=NO_HEDGING, **cfg):
    return Router(
        servable,
        n_replicas=n,
        replica_config=fast_config(**cfg),
        policy=policy if policy is not None else PreferLowestId(),
        hedge=hedge,
    )


def payload(seed=0, n=25):
    return np.random.default_rng(seed).random(n)


def drain(router, until=5.0, step=0.005, start=0.0):
    """Poll on a fixed grid; returns every completion in order."""
    done = []
    t = start
    while t <= until:
        done.extend(router.poll(t))
        t += step
    return done


class TestConstruction:
    def test_requires_servable(self):
        with pytest.raises(ServingError, match="ServableModel"):
            Router(object(), n_replicas=1)

    def test_bad_replica_count(self, servable):
        with pytest.raises(ConfigurationError):
            make_router(servable, n=0)

    def test_payload_shape_validated(self, servable):
        router = make_router(servable, n=1)
        with pytest.raises(ServingError, match="1-D vector"):
            router.submit(np.zeros((2, 25)), 0.0)

    def test_payload_key_stable_and_content_sensitive(self):
        a, b = payload(1), payload(2)
        assert payload_key(a) == payload_key(a.copy())
        assert payload_key(a) != payload_key(b)


class TestRoutingPolicies:
    def test_round_robin_rotates(self, servable):
        router = make_router(servable, n=3, policy=RoundRobinPolicy())
        for i in range(6):
            router.submit(payload(i), 0.0)
        received = [r.engine.metrics.received for r in router.replicas]
        assert received == [2, 2, 2]

    def test_least_loaded_steers_away_from_queues(self, servable):
        router = make_router(servable, n=2, policy=PreferLowestId())
        for i in range(3):  # pin three requests onto replica 0
            router.submit(payload(i), 0.0)
        router.policy = LeastLoadedPolicy()
        creq = router.submit(payload(99), 0.0)
        assert creq.legs[0].replica_id == 1

    def test_consistent_hash_is_sticky(self, servable):
        router = make_router(servable, n=3, policy=ConsistentHashPolicy())
        p = payload(7)
        first = router.submit(p, 0.0).legs[0].replica_id
        for i in range(4):
            creq = router.submit(p, 0.001 * (i + 1))
            assert creq.legs[0].replica_id == first

    def test_consistent_hash_spreads_distinct_keys(self, servable):
        router = make_router(servable, n=3, policy=ConsistentHashPolicy(),
                             cache_entries=0)
        hit = set()
        for i in range(30):
            creq = router.submit(payload(i), 0.0)
            if creq is not None and creq.legs:
                hit.add(creq.legs[0].replica_id)
        assert len(hit) >= 2

    def test_consistent_hash_feeds_replica_cache(self, servable):
        router = make_router(
            servable, n=2, policy=ConsistentHashPolicy(), cache_entries=32
        )
        p = payload(3)
        first = router.submit(p, 0.0)
        drain(router, until=0.1)
        assert first.complete_s is not None
        again = router.submit(p, 0.2)
        # Same key -> same replica -> its private cache answers inline.
        assert again.complete_s == 0.2
        assert router.metrics.cache_hits == 1
        assert again.served_by == first.served_by
        np.testing.assert_array_equal(again.result, first.result)

    def test_bad_vnode_count(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashPolicy(n_vnodes=0)


class TestPolicyContracts:
    """Pure policy-level contracts, checked against lightweight fakes."""

    class FakeReplica:
        def __init__(self, rid, outstanding=0):
            self.id = rid
            self.outstanding = outstanding

    class FakeRequest:
        def __init__(self, key):
            self.key = key

    def keyset(self, n=300):
        return [payload_key(payload(i)) for i in range(n)]

    def assignments(self, policy, keys, ids):
        replicas = [self.FakeReplica(rid) for rid in ids]
        return {
            k: policy.choose(self.FakeRequest(k), replicas).id for k in keys
        }

    def test_consistent_hash_add_replica_rebalance_bound(self):
        """Adding one replica to N=4 remaps ≤ 2/N of a fixed keyset."""
        policy = ConsistentHashPolicy()
        keys = self.keyset()
        before = self.assignments(policy, keys, [0, 1, 2, 3])
        after = self.assignments(policy, keys, [0, 1, 2, 3, 4])
        moved = sum(1 for k in keys if before[k] != after[k])
        assert moved <= len(keys) * 2 / 4
        # Every remapped key went TO the new member, never between old ones.
        assert all(after[k] == 4 for k in keys if before[k] != after[k])

    def test_consistent_hash_remove_replica_rebalance_bound(self):
        """Removing one replica from N=5 remaps ≤ 2/N of a fixed keyset."""
        policy = ConsistentHashPolicy()
        keys = self.keyset()
        before = self.assignments(policy, keys, [0, 1, 2, 3, 4])
        after = self.assignments(policy, keys, [0, 1, 2, 3])
        moved = sum(1 for k in keys if before[k] != after[k])
        assert moved <= len(keys) * 2 / 5
        # Only the departed member's keys moved; survivors kept theirs.
        assert all(before[k] == 4 for k in keys if before[k] != after[k])

    def test_least_loaded_tie_break_is_deterministic(self):
        """Equal load ⇒ lowest id wins, whatever the candidate order."""
        policy = LeastLoadedPolicy()
        request = self.FakeRequest(0)
        replicas = [self.FakeReplica(rid, outstanding=3) for rid in (2, 0, 1)]
        for rotation in range(3):
            rotated = replicas[rotation:] + replicas[:rotation]
            assert policy.choose(request, rotated).id == 0

    def test_least_loaded_prefers_lighter_queue_over_lower_id(self):
        policy = LeastLoadedPolicy()
        replicas = [self.FakeReplica(0, outstanding=5),
                    self.FakeReplica(1, outstanding=2)]
        assert policy.choose(self.FakeRequest(0), replicas).id == 1


class TestBackpressure:
    def test_spillover_to_second_replica(self, servable):
        router = make_router(servable, n=2)
        for i in range(8):  # fill replica 0's bounded queue
            router.submit(payload(i), 0.0)
        creq = router.submit(payload(99), 0.0)
        assert creq is not None
        assert creq.legs[0].replica_id == 1
        assert router.metrics.backpressure_events == 1
        assert router.metrics.shed == 0

    def test_shed_when_every_replica_refuses(self, servable):
        router = make_router(servable, n=1)
        accepted = [router.submit(payload(i), 0.0) for i in range(12)]
        shed = [creq for creq in accepted if creq is None]
        assert len(shed) == 4  # queue depth 8 absorbs the rest
        assert router.metrics.shed == 4
        assert router.metrics.received == 12


class TestHedging:
    def straggler_plan(self, factor=100.0):
        return FaultPlan.corrupt(
            "replica.serve",
            transform=lambda seconds, ctx: seconds * factor,
            times=None,
            match={"replica": 0},
        )

    def hedge_policy(self, deadline=0.05):
        # Huge warmup: the deadline stays pinned at min_deadline_s.
        return HedgePolicy(min_deadline_s=deadline, warmup=10**6)

    def test_hedge_wins_and_wasted_loser_is_counted(self, servable):
        router = make_router(servable, n=2, hedge=self.hedge_policy())
        with inject(self.straggler_plan()):
            creq = router.submit(payload(0), 0.0)
            assert creq.hedge_at == pytest.approx(0.05)
            router.poll(0.01)   # dispatches on replica 0: in flight for ~1.1 s
            router.poll(0.05)   # hedge deadline -> second leg on replica 1
            assert router.metrics.hedges_launched == 1
            done = drain(router, until=0.2, start=0.06)
            assert done == [creq]
            assert creq.served_by == 1
            assert creq.latency_s < 0.1
            assert router.metrics.hedges_won == 1
            # The straggler leg was already on the device: it cannot be
            # cancelled, and its eventual completion is wasted work.
            assert router.metrics.hedges_cancelled == 0
            drain(router, until=1.5, start=1.0)
            assert router.metrics.hedges_wasted == 1
        assert router.metrics.completed == 1

    def test_hedge_cancels_still_queued_loser(self, servable):
        router = make_router(servable, n=2, hedge=self.hedge_policy())
        with inject(self.straggler_plan()):
            blocker = router.submit(payload(0), 0.0)
            router.poll(0.01)  # replica 0's worker now busy ~1.1 s
            creq = router.submit(payload(1), 0.011)
            router.poll(0.062)  # creq's hedge fires while it is still queued
            done = drain(router, until=0.2, start=0.07)
            assert creq in done
            assert creq.served_by == 1
            # The queued loser leg was withdrawn from replica 0's queue.
            assert router.metrics.hedges_cancelled >= 1
            assert router.replicas[0].queue_depth == 0
            drain(router, until=1.5, start=1.0)
            assert blocker.complete_s is not None
        assert router.metrics.failed == 0

    def test_no_hedging_on_single_replica(self, servable):
        router = make_router(servable, n=1, hedge=self.hedge_policy())
        with inject(self.straggler_plan()):
            router.submit(payload(0), 0.0)
            drain(router, until=2.0)
        assert router.metrics.hedges_launched == 0

    def test_deadline_warmup_and_clamp(self, servable):
        router = make_router(
            servable, n=2,
            hedge=HedgePolicy(multiplier=2.0, min_deadline_s=0.01,
                              max_deadline_s=0.02, warmup=10),
        )
        assert router.hedge_deadline_s() == pytest.approx(0.01)  # cold
        for _ in range(10):
            router.metrics.on_completed(0.5, cache_hit=False)
        # 2 x p99 = 1.0 s, but the SLO ceiling clamps it.
        assert router.hedge_deadline_s() == pytest.approx(0.02)

    def test_deadline_tracks_p99_without_ceiling(self, servable):
        router = make_router(
            servable, n=2,
            hedge=HedgePolicy(multiplier=2.0, min_deadline_s=0.01, warmup=10),
        )
        for _ in range(10):
            router.metrics.on_completed(0.5, cache_hit=False)
        assert router.hedge_deadline_s() == pytest.approx(1.0)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError, match="multiplier"):
            HedgePolicy(multiplier=1.0)
        with pytest.raises(ConfigurationError, match="min_deadline_s"):
            HedgePolicy(min_deadline_s=0.0)
        with pytest.raises(ConfigurationError, match="max_deadline_s"):
            HedgePolicy(min_deadline_s=0.02, max_deadline_s=0.01)
        with pytest.raises(ConfigurationError, match="warmup"):
            HedgePolicy(warmup=0)


class TestFaultSitesAndFailover:
    def test_dispatch_fault_skips_replica(self, servable):
        plan = FaultPlan.fail("router.dispatch", times=None, match={"replica": 0})
        router = make_router(servable, n=2)
        with inject(plan):
            creq = router.submit(payload(0), 0.0)
        assert creq.legs[0].replica_id == 1
        assert router.metrics.dispatch_faults == 1

    def test_dispatch_fault_everywhere_sheds(self, servable):
        plan = FaultPlan.fail("router.dispatch", times=None)
        router = make_router(servable, n=2)
        with inject(plan):
            assert router.submit(payload(0), 0.0) is None
        assert router.metrics.shed == 1
        assert router.metrics.dispatch_faults == 2

    def test_replica_death_fails_over(self, servable):
        plan = FaultPlan.fail("replica.serve", match={"replica": 0})
        router = make_router(servable, n=2)
        with inject(plan):
            creq = router.submit(payload(0), 0.0)
            done = drain(router, until=0.2)
        assert done == [creq]
        assert creq.served_by == 1
        assert creq.failed is False
        assert router.metrics.replica_deaths == 1
        assert router.metrics.rerouted == 1
        assert router.metrics.failed == 0
        assert router.n_live == 1  # the corpse was reaped

    def test_death_with_no_survivors_fails_request(self, servable):
        plan = FaultPlan.fail("replica.serve", match={"replica": 0})
        router = make_router(servable, n=1)
        with inject(plan):
            creq = router.submit(payload(0), 0.0)
            drain(router, until=0.2)
        assert creq.failed is True
        assert router.metrics.failed == 1
        assert router.pending == 0
        assert router.n_live == 0


class TestSwapAndScaling:
    def test_swap_drains_old_engine_with_zero_failures(self, servable, servable_b):
        router = make_router(servable, n=2)
        inflight = router.submit(payload(0), 0.0)
        router.poll(0.01)  # dispatched on the old engine
        router.swap(servable_b, 0.012)
        assert router.metrics.swaps == 1
        assert router.swap_complete is False
        fresh = router.submit(payload(1), 0.013)
        done = drain(router, until=0.2, start=0.02)
        assert inflight in done and fresh in done
        assert router.swap_complete is True
        assert all(r.servable.name == "ae-v2" for r in router.replicas)
        assert router.metrics.failed == 0

    def test_swap_rejects_incompatible_width(self, servable, small_rbm):
        from repro.serve.registry import ServableModel

        router = make_router(servable, n=1)
        with pytest.raises(ServingError, match="input width"):
            router.swap(ServableModel("rbm", small_rbm), 0.0)
        with pytest.raises(ServingError, match="ServableModel"):
            router.swap(object(), 0.0)

    def test_add_and_remove_replica(self, servable):
        router = make_router(servable, n=1)
        added = router.add_replica()
        assert router.n_live == 2
        assert added.servable is servable
        victim = router.remove_replica(0.0)
        assert victim == added.id
        router.poll(0.0)  # idle retiree is reaped immediately
        assert router.n_live == 1
        assert router.metrics.scale_ups == 1
        assert router.metrics.scale_downs == 1

    def test_remove_replica_enforces_floor(self, servable):
        router = make_router(servable, n=1)
        assert router.remove_replica(0.0) is None

    def test_retiring_replica_drains_before_reap(self, servable):
        router = make_router(servable, n=2, policy=RoundRobinPolicy())
        creqs = [router.submit(payload(i), 0.0) for i in range(2)]
        assert router.remove_replica(0.0) == 1
        assert router.n_live == 1
        done = drain(router, until=0.2)
        assert set(done) == set(creqs)  # queued work still completes
        assert all(r.id == 0 for r in router.replicas)

    def test_snapshots_cover_retired_members(self, servable):
        router = make_router(servable, n=2)
        router.remove_replica(0.0)
        router.poll(0.0)
        snaps = router.snapshots()
        assert [s["replica"] for s in snaps] == [0, 1]
        assert snaps[1]["retiring"] is True
