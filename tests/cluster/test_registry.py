"""Tests for repro.cluster.registry — versions, promotion, swap tickets."""

import numpy as np
import pytest

from repro.cluster.registry import ReplicatedRegistry
from repro.cluster.router import NO_HEDGING, Router
from repro.errors import ConfigurationError, ModelNotFoundError, ServingError

from tests.cluster.conftest import PreferLowestId, fast_config


def make_router(servable, n=1):
    return Router(
        servable,
        n_replicas=n,
        replica_config=fast_config(),
        policy=PreferLowestId(),
        hedge=NO_HEDGING,
    )


@pytest.fixture
def registry(small_ae):
    reg = ReplicatedRegistry()
    reg.publish("enc", small_ae)
    return reg


class TestVersioning:
    def test_first_publish_becomes_active(self, registry):
        assert registry.active_version("enc") == 1
        assert registry.versions("enc") == [1]
        assert registry.active("enc").name == "enc@v1"

    def test_later_publishes_do_not_move_traffic(self, registry, small_ae):
        v2 = registry.publish("enc", small_ae)
        assert v2 == 2
        assert registry.active_version("enc") == 1
        assert registry.versions("enc") == [1, 2]
        assert registry.get_version("enc", 2).name == "enc@v2"

    def test_publish_rewraps_servables_under_versioned_name(self, registry, servable):
        # Passing an already-wrapped ServableModel must not leak its old
        # name into the version archive.
        v = registry.publish("enc", servable)
        assert registry.get_version("enc", v).name == f"enc@v{v}"

    def test_empty_name_rejected(self, small_ae):
        with pytest.raises(ServingError, match="non-empty"):
            ReplicatedRegistry().publish("", small_ae)

    def test_unknown_name_lists_registered(self, registry):
        with pytest.raises(ModelNotFoundError, match="enc"):
            registry.active("missing")
        with pytest.raises(ModelNotFoundError):
            registry.active_version("missing")

    def test_retire_active_version_refused(self, registry):
        with pytest.raises(ConfigurationError, match="active"):
            registry.retire("enc", 1)


class TestPromotion:
    def test_promote_unknown_version_refused(self, registry):
        with pytest.raises(ConfigurationError, match="unknown version"):
            registry.promote("enc", 7)

    def test_promote_current_version_refused(self, registry):
        with pytest.raises(ConfigurationError, match="already serving"):
            registry.promote("enc", 1)

    def test_promote_flips_active_pointer_atomically(self, registry, small_ae):
        v2 = registry.publish("enc", small_ae)
        ticket = registry.promote("enc", v2)
        assert registry.active_version("enc") == 2
        assert registry.active("enc").name == "enc@v2"
        assert (ticket.old_version, ticket.new_version) == (1, 2)

    def test_attach_requires_known_name(self, registry, servable):
        with pytest.raises(ModelNotFoundError):
            registry.attach("missing", make_router(servable))

    def test_promote_swaps_attached_routers(self, registry, small_ae):
        router = make_router(registry.active("enc"))
        registry.attach("enc", router)
        v2 = registry.publish("enc", small_ae)
        registry.promote("enc", v2, now=0.0)
        assert all(r.servable.name == "enc@v2" for r in router.replicas)
        assert router.metrics.swaps == 1

    def test_ticket_waits_for_drain_then_retires_old(self, registry, small_ae, rng):
        router = make_router(registry.active("enc"))
        registry.attach("enc", router)
        v2 = registry.publish("enc", small_ae)

        router.submit(rng.random(25), 0.0)
        router.poll(0.01)  # in flight on v1's engine
        ticket = registry.promote("enc", v2, now=0.012)
        assert ticket.drained is False
        assert ticket.finalize() is False
        assert registry.versions("enc") == [1, 2]

        t = 0.02
        while not router.swap_complete:
            router.poll(t)
            t += 0.005
        assert ticket.finalize() is True
        assert ticket.finalize() is True  # idempotent
        assert registry.versions("enc") == [2]
        with pytest.raises(ModelNotFoundError):
            registry.get_version("enc", 1)

    def test_idle_fleet_drains_immediately(self, registry, small_ae):
        router = make_router(registry.active("enc"))
        registry.attach("enc", router)
        v2 = registry.publish("enc", small_ae)
        ticket = registry.promote("enc", v2)
        assert ticket.drained is True
        assert ticket.finalize() is True
        assert registry.versions("enc") == [2]

    def test_attach_is_idempotent(self, registry, servable):
        router = make_router(registry.active("enc"))
        registry.attach("enc", router)
        registry.attach("enc", router)
        assert registry.routers("enc") == [router]
