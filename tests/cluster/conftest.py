"""Shared fixtures for the cluster suite: fast constant-time replicas."""

from __future__ import annotations

import pytest

from repro.serve.batcher import BatchPolicy
from repro.serve.engine import ConstantServiceModel
from repro.serve.registry import ServableModel
from repro.cluster.replica import ReplicaConfig

#: Constant-time service model: dispatch 10 ms + 1 ms per example.
BASE_S = 0.01
PER_EXAMPLE_S = 0.001


def fast_config(**kwargs) -> ReplicaConfig:
    """Replica config with a cheap analytic service model (no roofline)."""
    kwargs.setdefault(
        "policy", BatchPolicy(max_batch_size=4, max_wait_s=0.01, max_queue_depth=8)
    )
    kwargs.setdefault("n_workers", 1)
    kwargs.setdefault("cache_entries", 0)
    kwargs.setdefault(
        "service_model_factory",
        lambda servable: ConstantServiceModel(
            base_s=BASE_S, per_example_s=PER_EXAMPLE_S
        ),
    )
    return ReplicaConfig(**kwargs)


class PreferLowestId:
    """Deterministic policy pinning traffic to the lowest-id candidate.

    Used to force spillover/hedging/fail-over scenarios onto a known
    replica (round-robin would spread the set-up traffic around).
    """

    def choose(self, request, candidates):
        return min(candidates, key=lambda r: r.id)


@pytest.fixture
def servable(small_ae):
    return ServableModel("ae", small_ae)


@pytest.fixture
def servable_b(small_ae):
    """A second wrapper of the same weights — a distinct 'version'."""
    return ServableModel("ae-v2", small_ae)
