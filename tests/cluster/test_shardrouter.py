"""ShardRouter: placement, scatter-gather parity, degraded mode, faults."""

import numpy as np
import pytest

from repro.cluster.benchrun import drill_replica_config
from repro.cluster.loadtest import ClusterLoadHarness
from repro.cluster.replica import ReplicaConfig
from repro.cluster.shardrouter import ShardRouter, place_shards
from repro.errors import ConfigurationError, ServingError
from repro.nn.stacked import LayerSpec, StackedAutoencoder
from repro.serve.batcher import BatchPolicy
from repro.serve.engine import SimulatedServiceModel
from repro.shard.servables import gather_outputs
from repro.shard.shards import partition
from repro.testing.faults import FaultPlan, inject
from repro.workloads.arrivals import PoissonArrivals


@pytest.fixture(scope="module")
def stack():
    x = np.random.default_rng(0).random((48, 12))
    model = StackedAutoencoder(
        12,
        [LayerSpec(10, epochs=1, batch_size=16), LayerSpec(8, epochs=1, batch_size=16)],
        seed=0,
    )
    model.pretrain(x)
    return model


def _router(stack, n=2, **kw):
    return ShardRouter(
        partition(stack, n), replica_config=drill_replica_config(), **kw
    )


def _drain(router, sreq):
    guard = 0
    while sreq.complete_s is None and not sreq.failed:
        t = router.next_event_time()
        assert t is not None, "request stuck with no pending events"
        router.poll(t)
        guard += 1
        assert guard < 1000
    return sreq


class TestPlacement:
    def test_one_replica_per_shard_deterministically(self):
        a = place_shards(4, range(4))
        b = place_shards(4, range(4))
        assert a == b
        assert sorted(a) == [0, 1, 2, 3]
        assert len(set(a.values())) == 4

    def test_placement_pure_function_of_fleet_ids(self):
        assert place_shards(2, [5, 9, 11]) == place_shards(2, [11, 5, 9])

    def test_too_few_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            place_shards(3, range(2))


class TestConstruction:
    def test_requires_complete_shard_set(self, stack):
        shards = partition(stack, 4)
        with pytest.raises(ConfigurationError, match="complete"):
            ShardRouter(shards[:-1])

    def test_replicas_match_placement(self, stack):
        router = _router(stack, 2)
        assert router.n_shards == 2
        assert router.n_live == 2
        for k in range(2):
            assert router.replica_of(k).id == router.placement[k]


class TestScatterGather:
    def test_answer_equals_direct_gather_of_partial_outputs(self, stack):
        router = _router(stack, 2)
        payload = np.random.default_rng(1).random(12)
        sreq = router.submit(payload, 0.0)
        assert sreq is not None
        _drain(router, sreq)
        shards = router.shards
        oracle = gather_outputs(
            shards, [s.partial_output(payload[None, :])[0] for s in shards]
        )
        assert np.max(np.abs(sreq.result - oracle)) == 0.0
        assert not sreq.degraded

    def test_rejects_wrong_payload_shape(self, stack):
        router = _router(stack, 2)
        with pytest.raises(ServingError):
            router.submit(np.zeros(5), 0.0)


class TestDegradedMode:
    def test_replica_death_degrades_not_fails(self, stack):
        router = _router(stack, 2)
        victim = router.placement[1]
        rate = 2000.0
        plan = FaultPlan.fail("replica.serve", nth=2, match={"replica": victim})
        with inject(plan):
            report = ClusterLoadHarness(
                router, PoissonArrivals(rate), duration_s=0.05, seed=0
            ).run()
        assert plan.fired() == 1
        assert report.replica_deaths == 1
        assert report.failed == 0
        assert router.degraded_requests >= 1
        assert router.n_live == 1

    def test_scatter_fault_loses_one_leg_only(self, stack):
        router = _router(stack, 2)
        plan = FaultPlan.fail(
            "shard.exchange", nth=0, match={"phase": "scatter", "shard": 1}
        )
        with inject(plan):
            sreq = router.submit(np.random.default_rng(2).random(12), 0.0)
        assert plan.fired() == 1
        assert sreq is not None
        _drain(router, sreq)
        assert sreq.lost_shards == (1,)
        assert sreq.degraded
        assert not sreq.failed
        # zero-filled slice for the lost stack shard
        lo, hi = router.shards[1].partition.bounds(
            len(stack.layer_sizes) - 1, 1
        )
        assert np.all(sreq.result[lo:hi] == 0.0)
        assert router.degraded_requests == 1
        assert router.degraded_legs == 1

    def test_all_legs_lost_fails_the_request(self, stack):
        router = _router(stack, 2)
        plan = FaultPlan.fail("shard.exchange", nth=0, times=2,
                              match={"phase": "scatter"})
        with inject(plan):
            sreq = router.submit(np.random.default_rng(3).random(12), 0.0)
        assert sreq is None
        assert router.metrics.shed == 1

    def test_gather_fault_fails_the_request(self, stack):
        router = _router(stack, 2)
        plan = FaultPlan.fail("shard.gather", nth=0)
        sreq = router.submit(np.random.default_rng(4).random(12), 0.0)
        assert sreq is not None
        with inject(plan):
            guard = 0
            while sreq.complete_s is None and not sreq.failed:
                t = router.next_event_time()
                if t is None:
                    break
                router.poll(t)
                guard += 1
                assert guard < 1000
        assert plan.fired() == 1
        assert sreq.failed

    def test_backpressured_leg_degrades(self, stack):
        tiny = ReplicaConfig(
            policy=BatchPolicy(max_batch_size=4, max_wait_s=1e-3,
                               max_queue_depth=1),
            n_workers=1,
            cache_entries=0,
            service_model_factory=SimulatedServiceModel,
        )
        router = ShardRouter(partition(stack, 2), replica_config=tiny)
        rng = np.random.default_rng(5)
        degraded_before = router.degraded_legs
        for _ in range(64):  # overrun the depth-1 queues
            router.submit(rng.random(12), 0.0)
        assert router.degraded_legs > degraded_before
