"""Tests for repro.cluster.autoscaler — watermarks, pacing, bounds."""

import numpy as np
import pytest

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.router import NO_HEDGING, Router
from repro.errors import ConfigurationError

from tests.cluster.conftest import PreferLowestId, fast_config


def make_router(servable, n=1):
    return Router(
        servable,
        n_replicas=n,
        replica_config=fast_config(),
        policy=PreferLowestId(),
        hedge=NO_HEDGING,
    )


def config(**kwargs):
    kwargs.setdefault("min_replicas", 1)
    kwargs.setdefault("max_replicas", 4)
    kwargs.setdefault("high_watermark", 4.0)
    kwargs.setdefault("low_watermark", 1.0)
    kwargs.setdefault("interval_s", 0.01)
    kwargs.setdefault("cooldown_s", 0.05)
    return AutoscalerConfig(**kwargs)


def flood(router, n, now=0.0):
    rng = np.random.default_rng(0)
    for _ in range(n):
        router.submit(rng.random(25), now)


class TestConfigValidation:
    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(min_replicas=3, max_replicas=2)

    def test_bad_watermarks(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(low_watermark=5.0, high_watermark=5.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(low_watermark=-1.0)

    def test_bad_pacing(self):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(cooldown_s=-1.0)


class TestScalingDecisions:
    def test_scales_up_on_deep_queues(self, servable):
        router = make_router(servable)
        scaler = Autoscaler(router, config())
        flood(router, 6)  # outstanding 6 > high watermark 4
        assert scaler.evaluate(0.0) == "scale-up"
        assert router.n_live == 2
        assert scaler.history[0]["action"] == "scale-up"
        assert scaler.history[0]["mean_outstanding"] == pytest.approx(6.0)

    def test_scales_up_on_rejections(self, servable):
        router = make_router(servable)
        scaler = Autoscaler(router, config(high_watermark=1e9))
        flood(router, 12)  # queue depth 8 -> four rejections
        assert scaler.evaluate(0.0) == "scale-up"
        assert scaler.history[0]["rejected_delta"] == 4

    def test_rejection_delta_not_recounted(self, servable):
        router = make_router(servable)
        scaler = Autoscaler(router, config(high_watermark=1e9, cooldown_s=0.0))
        flood(router, 12)
        assert scaler.evaluate(0.0) == "scale-up"
        # Old rejections must not trigger a second action forever after.
        for r in router.replicas:
            r.engine.poll(10.0)
        assert scaler.evaluate(10.0) != "scale-up"

    def test_scales_down_when_idle(self, servable):
        router = make_router(servable, n=3)
        scaler = Autoscaler(router, config())
        assert scaler.evaluate(0.0) == "scale-down"
        router.poll(0.0)
        assert router.n_live == 2

    def test_respects_min_and_max(self, servable):
        router = make_router(servable, n=1)
        scaler = Autoscaler(
            router, config(max_replicas=2, cooldown_s=0.0, interval_s=0.01)
        )
        flood(router, 6, now=0.0)
        assert scaler.evaluate(0.0) == "scale-up"
        flood(router, 6, now=0.02)
        assert scaler.evaluate(0.02) is None  # at max_replicas
        idle = make_router(servable, n=1)
        idle_scaler = Autoscaler(idle, config())
        assert idle_scaler.evaluate(0.0) is None  # at min_replicas

    def test_interval_gates_evaluations(self, servable):
        router = make_router(servable)
        scaler = Autoscaler(router, config(interval_s=1.0, cooldown_s=0.0))
        flood(router, 6)
        assert scaler.evaluate(0.0) == "scale-up"
        flood(router, 6, now=0.5)
        assert scaler.evaluate(0.5) is None  # within the interval
        assert scaler.evaluate(1.0) == "scale-up"

    def test_cooldown_separates_actions(self, servable):
        router = make_router(servable)
        scaler = Autoscaler(router, config(interval_s=0.01, cooldown_s=1.0))
        flood(router, 6, now=0.0)
        assert scaler.evaluate(0.0) == "scale-up"
        flood(router, 6, now=0.02)
        assert scaler.evaluate(0.02) is None  # distress, but cooling down
        flood(router, 6, now=1.0)
        assert scaler.evaluate(1.0) == "scale-up"

    def test_default_config_used_when_none(self, servable):
        scaler = Autoscaler(make_router(servable))
        assert scaler.config.min_replicas == 1
        assert scaler.evaluate(0.0) is None
