"""Tests for repro.cluster.loadtest — determinism, actions, accounting."""

import numpy as np
import pytest

from repro.cluster.loadtest import ClusterLoadHarness
from repro.cluster.router import NO_HEDGING, LeastLoadedPolicy, Router
from repro.errors import ConfigurationError, ServingError
from repro.serve.loadtest import PoissonArrivals

from tests.cluster.conftest import fast_config


def make_harness(servable, n=2, rate=800.0, duration=0.05, seed=0, **kwargs):
    router = Router(
        servable,
        n_replicas=n,
        replica_config=fast_config(),
        policy=LeastLoadedPolicy(),
        hedge=NO_HEDGING,
    )
    return ClusterLoadHarness(
        router, PoissonArrivals(rate), duration_s=duration, seed=seed, **kwargs
    )


class TestHarness:
    def test_accounting_consistent(self, servable):
        report = make_harness(servable).run()
        assert report.offered == report.completed + report.shed + report.failed
        assert report.failed == 0
        assert report.throughput_rps > 0
        assert report.latency_p50_s <= report.latency_p99_s

    def test_deterministic_across_runs(self, servable):
        a = make_harness(servable, seed=42).run()
        b = make_harness(servable, seed=42).run()
        assert a.latency_buckets == b.latency_buckets
        assert (a.offered, a.completed, a.shed) == (b.offered, b.completed, b.shed)
        assert a.makespan_s == b.makespan_s

    def test_different_seeds_differ(self, servable):
        a = make_harness(servable, seed=1).run()
        b = make_harness(servable, seed=2).run()
        assert a.latency_buckets != b.latency_buckets

    def test_single_use(self, servable):
        harness = make_harness(servable)
        harness.run()
        with pytest.raises(ServingError, match="single-use"):
            harness.run()

    def test_actions_fire_at_scheduled_times(self, servable):
        fired = []
        harness = make_harness(
            servable, actions=[(0.02, fired.append), (0.01, fired.append)]
        )
        harness.run()
        assert fired == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_explicit_payloads_validated(self, servable):
        with pytest.raises(ConfigurationError, match="payloads"):
            make_harness(servable, payloads=np.zeros((4, 7))).run()

    def test_bad_parameters(self, servable):
        with pytest.raises(ConfigurationError):
            make_harness(servable, duration=0.0)
        with pytest.raises(ConfigurationError):
            make_harness(servable, payload_pool=0)
        with pytest.raises(ConfigurationError):
            make_harness(servable, autoscaler_tick_s=0.0)

    def test_report_row_shape(self, servable):
        row = make_harness(servable).run().row()
        assert set(row) == {
            "offered", "completed", "shed", "failed",
            "throughput_rps", "p50_ms", "p99_ms", "replicas",
        }
