"""Tests for repro.cluster.loadtest — determinism, actions, accounting."""

import numpy as np
import pytest

from repro.cluster.loadtest import ClusterLoadHarness
from repro.cluster.router import NO_HEDGING, LeastLoadedPolicy, Router
from repro.errors import ConfigurationError, ServingError
from repro.serve.loadtest import PoissonArrivals

from tests.cluster.conftest import fast_config


def make_harness(servable, n=2, rate=800.0, duration=0.05, seed=0, **kwargs):
    router = Router(
        servable,
        n_replicas=n,
        replica_config=fast_config(),
        policy=LeastLoadedPolicy(),
        hedge=NO_HEDGING,
    )
    return ClusterLoadHarness(
        router, PoissonArrivals(rate), duration_s=duration, seed=seed, **kwargs
    )


class TestHarness:
    def test_accounting_consistent(self, servable):
        report = make_harness(servable).run()
        assert report.offered == report.completed + report.shed + report.failed
        assert report.failed == 0
        assert report.throughput_rps > 0
        assert report.latency_p50_s <= report.latency_p99_s

    def test_deterministic_across_runs(self, servable):
        a = make_harness(servable, seed=42).run()
        b = make_harness(servable, seed=42).run()
        assert a.latency_buckets == b.latency_buckets
        assert (a.offered, a.completed, a.shed) == (b.offered, b.completed, b.shed)
        assert a.makespan_s == b.makespan_s

    def test_different_seeds_differ(self, servable):
        a = make_harness(servable, seed=1).run()
        b = make_harness(servable, seed=2).run()
        assert a.latency_buckets != b.latency_buckets

    def test_single_use(self, servable):
        harness = make_harness(servable)
        harness.run()
        with pytest.raises(ServingError, match="single-use"):
            harness.run()

    def test_actions_fire_at_scheduled_times(self, servable):
        fired = []
        harness = make_harness(
            servable, actions=[(0.02, fired.append), (0.01, fired.append)]
        )
        harness.run()
        assert fired == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_explicit_payloads_validated(self, servable):
        with pytest.raises(ConfigurationError, match="payloads"):
            make_harness(servable, payloads=np.zeros((4, 7))).run()

    def test_bad_parameters(self, servable):
        with pytest.raises(ConfigurationError):
            make_harness(servable, duration=0.0)
        with pytest.raises(ConfigurationError):
            make_harness(servable, payload_pool=0)
        with pytest.raises(ConfigurationError):
            make_harness(servable, autoscaler_tick_s=0.0)

    def test_report_row_shape(self, servable):
        row = make_harness(servable).run().row()
        assert set(row) == {
            "offered", "completed", "shed", "failed",
            "throughput_rps", "p50_ms", "p99_ms", "replicas",
        }


class TestTraceMode:
    def make_trace_harness(self, servable, trace, **kwargs):
        router = Router(
            servable,
            n_replicas=2,
            replica_config=fast_config(),
            policy=LeastLoadedPolicy(),
            hedge=NO_HEDGING,
        )
        return ClusterLoadHarness(router, trace=trace, **kwargs)

    def test_arrivals_and_trace_mutually_exclusive(self, servable):
        from repro.workloads import trace_from_arrivals

        trace = trace_from_arrivals(PoissonArrivals(200.0), 0.05, seed=0)
        router = Router(servable, n_replicas=1, replica_config=fast_config())
        with pytest.raises(ConfigurationError, match="exactly one"):
            ClusterLoadHarness(router, PoissonArrivals(200.0), trace=trace)
        with pytest.raises(ConfigurationError, match="exactly one"):
            ClusterLoadHarness(router)

    def test_empty_trace_replays_cleanly(self, servable):
        """A trace with zero events is a valid (degenerate) workload."""
        from repro.workloads import Trace

        empty = Trace(name="idle", seed=0, duration_s=0.05, payload_pool=4,
                      events=())
        report = self.make_trace_harness(servable, empty).run()
        assert report.offered == 0
        assert report.completed == 0
        assert report.shed == 0
        assert report.throughput_rps == 0.0
        assert report.latency_p99_s == 0.0
        assert report.makespan_s == pytest.approx(0.05)
        assert report.goodput_fraction == 0.0

    def test_trace_replay_matches_arrivals_mode(self, servable):
        from repro.utils.rng import spawn_generators
        from repro.workloads.trace import trace_from_streams

        inline = make_harness(servable, seed=5).run()
        arrival_rng, payload_rng, pick_rng = spawn_generators(5, 3)
        pool = payload_rng.random((64, 25))
        trace = trace_from_streams(
            PoissonArrivals(800.0), 0.05, arrival_rng, pick_rng, 64,
            seed=5, name="cluster-loadtest",
        )
        replayed = self.make_trace_harness(servable, trace, payloads=pool).run()
        assert replayed.latency_buckets == inline.latency_buckets
        assert replayed.completed == inline.completed
        assert replayed.makespan_s == inline.makespan_s
