"""Smoke tests: repro.cluster is reachable from `repro` without import-time cost."""

import subprocess
import sys

import repro


class TestLazyClusterExports:
    def test_import_repro_does_not_import_cluster(self):
        """Training- and serve-only users must not pay for the cluster tier."""
        code = (
            "import sys; import repro; "
            "sys.exit(1 if any(m.startswith('repro.cluster') for m in sys.modules) else 0)"
        )
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0, "importing repro eagerly imported repro.cluster"

    def test_cluster_names_resolve_lazily(self):
        assert repro.Router is not None
        assert repro.ReplicatedRegistry is not None
        assert repro.HedgePolicy(multiplier=2.0, min_deadline_s=0.01).multiplier == 2.0
        from repro.cluster import Router

        assert repro.Router is Router

    def test_lazy_names_in_all(self):
        for name in ("Router", "ReplicatedRegistry", "Autoscaler", "run_cluster_bench"):
            assert name in repro.__all__
