"""Tests for repro.utils.serialization — model persistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.gaussian_rbm import GaussianBernoulliRBM
from repro.nn.mlp import DeepNetwork
from repro.nn.rbm import RBM
from repro.utils.serialization import load_model, save_model


class TestSparseAutoencoderRoundTrip:
    def test_parameters_and_hyperparameters_preserved(self, tmp_path):
        cost = SparseAutoencoderCost(
            weight_decay=0.01, sparsity_target=0.2, sparsity_weight=0.7
        )
        model = SparseAutoencoder(10, 6, cost=cost, output_activation="identity", seed=0)
        save_model(model, tmp_path / "ae.npz")
        loaded = load_model(tmp_path / "ae.npz")
        assert isinstance(loaded, SparseAutoencoder)
        np.testing.assert_array_equal(loaded.w1, model.w1)
        np.testing.assert_array_equal(loaded.b2, model.b2)
        assert loaded.cost == model.cost
        assert loaded.output_activation.name == "identity"

    def test_loaded_model_computes_identically(self, tmp_path, rng):
        model = SparseAutoencoder(8, 5, seed=1)
        save_model(model, tmp_path / "ae.npz")
        loaded = load_model(tmp_path / "ae.npz")
        x = rng.random((7, 8))
        np.testing.assert_array_equal(loaded.reconstruct(x), model.reconstruct(x))
        assert loaded.loss(x) == model.loss(x)


class TestRBMRoundTrips:
    def test_binary_rbm(self, tmp_path, binary_batch):
        model = RBM(12, 7, seed=0)
        save_model(model, tmp_path / "rbm.npz")
        loaded = load_model(tmp_path / "rbm.npz")
        assert isinstance(loaded, RBM) and not isinstance(loaded, GaussianBernoulliRBM)
        np.testing.assert_array_equal(
            loaded.hidden_probabilities(binary_batch),
            model.hidden_probabilities(binary_batch),
        )

    def test_gaussian_rbm(self, tmp_path, rng):
        model = GaussianBernoulliRBM(6, 4, seed=0)
        save_model(model, tmp_path / "grbm.npz")
        loaded = load_model(tmp_path / "grbm.npz")
        assert isinstance(loaded, GaussianBernoulliRBM)
        x = rng.normal(size=(5, 6))
        np.testing.assert_array_equal(loaded.free_energy(x), model.free_energy(x))


class TestDeepNetworkRoundTrip:
    def test_classifier(self, tmp_path, rng):
        model = DeepNetwork([8, 6, 4, 3], head="softmax", seed=2)
        save_model(model, tmp_path / "net.npz")
        loaded = load_model(tmp_path / "net.npz")
        assert loaded.layer_sizes == model.layer_sizes
        x = rng.random((5, 8))
        np.testing.assert_array_equal(loaded.predict_proba(x), model.predict_proba(x))

    def test_regression_head(self, tmp_path, rng):
        model = DeepNetwork([4, 3, 2], head="identity", seed=0)
        save_model(model, tmp_path / "net.npz")
        loaded = load_model(tmp_path / "net.npz")
        assert loaded.head == "identity"
        x = rng.random((3, 4))
        np.testing.assert_array_equal(loaded.predict(x), model.predict(x))


class TestErrors:
    def test_unknown_model_type_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_model(object(), tmp_path / "x.npz")

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigurationError, match="archive"):
            load_model(path)
