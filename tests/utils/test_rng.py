"""Tests for repro.utils.rng — deterministic random-stream management."""

import numpy as np
import pytest

from repro.utils.rng import RandomState, as_generator, spawn_generators, spawn_streams


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(8), as_generator(2).random(8))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss)
        assert isinstance(a, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_zero_children_ok(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_generators(9, 2)
        assert not np.allclose(a.random(16), b.random(16))

    def test_deterministic_across_calls(self):
        a1, b1 = spawn_generators(5, 2)
        a2, b2 = spawn_generators(5, 2)
        np.testing.assert_array_equal(a1.random(8), a2.random(8))
        np.testing.assert_array_equal(b1.random(8), b2.random(8))

    def test_spawn_from_generator_parent(self):
        parent = np.random.default_rng(3)
        kids = spawn_generators(parent, 3)
        assert len(kids) == 3


class TestRandomState:
    def test_same_name_same_stream_object(self):
        state = RandomState(0)
        assert state.stream("gibbs") is state.stream("gibbs")

    def test_different_names_different_draws(self):
        state = RandomState(0)
        a = state.stream("a").random(8)
        b = state.stream("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        a = RandomState(77).stream("loader").random(8)
        b = RandomState(77).stream("loader").random(8)
        np.testing.assert_array_equal(a, b)

    def test_generator_seeded_state(self):
        state = RandomState(np.random.default_rng(1))
        assert isinstance(state.stream("x"), np.random.Generator)


class TestSpawnStreams:
    def test_pure_function_of_seed_and_count(self):
        a = spawn_streams(11, 4)
        b = spawn_streams(11, 4)
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.random(8), gb.random(8))

    def test_streams_are_independent(self):
        streams = spawn_streams(0, 3)
        draws = [g.random(16) for g in streams]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_prefix_stability(self):
        # Stream i is the same whether 2 or 5 streams are spawned — worker
        # i's Gibbs chain does not change when the pool merely grows.
        small = spawn_streams(7, 2)
        large = spawn_streams(7, 5)
        for gs, gl in zip(small, large):
            np.testing.assert_array_equal(gs.random(8), gl.random(8))

    def test_zero_streams(self):
        assert spawn_streams(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)

    def test_generator_seed_accepted(self):
        streams = spawn_streams(np.random.default_rng(5), 2)
        assert len(streams) == 2
        assert all(isinstance(g, np.random.Generator) for g in streams)
