"""Tests for repro.utils.mathx — numerically stable elementwise math."""

import numpy as np
import pytest

from repro.utils.mathx import (
    kl_bernoulli,
    kl_bernoulli_grad,
    log_sum_exp,
    logistic_log1pexp,
    sigmoid,
    sigmoid_grad,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_matches_naive_in_safe_range(self):
        x = np.linspace(-30, 30, 301)
        naive = 1.0 / (1.0 + np.exp(-x))
        np.testing.assert_allclose(sigmoid(x), naive, rtol=1e-12)

    def test_extreme_positive_saturates_without_overflow(self):
        out = sigmoid(np.array([1e4]))
        assert out[0] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_extreme_negative_saturates_without_overflow(self):
        with np.errstate(over="raise"):
            out = sigmoid(np.array([-1e4]))
        assert out[0] == pytest.approx(0.0)

    def test_symmetry(self):
        x = np.linspace(-20, 20, 101)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-14)

    def test_monotone(self):
        x = np.linspace(-50, 50, 500)
        assert (np.diff(sigmoid(x)) >= 0).all()

    def test_preserves_shape(self):
        x = np.zeros((3, 4, 5))
        assert sigmoid(x).shape == (3, 4, 5)


class TestSigmoidGrad:
    def test_matches_finite_difference(self):
        x = np.linspace(-4, 4, 41)
        eps = 1e-6
        numeric = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(sigmoid_grad(sigmoid(x)), numeric, atol=1e-9)

    def test_max_at_half(self):
        assert sigmoid_grad(np.array([0.5]))[0] == pytest.approx(0.25)

    def test_zero_at_saturation(self):
        assert sigmoid_grad(np.array([0.0, 1.0])) == pytest.approx([0.0, 0.0])


class TestLogisticLog1pexp:
    def test_matches_naive_in_safe_range(self):
        x = np.linspace(-30, 30, 301)
        np.testing.assert_allclose(logistic_log1pexp(x), np.log1p(np.exp(x)), rtol=1e-12)

    def test_large_positive_is_linear(self):
        assert logistic_log1pexp(np.array([1e3]))[0] == pytest.approx(1e3)

    def test_large_negative_is_zero(self):
        assert logistic_log1pexp(np.array([-1e3]))[0] == pytest.approx(0.0, abs=1e-300)

    def test_no_overflow_warnings(self):
        with np.errstate(over="raise"):
            logistic_log1pexp(np.array([-1e308, 1e308]))


class TestKLBernoulli:
    def test_zero_at_target(self):
        assert kl_bernoulli(0.3, np.array([0.3]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_positive_away_from_target(self):
        vals = kl_bernoulli(0.05, np.array([0.01, 0.2, 0.9]))
        assert (vals > 0).all()

    def test_known_value(self):
        # KL(0.5||0.25) = 0.5 ln 2 + 0.5 ln(2/3)
        expected = 0.5 * np.log(0.5 / 0.25) + 0.5 * np.log(0.5 / 0.75)
        assert kl_bernoulli(0.5, np.array([0.25]))[0] == pytest.approx(expected)

    def test_clipping_keeps_extremes_finite(self):
        vals = kl_bernoulli(0.05, np.array([0.0, 1.0]))
        assert np.isfinite(vals).all()

    def test_grad_matches_finite_difference(self):
        rho = 0.07
        rho_hat = np.linspace(0.05, 0.9, 20)
        eps = 1e-7
        numeric = (kl_bernoulli(rho, rho_hat + eps) - kl_bernoulli(rho, rho_hat - eps)) / (
            2 * eps
        )
        np.testing.assert_allclose(kl_bernoulli_grad(rho, rho_hat), numeric, rtol=1e-5)

    def test_grad_sign(self):
        # Below the target the penalty pushes activations up (negative grad).
        assert kl_bernoulli_grad(0.5, np.array([0.1]))[0] < 0
        assert kl_bernoulli_grad(0.5, np.array([0.9]))[0] > 0


class TestLogSumExp:
    def test_matches_naive_small(self):
        x = np.array([0.1, 0.2, 0.3])
        assert log_sum_exp(x) == pytest.approx(np.log(np.sum(np.exp(x))))

    def test_handles_large_values(self):
        x = np.array([1000.0, 1000.0])
        assert log_sum_exp(x) == pytest.approx(1000.0 + np.log(2.0))

    def test_axis_reduction(self):
        x = np.arange(12, dtype=float).reshape(3, 4)
        out = log_sum_exp(x, axis=1)
        expected = np.log(np.exp(x).sum(axis=1))
        np.testing.assert_allclose(out, expected)
        assert out.shape == (3,)
