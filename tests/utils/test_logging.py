"""Tests for repro.utils.logging — namespaced logger and progress throttle."""

import logging

from repro.utils.logging import ProgressReporter, enable_console_logging, get_logger


class TestGetLogger:
    def test_root_name(self):
        assert get_logger().name == "repro"

    def test_child_name(self):
        assert get_logger("phi").name == "repro.phi"

    def test_enable_console_attaches_handler(self):
        logger = get_logger()
        before = list(logger.handlers)
        handler = enable_console_logging(logging.DEBUG)
        try:
            assert handler in logger.handlers
        finally:
            logger.removeHandler(handler)
            assert logger.handlers == before


class TestProgressReporter:
    def test_callback_receives_events(self):
        events = []
        reporter = ProgressReporter(lambda s, t, m: events.append((s, t, m)), min_interval=0.0)
        assert reporter.report(1, 10, "step")
        assert events == [(1, 10, "step")]

    def test_throttling_suppresses_rapid_events(self):
        events = []
        reporter = ProgressReporter(lambda s, t, m: events.append(s), min_interval=3600)
        reporter.report(1, 10)
        reporter.report(2, 10)
        reporter.report(3, 10)
        assert events == [1]  # only the first got through

    def test_final_step_always_emits(self):
        events = []
        reporter = ProgressReporter(lambda s, t, m: events.append(s), min_interval=3600)
        reporter.report(1, 10)
        assert reporter.report(10, 10)
        assert events == [1, 10]

    def test_default_logs_without_error(self, caplog):
        reporter = ProgressReporter(min_interval=0.0)
        with caplog.at_level(logging.INFO, logger="repro.progress"):
            reporter.report(5, 5, "done")
        assert any("5/5" in r.message for r in caplog.records)
