"""Tests for repro.utils.validation — argument checking helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.utils.validation import (
    check_2d,
    check_in_range,
    check_int,
    check_matrix_shapes,
    check_positive,
    check_probability,
)


class TestCheck2D:
    def test_passes_float_matrix(self):
        x = np.ones((3, 4))
        assert check_2d(x) is x

    def test_rejects_1d(self):
        with pytest.raises(ShapeError, match="must be 2-D"):
            check_2d(np.ones(5))

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            check_2d(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError, match="non-empty"):
            check_2d(np.empty((0, 4)))

    def test_casts_int_to_float(self):
        out = check_2d(np.ones((2, 2), dtype=np.int64))
        assert np.issubdtype(out.dtype, np.floating)

    def test_error_names_argument(self):
        with pytest.raises(ShapeError, match="patches"):
            check_2d(np.ones(3), name="patches")


class TestCheckMatrixShapes:
    def test_passes_matching(self):
        out = check_matrix_shapes(np.ones((5, 7)), 7)
        assert out.shape == (5, 7)

    def test_rejects_wrong_columns(self):
        with pytest.raises(ShapeError, match="expects 3"):
            check_matrix_shapes(np.ones((5, 7)), 3)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    def test_positive_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError):
            check_positive(0.0, "x")

    def test_nonneg_accepts_zero(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_positive_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive(True, "x")

    def test_positive_rejects_none_and_arrays(self):
        with pytest.raises(ConfigurationError):
            check_positive(None, "x")
        with pytest.raises(ConfigurationError):
            check_positive(np.ones(3), "x")

    def test_probability_open_interval(self):
        assert check_probability(0.5, "rho") == 0.5
        with pytest.raises(ConfigurationError):
            check_probability(0.0, "rho")
        with pytest.raises(ConfigurationError):
            check_probability(1.0, "rho")

    def test_probability_closed_interval(self):
        assert check_probability(0.0, "rho", open_interval=False) == 0.0
        assert check_probability(1.0, "rho", open_interval=False) == 1.0
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "rho", open_interval=False)

    def test_in_range(self):
        assert check_in_range(3, "n", 1, 5) == 3
        with pytest.raises(ConfigurationError):
            check_in_range(9, "n", 1, 5)

    def test_int_accepts_numpy_integers(self):
        assert check_int(np.int64(4), "n") == 4

    def test_int_rejects_float_and_bool(self):
        with pytest.raises(ConfigurationError):
            check_int(2.0, "n")
        with pytest.raises(ConfigurationError):
            check_int(True, "n")

    def test_int_minimum(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            check_int(0, "n", minimum=1)
