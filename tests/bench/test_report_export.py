"""Tests for CSV/JSON export in repro.bench.report."""

import csv
import json

from repro.bench.report import write_csv, write_json


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = write_csv(rows, tmp_path / "out.csv")
        with open(path) as fh:
            back = list(csv.DictReader(fh))
        assert back == [{"a": "1", "b": "2.5"}, {"a": "3", "b": "4.5"}]

    def test_union_of_columns(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 9}]
        path = write_csv(rows, tmp_path / "out.csv")
        with open(path) as fh:
            reader = csv.DictReader(fh)
            assert reader.fieldnames == ["a", "b"]
            back = list(reader)
        assert back[0]["b"] == ""

    def test_empty_rows(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == "\n" or path.read_text() == "\r\n" or path.read_text() == ""


class TestWriteJson:
    def test_round_trip_with_title(self, tmp_path):
        rows = [{"step": "baseline", "seconds": 16042.0}]
        path = write_json(rows, tmp_path / "out.json", title="Table I")
        payload = json.loads(path.read_text())
        assert payload["title"] == "Table I"
        assert payload["rows"] == rows

    def test_numpy_values_serialised(self, tmp_path):
        import numpy as np

        rows = [{"x": np.float64(1.5)}]
        path = write_json(rows, tmp_path / "np.json")
        assert json.loads(path.read_text())["rows"][0]["x"] == 1.5
