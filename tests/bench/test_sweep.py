"""Tests for repro.bench.sweep — parameter sweeps, and format_timeline."""

import pytest

from repro.bench.report import format_timeline
from repro.bench.sweep import simulate_seconds, sweep
from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.phi.pcie import PCIeModel
from repro.runtime.offload import OffloadPipeline


@pytest.fixture
def base():
    return TrainingConfig(n_visible=128, n_hidden=64, n_examples=1000, batch_size=100)


class TestSweep:
    def test_cross_product_order_and_merge(self, base):
        rows = sweep(
            base,
            {"batch_size": [50, 100], "n_hidden": [32, 64]},
            run=lambda cfg: {"updates": cfg.total_updates},
        )
        assert len(rows) == 4
        assert [(r["batch_size"], r["n_hidden"]) for r in rows] == [
            (50, 32), (50, 64), (100, 32), (100, 64),
        ]
        assert rows[0]["updates"] == 20

    def test_simulate_seconds_runner(self, base):
        rows = sweep(
            base, {"batch_size": [100, 500]}, run=simulate_seconds(SparseAutoencoderTrainer)
        )
        assert all("sim_seconds" in r for r in rows)
        assert rows[0]["sim_seconds"] > rows[1]["sim_seconds"]  # small batches slower

    def test_derive_hook(self, base):
        seen = []

        def derive(cfg, point):
            seen.append(point)
            return cfg

        sweep(base, {"epochs": [1, 2]}, run=lambda c: {}, derive=derive)
        assert seen == [{"epochs": 1}, {"epochs": 2}]

    def test_unknown_field_rejected(self, base):
        with pytest.raises(ConfigurationError, match="unknown"):
            sweep(base, {"frobnicate": [1]}, run=lambda c: {})

    def test_empty_grid_rejected(self, base):
        with pytest.raises(ConfigurationError):
            sweep(base, {}, run=lambda c: {})


class TestFormatTimeline:
    def test_renders_two_lanes(self):
        pcie = PCIeModel(bandwidth=1.0, latency_s=0.0)
        tl = OffloadPipeline(pcie, n_buffers=2).run_analytic([5.0] * 3, [10.0] * 3)
        text = format_timeline(tl, width=40, title="Fig. 5")
        lines = text.splitlines()
        assert lines[0] == "Fig. 5"
        assert lines[1].startswith("load  |")
        assert lines[2].startswith("train |")
        # Chunk digits appear in both lanes.
        assert "0" in lines[1] and "2" in lines[2]

    def test_overlap_visible(self):
        """While chunk 1 loads, chunk 0 trains: the lanes overlap in time."""
        pcie = PCIeModel(bandwidth=1.0, latency_s=0.0)
        tl = OffloadPipeline(pcie, n_buffers=2).run_analytic([10.0] * 2, [10.0] * 2)
        text = format_timeline(tl, width=30)
        load_lane = text.splitlines()[0][7:-1]
        train_lane = text.splitlines()[1][7:-1]
        overlap = [
            i for i in range(30) if load_lane[i] == "1" and train_lane[i] == "0"
        ]
        assert overlap  # double buffering in action

    def test_degenerate_inputs(self):
        class Empty:
            total_s = 0.0
            chunks = []

        assert "empty" in format_timeline(Empty())
