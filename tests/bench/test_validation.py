"""Tests for repro.bench.validation — the claim-verification harness."""

import pytest

from repro.bench.validation import ClaimResult, verification_report, verify_all


@pytest.fixture(scope="module")
def results():
    return verify_all()


class TestVerifyAll:
    def test_every_claim_passes(self, results):
        failing = [r.claim_id for r in results if not r.passed]
        assert failing == [], f"claims failing: {failing}"

    def test_covers_every_claim_family(self, results):
        ids = {r.claim_id for r in results}
        families = {i.split(".")[0] for i in ids}
        assert {"table1", "abstract", "fig10", "sec4a", "fig9"} <= families

    def test_at_least_a_dozen_claims(self, results):
        assert len(results) >= 12

    def test_measured_values_finite(self, results):
        import math

        assert all(math.isfinite(r.measured) for r in results)

    def test_rows_and_flag(self, results):
        rows, all_passed = verification_report(results)
        assert all_passed
        assert len(rows) == len(results)
        assert all(row["status"] == "PASS" for row in rows)

    def test_failing_claim_detected(self):
        bad = [
            ClaimResult("x", "demo", "1", measured=100.0, passed=False),
        ]
        rows, all_passed = verification_report(bad)
        assert not all_passed
        assert rows[0]["status"] == "FAIL"


class TestCliVerify:
    def test_cli_verify_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
