"""Additional harness coverage: custom core grids, paper-value columns,
and CLI export paths."""

import json

import pytest

from repro.bench.harness import TABLE1_PAPER_SECONDS, run_table1
from repro.cli import main
from repro.runtime.backend import OptimizationLevel


class TestRunTable1Extras:
    def test_custom_core_counts(self):
        rows = run_table1(core_counts=(60, 45, 15))
        for row in rows:
            assert {"60c_s", "45c_s", "15c_s"} <= set(row)
        # Paper columns only exist where the paper published a value.
        improved = next(r for r in rows if r["step"] == "improved_openmp_mkl")
        assert "60c_paper_s" in improved
        assert "45c_paper_s" not in improved

    def test_fewer_cores_never_faster(self):
        rows = run_table1(core_counts=(60, 30, 15))
        improved = next(r for r in rows if r["step"] == "improved_openmp_mkl")
        assert improved["60c_s"] < improved["30c_s"] < improved["15c_s"]

    def test_paper_values_table_complete(self):
        for level in OptimizationLevel:
            for cores in (60, 30):
                assert (level, cores) in TABLE1_PAPER_SECONDS

    def test_speedup_row_consistent_with_components(self):
        rows = run_table1()
        by_step = {r["step"]: r for r in rows}
        expected = (
            by_step["baseline"]["60c_s"] / by_step["improved_openmp_mkl"]["60c_s"]
        )
        assert by_step["speedup_vs_baseline"]["60c_s"] == pytest.approx(expected)


class TestCliExports:
    def test_verify_json_export(self, tmp_path, capsys):
        path = tmp_path / "verify.json"
        assert main(["verify", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert all(row["status"] == "PASS" for row in payload["rows"])
        assert len(payload["rows"]) >= 12

    def test_table1_csv_includes_paper_columns(self, tmp_path, capsys):
        path = tmp_path / "t1.csv"
        assert main(["table1", "--csv", str(path)]) == 0
        header = path.read_text().splitlines()[0]
        assert "60c_paper_s" in header
