"""Tests for repro.bench — workloads and the experiment harness.

These assert the *shape* claims of each figure, i.e. the paper's stated
findings, on top of the calibration anchors tested in
tests/phi/test_calibration.py.
"""

import pytest

from repro.bench.harness import (
    run_core_scaling,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
)
from repro.bench.workloads import (
    FIG7_NETWORKS,
    FIG8_DATASET_SIZES,
    FIG9_BATCH_SIZES,
    fig7_autoencoder_config,
    fig7_rbm_config,
    fig9_autoencoder_config,
    table1_pretrainer,
)
from repro.core.config import OptimizationLevel
from repro.phi.spec import XEON_PHI_5110P


class TestWorkloadDefinitions:
    def test_fig7_parameters_match_paper(self):
        cfg = fig7_autoencoder_config(FIG7_NETWORKS[0])
        assert cfg.n_examples == 1_000_000  # "about 1 million training examples"
        assert cfg.batch_size == 1000
        rbm = fig7_rbm_config(FIG7_NETWORKS[0])
        assert rbm.n_examples == 100_000  # "100,000 and 200 respectively"
        assert rbm.batch_size == 200

    def test_fig7_ladder_spans_paper_range(self):
        assert FIG7_NETWORKS[0] == (576, 1024)
        assert FIG7_NETWORKS[-1] == (4096, 16384)

    def test_fig9_parameters_match_paper(self):
        cfg = fig9_autoencoder_config(200)
        assert cfg.n_visible == 1024 and cfg.n_hidden == 4096
        assert cfg.n_examples == 100_000
        assert FIG9_BATCH_SIZES[0] == 200 and FIG9_BATCH_SIZES[-1] == 10_000

    def test_table1_workload(self):
        pre = table1_pretrainer(XEON_PHI_5110P, OptimizationLevel.IMPROVED)
        assert pre.layer_sizes == (1024, 512, 256, 128)
        assert pre.iterations_per_layer == 200


@pytest.fixture(scope="module")
def fig7_ae():
    return run_fig7("autoencoder")


@pytest.fixture(scope="module")
def fig7_rbm():
    return run_fig7("rbm")


class TestFig7Shapes:
    """Paper: 'when the size of the network goes larger … the time costs
    of single CPU core … increases sharply.  However, the time growth of
    our implementation on Intel Xeon Phi is mild. … the difference between
    single CPU core and Intel Xeon Phi is small when the size of network
    is small.'"""

    def test_row_per_network(self, fig7_ae):
        assert len(fig7_ae) == len(FIG7_NETWORKS)

    def test_cpu_grows_almost_linearly_in_weights(self, fig7_ae):
        first, last = fig7_ae[0], fig7_ae[-1]
        weight_ratio = last["weights"] / first["weights"]
        time_ratio = last["cpu1_s"] / first["cpu1_s"]
        assert time_ratio == pytest.approx(weight_ratio, rel=0.25)

    def test_phi_growth_is_milder_than_cpu(self, fig7_ae):
        first, last = fig7_ae[0], fig7_ae[-1]
        cpu_growth = last["cpu1_s"] / first["cpu1_s"]
        phi_growth = last["phi_s"] / first["phi_s"]
        assert phi_growth < 0.8 * cpu_growth

    def test_gap_smallest_at_smallest_network(self, fig7_ae):
        speedups = [row["speedup"] for row in fig7_ae]
        assert speedups[0] == min(speedups)

    def test_phi_always_wins(self, fig7_ae, fig7_rbm):
        for row in fig7_ae + fig7_rbm:
            assert row["phi_s"] < row["cpu1_s"]

    def test_rbm_shows_same_shape(self, fig7_rbm):
        speedups = [row["speedup"] for row in fig7_rbm]
        assert speedups[0] == min(speedups)
        assert speedups[-1] == max(speedups)


class TestFig8Shapes:
    """Paper: 'When the size of dataset increases, the time cost by single
    CPU core increases much faster than Intel Xeon Phi'."""

    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig8("autoencoder")

    def test_row_per_size(self, rows):
        assert len(rows) == len(FIG8_DATASET_SIZES)

    def test_cpu_linear_in_examples(self, rows):
        r0, r1 = rows[0], rows[-1]
        assert r1["cpu1_s"] / r0["cpu1_s"] == pytest.approx(
            r1["examples"] / r0["examples"], rel=0.15
        )

    def test_absolute_gap_widens_with_dataset(self, rows):
        gaps = [r["cpu1_s"] - r["phi_s"] for r in rows]
        assert gaps == sorted(gaps)
        assert gaps[-1] > 100 * gaps[0] / (
            FIG8_DATASET_SIZES[-1] / FIG8_DATASET_SIZES[0]
        )  # gap grows ~linearly, so ratio to first tracks dataset ratio

    def test_phi_much_better_at_large_data(self, rows):
        assert rows[-1]["speedup"] > 30


class TestFig9Shapes:
    """Paper: Autoencoder time 'decreases by two thirds when the batch size
    increases from 200 to 10,000'; for RBM the Phi drop is ≈2/3 while the
    single-CPU decrease is 'not obvious'."""

    @pytest.fixture(scope="class")
    def ae_rows(self):
        return run_fig9("autoencoder")

    @pytest.fixture(scope="class")
    def rbm_rows(self):
        return run_fig9("rbm")

    def test_phi_ae_drops_about_two_thirds(self, ae_rows):
        drop = 1.0 - ae_rows[-1]["phi_s"] / ae_rows[0]["phi_s"]
        assert 0.55 < drop < 0.8

    def test_phi_rbm_drops_about_two_thirds(self, rbm_rows):
        drop = 1.0 - rbm_rows[-1]["phi_s"] / rbm_rows[0]["phi_s"]
        assert 0.55 < drop < 0.8

    def test_cpu_decrease_not_obvious(self, rbm_rows):
        drop = 1.0 - rbm_rows[-1]["cpu1_s"] / rbm_rows[0]["cpu1_s"]
        assert drop < 0.3

    def test_phi_time_monotone_in_batch(self, ae_rows):
        times = [r["phi_s"] for r in ae_rows]
        assert times == sorted(times, reverse=True)

    def test_phi_stays_far_below_cpu_at_every_batch(self, ae_rows):
        """'No matter what the batch size is, the time cost by Intel Xeon
        Phi maintains at a low level'."""
        for row in ae_rows:
            assert row["phi_s"] < 0.1 * row["cpu1_s"]


class TestFig10AndTable1:
    def test_fig10_speedup_band(self):
        assert 12 < run_fig10()["speedup"] < 20

    def test_table1_rows_complete(self):
        rows = run_table1()
        steps = [r["step"] for r in rows]
        assert steps == [
            "baseline",
            "openmp",
            "openmp_mkl",
            "improved_openmp_mkl",
            "speedup_vs_baseline",
        ]
        for row in rows:
            assert "60c_s" in row and "30c_s" in row


class TestCoreScaling:
    def test_monotone_improvement(self):
        rows = run_core_scaling(core_counts=(15, 30, 60))
        times = [r["seconds"] for r in rows]
        assert times == sorted(times, reverse=True)

    def test_scaling_factors_relative_to_first(self):
        rows = run_core_scaling(core_counts=(15, 60))
        assert rows[0]["scaling_vs_first"] == 1.0
        assert rows[1]["scaling_vs_first"] > 1.5
