"""Schema, gates, and baseline comparison of repro.bench.parallel."""

import copy

import pytest

from repro.bench import parallel as bp
from repro.errors import ConfigurationError


def _tiny_report():
    """Real miniature run: 1 shape, W in {1, 2}, few trials."""
    return bp.run_parallel_bench(
        shapes=[(16, 12, 8)], workers=(1, 2), trials=1, inner=1, n_chunks=3, seed=0
    )


@pytest.fixture(scope="module")
def report():
    return _tiny_report()


class TestRun:
    def test_schema_and_metadata(self, report):
        bp.validate_report(report)
        assert report["schema"] == bp.SCHEMA_ID
        assert report["n_cores"] >= 1
        assert report["equiv_tol"] == bp.EQUIV_TOL

    def test_concurrency_regime_metadata(self, report):
        for flag in ("gil_enabled", "free_threaded", "blas_budget_active"):
            assert isinstance(report[flag], bool)
        assert isinstance(report["process_engine_available"], bool)
        assert "thread" in report["engines"]

    def test_row_kinds_present(self, report):
        kinds = {row["kind"] for row in report["rows"]}
        assert kinds == {"workers", "prefetch"}

    def test_both_engines_measured_when_process_available(self, report):
        engines = {r["engine"] for r in report["rows"] if r["kind"] == "workers"}
        if report["process_engine_available"]:
            assert engines == {"thread", "process"}
        else:
            assert engines == {"thread"}
        assert set(report["engines"]) == engines

    def test_worker_rows_carry_serial_baseline(self, report):
        for row in report["rows"]:
            if row["kind"] != "workers":
                continue
            assert row["serial_ms"] > 0
            assert row["vs_serial"] == pytest.approx(
                row["serial_ms"] / row["ms"], rel=1e-3
            )

    def test_equivalence_within_tolerance(self, report):
        for row in report["rows"]:
            assert row["max_abs_diff"] <= bp.EQUIV_TOL

    def test_w1_row_is_the_unit_baseline(self, report):
        w1 = [r for r in report["rows"] if r.get("n_workers") == 1]
        assert w1 and all(r["speedup"] == 1.0 for r in w1)

    def test_worker_rows_are_core_count_tagged(self, report):
        for row in report["rows"]:
            if row["kind"] == "workers":
                assert row["expected_scaling"] == (
                    report["n_cores"] >= row["n_workers"]
                )

    def test_workers_must_include_one(self):
        with pytest.raises(ConfigurationError):
            bp.run_parallel_bench(shapes=[(8, 6, 4)], workers=(2, 4), trials=1, inner=1)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="engines"):
            bp.run_parallel_bench(
                shapes=[(8, 6, 4)], trials=1, inner=1, engines=("thread", "gpu")
            )

    def test_rejects_empty_engine_list(self):
        with pytest.raises(ConfigurationError, match="engines"):
            bp.run_parallel_bench(
                shapes=[(8, 6, 4)], trials=1, inner=1, engines=()
            )

    def test_rejects_engine_list_without_thread(self):
        with pytest.raises(ConfigurationError, match="thread"):
            bp.run_parallel_bench(
                shapes=[(8, 6, 4)], trials=1, inner=1, engines=("process",)
            )


class TestValidation:
    def test_rejects_wrong_schema(self, report):
        bad = copy.deepcopy(report)
        bad["schema"] = "other/v1"
        with pytest.raises(ConfigurationError, match="schema"):
            bp.validate_report(bad)

    def test_rejects_missing_cores(self, report):
        bad = copy.deepcopy(report)
        del bad["n_cores"]
        with pytest.raises(ConfigurationError, match="n_cores"):
            bp.validate_report(bad)

    def test_rejects_unknown_row_kind(self, report):
        bad = copy.deepcopy(report)
        bad["rows"][0]["kind"] = "mystery"
        with pytest.raises(ConfigurationError, match="kind"):
            bp.validate_report(bad)

    def test_rejects_equivalence_violation(self, report):
        bad = copy.deepcopy(report)
        bad["rows"][0]["max_abs_diff"] = 1e-3
        with pytest.raises(ConfigurationError, match="equivalence"):
            bp.validate_report(bad)

    def test_rejects_missing_row_kind_coverage(self, report):
        bad = copy.deepcopy(report)
        bad["rows"] = [r for r in bad["rows"] if r["kind"] == "workers"]
        with pytest.raises(ConfigurationError, match="both row kinds"):
            bp.validate_report(bad)

    def test_rejects_nonpositive_timing(self, report):
        bad = copy.deepcopy(report)
        for row in bad["rows"]:
            if row["kind"] == "workers":
                row["ms"] = 0.0
                break
        with pytest.raises(ConfigurationError, match="positive"):
            bp.validate_report(bad)

    def test_rejects_missing_regime_flags(self, report):
        for flag in ("gil_enabled", "free_threaded", "blas_budget_active"):
            bad = copy.deepcopy(report)
            del bad[flag]
            with pytest.raises(ConfigurationError, match=flag):
                bp.validate_report(bad)

    def test_rejects_threadpoolctl_claim_without_active_budget(self, report):
        bad = copy.deepcopy(report)
        bad["have_threadpoolctl"] = True
        bad["blas_budget_active"] = False
        with pytest.raises(ConfigurationError, match="threadpoolctl"):
            bp.validate_report(bad)

    def test_rejects_missing_scaling_tag(self, report):
        bad = copy.deepcopy(report)
        for row in bad["rows"]:
            if row["kind"] == "workers":
                del row["expected_scaling"]
        with pytest.raises(ConfigurationError, match="expected_scaling"):
            bp.validate_report(bad)

    def test_rejects_unknown_engine_in_row(self, report):
        bad = copy.deepcopy(report)
        for row in bad["rows"]:
            if row["kind"] == "workers":
                row["engine"] = "gpu"
                break
        with pytest.raises(ConfigurationError, match="engine"):
            bp.validate_report(bad)

    def test_rejects_report_without_thread_rows(self, report):
        bad = copy.deepcopy(report)
        bad["rows"] = [
            r
            for r in bad["rows"]
            if not (r["kind"] == "workers" and r["engine"] == "thread")
        ]
        if not any(r["kind"] == "workers" for r in bad["rows"]):
            pytest.skip("no process rows on this platform")
        with pytest.raises(ConfigurationError, match="thread"):
            bp.validate_report(bad)


def _retag(r, expected_scaling):
    """Force the scaling tag on every worker row (simulated core counts)."""
    for row in r["rows"]:
        if row["kind"] == "workers":
            row["expected_scaling"] = expected_scaling
    return r


class TestGates:
    def test_untagged_worker_rows_skip_gate_with_note(self, report):
        r = copy.deepcopy(report)
        r["n_cores"] = 1
        _retag(r, False)
        for row in r["rows"]:
            row["speedup"] = 2.0  # prefetch safely above the floor
        for row in r["rows"]:
            if row["kind"] == "workers" and row["n_workers"] >= 2:
                row["speedup"] = 0.5  # would fail — but must be skipped
        failures, skipped = bp.enforce_gates(r, min_speedup=1.3)
        assert failures == []
        assert skipped and "expected_scaling=false" in skipped[0]
        assert "1 core" in skipped[0]

    def test_multicore_enforces_worker_floor(self, report):
        r = copy.deepcopy(report)
        r["n_cores"] = 4
        _retag(r, True)
        for row in r["rows"]:
            row["speedup"] = 2.0
            if row["kind"] == "workers":
                row["vs_serial"] = 2.0
        for row in r["rows"]:
            if row["kind"] == "workers" and row["n_workers"] >= 2:
                row["speedup"] = 1.1
                row["vs_serial"] = 1.1
        failures, skipped = bp.enforce_gates(r, min_speedup=1.3)
        assert skipped == []
        assert failures and "W=2" in failures[0]

    def test_process_rows_gate_on_vs_serial(self, report):
        if not report["process_engine_available"]:
            pytest.skip("no process rows on this platform")
        r = copy.deepcopy(report)
        r["n_cores"] = 4
        _retag(r, True)
        for row in r["rows"]:
            row["speedup"] = 2.0  # every per-engine scaling curve is fine
            if row["kind"] == "workers":
                row["vs_serial"] = 2.0
        for row in r["rows"]:
            # ... but the process engine loses to serial: must still fail.
            if row["kind"] == "workers" and row["engine"] == "process":
                row["vs_serial"] = 0.9
        failures, _ = bp.enforce_gates(r, min_speedup=1.3)
        assert failures and all("vs_serial" in f for f in failures)
        assert all("process" in f for f in failures)

    def test_prefetch_floor_applies_on_any_core_count(self, report):
        r = copy.deepcopy(report)
        r["n_cores"] = 1
        _retag(r, False)
        for row in r["rows"]:
            row["speedup"] = 2.0
        for row in r["rows"]:
            if row["kind"] == "prefetch":
                row["speedup"] = 1.05
        failures, _ = bp.enforce_gates(r, min_speedup=1.3)
        assert failures and "prefetch" in failures[0]

    def test_all_gates_pass_on_good_multicore_report(self, report):
        r = copy.deepcopy(report)
        r["n_cores"] = 4
        _retag(r, True)
        for row in r["rows"]:
            if row.get("n_workers") != 1:
                row["speedup"] = 1.8
            if row["kind"] == "workers":
                row["vs_serial"] = 1.8
        failures, skipped = bp.enforce_gates(r, min_speedup=1.3)
        assert failures == [] and skipped == []


class TestBaselineComparison:
    def test_no_regression_against_self(self, report):
        failures, _ = bp.compare_to_baseline(report, report)
        assert failures == []

    def test_flags_prefetch_regression(self, report):
        current = copy.deepcopy(report)
        for row in current["rows"]:
            if row["kind"] == "prefetch":
                row["speedup"] = row["speedup"] * 0.5
        failures, _ = bp.compare_to_baseline(current, report, max_regression=0.25)
        assert failures and "prefetch" in failures[0]

    def test_untagged_worker_rows_skipped_with_note(self, report):
        current = copy.deepcopy(report)
        _retag(current, False)
        for row in current["rows"]:
            if row["kind"] == "workers":
                row["speedup"] = 0.1  # huge regression — must be skipped
        failures, skipped = bp.compare_to_baseline(
            current, report, max_regression=0.25
        )
        assert all("workers" not in f for f in failures)
        assert skipped and all("expected_scaling=false" in n for n in skipped)
        assert all("report" in n for n in skipped)  # names which side

    def test_untagged_baseline_rows_skipped_with_note(self, report):
        base = copy.deepcopy(report)
        _retag(base, False)
        current = copy.deepcopy(report)
        _retag(current, True)
        failures, skipped = bp.compare_to_baseline(
            current, base, max_regression=0.25
        )
        assert all("workers" not in f for f in failures)
        assert skipped and all("baseline" in n for n in skipped)

    def test_worker_rows_compared_when_both_tagged(self, report):
        base = copy.deepcopy(report)
        base["n_cores"] = 4
        _retag(base, True)
        current = copy.deepcopy(base)
        for row in current["rows"]:
            if row["kind"] == "workers" and row["n_workers"] >= 2:
                row["speedup"] = row["speedup"] * 0.1
        failures, skipped = bp.compare_to_baseline(
            current, base, max_regression=0.25
        )
        assert failures
        assert skipped == []

    def test_process_regression_flagged_on_vs_serial(self, report):
        if not report["process_engine_available"]:
            pytest.skip("no process rows on this platform")
        base = copy.deepcopy(report)
        base["n_cores"] = 4
        _retag(base, True)
        current = copy.deepcopy(base)
        for row in current["rows"]:
            if row["kind"] == "workers" and row["engine"] == "process":
                row["vs_serial"] = row["vs_serial"] * 0.1
        failures, _ = bp.compare_to_baseline(current, base, max_regression=0.25)
        assert failures and all("vs_serial" in f for f in failures)

    def test_unknown_shape_is_not_compared(self, report):
        current = copy.deepcopy(report)
        for row in current["rows"]:
            row["n_chunks"] = row.get("n_chunks", 0) + 99
            row["batch"] = row["batch"] + 99
        assert bp.compare_to_baseline(current, report) == ([], [])


class TestRoundTrip:
    def test_write_then_load(self, report, tmp_path):
        path = str(tmp_path / "BENCH_parallel.json")
        assert bp.write_report(report, path) == path
        loaded = bp.load_report(path)
        bp.validate_report(loaded)
        assert loaded == report

    def test_write_rejects_invalid(self, report, tmp_path):
        bad = copy.deepcopy(report)
        bad["schema"] = "nope"
        with pytest.raises(ConfigurationError):
            bp.write_report(bad, str(tmp_path / "x.json"))


class TestCommittedBaseline:
    def test_repo_baseline_is_valid(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "BENCH_parallel.json"
        )
        if not os.path.exists(path):
            pytest.skip("BENCH_parallel.json not present")
        report = bp.load_report(path)
        bp.validate_report(report)
        failures, _skipped = bp.enforce_gates(report, min_speedup=bp.MIN_SPEEDUP)
        assert failures == []
