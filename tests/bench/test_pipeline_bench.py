"""Schema, gates, and baseline comparison of the pipeline benchmark."""

import copy

import pytest

import repro.bench.pipeline as bp
from repro.errors import ConfigurationError

TINY_SHAPE = dict(n=32, n_visible=12, layers=(8, 12), epochs=2, batch=16)


@pytest.fixture(scope="module")
def report():
    return bp.run_pipeline_bench(quick=True, seed=0, trials=1, shape=TINY_SHAPE)


class TestReportShape:
    def test_schema_and_rows(self, report):
        bp.validate_report(report)
        kinds = [r["kind"] for r in report["rows"]]
        assert kinds.count("walltime") == 1
        assert kinds.count("convergence") == len(TINY_SHAPE["layers"])

    def test_walltime_row_is_core_count_tagged(self, report):
        row = next(r for r in report["rows"] if r["kind"] == "walltime")
        assert row["expected_scaling"] == (report["n_cores"] >= 2)
        assert row["ideal_speedup"] > 1.0

    def test_layer0_converges_identically(self, report):
        """Stage 0 is bit-identical to greedy block 0, so its losses match."""
        row = next(
            r for r in report["rows"]
            if r["kind"] == "convergence" and r["layer"] == 0
        )
        assert row["rel_diff"] == 0.0

    def test_convergence_within_tolerance(self, report):
        assert all(
            r["within_tol"] for r in report["rows"] if r["kind"] == "convergence"
        )

    def test_roundtrip(self, report, tmp_path):
        path = bp.write_report(report, str(tmp_path / "r.json"))
        assert bp.load_report(path) == report

    def test_validate_rejects_wrong_schema(self, report):
        bad = copy.deepcopy(report)
        bad["schema"] = "something/v0"
        with pytest.raises(ConfigurationError, match="schema"):
            bp.validate_report(bad)

    def test_validate_rejects_missing_scaling_tag(self, report):
        bad = copy.deepcopy(report)
        for row in bad["rows"]:
            if row["kind"] == "walltime":
                del row["expected_scaling"]
        with pytest.raises(ConfigurationError, match="expected_scaling"):
            bp.validate_report(bad)


class TestGates:
    def test_single_core_walltime_gate_is_skipped_not_silent(self, report):
        forced = copy.deepcopy(report)
        forced["n_cores"] = 1
        for row in forced["rows"]:
            if row["kind"] == "walltime":
                row["expected_scaling"] = False
        failures, skipped = bp.enforce_gates(forced, min_speedup=100.0)
        assert failures == []
        assert len(skipped) == 1 and "skipped" in skipped[0]

    def test_multicore_walltime_gate_binds(self, report):
        forced = copy.deepcopy(report)
        forced["n_cores"] = 4
        for row in forced["rows"]:
            if row["kind"] == "walltime":
                row["expected_scaling"] = True
                row["speedup"] = 1.1
        failures, skipped = bp.enforce_gates(forced, min_speedup=1.3)
        assert len(failures) == 1 and "1.10x" in failures[0]
        assert skipped == []

    def test_convergence_gate_binds_on_any_core_count(self, report):
        forced = copy.deepcopy(report)
        for row in forced["rows"]:
            if row["kind"] == "convergence" and row["layer"] == 1:
                row["within_tol"] = False
        failures, _ = bp.enforce_gates(forced, min_speedup=0.0)
        assert any("convergence layer 1" in f for f in failures)


class TestBaselineComparison:
    def test_no_regression_against_self(self, report):
        failures, _ = bp.compare_to_baseline(report, report)
        assert failures == []

    def test_single_core_comparison_is_skipped_with_note(self, report):
        if report["n_cores"] >= 2:
            pytest.skip("requires a single-core measurement")
        failures, skipped = bp.compare_to_baseline(report, report)
        assert failures == []
        assert any("skipped" in note for note in skipped)

    def test_multicore_regression_detected(self, report):
        base = copy.deepcopy(report)
        cur = copy.deepcopy(report)
        for r in (base, cur):
            r["n_cores"] = 4
            for row in r["rows"]:
                if row["kind"] == "walltime":
                    row["expected_scaling"] = True
        for row in base["rows"]:
            if row["kind"] == "walltime":
                row["speedup"] = 2.0
        for row in cur["rows"]:
            if row["kind"] == "walltime":
                row["speedup"] = 1.2  # below 2.0 * (1 - 0.25)
        failures, skipped = bp.compare_to_baseline(cur, base)
        assert len(failures) == 1 and "floor" in failures[0]
        assert skipped == []


class TestCommittedBaseline:
    def test_committed_report_is_valid_and_gated(self):
        report = bp.load_report("BENCH_pipeline.json")
        bp.validate_report(report)
        failures, skipped = bp.enforce_gates(report, min_speedup=bp.MIN_SPEEDUP)
        assert failures == []
        # The committed baseline was measured on a 1-core container, so
        # its walltime gate must be recorded as explicitly skipped there;
        # a multi-core regeneration must instead pass the 1.3x floor.
        row = next(r for r in report["rows"] if r["kind"] == "walltime")
        if not row["expected_scaling"]:
            assert len(skipped) == 1
        assert all(
            r["within_tol"] for r in report["rows"] if r["kind"] == "convergence"
        )
