"""Tests for the hot-path benchmark harness (repro.bench.hotpath)."""

import copy

import pytest

from repro.bench.hotpath import (
    EQUIV_TOL,
    SCHEMA_ID,
    compare_to_baseline,
    load_report,
    run_hotpath_bench,
    validate_report,
    write_report,
)
from repro.errors import ConfigurationError

TINY = ((4, 12, 6),)


@pytest.fixture(scope="module")
def report():
    # one real (tiny) run shared by the module's tests
    return run_hotpath_bench(TINY, trials=1, inner=1, seed=0)


class TestRunHotpathBench:
    def test_report_shape(self, report):
        assert report["schema"] == SCHEMA_ID
        assert {row["model"] for row in report["rows"]} == {"sae", "rbm"}
        for row in report["rows"]:
            assert row["batch"] == 4
            assert row["ref_ms"] > 0 and row["fused_ms"] > 0
            assert row["speedup"] == pytest.approx(
                row["ref_ms"] / row["fused_ms"], rel=1e-3
            )

    def test_rows_satisfy_equivalence_gate(self, report):
        for row in report["rows"]:
            assert row["max_abs_diff"] <= EQUIV_TOL

    def test_report_validates(self, report):
        validate_report(report)


class TestValidateReport:
    def test_rejects_wrong_schema(self, report):
        bad = copy.deepcopy(report)
        bad["schema"] = "something/else"
        with pytest.raises(ConfigurationError, match="schema"):
            validate_report(bad)

    def test_rejects_missing_field(self, report):
        bad = copy.deepcopy(report)
        del bad["rows"][0]["speedup"]
        with pytest.raises(ConfigurationError, match="speedup"):
            validate_report(bad)

    def test_rejects_empty_rows(self, report):
        bad = copy.deepcopy(report)
        bad["rows"] = []
        with pytest.raises(ConfigurationError, match="rows"):
            validate_report(bad)

    def test_rejects_equivalence_violation(self, report):
        bad = copy.deepcopy(report)
        bad["rows"][0]["max_abs_diff"] = 1e-3
        with pytest.raises(ConfigurationError, match="equivalence"):
            validate_report(bad)

    def test_rejects_nonpositive_timing(self, report):
        bad = copy.deepcopy(report)
        bad["rows"][0]["fused_ms"] = 0.0
        with pytest.raises(ConfigurationError, match="fused_ms"):
            validate_report(bad)


class TestCompareToBaseline:
    def test_identical_report_passes(self, report):
        assert compare_to_baseline(report, report) == []

    def test_within_tolerance_passes(self, report):
        current = copy.deepcopy(report)
        for row in current["rows"]:
            row["speedup"] = round(row["speedup"] * 0.80, 4)  # -20% < 25%
        assert compare_to_baseline(current, report, max_regression=0.25) == []

    def test_regression_is_flagged(self, report):
        current = copy.deepcopy(report)
        current["rows"][0]["speedup"] = round(
            report["rows"][0]["speedup"] * 0.5, 4
        )
        failures = compare_to_baseline(current, report, max_regression=0.25)
        assert len(failures) == 1
        assert report["rows"][0]["model"] in failures[0]

    def test_new_shape_is_not_compared(self, report):
        current = copy.deepcopy(report)
        current["rows"][0]["batch"] = 999  # no matching baseline row
        current["rows"][0]["speedup"] = 0.01
        assert compare_to_baseline(current, report) == []


class TestReportIO:
    def test_write_then_load_roundtrip(self, report, tmp_path):
        path = str(tmp_path / "bench.json")
        assert write_report(report, path) == path
        assert load_report(path) == report


class TestCommittedBaseline:
    def test_committed_baseline_is_valid_and_meets_paper_gate(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "BENCH_hotpath.json"
        )
        if not os.path.exists(path):
            pytest.skip("BENCH_hotpath.json not present")
        baseline = load_report(path)
        validate_report(baseline)
        paper_rows = [
            r for r in baseline["rows"]
            if (r["batch"], r["n_visible"], r["n_hidden"]) == (100, 4096, 1024)
        ]
        assert {r["model"] for r in paper_rows} == {"sae", "rbm"}
        for row in paper_rows:
            assert row["speedup"] >= 1.5
