"""Tests for repro.bench.report — text table rendering."""

from repro.bench.report import format_series, format_table


class TestFormatTable:
    def test_includes_headers_and_values(self):
        rows = [{"name": "a", "seconds": 1.5}, {"name": "b", "seconds": 20.25}]
        text = format_table(rows, title="Demo")
        assert "Demo" in text
        assert "name" in text and "seconds" in text
        assert "1.5" in text and "20.2" in text

    def test_empty(self):
        assert "(empty)" in format_table([])

    def test_alignment_consistent_width(self):
        rows = [{"x": 1, "y": 100000}, {"x": 22, "y": 3}]
        lines = format_table(rows).splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line padded to the same width

    def test_large_numbers_get_thousands_separator(self):
        text = format_table([{"t": 16042.0}])
        assert "16,042" in text

    def test_missing_key_rendered_empty(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        assert text  # must not raise


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "batch", [200, 10000], {"phi": [22.8, 7.9], "cpu": [632.0, 538.0]}
        )
        assert "batch" in text and "phi" in text and "cpu" in text
        assert "200" in text and "10000" in text
