"""Feasibility tests: every paper workload must fit the simulated hardware.

The benches assume the configured chunkings respect the 5110P's 8 GB;
these tests make that assumption explicit so a future workload edit that
overflows the card fails here, not inside a bench.
"""

import pytest

from repro.bench.workloads import (
    FIG7_NETWORKS,
    FIG8_DATASET_SIZES,
    FIG9_BATCH_SIZES,
    fig7_autoencoder_config,
    fig7_rbm_config,
    fig8_autoencoder_config,
    fig9_rbm_config,
    fig10_config,
    table1_pretrainer,
)
from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.rbm_trainer import RBMTrainer
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.backend import OptimizationLevel


class TestDeviceMemoryFeasibility:
    @pytest.mark.parametrize("network", FIG7_NETWORKS)
    def test_fig7_ae_fits_the_card(self, network):
        trainer = SparseAutoencoderTrainer(fig7_autoencoder_config(network))
        result = trainer.simulate()
        assert result.device_memory_peak <= XEON_PHI_5110P.mem_capacity

    @pytest.mark.parametrize("network", FIG7_NETWORKS)
    def test_fig7_rbm_fits_the_card(self, network):
        trainer = RBMTrainer(fig7_rbm_config(network))
        result = trainer.simulate()
        assert result.device_memory_peak <= XEON_PHI_5110P.mem_capacity

    def test_largest_network_uses_substantial_memory(self):
        """4096x16384 in float64 is a real squeeze: > 2 GB resident."""
        trainer = SparseAutoencoderTrainer(fig7_autoencoder_config((4096, 16384)))
        result = trainer.simulate()
        assert result.device_memory_peak > 2 * 1024**3

    def test_fig10_and_table1_fit(self):
        assert (
            SparseAutoencoderTrainer(fig10_config()).simulate().device_memory_peak
            <= XEON_PHI_5110P.mem_capacity
        )
        result = table1_pretrainer(XEON_PHI_5110P, OptimizationLevel.IMPROVED).simulate()
        for layer in result.layers:
            assert layer.result.device_memory_peak <= XEON_PHI_5110P.mem_capacity


class TestWorkloadEdgeCases:
    def test_fig8_smallest_dataset_clamps_batch(self):
        """The 10 k-example point keeps batch <= dataset."""
        cfg = fig8_autoencoder_config(min(FIG8_DATASET_SIZES))
        assert cfg.batch_size <= cfg.n_examples

    def test_fig8_chunk_never_exceeds_dataset(self):
        for n in FIG8_DATASET_SIZES:
            cfg = fig8_autoencoder_config(n)
            assert cfg.effective_chunk_examples <= max(n, cfg.batch_size)

    def test_fig9_batches_divide_dataset_reasonably(self):
        for b in FIG9_BATCH_SIZES:
            cfg = fig9_rbm_config(b)
            assert cfg.batches_per_epoch == -(-cfg.n_examples // b)

    def test_all_workloads_deterministic(self):
        a = SparseAutoencoderTrainer(fig10_config()).simulate().simulated_seconds
        b = SparseAutoencoderTrainer(fig10_config()).simulate().simulated_seconds
        assert a == b
