"""Tests for repro.bench.slobench — the workload SLO bench + its gates."""

import copy

import pytest

from repro.bench.slobench import (
    SCHEMA,
    TrainLoopDriver,
    compare_to_baseline,
    demo_servable,
    enforce_gates,
    load_report,
    run_trace,
    run_workloads_bench,
    scenario_for,
    validate_report,
    write_report,
)
from repro.errors import ConfigurationError
from repro.workloads.patterns import PATTERNS, generate


@pytest.fixture(scope="module")
def quick_report():
    return run_workloads_bench(quick=True, seed=0)


class TestBenchRun:
    def test_covers_every_pattern(self, quick_report):
        assert quick_report["schema"] == SCHEMA
        assert quick_report["quick"] is True
        assert sorted(r["kind"] for r in quick_report["rows"]) == sorted(PATTERNS)

    def test_deterministic(self, quick_report):
        again = run_workloads_bench(quick=True, seed=0)
        assert again == quick_report  # bit-identical, every field

    def test_gates_pass_on_fresh_run(self, quick_report):
        validate_report(quick_report)
        assert enforce_gates(quick_report) == []

    def test_mixed_pattern_trains(self, quick_report):
        mixed = next(r for r in quick_report["rows"]
                     if r["kind"] == "mixed_train_serve")
        assert mixed["train_steps"] >= 1
        assert mixed["train_failures"] == 0
        assert "train_contended" in mixed

    def test_cache_contract_split(self, quick_report):
        rows = {r["kind"]: r for r in quick_report["rows"]}
        assert rows["diurnal"]["cache_hit_rate"] >= 0.5
        assert rows["cache_busting"]["cache_hit_rate"] <= 0.02


class TestScenarios:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown pattern"):
            scenario_for("tsunami", demo_servable())

    def test_run_trace_entry_point(self):
        report = run_trace(generate("flash_crowd", seed=0, quick=True))
        assert report.offered > 0
        assert report.errors == 0

    def test_trainer_steps_advance_state(self):
        driver = TrainLoopDriver(seed=0)
        charged = driver.step(0.0)
        assert charged > 0
        assert driver.step(0.01) == charged
        assert driver.epochs_run == 2
        assert len(driver.metrics) == 2
        assert driver.contended == 0  # nothing to occupy, nothing contended


class TestReportPlumbing:
    def test_round_trip(self, quick_report, tmp_path):
        path = write_report(quick_report, tmp_path / "r.json")
        assert load_report(path) == quick_report

    def test_validate_rejects_wrong_schema(self, quick_report):
        bad = dict(quick_report, schema="nonsense/v0")
        with pytest.raises(ConfigurationError, match="schema"):
            validate_report(bad)

    def test_validate_rejects_missing_pattern(self, quick_report):
        bad = dict(quick_report, rows=quick_report["rows"][:-1])
        with pytest.raises(ConfigurationError, match="missing patterns"):
            validate_report(bad)

    def test_validate_rejects_missing_keys(self, quick_report):
        bad = copy.deepcopy(quick_report)
        del bad["rows"][0]["p99_ms"]
        with pytest.raises(ConfigurationError, match="missing keys"):
            validate_report(bad)

    def test_enforce_gates_flags_violations(self, quick_report):
        bad = copy.deepcopy(quick_report)
        bad["rows"][0]["slo_ok"] = False
        bad["rows"][0]["slo_failures"] = ["p99 too high"]
        failures = enforce_gates(bad)
        assert any("p99 too high" in f for f in failures)


class TestBaselineComparison:
    def test_identical_run_passes(self, quick_report):
        assert compare_to_baseline(quick_report, quick_report) == []

    def test_refuses_quick_mismatch(self, quick_report):
        full_shaped = dict(quick_report, quick=False)
        failures = compare_to_baseline(full_shaped, quick_report)
        assert len(failures) == 1
        assert "cannot compare" in failures[0]

    def test_throughput_regression_detected(self, quick_report):
        inflated = copy.deepcopy(quick_report)
        for row in inflated["rows"]:
            row["throughput_rps"] *= 10.0
        failures = compare_to_baseline(quick_report, inflated, 0.25)
        assert len(failures) == len(PATTERNS)
        assert all("throughput" in f for f in failures)

    def test_p99_regression_detected(self, quick_report):
        slow = copy.deepcopy(quick_report)
        for row in slow["rows"]:
            row["p99_ms"] *= 10.0
        failures = compare_to_baseline(slow, quick_report, 0.25)
        assert all("p99" in f for f in failures)

    def test_within_tolerance_passes(self, quick_report):
        near = copy.deepcopy(quick_report)
        for row in near["rows"]:
            row["throughput_rps"] *= 0.9
            row["p99_ms"] *= 1.1
        assert compare_to_baseline(near, quick_report, 0.25) == []


class TestCommittedBaseline:
    def test_repo_baseline_is_current(self):
        """BENCH_workloads.json must equal a fresh --quick run exactly."""
        from pathlib import Path

        baseline_path = Path(__file__).resolve().parents[2] / "BENCH_workloads.json"
        baseline = load_report(baseline_path)
        validate_report(baseline)
        fresh = run_workloads_bench(quick=True, seed=baseline["seed"])
        assert compare_to_baseline(fresh, baseline, 0.25) == []
        fingerprints = {r["kind"]: r["fingerprint"] for r in fresh["rows"]}
        for row in baseline["rows"]:
            assert row["fingerprint"] == fingerprints[row["kind"]]
