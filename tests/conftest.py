"""Shared fixtures for the test suite."""

from __future__ import annotations

import glob
import os
import threading
import time

import numpy as np
import pytest

from repro.data.synth_digits import digit_dataset
from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.rbm import RBM


def _live_nondaemon_threads():
    return {
        t for t in threading.enumerate() if t.is_alive() and not t.daemon
    }


@pytest.fixture(autouse=True)
def _thread_leak_guard():
    """Fail any test that leaks a live non-daemon thread.

    The chaos suite kills workers mid-task on purpose; this guard proves
    every executor/prefetcher still tears down cleanly afterwards.  A
    short grace window lets threads that are already unblocking finish
    their join.
    """
    before = _live_nondaemon_threads()
    yield
    deadline = time.monotonic() + 2.0
    leaked = _live_nondaemon_threads() - before
    while leaked and time.monotonic() < deadline:
        time.sleep(0.02)
        leaked = _live_nondaemon_threads() - before
    if leaked:
        pytest.fail(
            "test leaked non-daemon thread(s): "
            + ", ".join(sorted(t.name for t in leaked))
        )


def _repro_shm_segments():
    """Names of live repro-owned POSIX shared-memory segments."""
    from repro.runtime.procexec import SHM_PREFIX

    if not os.path.isdir("/dev/shm"):  # non-POSIX-shm platform: nothing to scan
        return set()
    return {
        os.path.basename(p) for p in glob.glob(f"/dev/shm/{SHM_PREFIX}-*")
    }


@pytest.fixture(autouse=True)
def _shm_leak_guard():
    """Fail any test that orphans a repro shared-memory segment.

    The process engine names every segment ``repro-shm-<pid>-<run>-<i>``,
    so the guard can scan /dev/shm without false positives from other
    software.  A grace window covers engines whose teardown (worker join
    + unlink) is still finishing when the test body returns.
    """
    before = _repro_shm_segments()
    yield
    deadline = time.monotonic() + 2.0
    leaked = _repro_shm_segments() - before
    while leaked and time.monotonic() < deadline:
        time.sleep(0.02)
        leaked = _repro_shm_segments() - before
    if leaked:
        pytest.fail(
            "test leaked shared-memory segment(s): " + ", ".join(sorted(leaked))
        )


_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _root_trace_files():
    return {
        p for p in glob.glob(os.path.join(_REPO_ROOT, "*.jsonl"))
    }


@pytest.fixture(autouse=True)
def _stray_trace_guard():
    """Fail any test that drops a trace file in the repo root.

    Trace-producing code (``trace-gen``, ``Trace.save``) must write to
    tmp_path in tests; a stray ``*.jsonl`` in the checkout would get
    committed by accident and silently become someone's baseline.  The
    guard deletes the leak so one sloppy test doesn't cascade.
    """
    before = _root_trace_files()
    yield
    leaked = _root_trace_files() - before
    if leaked:
        for path in leaked:
            os.remove(path)
        pytest.fail(
            "test left stray trace file(s) in the repo root: "
            + ", ".join(sorted(os.path.basename(p) for p in leaked))
        )


@pytest.fixture
def rng():
    """A deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def digits_25():
    """Small flattened digit dataset: 64 examples of 5x5 images in [0,1]."""
    x, _ = digit_dataset(64, size=5, seed=7)
    return x


@pytest.fixture
def digits_64():
    """Flattened digit dataset: 128 examples of 8x8 images in [0,1]."""
    x, _ = digit_dataset(128, size=8, seed=11)
    return x


@pytest.fixture
def small_ae():
    """A 25→9 sparse autoencoder with the sparsity penalty active."""
    cost = SparseAutoencoderCost(
        weight_decay=1e-3, sparsity_target=0.1, sparsity_weight=0.5
    )
    return SparseAutoencoder(25, 9, cost=cost, seed=3)


@pytest.fixture
def small_rbm():
    """A 12→7 RBM for functional tests."""
    return RBM(12, 7, seed=5)


@pytest.fixture
def binary_batch(rng):
    """A 40x12 binary matrix for RBM training tests."""
    return (rng.random((40, 12)) < 0.4).astype(np.float64)
