"""Narrative tests: each paper section's claim, as an executable assertion.

A reading companion to the paper — every test quotes the passage it
verifies and exercises the library mechanism that reproduces it.
"""

import numpy as np
import pytest

from repro.core.config import OptimizationLevel, TrainingConfig
from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.rbm_trainer import RBMTrainer
from repro.phi.kernels import sample
from repro.phi.costmodel import CostModel
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.backend import backend_for_level


def phi_config(**overrides):
    base = dict(
        n_visible=1024, n_hidden=512, n_examples=10_000, batch_size=1000,
        machine=XEON_PHI_5110P,
    )
    base.update(overrides)
    return TrainingConfig(**base)


class TestSectionII_Background:
    def test_fig1_decomposition(self, digits_25):
        """'A four-layer deep neural network can be decomposed into three
        Autoencoders … The differences between them only lie in the
        training set.'"""
        from repro.nn.stacked import LayerSpec, StackedAutoencoder

        spec = LayerSpec(9, epochs=2, batch_size=16, learning_rate=0.5)
        stack = StackedAutoencoder(
            25, [spec, LayerSpec(6, epochs=2, batch_size=16, learning_rate=0.5),
                 LayerSpec(4, epochs=2, batch_size=16, learning_rate=0.5)],
            seed=0,
        ).pretrain(digits_25)
        assert len(stack.blocks) == 3  # four layers -> three autoencoders
        # Each block's input dimension is the previous block's output.
        assert [b.n_visible for b in stack.blocks] == [25, 9, 6]

    def test_eq1_encoder_form(self, digits_25, small_ae):
        """Eq. 1: y = s(W₁x + b₁) — the encoder is exactly one affine map
        through the sigmoid."""
        from repro.utils.mathx import sigmoid

        manual = sigmoid(digits_25 @ small_ae.w1.T + small_ae.b1)
        np.testing.assert_array_equal(small_ae.encode(digits_25), manual)

    def test_eq13_cd_update_form(self, small_rbm, binary_batch):
        """Eq. 13: Δw = η(⟨vh⟩_data − ⟨vh⟩_sample)."""
        stats = small_rbm.contrastive_divergence(binary_batch, rng=0)
        w_before = small_rbm.w.copy()
        eta = 0.07
        small_rbm.apply_update(stats, eta)
        np.testing.assert_allclose(small_rbm.w, w_before + eta * stats.grad_w)


class TestSectionIVA_BasicProcess:
    def test_algorithm1_chunk_then_batch(self):
        """Algorithm 1: 'get a chunk of data from the buffer area … split
        the chunk into many smaller training batches.'"""
        from repro.data.datasets import plan_chunks

        plan = plan_chunks(100_000, 1024, chunk_examples=10_000, batch_size=1000)
        assert plan.n_chunks == 10
        assert all(plan.batches_in_chunk(i) == 10 for i in range(plan.n_chunks))

    def test_17_percent_then_hidden(self):
        """'about 17% of the total time is spent on transferring training
        data' — and the loading thread removes it."""
        from repro.bench.harness import run_transfer_overlap

        result = run_transfer_overlap()
        assert 0.15 < result["transfer_fraction_serial"] < 0.19
        assert result["transfer_fraction_overlapped"] < 0.03

    def test_buffer_several_times_chunk_size(self):
        """'set its size as several times as that of a data chunk' — the
        device allocation reflects n_buffers × chunk bytes."""
        cfg = phi_config(chunk_examples=5000, n_buffers=3)
        trainer = SparseAutoencoderTrainer(cfg)
        trainer.simulate()
        allocations = trainer.machine.memory.live_allocations()
        assert allocations["loading_buffer"] == 3 * 5000 * 1024 * 8


class TestSectionIVB_RBMOptimizations:
    def test_first_parameters_kept_resident(self):
        """'we keep all the parameters including W, b, c in our global
        memory permanently.'"""
        trainer = RBMTrainer(phi_config())
        trainer.simulate()
        assert "rbm:parameters" in trainer.machine.memory.live_allocations()

    def test_second_vpu_vectorises_sampling(self):
        """'we can use the 512-bit wide VPU … to speed up several loops.
        Thus, we vectorize the sampling and update step.'"""
        kernel = sample(10_000_000)
        scalar = CostModel(
            XEON_PHI_5110P, backend_for_level(OptimizationLevel.OPENMP)
        ).time(kernel)
        vectorised = CostModel(
            XEON_PHI_5110P, backend_for_level(OptimizationLevel.OPENMP_MKL)
        ).time(kernel)
        assert vectorised.compute_s < scalar.compute_s / 3

    def test_third_mkl_is_decisive(self):
        """'the eventual optimizing effect would be very limited if we did
        not focus on the matrix operations.'"""
        omp = SparseAutoencoderTrainer(
            phi_config().with_level(OptimizationLevel.OPENMP)
        ).simulate()
        mkl = SparseAutoencoderTrainer(
            phi_config().with_level(OptimizationLevel.OPENMP_MKL)
        ).simulate()
        assert omp.simulated_seconds / mkl.simulated_seconds > 5

    def test_fourth_fig6_concurrency(self):
        """'some matrix operations can also be calculated concurrently
        based on the sequence of the computations' — V2 and C1 share a
        wavefront, and overlapping saves time."""
        from repro.core.oplist import rbm_step_taskgraph
        from repro.phi.machine import SimulatedMachine

        graph = rbm_step_taskgraph(1000, 1024, 512)
        fronts = [{n.name for n in lvl} for lvl in graph.wavefronts()]
        assert {"V2", "C1"} <= fronts[2]

        improved = SimulatedMachine(
            XEON_PHI_5110P, backend_for_level(OptimizationLevel.IMPROVED)
        )
        import dataclasses

        serial = SimulatedMachine(
            XEON_PHI_5110P,
            dataclasses.replace(
                backend_for_level(OptimizationLevel.IMPROVED),
                overlap_independent=False,
            ),
        )
        levels = graph.kernel_levels()
        t_overlap = improved.execute_levels(levels)
        t_serial = serial.execute_levels(levels)
        assert t_overlap < t_serial


class TestSectionIVB2_Granularity:
    def test_small_loop_bodies_lose_to_sync(self):
        """'it turned out to be ineffective since the loop body is
        relatively small and the time cost in synchronization accounts
        most of the total time.'"""
        from repro.runtime.parallel_for import simulate_parallel_for

        tiny = simulate_parallel_for(512, 2e-9, XEON_PHI_5110P, n_threads=240)
        assert tiny.sync_s > tiny.body_s
        assert tiny.speedup < 1.0

    def test_combining_loops_restores_the_win(self):
        """'We finally combine several loops together to make the
        granularity more suitable for our platform.'"""
        from repro.runtime.parallel_for import fused_loop_advantage

        saved = fused_loop_advantage(10, 512, 2e-9, XEON_PHI_5110P, n_threads=240)
        assert saved > 0


class TestSectionV_Claims:
    def test_optimization_irrelevant_to_data_distribution(self, digits_25, rng):
        """'our algorithm should have the same effect on real world data …
        because the optimization work is irrelevant to specific data type
        and data distribution' — simulated time depends only on shapes."""
        cfg = phi_config(
            n_visible=25, n_hidden=9, n_examples=64, batch_size=16, epochs=2
        )
        digits_run = SparseAutoencoderTrainer(cfg).fit(digits_25)
        noise_run = SparseAutoencoderTrainer(cfg).fit(rng.random((64, 25)))
        assert digits_run.simulated_seconds == pytest.approx(
            noise_run.simulated_seconds
        )
        # The functional outcomes, of course, differ.
        assert digits_run.losses[-1] != noise_run.losses[-1]
