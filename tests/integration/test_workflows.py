"""Integration tests: cross-cutting user workflows.

Each test is a realistic end-to-end journey through several subsystems:
data export/import, model persistence mid-pipeline, callbacks steering a
training budget, and the energy/autotune extensions feeding off trainer
results.
"""

import numpy as np
import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.callbacks import EarlyStopping, History
from repro.core.config import TrainingConfig
from repro.data.datasets import train_test_split
from repro.data.mnist_io import export_synthetic_digits, load_image_label_pair
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork
from repro.phi.energy import energy_for_run
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.autotune import autotune_training_config
from repro.utils.serialization import load_model, save_model


class TestIdxExportTrainWorkflow:
    def test_export_reload_train(self, tmp_path):
        """Synthetic corpus → IDX files on disk → reload → train → learn."""
        img_path, lbl_path = export_synthetic_digits(tmp_path, 300, size=8, seed=0)
        x, y = load_image_label_pair(img_path, lbl_path)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, test_fraction=0.2, seed=0)
        net = DeepNetwork([64, 32, 10], seed=0)
        finetune(net, x_tr, y_tr, epochs=25, learning_rate=0.8, seed=0)
        assert net.accuracy(x_te, y_te) > 0.4  # chance = 0.1


class TestPersistenceWorkflow:
    def test_train_save_resume(self, tmp_path, digits_25):
        """Train half the budget, persist, reload, finish — the final
        model must keep improving from where it left off."""
        cfg = TrainingConfig(
            n_visible=25, n_hidden=12, n_examples=64, batch_size=16, epochs=20,
            machine=XEON_PHI_5110P, learning_rate=0.5, seed=0,
        )
        first = SparseAutoencoderTrainer(cfg)
        mid = first.fit(digits_25)
        save_model(first.model, tmp_path / "ckpt.npz")

        resumed_model = load_model(tmp_path / "ckpt.npz")
        err_at_checkpoint = resumed_model.reconstruction_error(digits_25)
        second = SparseAutoencoderTrainer(cfg)
        final = second.fit(digits_25, model=resumed_model)
        assert second.model is resumed_model
        assert second.model.reconstruction_error(digits_25) < err_at_checkpoint
        assert final.losses[0] < mid.losses[0]  # resumed, not restarted


class TestBudgetedTrainingWorkflow:
    def test_early_stopping_saves_simulated_budget(self, digits_25):
        """The practical question for the paper's 200-iterations-per-layer
        schedule: how much simulated machine time does a plateau detector
        save?  (It must stop earlier and end at a comparable error.)"""
        cfg = TrainingConfig(
            n_visible=25, n_hidden=12, n_examples=64, batch_size=16, epochs=120,
            machine=XEON_PHI_5110P, learning_rate=0.5, seed=0,
        )
        full = SparseAutoencoderTrainer(cfg).fit(digits_25)

        stopper = EarlyStopping(patience=3, min_delta=5e-3)
        history = History()
        stopped = SparseAutoencoderTrainer(cfg).fit(
            digits_25, callbacks=[stopper, history]
        )
        assert stopped.n_updates < full.n_updates
        assert stopped.simulated_seconds < full.simulated_seconds
        # The detector trades a bounded quality loss for a ~4x budget cut.
        assert stopped.reconstruction_errors[-1] < 1.5 * full.reconstruction_errors[-1]
        assert stopper.stopped_epoch is not None
        assert len(history.epochs) == stopper.stopped_epoch + 1


class TestTuneThenMeasureWorkflow:
    def test_autotune_feeds_energy_accounting(self):
        """Tune the thread count, rerun at the optimum, report energy —
        the throughput-per-watt loop a systems paper reviewer would ask
        for."""
        cfg = TrainingConfig(
            n_visible=1024, n_hidden=2048, n_examples=20_000, batch_size=500,
            machine=XEON_PHI_5110P,
        )
        tuning = autotune_training_config(cfg, SparseAutoencoderTrainer)
        tuned_cfg = cfg.with_backend(
            cfg.effective_backend.with_threads(tuning.best_threads)
        )
        tuned = SparseAutoencoderTrainer(tuned_cfg).simulate()
        default = SparseAutoencoderTrainer(cfg).simulate()
        assert tuned.simulated_seconds <= default.simulated_seconds + 1e-12
        tuned_energy = energy_for_run(tuned)
        default_energy = energy_for_run(default)
        assert tuned_energy.energy_joules <= default_energy.energy_joules * 1.05
