"""Integration tests: full pipelines across modules.

These exercise the library the way the examples do: synthetic data →
functional training on a simulated machine → timing + quality checks.
"""

import numpy as np
import pytest

from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import OptimizationLevel, TrainingConfig
from repro.core.pretrain import DeepPretrainer
from repro.core.rbm_trainer import RBMTrainer
from repro.data.natural_images import make_natural_images
from repro.data.patches import extract_patches, normalize_patches
from repro.data.synth_digits import digit_dataset
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.stacked import LayerSpec, StackedAutoencoder
from repro.phi.spec import XEON_E5620_SINGLE_CORE, XEON_PHI_5110P
from repro.runtime.backend import optimized_cpu_backend


class TestDigitsToFeaturesPipeline:
    """Quickstart path: digits → sparse autoencoder → compressed code."""

    @pytest.fixture(scope="class")
    def digits(self):
        x, labels = digit_dataset(256, size=8, seed=0)
        return x, labels

    def test_autoencoder_compresses_digits(self, digits):
        x, _ = digits
        cfg = TrainingConfig(
            n_visible=64, n_hidden=25, n_examples=256, batch_size=32, epochs=40,
            machine=XEON_PHI_5110P, learning_rate=0.5,
        )
        trainer = SparseAutoencoderTrainer(cfg)
        result = trainer.fit(x)
        assert result.reconstruction_errors[-1] < 0.5 * result.reconstruction_errors[0]
        code = trainer.model.encode(x)
        assert code.shape == (256, 25)

    def test_learned_code_is_informative(self, digits):
        """A nearest-centroid classifier on the learned code must beat
        chance clearly — the code preserves class structure."""
        x, labels = digits
        cfg = TrainingConfig(
            n_visible=64, n_hidden=30, n_examples=256, batch_size=32, epochs=60,
            machine=XEON_PHI_5110P, learning_rate=0.5, seed=1,
        )
        trainer = SparseAutoencoderTrainer(cfg)
        trainer.fit(x)
        code = trainer.model.encode(x)
        train_idx, test_idx = np.arange(0, 200), np.arange(200, 256)
        centroids = {}
        for d in range(10):
            members = code[train_idx][labels[train_idx] == d]
            if len(members):
                centroids[d] = members.mean(axis=0)
        correct = 0
        for i in test_idx:
            dists = {d: np.linalg.norm(code[i] - c) for d, c in centroids.items()}
            if min(dists, key=dists.get) == labels[i]:
                correct += 1
        accuracy = correct / len(test_idx)
        assert accuracy > 0.3  # chance is 0.1


class TestNaturalImagePipeline:
    """The paper's second data source: natural images → patches → SAE."""

    def test_patch_pipeline_trains(self):
        images = make_natural_images(6, size=64, seed=0)
        patches = extract_patches(images, patch_size=8, n_patches=400, seed=1)
        patches = normalize_patches(patches)
        assert patches.shape == (400, 64)
        cfg = TrainingConfig(
            n_visible=64, n_hidden=16, n_examples=400, batch_size=50, epochs=30,
            machine=XEON_PHI_5110P, learning_rate=0.5,
        )
        trainer = SparseAutoencoderTrainer(
            cfg, cost=SparseAutoencoderCost(sparsity_target=0.05, sparsity_weight=0.5)
        )
        result = trainer.fit(patches)
        assert result.reconstruction_errors[-1] < result.reconstruction_errors[0]


class TestDeepPretrainingEndToEnd:
    def test_four_layer_stack_functional_and_timed(self, digits_64):
        """A miniature Table I: same 4-layer shape ratio, functional math
        plus simulated timing, on both machines."""
        base = TrainingConfig(
            n_visible=64, n_hidden=32, n_examples=128, batch_size=32,
            machine=XEON_PHI_5110P, learning_rate=0.5,
        )
        pre = DeepPretrainer(base, layer_sizes=(64, 32, 16, 8), iterations_per_layer=25)
        result = pre.fit(digits_64)
        assert len(result.layers) == 3
        # The cascade must produce progressively narrower representations
        # and each layer must actually learn.
        for layer in result.layers:
            assert layer.result.losses[-1] < layer.result.losses[0]
        assert result.total_seconds > 0

    def test_phi_beats_single_core_on_same_functional_run(self, digits_64):
        base = dict(
            n_visible=64, n_hidden=32, n_examples=128, batch_size=128, epochs=5,
            learning_rate=0.5,
        )
        phi = SparseAutoencoderTrainer(
            TrainingConfig(machine=XEON_PHI_5110P, **base)
        ).fit(digits_64)
        cpu = SparseAutoencoderTrainer(
            TrainingConfig(
                machine=XEON_E5620_SINGLE_CORE, backend=optimized_cpu_backend(1), **base
            )
        ).fit(digits_64)
        # Identical functional trajectory (same seed/order)...
        np.testing.assert_allclose(phi.losses, cpu.losses)
        # ...different simulated clock.
        assert phi.simulated_seconds != cpu.simulated_seconds


class TestDBNEndToEnd:
    def test_rbm_then_stack(self, binary_batch):
        cfg = TrainingConfig(
            n_visible=12, n_hidden=6, n_examples=40, batch_size=10, epochs=30,
            machine=XEON_PHI_5110P, learning_rate=0.2,
        )
        trainer = RBMTrainer(cfg)
        result = trainer.fit(binary_batch)
        features = trainer.model.transform(binary_batch)
        assert features.shape == (40, 6)
        assert result.reconstruction_errors[-1] <= result.reconstruction_errors[0]

    def test_functional_stack_agrees_with_nn_layer(self, digits_25):
        """nn.stacked and core.pretrain must build equivalent cascades."""
        stack = StackedAutoencoder(
            25,
            [LayerSpec(12, learning_rate=0.5, epochs=5, batch_size=16)],
            seed=3,
        ).pretrain(digits_25)
        assert stack.transform(digits_25).shape == (digits_25.shape[0], 12)
