"""Tests for repro.cli — the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_model_choice(self):
        args = build_parser().parse_args(["fig7", "--model", "rbm"])
        assert args.model == "rbm"


class TestCommands:
    def test_table1_prints_grid(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "baseline" in out and "improved_openmp_mkl" in out
        assert "16,0" in out  # the ~16042 s anchor

    def test_fig9_rbm_panel(self, capsys):
        assert main(["fig9", "--model", "rbm"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9 (rbm)" in out
        assert "10000" in out

    def test_overlap(self, capsys):
        assert main(["overlap"]) == 0
        assert "transfer" in capsys.readouterr().out

    def test_headline(self, capsys):
        assert main(["headline"]) == 0
        out = capsys.readouterr().out
        assert "vs_baseline" in out and "vs_matlab" in out

    def test_roofline(self, capsys):
        assert main(["roofline"]) == 0
        out = capsys.readouterr().out
        assert "Roofline" in out
        assert "compute" in out and "memory" in out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "rows.csv"
        assert main(["cores", "--csv", str(path)]) == 0
        text = path.read_text()
        assert "cores" in text.splitlines()[0]
        assert len(text.splitlines()) >= 4

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "rows.json"
        assert main(["fig10", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["rows"][0]["speedup"] > 10

    def test_module_invocation(self):
        """python -m repro must work as an entry point."""
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fig10"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "Matlab" in proc.stdout
