"""Smoke test: the CLI's `all` command regenerates every artefact."""

from repro.cli import main


class TestCliAll:
    def test_all_command_runs_every_artefact(self, capsys):
        assert main(["all"]) == 0
        out = capsys.readouterr().out
        for marker in (
            "Table I",
            "Fig. 7",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "transfer overlap",
            "Headline claims",
            "Core-count scaling",
            "Roofline",
            "Claim verification",
        ):
            assert marker in out, f"missing section: {marker}"
        assert "FAIL" not in out

    def test_all_with_exports(self, tmp_path, capsys):
        csv = tmp_path / "all.csv"
        assert main(["all", "--csv", str(csv)]) == 0
        text = csv.read_text()
        assert len(text.splitlines()) > 30  # every artefact's rows landed
