"""Smoke tests: the shipped examples must run end to end.

Only the two fastest examples run as subprocesses here (the full set is
exercised manually / in CI); the goal is to catch API drift that would
break the README's first-contact experience.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Phi speedup" in out
        assert "strongest learned filters" in out

    def test_deep_pretraining(self):
        out = run_example("deep_pretraining.py")
        assert "Table I" in out
        assert "16,0" in out  # the baseline anchor

    def test_examples_directory_complete(self):
        """README promises at least these examples on disk."""
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "deep_pretraining.py",
            "rbm_dbn_features.py",
            "phi_speedup_study.py",
            "batch_optimizers.py",
            "supervised_finetuning.py",
            "sparse_coding_features.py",
            "performance_toolkit.py",
        } <= names
