"""Tests for repro.optim.schedules — learning-rate schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.optim.schedules import (
    AdaGradSchedule,
    ConstantSchedule,
    ExponentialDecaySchedule,
    InverseTimeDecaySchedule,
    get_schedule,
)


class TestConstant:
    def test_constant(self):
        s = ConstantSchedule(0.3)
        assert s.rate(0) == s.rate(1000) == 0.3

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.0)


class TestInverseTime:
    def test_starts_at_base(self):
        assert InverseTimeDecaySchedule(0.5, decay_steps=10).rate(0) == 0.5

    def test_halves_at_tau(self):
        s = InverseTimeDecaySchedule(0.5, decay_steps=10)
        assert s.rate(10) == pytest.approx(0.25)

    def test_monotone_decreasing(self):
        s = InverseTimeDecaySchedule(1.0, decay_steps=5)
        rates = [s.rate(t) for t in range(50)]
        assert all(a > b for a, b in zip(rates, rates[1:]))


class TestExponential:
    def test_starts_at_base(self):
        assert ExponentialDecaySchedule(0.2, gamma=0.5, decay_steps=10).rate(0) == 0.2

    def test_gamma_after_one_period(self):
        s = ExponentialDecaySchedule(0.2, gamma=0.5, decay_steps=10)
        assert s.rate(10) == pytest.approx(0.1)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            ExponentialDecaySchedule(0.2, gamma=1.5)


class TestAdaGrad:
    def test_requires_gradient(self):
        with pytest.raises(ConfigurationError):
            AdaGradSchedule(0.1).rate(0)

    def test_per_coordinate_shrinkage(self):
        s = AdaGradSchedule(1.0, epsilon=0.0)
        g = np.array([1.0, 2.0])
        r1 = s.rate(0, g)
        np.testing.assert_allclose(r1, [1.0, 0.5])
        r2 = s.rate(1, g)
        np.testing.assert_allclose(r2, 1.0 / np.sqrt([2.0, 8.0]))

    def test_reset_clears_accumulator(self):
        s = AdaGradSchedule(1.0, epsilon=0.0)
        g = np.array([2.0])
        first = s.rate(0, g).copy()
        s.rate(1, g)
        s.reset()
        np.testing.assert_allclose(s.rate(0, g), first)

    def test_shape_change_raises(self):
        s = AdaGradSchedule(1.0)
        s.rate(0, np.ones(3))
        with pytest.raises(ConfigurationError):
            s.rate(1, np.ones(4))


class TestRegistry:
    def test_names(self):
        assert isinstance(get_schedule("constant", 0.1), ConstantSchedule)
        assert isinstance(get_schedule("inverse_time", 0.1), InverseTimeDecaySchedule)
        assert isinstance(get_schedule("exponential", 0.1), ExponentialDecaySchedule)
        assert isinstance(get_schedule("adagrad", 0.1), AdaGradSchedule)

    def test_passthrough(self):
        s = ConstantSchedule(0.1)
        assert get_schedule(s) is s

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_schedule("cosine")
