"""Tests for repro.optim.sgd — mini-batch SGD."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.optim.sgd import SGD


def quadratic_objective(theta, batch):
    """Least squares against per-row targets: f = mean ||theta - row||^2/2."""
    diff = theta[None, :] - batch
    loss = 0.5 * float(np.mean(np.sum(diff**2, axis=1)))
    grad = diff.mean(axis=0)
    return loss, grad


class TestSGDBasics:
    def test_converges_to_data_mean(self, rng):
        data = rng.normal(loc=3.0, size=(200, 4))
        sgd = SGD(learning_rate=0.2, seed=0)
        result = sgd.minimize(quadratic_objective, np.zeros(4), data, batch_size=20, epochs=40)
        np.testing.assert_allclose(result.theta, data.mean(axis=0), atol=0.15)

    def test_loss_decreases(self, rng):
        data = rng.normal(size=(100, 3))
        result = SGD(learning_rate=0.1, seed=0).minimize(
            quadratic_objective, np.full(3, 5.0), data, batch_size=10, epochs=10
        )
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_update_count(self, rng):
        data = rng.normal(size=(50, 2))
        result = SGD(seed=0).minimize(
            quadratic_objective, np.zeros(2), data, batch_size=20, epochs=3
        )
        assert result.n_updates == 3 * 3  # ceil(50/20) = 3 batches/epoch

    def test_callback_invoked_per_update(self, rng):
        data = rng.normal(size=(40, 2))
        seen = []
        SGD(seed=0).minimize(
            quadratic_objective,
            np.zeros(2),
            data,
            batch_size=10,
            epochs=2,
            callback=lambda t, loss, theta: seen.append(t),
        )
        assert seen == list(range(1, 9))

    def test_momentum_accepted_and_converges(self, rng):
        data = rng.normal(loc=-2.0, size=(200, 3))
        result = SGD(learning_rate=0.05, momentum=0.9, seed=0).minimize(
            quadratic_objective, np.zeros(3), data, batch_size=25, epochs=40
        )
        np.testing.assert_allclose(result.theta, data.mean(axis=0), atol=0.2)

    def test_adagrad_schedule_integration(self, rng):
        data = rng.normal(loc=1.0, size=(100, 2))
        result = SGD(learning_rate=0.5, schedule="adagrad", seed=0).minimize(
            quadratic_objective, np.zeros(2), data, batch_size=10, epochs=30
        )
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_no_shuffle_is_deterministic_order(self, rng):
        data = np.arange(20, dtype=float).reshape(10, 2)
        batches_seen = []

        def spy(theta, batch):
            batches_seen.append(batch[0, 0])
            return quadratic_objective(theta, batch)

        SGD(seed=0, shuffle=False).minimize(spy, np.zeros(2), data, batch_size=2, epochs=1)
        assert batches_seen == [0.0, 4.0, 8.0, 12.0, 16.0]

    def test_seed_reproducible(self, rng):
        data = rng.normal(size=(60, 2))
        a = SGD(learning_rate=0.1, seed=9).minimize(
            quadratic_objective, np.zeros(2), data, batch_size=8, epochs=3
        )
        b = SGD(learning_rate=0.1, seed=9).minimize(
            quadratic_objective, np.zeros(2), data, batch_size=8, epochs=3
        )
        np.testing.assert_array_equal(a.theta, b.theta)


class TestSGDValidation:
    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            SGD(learning_rate=0.0)

    def test_rejects_1d_data(self):
        with pytest.raises(ConfigurationError):
            SGD().minimize(quadratic_objective, np.zeros(2), np.zeros(5), 2, 1)

    def test_rejects_gradient_shape_mismatch(self, rng):
        data = rng.normal(size=(10, 2))

        def bad(theta, batch):
            return 0.0, np.zeros(3)

        with pytest.raises(ConfigurationError, match="shape"):
            SGD().minimize(bad, np.zeros(2), data, batch_size=5, epochs=1)
