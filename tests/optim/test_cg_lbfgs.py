"""Tests for repro.optim.cg and repro.optim.lbfgs — the paper's §III batch
optimizers, including their use on the actual sparse autoencoder."""

import numpy as np
import pytest

from repro.nn.autoencoder import SparseAutoencoder
from repro.optim.cg import nonlinear_conjugate_gradient
from repro.optim.lbfgs import lbfgs_minimize


def quadratic(theta):
    """Convex quadratic with condition number ~50."""
    scales = np.linspace(1.0, 50.0, theta.size)
    loss = 0.5 * float(np.sum(scales * theta**2))
    return loss, scales * theta


def rosenbrock(theta):
    x, y = theta
    loss = (1 - x) ** 2 + 100 * (y - x**2) ** 2
    grad = np.array([-2 * (1 - x) - 400 * x * (y - x**2), 200 * (y - x**2)])
    return float(loss), grad


class TestConjugateGradient:
    def test_quadratic_converges(self):
        result = nonlinear_conjugate_gradient(quadratic, np.ones(10), max_iterations=200)
        assert result.converged
        assert result.grad_norm < 1e-5
        np.testing.assert_allclose(result.theta, 0.0, atol=1e-5)

    def test_losses_monotone_nonincreasing(self):
        result = nonlinear_conjugate_gradient(quadratic, np.ones(10))
        diffs = np.diff(result.losses)
        assert (diffs <= 1e-12).all()

    def test_rosenbrock(self):
        result = nonlinear_conjugate_gradient(
            rosenbrock, np.array([-1.2, 1.0]), max_iterations=2000
        )
        # CG with an inexact (Wolfe) line search is famously slow through
        # Rosenbrock's valley; near-convergence is the realistic bar.
        np.testing.assert_allclose(result.theta, [1.0, 1.0], atol=1e-2)

    def test_iteration_budget_respected(self):
        result = nonlinear_conjugate_gradient(quadratic, np.ones(50), max_iterations=3)
        assert result.n_iterations == 3
        assert not result.converged

    def test_already_at_minimum(self):
        result = nonlinear_conjugate_gradient(quadratic, np.zeros(4))
        assert result.converged
        assert result.n_iterations == 0


class TestLBFGS:
    def test_quadratic_converges_fast(self):
        result = lbfgs_minimize(quadratic, np.ones(10), max_iterations=100)
        assert result.converged
        assert result.grad_norm < 1e-5

    def test_rosenbrock(self):
        result = lbfgs_minimize(rosenbrock, np.array([-1.2, 1.0]), max_iterations=300)
        np.testing.assert_allclose(result.theta, [1.0, 1.0], atol=1e-4)

    def test_beats_gradient_descent_iteration_count(self):
        """On an ill-conditioned quadratic, L-BFGS needs far fewer iterations
        than plain steepest descent would (the paper's case for batch methods)."""
        result = lbfgs_minimize(quadratic, np.ones(20), max_iterations=100)
        assert result.converged
        assert result.n_iterations < 60  # steepest descent needs O(kappa·ln) ≈ hundreds

    def test_memory_one_still_works(self):
        result = lbfgs_minimize(quadratic, np.ones(5), memory=1, max_iterations=200)
        assert result.converged

    def test_loss_tolerance_early_stop(self):
        result = lbfgs_minimize(
            quadratic, np.ones(5), loss_tolerance=0.5, max_iterations=100
        )
        assert result.converged

    def test_losses_monotone_nonincreasing(self):
        result = lbfgs_minimize(rosenbrock, np.array([-1.2, 1.0]))
        assert (np.diff(result.losses) <= 1e-12).all()


class TestBatchOptimizersOnAutoencoder:
    """§III: 'the batch methods like L-BFGS or CG … make it easier to
    parallelize' — verify they actually train the paper's model."""

    @pytest.fixture
    def problem(self, digits_25):
        ae = SparseAutoencoder(25, 9, seed=0)
        f = lambda theta: ae.flat_loss_and_grad(theta, digits_25)
        return ae, f

    def test_lbfgs_trains_autoencoder(self, problem, digits_25):
        ae, f = problem
        loss0 = ae.loss(digits_25)
        result = lbfgs_minimize(f, ae.get_flat_parameters(), max_iterations=50)
        ae.set_flat_parameters(result.theta)
        assert ae.loss(digits_25) < 0.5 * loss0

    def test_cg_trains_autoencoder(self, problem, digits_25):
        ae, f = problem
        loss0 = ae.loss(digits_25)
        result = nonlinear_conjugate_gradient(
            f, ae.get_flat_parameters(), max_iterations=50
        )
        ae.set_flat_parameters(result.theta)
        assert ae.loss(digits_25) < 0.5 * loss0

    def test_lbfgs_converges_in_fewer_iterations_than_cg(self, problem):
        """The usual ordering on this objective — and the reason the
        related work prefers L-BFGS."""
        ae, f = problem
        theta0 = ae.get_flat_parameters()
        target = None
        lb = lbfgs_minimize(f, theta0, max_iterations=60)
        cg = nonlinear_conjugate_gradient(f, theta0, max_iterations=60)
        assert lb.losses[-1] <= cg.losses[-1] * 1.05
