"""Tests for repro.optim.linesearch — Armijo and strong-Wolfe searches."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.optim.linesearch import backtracking_line_search, wolfe_line_search


def make_quadratic(center):
    center = np.asarray(center, dtype=float)

    def f(theta):
        d = theta - center
        return 0.5 * float(d @ d), d

    return f


class TestBacktracking:
    def test_finds_decrease(self):
        f = make_quadratic([0.0, 0.0])
        theta = np.array([2.0, 0.0])
        loss0, grad0 = f(theta)
        alpha, loss, grad = backtracking_line_search(f, theta, -grad0, loss0, grad0)
        assert loss < loss0
        assert alpha > 0

    def test_full_step_on_nice_quadratic(self):
        f = make_quadratic([1.0])
        theta = np.array([3.0])
        loss0, grad0 = f(theta)
        alpha, loss, _ = backtracking_line_search(f, theta, -grad0, loss0, grad0)
        assert alpha == 1.0  # exact minimiser for unit-Hessian quadratic
        assert loss == pytest.approx(0.0)

    def test_rejects_ascent_direction(self):
        f = make_quadratic([0.0])
        theta = np.array([1.0])
        loss0, grad0 = f(theta)
        with pytest.raises(ConvergenceError, match="descent"):
            backtracking_line_search(f, theta, +grad0, loss0, grad0)

    def test_shrinks_for_steep_function(self):
        def f(theta):
            x = theta[0]
            return float(x**4), np.array([4 * x**3])

        theta = np.array([2.0])
        loss0, grad0 = f(theta)
        alpha, loss, _ = backtracking_line_search(
            f, theta, -grad0, loss0, grad0, alpha0=1.0
        )
        assert alpha < 1.0
        assert loss < loss0

    def test_failure_raises(self):
        # A function that always increases along the direction (misreported
        # gradient) exhausts the halvings.
        def f(theta):
            return float(np.sum(theta**2)), -np.ones_like(theta)

        theta = np.ones(2)
        with pytest.raises(ConvergenceError):
            backtracking_line_search(f, theta, np.ones(2), 2.0, -np.ones(2), max_steps=5)


class TestWolfe:
    def test_satisfies_strong_wolfe_on_quadratic(self):
        f = make_quadratic([0.0, 0.0])
        theta = np.array([4.0, -2.0])
        loss0, grad0 = f(theta)
        d = -grad0
        c1, c2 = 1e-4, 0.9
        alpha, loss, grad = wolfe_line_search(f, theta, d, loss0, grad0, c1=c1, c2=c2)
        slope0 = grad0 @ d
        assert loss <= loss0 + c1 * alpha * slope0
        assert abs(grad @ d) <= c2 * abs(slope0)

    def test_satisfies_wolfe_on_rosenbrock(self):
        def rosen(theta):
            x, y = theta
            loss = (1 - x) ** 2 + 100 * (y - x**2) ** 2
            grad = np.array(
                [-2 * (1 - x) - 400 * x * (y - x**2), 200 * (y - x**2)]
            )
            return float(loss), grad

        theta = np.array([-1.2, 1.0])
        loss0, grad0 = rosen(theta)
        d = -grad0
        alpha, loss, grad = wolfe_line_search(rosen, theta, d, loss0, grad0)
        slope0 = grad0 @ d
        assert loss <= loss0 + 1e-4 * alpha * slope0

    def test_rejects_ascent_direction(self):
        f = make_quadratic([0.0])
        theta = np.array([1.0])
        loss0, grad0 = f(theta)
        with pytest.raises(ConvergenceError):
            wolfe_line_search(f, theta, +grad0, loss0, grad0)

    def test_expands_small_initial_step(self):
        # Minimiser far along the ray: alpha must grow past alpha0.
        f = make_quadratic([100.0])
        theta = np.array([0.0])
        loss0, grad0 = f(theta)
        d = np.array([1.0])  # descent: slope = -100
        alpha, loss, _ = wolfe_line_search(f, theta, d, loss0, grad0, alpha0=1.0)
        assert alpha > 1.0
        assert loss < loss0
