"""Pipelined synchronized layer-wise pre-training (Santara et al.).

The contract under test, per ``docs/pipeline.md``:

* two pipelined runs at the same seed are bit-identical (synchronized
  *and* free-running: stage 0 never waits on anyone);
* stage 0 is bit-identical to greedy block 0 (same generator layout);
* upper stages legitimately differ from greedy — they train on the
  *evolving* representation, not the converged one;
* configuration errors are typed and early (uniform epochs, borrowed
  engines, chunked staging, checkpoint + free-running);
* a queue capacity of 1 only stalls the producer — it never deadlocks;
* an early-stopping request winds the whole pipeline down cleanly.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.train import EarlyStopping, History
from repro.train.pipeline import (
    ActivationQueue,
    PipelineError,
    PipelinedPretrainer,
    StagePlan,
)

N_VISIBLE = 20


@pytest.fixture
def x():
    rng = np.random.default_rng(0)
    return rng.random((48, N_VISIBLE))


def _specs(epochs=2):
    return [
        LayerSpec(10, epochs=epochs, batch_size=16),
        LayerSpec(6, epochs=epochs, batch_size=16),
    ]


def _params(stack):
    return [
        {a: np.array(getattr(b, a)) for a in ("w1", "b1", "w2", "b2")}
        for b in stack.blocks
    ]


def _sae(x, seed=7, **kwargs):
    return StackedAutoencoder(N_VISIBLE, _specs(), seed=seed).pretrain(x, **kwargs)


class TestDeterminism:
    def test_two_pipelined_runs_are_bit_identical(self, x):
        a = _params(_sae(x, strategy="pipelined"))
        b = _params(_sae(x, strategy="pipelined"))
        for pa, pb in zip(a, b):
            for key in pa:
                assert np.array_equal(pa[key], pb[key])

    def test_stage0_matches_greedy_block0(self, x):
        greedy = _params(_sae(x))
        piped = _params(_sae(x, strategy="pipelined"))
        for key in greedy[0]:
            assert np.array_equal(greedy[0][key], piped[0][key])

    def test_upper_stage_trains_on_the_evolving_representation(self, x):
        """Block 1 must differ from greedy: it consumed block 0's output
        while block 0 was still learning."""
        greedy = _params(_sae(x))
        piped = _params(_sae(x, strategy="pipelined"))
        assert not np.array_equal(greedy[1]["w1"], piped[1]["w1"])

    def test_free_running_stage0_matches_greedy(self, x):
        piped = _params(_sae(x, strategy="pipelined", sync="free"))
        greedy = _params(_sae(x))
        for key in greedy[0]:
            assert np.array_equal(greedy[0][key], piped[0][key])

    def test_layer_errors_one_list_per_stage(self, x):
        stack = _sae(x, strategy="pipelined")
        assert len(stack.layer_errors) == 2
        assert all(len(errs) == 2 for errs in stack.layer_errors)

    def test_thread_engine_matches_itself(self, x):
        a = _params(_sae(x, strategy="pipelined", engine_mode="thread", n_workers=2))
        b = _params(_sae(x, strategy="pipelined", engine_mode="thread", n_workers=2))
        for pa, pb in zip(a, b):
            for key in pa:
                assert np.array_equal(pa[key], pb[key])

    def test_dbn_pipelined_is_deterministic(self, x):
        runs = []
        for _ in range(2):
            dbn = DeepBeliefNetwork(N_VISIBLE, _specs(), seed=3).pretrain(
                x, strategy="pipelined"
            )
            runs.append([np.array(b.w) for b in dbn.blocks])
        for wa, wb in zip(*runs):
            assert np.array_equal(wa, wb)


class TestBackpressure:
    def test_single_slot_queue_completes(self, x):
        """Capacity 1 forces a full stall per item; the blocking drain
        keeps popping, so the run completes instead of deadlocking."""
        stack = _sae(x, strategy="pipelined", queue_slots=1)
        assert stack.is_trained

    def test_single_slot_matches_default_capacity(self, x):
        """Queue capacity is pure flow control: it must not change what
        any stage computes."""
        tight = _params(_sae(x, strategy="pipelined", queue_slots=1))
        roomy = _params(_sae(x, strategy="pipelined"))
        for pa, pb in zip(tight, roomy):
            for key in pa:
                assert np.array_equal(pa[key], pb[key])


class TestValidation:
    def test_heterogeneous_epochs_rejected(self, x):
        specs = [
            LayerSpec(10, epochs=3, batch_size=16),
            LayerSpec(6, epochs=2, batch_size=16),
        ]
        stack = StackedAutoencoder(N_VISIBLE, specs, seed=7)
        with pytest.raises(ConfigurationError, match="epochs"):
            stack.pretrain(x, strategy="pipelined")

    def test_borrowed_engine_rejected(self, x):
        from repro.runtime.executor import ParallelGradientEngine

        stack = StackedAutoencoder(N_VISIBLE, _specs(), seed=7)
        with ParallelGradientEngine(2, blas_threads=None, seed=0) as eng:
            with pytest.raises(ConfigurationError, match="engine_mode"):
                stack.pretrain(x, strategy="pipelined", engine=eng)

    def test_chunks_rejected(self, x):
        from repro.train import ChunkSchedule

        stack = StackedAutoencoder(N_VISIBLE, _specs(), seed=7)
        with pytest.raises(ConfigurationError, match="chunks"):
            stack.pretrain(
                x, strategy="pipelined", chunks=ChunkSchedule(chunk_examples=16)
            )

    def test_unknown_strategy_rejected(self, x):
        stack = StackedAutoencoder(N_VISIBLE, _specs(), seed=7)
        with pytest.raises(ConfigurationError, match="strategy"):
            stack.pretrain(x, strategy="fastest")

    def test_pipelined_kwargs_rejected_under_greedy(self, x):
        stack = StackedAutoencoder(N_VISIBLE, _specs(), seed=7)
        with pytest.raises(ConfigurationError, match="pipelined"):
            stack.pretrain(x, sync="free")

    def test_checkpoint_with_free_running_rejected(self, x, tmp_path):
        stack = StackedAutoencoder(N_VISIBLE, _specs(), seed=7)
        with pytest.raises(ConfigurationError, match="synchronized"):
            stack.pretrain(
                x, strategy="pipelined", sync="free", checkpoint=tmp_path
            )

    def test_unknown_sync_policy_rejected(self, x):
        stack = StackedAutoencoder(N_VISIBLE, _specs(), seed=7)
        with pytest.raises(ConfigurationError, match="sync"):
            stack.pretrain(x, strategy="pipelined", sync="chaotic")

    def test_pretrainer_runs_only_once(self, x):
        from repro.train import TrainStep

        class NoopStep(TrainStep):
            def __init__(self, buf):
                self.buf = buf

            def n_examples(self):
                return int(self.buf.shape[0])

            def load(self, idx):
                return self.buf[idx]

            def compute(self, batch):
                return 0.0, None

            def apply(self, state):
                pass

        plan = StagePlan(
            index=0, epochs=1, batch_size=16, out_width=4,
            make_step=NoopStep, encode=lambda r: r,
            rng=np.random.default_rng(0),
        )
        pt = PipelinedPretrainer([plan])
        pt.run(x)
        with pytest.raises(ConfigurationError, match="once"):
            pt.run(x)


class TestEvents:
    def test_shared_bus_sees_every_stage(self, x):
        history = History()
        _sae(x, strategy="pipelined", callbacks=history)
        layers = {e.layer for e in history.layers}
        assert layers == {0, 1}
        # Two stages x two epochs on the shared bus.
        assert len(history.epochs) == 4

    def test_early_stopping_winds_down_without_hanging(self, x):
        """A plateau stop on the shared bus ends the whole pipeline at
        the next epoch boundary — never a hang, no exception."""
        stop = EarlyStopping(patience=1, min_delta=1e9)  # stop ASAP
        stack = StackedAutoencoder(
            N_VISIBLE, _specs(epochs=4), seed=7
        ).pretrain(x, strategy="pipelined", callbacks=stop)
        # At least one stage got cut short.
        assert any(len(errs) < 4 for errs in stack.layer_errors)

    def test_per_block_callback_fires_in_order(self, x):
        seen = []
        _sae(x, strategy="pipelined", callback=lambda i, b, e: seen.append(i))
        assert seen == [0, 1]


class TestActivationQueueUnit:
    def test_pop_after_producer_failure_is_typed(self):
        q = ActivationQueue(0, n_slots=2)
        q.fail(ValueError("stage exploded"))
        with pytest.raises(PipelineError, match="upstream"):
            q.pop()

    def test_push_to_closed_queue_is_typed(self):
        q = ActivationQueue(0, n_slots=1)
        q.close()
        with pytest.raises(PipelineError, match="downstream"):
            q.push_done()

    def test_cursors_track_handoffs(self):
        q = ActivationQueue(0, n_slots=4)
        q.push_rows(0, np.arange(2), np.zeros((2, 3)))
        q.push_epoch_end(0)
        assert (q.pushed, q.popped) == (2, 0)
        q.pop()
        q.pop()
        assert (q.pushed, q.popped) == (2, 2)
