"""Unit tests for the unified TrainLoop runtime and its event log."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.train import (
    CallbackList,
    ChunkSchedule,
    EarlyStopping,
    EpochEvent,
    EventLog,
    History,
    LayerEvent,
    TrainLoop,
    TrainStep,
    UpdateEvent,
)


class _MeanStep(TrainStep):
    """Toy model: tracks a running mean; loss = batch mean distance."""

    kind = "toy"

    def __init__(self, x, sim_per_row=0.0):
        self.x = np.asarray(x, dtype=np.float64)
        self.center = 0.0
        self.sim_per_row = sim_per_row
        self.applied = []

    def n_examples(self):
        return int(self.x.shape[0])

    def load(self, idx):
        return self.x[idx]

    def compute(self, batch):
        grad = float(np.mean(batch) - self.center)
        return abs(grad), grad

    def apply(self, grad):
        self.center += 0.5 * grad
        self.applied.append(grad)

    def charge(self, n_rows):
        return self.sim_per_row * n_rows


def _data(n=24, seed=0):
    return np.random.default_rng(seed).normal(size=(n, 1)) + 3.0


class TestRunEpochs:
    def test_event_stream_shape(self):
        history = History()
        loop = TrainLoop(callbacks=[history])
        step = _MeanStep(_data())
        metrics = loop.run_epochs(
            step, epochs=3, batch_size=8, rng=np.random.default_rng(1)
        )
        assert len(metrics) == 3
        assert len(history.epochs) == 3
        assert len(history.updates) == 3 * 3  # 24/8 batches per epoch
        # Steps are 1-based and monotone; epochs 0-based.
        assert [e.step for e in history.updates] == list(range(1, 10))
        assert [e.epoch for e in history.epochs] == [0, 1, 2]
        assert loop.step_count == 9

    def test_update_events_carry_wall_timings(self):
        history = History()
        loop = TrainLoop(callbacks=[history])
        loop.run_epochs(
            _MeanStep(_data()), epochs=1, batch_size=8,
            rng=np.random.default_rng(1),
        )
        assert all(e.timings is not None for e in history.updates)
        assert loop.timings.total_s >= 0.0

    def test_simulated_clock_accumulates_charges(self):
        history = History()
        loop = TrainLoop(callbacks=[history])
        step = _MeanStep(_data(), sim_per_row=0.25)
        loop.run_epochs(
            step, epochs=2, batch_size=8, rng=np.random.default_rng(1)
        )
        assert loop.simulated_seconds == pytest.approx(0.25 * 24 * 2)
        assert history.updates[-1].simulated_seconds == pytest.approx(
            loop.simulated_seconds
        )

    def test_metrics_list_is_appended_in_place(self):
        carried = [1.0]  # resuming caller passes prior epochs' metrics
        loop = TrainLoop()
        out = loop.run_epochs(
            _MeanStep(_data()), epochs=2, batch_size=8,
            rng=np.random.default_rng(1), metrics=carried, start_epoch=1,
        )
        assert out is carried
        assert len(carried) == 2

    def test_epoch_end_hook_sees_epoch_count(self):
        calls = []
        loop = TrainLoop()
        loop.run_epochs(
            _MeanStep(_data()), epochs=3, batch_size=8,
            rng=np.random.default_rng(1),
            epoch_end=lambda done, metrics: calls.append((done, len(metrics))),
        )
        assert calls == [(1, 1), (2, 2), (3, 3)]

    def test_rejects_bad_arguments(self):
        loop = TrainLoop()
        with pytest.raises(ConfigurationError):
            loop.run_epochs(
                _MeanStep(_data()), epochs=0, batch_size=8,
                rng=np.random.default_rng(1),
            )

    def test_callback_list_of_caller_is_not_mutated(self):
        mine = CallbackList([History()])
        loop = TrainLoop(callbacks=mine)
        loop.monitor.callbacks.append(History())  # loop-internal recorder
        assert len(mine.callbacks) == 1


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        stopper = EarlyStopping(patience=1, min_delta=10.0)
        history = History()
        loop = TrainLoop(callbacks=[stopper, history])
        loop.run_epochs(
            _MeanStep(_data()), epochs=50, batch_size=8,
            rng=np.random.default_rng(1),
        )
        assert stopper.stop_requested
        assert len(history.epochs) < 50
        assert stopper.stopped_epoch == history.epochs[-1].epoch

    def test_layer_event_resets_the_plateau_budget(self):
        stopper = EarlyStopping(patience=1, min_delta=10.0)
        loop = TrainLoop(callbacks=[stopper])
        loop.run_epochs(
            _MeanStep(_data()), epochs=50, batch_size=8,
            rng=np.random.default_rng(1),
        )
        assert stopper.stop_requested
        loop.end_layer(0, 1.0)
        assert not stopper.stop_requested
        assert stopper.best is None

    def test_preexisting_stop_prevents_any_update(self):
        stopper = EarlyStopping(patience=1)
        stopper.stop_requested = True
        loop = TrainLoop(callbacks=[stopper])
        step = _MeanStep(_data())
        loop.run_epochs(
            step, epochs=3, batch_size=8, rng=np.random.default_rng(1)
        )
        assert loop.step_count == 0
        assert step.applied == []


class TestChunkedMode:
    def test_chunked_equals_plain_bit_identical(self):
        x = _data(n=48, seed=3)
        plain_step = _MeanStep(x)
        loop = TrainLoop()
        loop.run_epochs(
            plain_step, epochs=2, batch_size=8, rng=np.random.default_rng(7)
        )

        chunk_step = _MeanStep(x)
        loop2 = TrainLoop()
        loop2.run_epochs(
            chunk_step, epochs=2, batch_size=8, rng=np.random.default_rng(7),
            chunks=ChunkSchedule(chunk_examples=16, n_buffers=2),
        )
        assert chunk_step.center == plain_step.center  # bit-identical
        assert chunk_step.applied == plain_step.applied

    def test_chunk_must_align_with_batch(self):
        loop = TrainLoop()
        with pytest.raises(ConfigurationError):
            loop.run_epochs(
                _MeanStep(_data()), epochs=1, batch_size=8,
                rng=np.random.default_rng(1),
                chunks=ChunkSchedule(chunk_examples=12),
            )

    def test_chunk_schedule_validation(self):
        with pytest.raises(ConfigurationError):
            ChunkSchedule(chunk_examples=0)
        with pytest.raises(ConfigurationError):
            ChunkSchedule(chunk_examples=8, n_buffers=0)


class TestEventLog:
    def _run(self):
        history = History()
        loop = TrainLoop(callbacks=[history])
        loop.run_epochs(
            _MeanStep(_data(), sim_per_row=0.1), epochs=2, batch_size=8,
            rng=np.random.default_rng(1),
        )
        loop.end_layer(0, 42.0)
        return loop, history

    def test_round_trip_preserves_compared_payload(self):
        loop, _ = self._run()
        restored = EventLog.from_array(loop.log.to_array())
        assert restored.events == loop.log.events  # timings excluded
        assert restored.last_step() == loop.log.last_step()
        assert restored.last_simulated_seconds() == pytest.approx(
            loop.log.last_simulated_seconds()
        )

    def test_from_array_none_is_legacy_empty(self):
        log = EventLog.from_array(None)
        assert len(log) == 0
        assert log.last_step() == 0

    def test_replay_reconstructs_history(self):
        loop, live = self._run()
        replayed = History()
        fresh = TrainLoop(callbacks=[replayed])
        fresh.resume_from_log(EventLog.from_array(loop.log.to_array()))
        assert replayed.updates == live.updates
        assert replayed.epochs == live.epochs
        assert replayed.layers == live.layers
        assert fresh.step_count == loop.step_count
        assert fresh.simulated_seconds == pytest.approx(loop.simulated_seconds)

    def test_chronological_interleaving_is_preserved(self):
        loop, _ = self._run()
        kinds = [type(e).__name__ for e in loop.log.events]
        restored = [
            type(e).__name__
            for e in EventLog.from_array(loop.log.to_array()).events
        ]
        assert restored == kinds
        assert kinds[-1] == "LayerEvent"
        assert kinds.count("EpochEvent") == 2

    def test_typed_views(self):
        loop, _ = self._run()
        assert all(isinstance(e, UpdateEvent) for e in loop.log.updates)
        assert all(isinstance(e, EpochEvent) for e in loop.log.epochs)
        assert all(isinstance(e, LayerEvent) for e in loop.log.layers)
