"""Checkpoint + callback interaction: resume restores the event history.

A checkpointed run persists its event log; resuming replays it through
the registered callbacks before training continues.  The recorded curve
of (interrupt → resume → finish) must therefore equal an uninterrupted
run's, event for event.
"""

import numpy as np
import pytest

from repro.data.synth_digits import digit_dataset
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork
from repro.nn.stacked import LayerSpec, StackedAutoencoder
from repro.runtime.checkpoint import CheckpointStore
from repro.train import History, TrainingCallback


class _Kill(RuntimeError):
    pass


class _Killer(TrainingCallback):
    """Raise (simulating a crash) on the Nth update event."""

    def __init__(self, after_updates: int):
        self.after_updates = after_updates
        self.seen = 0

    def on_update(self, event) -> None:
        self.seen += 1
        if self.seen >= self.after_updates:
            raise _Kill(f"crash at update {event.step}")


@pytest.fixture()
def data():
    x, labels = digit_dataset(64, size=5, seed=21)
    return np.asarray(x, dtype=np.float64), labels


def _specs():
    return [
        LayerSpec(10, epochs=3, batch_size=16),
        LayerSpec(6, epochs=3, batch_size=16),
    ]


def _stack():
    return StackedAutoencoder(
        25, _specs(), cost=SparseAutoencoderCost(weight_decay=1e-3), seed=31
    )


class TestStackedResumeHistory:
    def test_resumed_curve_equals_uninterrupted(self, data, tmp_path):
        x, _ = data

        uninterrupted = History()
        _stack().pretrain(x, callbacks=[uninterrupted])

        # Crash mid-stack: block 0 (12 updates) completes, block 1 dies
        # during its second epoch (update 18 of 24).
        store = CheckpointStore(tmp_path / "sae", keep=3)
        with pytest.raises(_Kill):
            _stack().pretrain(x, checkpoint=store, callbacks=[_Killer(18)])

        resumed = History()
        final = _stack()
        final.pretrain(
            x, checkpoint=store, resume_from=store.directory,
            callbacks=[resumed],
        )
        assert resumed.updates == uninterrupted.updates
        assert resumed.epochs == uninterrupted.epochs
        assert resumed.layers == uninterrupted.layers
        # And the model itself matches an uninterrupted run bit-for-bit.
        reference = _stack()
        reference.pretrain(x)
        for got, want in zip(final.blocks, reference.blocks):
            np.testing.assert_array_equal(got.w1, want.w1)

    def test_replayed_prefix_precedes_live_tail(self, data, tmp_path):
        x, _ = data
        store = CheckpointStore(tmp_path / "sae", keep=3)
        with pytest.raises(_Kill):
            _stack().pretrain(x, checkpoint=store, callbacks=[_Killer(18)])

        resumed = History()
        _stack().pretrain(
            x, checkpoint=store, resume_from=store.directory,
            callbacks=[resumed],
        )
        steps = [e.step for e in resumed.updates]
        assert steps == sorted(steps)
        assert steps == list(range(1, len(steps) + 1))


class TestFinetuneResumeHistory:
    def test_resumed_curve_equals_uninterrupted(self, data, tmp_path):
        x, labels = data

        def net():
            return DeepNetwork([25, 10, 10], head="softmax", seed=17)

        uninterrupted = History()
        ref = net()
        full = finetune(ref, x, labels, epochs=4, batch_size=16, seed=17,
                        callbacks=[uninterrupted])

        store = CheckpointStore(tmp_path / "ft", keep=3)
        with pytest.raises(_Kill):
            finetune(net(), x, labels, epochs=4, batch_size=16, seed=17,
                     checkpoint=store, callbacks=[_Killer(10)])

        resumed = History()
        resumed_net = net()
        result = finetune(
            resumed_net, x, labels, epochs=4, batch_size=16, seed=17,
            checkpoint=store, resume_from=store.directory,
            callbacks=[resumed],
        )
        assert resumed.updates == uninterrupted.updates
        assert resumed.epochs == uninterrupted.epochs
        # Legacy result fields are restored too, without double counting.
        assert result.losses == full.losses
        assert result.train_accuracy == full.train_accuracy
        assert result.n_updates == full.n_updates
        for got, want in zip(resumed_net.layers, ref.layers):
            np.testing.assert_array_equal(got.w, want.w)

    def test_legacy_checkpoint_without_event_log_still_resumes(
        self, data, tmp_path
    ):
        """Checkpoints written before event logging (no ``evlog`` array)
        load fine — the replayed history is just empty."""
        from repro.train.loop import EVENT_LOG_KEY

        x, labels = data
        store = CheckpointStore(tmp_path / "legacy", keep=3)
        net = DeepNetwork([25, 10, 10], head="softmax", seed=17)
        finetune(net, x, labels, epochs=2, batch_size=16, seed=17,
                 checkpoint=store)

        # Strip the event log from the newest snapshot to fake a legacy file.
        from repro.runtime.checkpoint import load_npz, resolve_resume_path

        path = resolve_resume_path(store.directory)
        header, arrays = load_npz(path)
        arrays.pop(EVENT_LOG_KEY, None)
        legacy = CheckpointStore(tmp_path / "stripped", keep=3)
        legacy.save(header, arrays, tag="legacy")

        resumed = History()
        result = finetune(
            DeepNetwork([25, 10, 10], head="softmax", seed=17),
            x, labels, epochs=3, batch_size=16, seed=17,
            resume_from=legacy.directory, callbacks=[resumed],
        )
        # No replayed prefix, but training continues and records epoch 3.
        assert [e.epoch for e in resumed.epochs] == [2]
        assert result.n_updates == 3 * (64 // 16)
