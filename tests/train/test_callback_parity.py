"""Callbacks fire in identical order with identical structure, W=1 vs W>1.

The event payloads are worker-agnostic: step/epoch/layer indices match
exactly between a serial run and a parallel-engine run at any worker
count, and the floating-point losses/metrics agree to the engine's
≤1e-10 reduction-order tolerance.
"""

import numpy as np
import pytest

from repro.data.synth_digits import digit_dataset
from repro.nn.cost import SparseAutoencoderCost
from repro.nn.finetune import finetune
from repro.nn.mlp import DeepNetwork
from repro.nn.stacked import DeepBeliefNetwork, LayerSpec, StackedAutoencoder
from repro.runtime.executor import ParallelGradientEngine
from repro.train import History

TOL = 1e-10


def _structure(history):
    """The worker-agnostic part of an event stream."""
    return (
        [(e.step, e.epoch) for e in history.updates],
        [e.epoch for e in history.epochs],
        [e.layer for e in history.layers],
    )


def _values(history):
    return (
        [e.loss for e in history.updates],
        [e.metric for e in history.epochs],
        [e.metric for e in history.layers],
    )


def _assert_parity(serial: History, parallel: History):
    assert _structure(serial) == _structure(parallel)
    for got, want in zip(_values(parallel), _values(serial)):
        np.testing.assert_allclose(got, want, rtol=0.0, atol=TOL)


@pytest.fixture(scope="module")
def data():
    x, labels = digit_dataset(64, size=5, seed=13)
    return np.asarray(x, dtype=np.float64), labels


class TestStackedParity:
    def test_sae_pretrain_w1_vs_w2(self, data):
        x, _ = data
        cost = SparseAutoencoderCost(weight_decay=1e-3)

        def run(engine, n_workers=None):
            history = History()
            stack = StackedAutoencoder(
                25,
                [LayerSpec(10, epochs=2, batch_size=16),
                 LayerSpec(6, epochs=2, batch_size=16)],
                cost=cost, seed=4,
            )
            stack.pretrain(x, engine=engine, callbacks=[history])
            return history

        serial = run(None)
        with ParallelGradientEngine(2, blas_threads=None, seed=4) as eng:
            parallel = run(eng)
        _assert_parity(serial, parallel)
        # Two layers → two layer events, each after its own epochs.
        assert [e.layer for e in serial.layers] == [0, 1]

    def test_dbn_pretrain_w1_vs_w3(self, data):
        x, _ = data
        binary = (x > 0.5).astype(np.float64)

        def run(engine):
            history = History()
            dbn = DeepBeliefNetwork(
                25, [LayerSpec(8, epochs=2, batch_size=16)], seed=6
            )
            dbn.pretrain(binary, engine=engine, callbacks=[history])
            return history

        serial = run(None)
        with ParallelGradientEngine(3, blas_threads=None, seed=6) as eng:
            parallel = run(eng)
        assert _structure(serial) == _structure(parallel)
        # CD sampling uses per-worker streams, so trajectories (and hence
        # losses) differ across worker counts by design — but the event
        # structure is identical and every payload is finite.
        assert all(np.isfinite(v) for v in _values(parallel)[0])


class TestFinetuneParity:
    def test_w1_vs_w2(self, data):
        x, labels = data

        def run(engine):
            history = History()
            net = DeepNetwork([25, 10, 10], head="softmax", seed=8)
            finetune(
                net, x, labels, epochs=2, batch_size=16, seed=8,
                engine=engine, callbacks=[history],
            )
            return history

        serial = run(None)
        with ParallelGradientEngine(2, blas_threads=None, seed=8) as eng:
            parallel = run(eng)
        _assert_parity(serial, parallel)

    def test_events_compare_equal_despite_wall_timings(self, data):
        """timings is excluded from equality, so two serial runs at the
        same seed produce *equal* event objects."""
        x, labels = data

        def run():
            history = History()
            net = DeepNetwork([25, 10, 10], head="softmax", seed=8)
            finetune(net, x, labels, epochs=1, batch_size=16, seed=8,
                     callbacks=[history])
            return history

        a, b = run(), run()
        assert a.updates == b.updates
        assert a.epochs == b.epochs
