"""Seeded equivalence of repro.train.batches with the historic inline loops.

Every pre-refactor loop consumed exactly one ``Generator.permutation``
draw per epoch and then sliced contiguous mini-batches out of the
shuffled order.  These tests pin that contract: the shared helpers
reproduce the inline pattern bit-for-bit at the same seed, so the
refactored paths see identical batches.
"""

import numpy as np
import pytest

from repro.train.batches import (
    batch_bounds,
    epoch_order,
    iter_batch_indices,
    iter_minibatches,
)


def _inline_batches(x, batch_size, rng):
    """The pattern every private loop used before the refactor."""
    order = rng.permutation(x.shape[0])
    out = []
    for start in range(0, x.shape[0], batch_size):
        out.append(x[order[start : start + batch_size]])
    return out


class TestEpochOrder:
    def test_single_permutation_draw(self):
        a, b = np.random.default_rng(7), np.random.default_rng(7)
        order = epoch_order(10, a)
        np.testing.assert_array_equal(order, b.permutation(10))
        # Both generators must now be in the same state: exactly one draw.
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_seeded_equivalence_with_inline_loop(self):
        x = np.random.default_rng(0).normal(size=(37, 4))
        for batch_size in (1, 5, 16, 37, 50):
            rng_new = np.random.default_rng(123)
            rng_old = np.random.default_rng(123)
            new = list(iter_minibatches(x, batch_size, rng_new))
            old = _inline_batches(x, batch_size, rng_old)
            assert len(new) == len(old)
            for got, want in zip(new, old):
                np.testing.assert_array_equal(got, want)

    def test_multi_epoch_rng_stream_matches(self):
        """N epochs through the helpers consume the same RNG stream as N
        inline epochs — the property that makes refactors bit-identical."""
        x = np.arange(48, dtype=np.float64).reshape(24, 2)
        rng_new, rng_old = np.random.default_rng(9), np.random.default_rng(9)
        for _ in range(3):
            list(iter_minibatches(x, 7, rng_new))
            _inline_batches(x, 7, rng_old)
        assert rng_new.integers(1 << 30) == rng_old.integers(1 << 30)


class TestBatchBounds:
    def test_covers_everything_once(self):
        bounds = batch_bounds(23, 5)
        assert bounds == [(0, 5), (5, 10), (10, 15), (15, 20), (20, 23)]

    def test_exact_division_has_no_tail(self):
        assert batch_bounds(20, 5) == [(0, 5), (5, 10), (10, 15), (15, 20)]

    def test_batch_larger_than_n(self):
        assert batch_bounds(3, 16) == [(0, 3)]

    def test_iter_batch_indices_slices_the_order(self):
        rng = np.random.default_rng(5)
        order = np.random.default_rng(5).permutation(11)
        got = list(iter_batch_indices(11, 4, rng))
        want = [order[0:4], order[4:8], order[8:11]]
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)


class TestValidation:
    def test_rejects_nonpositive(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            epoch_order(0, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            batch_bounds(10, 0)
