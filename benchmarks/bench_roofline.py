"""Analysis — roofline classification of one SAE training step.

Quantifies *why* the paper's optimizations are the right ones: the five
GEMMs sit far right of the Phi's ridge point (compute-bound — hence
MKL), while every element-wise/reduction kernel sits far left
(bandwidth-bound — hence fusion, which cuts their traffic, not their
flops).
"""

from repro.bench.report import format_table
from repro.core.oplist import autoencoder_step_kernels
from repro.phi.kernels import KernelKind
from repro.phi.roofline import analyze_kernels, ridge_point, roofline_report
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.backend import OptimizationLevel, backend_for_level


def run_roofline():
    kernels = autoencoder_step_kernels(10_000, 1024, 4096)
    backend = backend_for_level(OptimizationLevel.IMPROVED)
    points = analyze_kernels(kernels, XEON_PHI_5110P, backend)
    return kernels, points


def test_sae_step_roofline(benchmark, show):
    kernels, points = benchmark(run_roofline)
    show(
        format_table(
            roofline_report(points),
            title=(
                "Roofline: SAE step (m=10000, 1024x4096) on the Phi "
                f"(ridge {ridge_point(XEON_PHI_5110P):.1f} flops/byte)"
            ),
        )
    )
    by_name = {p.name: p for p in points}
    gemm_names = [k.name for k in kernels if k.kind is KernelKind.GEMM]
    stream_names = [
        k.name
        for k in kernels
        if k.kind in (KernelKind.ELEMENTWISE, KernelKind.REDUCE) and k.flops > 0
    ]
    # Every GEMM compute-bound, every streaming kernel memory-bound.
    assert all(by_name[n].bound == "compute" for n in gemm_names)
    assert all(by_name[n].bound == "memory" for n in stream_names)
    # GEMMs dwarf everything in arithmetic intensity.
    min_gemm_ai = min(by_name[n].intensity for n in gemm_names)
    max_stream_ai = max(by_name[n].intensity for n in stream_names)
    assert min_gemm_ai > 20 * max_stream_ai
