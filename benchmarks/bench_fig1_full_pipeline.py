"""Fig. 1 completed — the full deep-learning pipeline, timed end to end.

The paper's Fig. 1 shows greedy pre-training; the deep-learning recipe
it feeds is pre-train → supervised fine-tune.  This bench times both
phases at Table I's scale on the simulated Phi and on the host, and
reports where the time goes — including the answer to a question the
paper leaves open: pre-training dominates the pipeline (3 unsupervised
layers × 200 iterations vs a short supervised pass).
"""

import pytest

from repro.bench.report import format_table
from repro.core.config import TrainingConfig
from repro.core.finetune_trainer import FinetuneTrainer
from repro.core.pretrain import (
    DeepPretrainer,
    TABLE1_BATCH_SIZE,
    TABLE1_ITERATIONS_PER_LAYER,
    TABLE1_LAYER_SIZES,
)
from repro.phi.spec import XEON_E5620_DUAL, XEON_PHI_5110P
from repro.runtime.backend import optimized_cpu_backend

FINETUNE_EPOCHS = 50  # supervised passes over the (one-chunk) batch
N_CLASSES = 10


def _phase_times(machine, backend=None):
    base = TrainingConfig(
        n_visible=TABLE1_LAYER_SIZES[0],
        n_hidden=TABLE1_LAYER_SIZES[1],
        n_examples=TABLE1_BATCH_SIZE,
        batch_size=TABLE1_BATCH_SIZE,
        machine=machine,
        backend=backend,
    )
    pretrain_s = (
        DeepPretrainer(
            base,
            layer_sizes=TABLE1_LAYER_SIZES,
            iterations_per_layer=TABLE1_ITERATIONS_PER_LAYER,
        )
        .simulate()
        .total_seconds
    )
    finetune_cfg = TrainingConfig(
        n_visible=TABLE1_LAYER_SIZES[0],
        n_hidden=TABLE1_LAYER_SIZES[1],
        n_examples=TABLE1_BATCH_SIZE,
        batch_size=TABLE1_BATCH_SIZE,
        epochs=FINETUNE_EPOCHS,
        machine=machine,
        backend=backend,
        chunk_examples=TABLE1_BATCH_SIZE,
    )
    finetune_s = (
        FinetuneTrainer(
            finetune_cfg, layer_sizes=list(TABLE1_LAYER_SIZES) + [N_CLASSES]
        )
        .simulate()
        .simulated_seconds
    )
    return pretrain_s, finetune_s


def run_full_pipeline():
    rows = []
    for name, machine, backend in (
        ("phi_improved", XEON_PHI_5110P, None),
        ("xeon_dual", XEON_E5620_DUAL, optimized_cpu_backend()),
    ):
        pretrain_s, finetune_s = _phase_times(machine, backend)
        rows.append(
            {
                "machine": name,
                "pretrain_s": pretrain_s,
                "finetune_s": finetune_s,
                "total_s": pretrain_s + finetune_s,
                "pretrain_share": pretrain_s / (pretrain_s + finetune_s),
            }
        )
    return rows


def test_fig1_full_pipeline(benchmark, show):
    rows = benchmark(run_full_pipeline)
    show(format_table(rows, title="Fig. 1 completed: pre-train + fine-tune, end to end"))
    by_name = {r["machine"]: r for r in rows}
    phi, cpu = by_name["phi_improved"], by_name["xeon_dual"]
    # Pre-training dominates the pipeline on both machines.
    assert phi["pretrain_share"] > 0.5
    assert cpu["pretrain_share"] > 0.5
    # The Phi's end-to-end advantage matches the per-phase story.
    assert 4.0 < cpu["total_s"] / phi["total_s"] < 15.0
