"""Fig. 9 — training time vs mini-batch size (SAE and RBM).

Network 1024×4096, dataset 100 k, batch 200 → 10000.  Paper findings:
Phi time drops by ≈two-thirds across the sweep (fewer, larger updates
keep 240 threads fed); the single-CPU decrease is mild ("not obvious"
for the RBM); Phi stays far below the CPU at every batch size.
"""

import pytest

from repro.bench.harness import run_fig9
from repro.bench.report import format_table
from repro.bench.workloads import FIG9_BATCH_SIZES


@pytest.mark.parametrize("model", ["autoencoder", "rbm"])
def test_fig9_batch_size(benchmark, show, model):
    rows = benchmark(run_fig9, model)
    show(format_table(rows, title=f"Fig. 9 ({model}): time vs batch size"))

    assert len(rows) == len(FIG9_BATCH_SIZES)
    phi_drop = 1.0 - rows[-1]["phi_s"] / rows[0]["phi_s"]
    cpu_drop = 1.0 - rows[-1]["cpu1_s"] / rows[0]["cpu1_s"]
    assert 0.5 < phi_drop < 0.85  # "decreases by two thirds"
    assert cpu_drop < 0.3  # "not obvious"
    # Phi maintains "at a low level" everywhere.
    assert all(r["phi_s"] < 0.2 * r["cpu1_s"] for r in rows)
