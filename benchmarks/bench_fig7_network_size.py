"""Fig. 7 — training time vs network size (SAE and RBM).

Regenerates both panels: Phi (fully optimized) vs a single Xeon core,
SAE with 1 M examples / batch 1000 and RBM with 100 k examples /
batch 200, across the 576×1024 → 4096×16384 ladder.

Shape assertions mirror the paper's stated findings; the benchmark times
the harness itself (the simulation is deterministic, so pytest-benchmark
measures simulator throughput).
"""

import pytest

from repro.bench.harness import run_fig7
from repro.bench.report import format_table
from repro.bench.workloads import FIG7_NETWORKS


@pytest.mark.parametrize("model", ["autoencoder", "rbm"])
def test_fig7_network_size(benchmark, show, model):
    rows = benchmark(run_fig7, model)
    show(format_table(rows, title=f"Fig. 7 ({model}): time vs network size"))

    assert len(rows) == len(FIG7_NETWORKS)
    # Paper: CPU time "increases almost linearly"; Phi growth is "mild";
    # the gap is smallest at the smallest network.
    cpu_growth = rows[-1]["cpu1_s"] / rows[0]["cpu1_s"]
    phi_growth = rows[-1]["phi_s"] / rows[0]["phi_s"]
    weight_growth = rows[-1]["weights"] / rows[0]["weights"]
    assert cpu_growth == pytest.approx(weight_growth, rel=0.3)
    assert phi_growth < cpu_growth
    assert min(r["speedup"] for r in rows) == rows[0]["speedup"]
    assert all(r["phi_s"] < r["cpu1_s"] for r in rows)
