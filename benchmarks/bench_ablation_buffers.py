"""Ablation — loading-buffer pool size and the list scheduler.

Two design knobs behind the paper's pipeline:

* §IV.A sizes the device-side loading buffer "as several times as that
  of a data chunk" — this bench sweeps the pool from 1 (no overlap) to 4
  and shows where the returns stop;
* Fig. 6 runs independent kernels concurrently — the list scheduler
  quantifies the theoretical makespan at bounded concurrency.
"""

import pytest

from repro.bench.report import format_table
from repro.core.oplist import rbm_step_taskgraph
from repro.phi.pcie import PCIeModel
from repro.runtime.offload import OffloadPipeline
from repro.runtime.schedule import list_schedule, makespan_lower_bound


def run_buffer_sweep():
    """A transfer-heavy stream (transfer ≈ ¾ of compute per chunk)."""
    pcie = PCIeModel(bandwidth=1.0, latency_s=0.0)
    chunk_bytes = [15.0] * 8
    compute = [20.0] * 8
    rows = []
    for n_buffers in (1, 2, 3, 4):
        tl = OffloadPipeline(
            pcie, n_buffers=n_buffers, double_buffering=n_buffers > 1
        ).run_analytic(chunk_bytes, compute)
        rows.append(
            {
                "n_buffers": n_buffers,
                "total_s": tl.total_s,
                "exposed_transfer_s": tl.exposed_transfer_s,
                "trainer_idle_s": tl.trainer_idle_s,
            }
        )
    return rows


def test_buffer_pool_sweep(benchmark, show):
    rows = benchmark(run_buffer_sweep)
    show(format_table(rows, title="Ablation: loading-buffer pool size (Fig. 5)"))
    totals = [r["total_s"] for r in rows]
    # 1 -> 2 buffers is the big win; beyond that the single link and single
    # trainer are the bottleneck, so returns must flatten, never regress.
    assert totals[1] < totals[0]
    assert all(a >= b - 1e-9 for a, b in zip(totals[1:], totals[2:]))
    improvement_12 = totals[0] - totals[1]
    improvement_24 = totals[1] - totals[3]
    assert improvement_12 > 3 * improvement_24


def run_list_schedule_study():
    g = rbm_step_taskgraph(10_000, 1024, 4096)
    cost = lambda node: (node.kernel.flops if node.kernel else 0.0) / 1e12
    rows = []
    for workers in (1, 2, 3, 4):
        sched = list_schedule(g, cost, workers)
        rows.append(
            {
                "workers": workers,
                "makespan_tflop_s": sched.makespan,
                "lower_bound": makespan_lower_bound(g, cost, workers),
                "utilisation": sched.utilisation,
            }
        )
    return rows


def test_list_schedule_of_cd1_graph(benchmark, show):
    rows = benchmark(run_list_schedule_study)
    show(format_table(rows, title="Ablation: Fig. 6 graph under bounded concurrency"))
    spans = [r["makespan_tflop_s"] for r in rows]
    assert spans[1] < spans[0]  # a second worker helps
    # The graph's width is small: beyond ~3 workers nothing improves.
    assert spans[3] == pytest.approx(spans[2], rel=0.05)
    for row in rows:
        assert row["makespan_tflop_s"] >= row["lower_bound"] - 1e-12
