"""Ablation — the Fig. 6 dependency-graph scheduling and loop fusion.

DESIGN.md calls out two design choices behind the "Improved" step:
overlapping independent kernels per the CD-1 dependency graph, and
fusing element-wise loops.  This bench quantifies each in isolation.
"""

import dataclasses

import pytest

from repro.bench.report import format_table
from repro.core.oplist import (
    autoencoder_step_kernels,
    rbm_step_levels,
    rbm_step_taskgraph,
)
from repro.phi.machine import SimulatedMachine
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.backend import OptimizationLevel, backend_for_level
from repro.runtime.fusion import fuse_elementwise


def _run_levels(backend, levels):
    machine = SimulatedMachine(XEON_PHI_5110P, backend)
    machine.execute_levels(levels)
    return machine.clock


def ablate_taskgraph(m=200, v=1024, h=4096, iterations=100):
    """Same kernel work, with and without wavefront overlap."""
    improved = backend_for_level(OptimizationLevel.IMPROVED)
    serialised = dataclasses.replace(improved, overlap_independent=False)
    levels = rbm_step_levels(m, v, h)
    return {
        "overlapped_s": _run_levels(improved, levels) * iterations,
        "serial_s": _run_levels(serialised, levels) * iterations,
    }


def ablate_fusion(m=200, v=1024, h=4096, iterations=100):
    """Same kernel work, with and without the fusion pass.

    Uses the SAE backprop stream, whose sigmoid→delta chains and the
    four parameter updates are the fusable neighbours the paper's
    'combine several loops together' step targets.  Both runs use the
    unfused-granularity backend so the delta isolates the pass itself.
    """
    mkl = backend_for_level(OptimizationLevel.OPENMP_MKL)
    plain = autoencoder_step_kernels(m, v, h)
    fused = autoencoder_step_kernels(m, v, h, fused=True)

    def run(kernels):
        machine = SimulatedMachine(XEON_PHI_5110P, mkl)
        machine.execute_stream(kernels)
        return machine.clock

    return {
        "unfused_s": run(plain) * iterations,
        "fused_s": run(fused) * iterations,
        "kernels_unfused": len(plain),
        "kernels_fused": len(fused),
    }


def test_taskgraph_overlap_ablation(benchmark, show):
    result = benchmark(ablate_taskgraph)
    show(format_table([result], title="Ablation: Fig. 6 wavefront overlap"))
    # Overlap removes per-kernel joins; it must help and never hurt.
    assert result["overlapped_s"] < result["serial_s"]


def test_fusion_ablation(show, benchmark):
    result = benchmark(ablate_fusion)
    show(format_table([result], title="Ablation: elementwise loop fusion"))
    assert result["fused_s"] < result["unfused_s"]

    # The critical-path view: the Fig. 6 graph itself exposes parallelism.
    g = rbm_step_taskgraph(200, 1024, 4096)
    cost = lambda node: (node.kernel.flops if node.kernel else 0.0)
    assert g.critical_path_cost(cost) < g.serial_cost(cost)
