#!/usr/bin/env python
"""Trace-driven workload replays with per-pattern SLO gates.

    PYTHONPATH=src python benchmarks/bench_workloads.py                # full traces
    PYTHONPATH=src python benchmarks/bench_workloads.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_workloads.py --quick --out BENCH_workloads.json
    PYTHONPATH=src python benchmarks/bench_workloads.py --validate BENCH_workloads.json
    PYTHONPATH=src python benchmarks/bench_workloads.py --quick --gates \
        --baseline BENCH_workloads.json --max-regression 0.25

Exit status: 0 on success, 1 on schema violation, SLO/acceptance gate
failure, or baseline regression.  The clock is simulated, so every
number is machine-independent; same-shape runs are bit-identical and
the regression gate is exact, not advisory.  The committed
``BENCH_workloads.json`` baseline is a ``--quick`` run (the shape CI
replays); full-size results live in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized traces (same patterns, same gates)",
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing report against the schema and exit",
    )
    parser.add_argument(
        "--gates",
        action="store_true",
        help="enforce the per-pattern SLO + acceptance gates",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed baseline report to compare throughput/p99 against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional regression vs baseline (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.bench.slobench import (
        compare_to_baseline,
        enforce_gates,
        load_report,
        run_workloads_bench,
        validate_report,
        write_report,
    )
    from repro.errors import ConfigurationError

    if args.validate:
        try:
            validate_report(load_report(args.validate))
        except (ConfigurationError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema OK")
        return 0

    report = run_workloads_bench(quick=args.quick, seed=args.seed)
    for row in report["rows"]:
        slo = "SLO ok" if row["slo_ok"] else "SLO VIOLATED"
        extra = ""
        if row["kind"] == "mixed_train_serve":
            extra = (
                f", train {row['train_steps']} step(s) "
                f"/ {row['train_failures']} failed"
            )
        print(
            f"{row['kind']}: {row['completed']}/{row['offered']} served "
            f"(shed {row['shed']}, errors {row['errors']}), "
            f"{row['throughput_rps']:,.0f} rps, "
            f"p99 {row['p99_ms']:.2f} ms, "
            f"cache hit rate {row['cache_hit_rate']:.2f}, {slo}{extra}"
        )
        for violation in row["slo_failures"]:
            print(f"  - {violation}")

    if args.out:
        print(f"wrote {write_report(report, args.out)}")

    status = 0
    if args.gates:
        failures = enforce_gates(report)
        if failures:
            for failure in failures:
                print(f"GATE FAILED: {failure}", file=sys.stderr)
            status = 1
        else:
            print("gates passed (per-pattern SLOs + cache/train contracts)")
    if args.baseline:
        failures = compare_to_baseline(
            report, load_report(args.baseline), args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"no regression vs {args.baseline}")
    return status


if __name__ == "__main__":
    sys.exit(main())
