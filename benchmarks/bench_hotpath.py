#!/usr/bin/env python
"""Wall-clock hot-path benchmark: reference vs fused training kernels.

    PYTHONPATH=src python benchmarks/bench_hotpath.py                # paper scale
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --out BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --validate BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick \
        --baseline BENCH_hotpath.json --max-regression 0.25

Exit status: 0 on success, 1 on schema violation or baseline regression.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small shapes + fewer trials (CI smoke run)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run quick AND paper shapes (used to regenerate the baseline)",
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing report against the schema and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed baseline report to compare speedup ratios against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.bench.hotpath import (
        PAPER_SHAPES,
        QUICK_SHAPES,
        compare_to_baseline,
        load_report,
        run_hotpath_bench,
        validate_report,
        write_report,
    )
    from repro.errors import ConfigurationError

    if args.validate:
        try:
            validate_report(load_report(args.validate))
        except (ConfigurationError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema OK")
        return 0

    if args.full:
        shapes = tuple(QUICK_SHAPES) + tuple(PAPER_SHAPES)
        trials, inner = 8, 4
    elif args.quick:
        shapes, trials, inner = QUICK_SHAPES, 5, 3
    else:
        shapes, trials, inner = PAPER_SHAPES, 8, 4

    report = run_hotpath_bench(shapes, trials=trials, inner=inner, seed=args.seed)
    header = f"{'model':<6} {'shape':<18} {'ref ms':>9} {'fused ms':>9} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in report["rows"]:
        shape = f"({row['batch']},{row['n_visible']}->{row['n_hidden']})"
        print(
            f"{row['model']:<6} {shape:<18} {row['ref_ms']:>9.1f} "
            f"{row['fused_ms']:>9.1f} {row['speedup']:>7.2f}x"
        )

    if args.out:
        print(f"wrote {write_report(report, args.out)}")

    if args.baseline:
        failures = compare_to_baseline(
            report, load_report(args.baseline), max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no speedup regression vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
