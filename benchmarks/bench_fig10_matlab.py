"""Fig. 10 — Matlab-on-Xeon vs fully-optimized Phi.

SAE with 1 M examples, mini-batch 10 000.  Paper: "It achieved about
16-fold speed up even if Matlab has an efficient implementation of
matrix operations."
"""

from repro.bench.harness import run_fig10
from repro.bench.report import format_table


def test_fig10_matlab_comparison(benchmark, show):
    result = benchmark(run_fig10)
    show(
        format_table(
            [result],
            title="Fig. 10: Matlab (Xeon host) vs fully-optimized Phi (paper: ~16x)",
        )
    )
    assert 12 < result["speedup"] < 20
    assert result["phi_s"] < result["matlab_s"]
