#!/usr/bin/env python
"""Cluster drills: saturation scaling, hedging, swap, kill, autoscale.

    PYTHONPATH=src python benchmarks/bench_cluster.py                 # full drills
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_cluster.py --out BENCH_cluster.json
    PYTHONPATH=src python benchmarks/bench_cluster.py --validate BENCH_cluster.json
    PYTHONPATH=src python benchmarks/bench_cluster.py --quick --gates \
        --baseline BENCH_cluster.json --max-regression 0.25

Exit status: 0 on success, 1 on schema violation, failed acceptance gate,
or baseline regression.  The clock is simulated, so every number is
machine-independent and the regression gate is tight, not advisory.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short drill windows (CI smoke run; same gates)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="fleet sizes for the saturation sweep (default: 1 2 4)",
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing report against the schema and exit",
    )
    parser.add_argument(
        "--gates",
        action="store_true",
        help="enforce the acceptance gates (scaling, hedge, swap, kill)",
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=3.0,
        help="saturation-throughput floor for the largest fleet (default 3.0x)",
    )
    parser.add_argument(
        "--min-hedge-gain",
        type=float,
        default=1.5,
        help="p99 improvement floor for the hedging drill (default 1.5x)",
    )
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=1.25,
        help="allowed p99 inflation at the largest fleet (default 1.25)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed baseline report to compare headline ratios against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional regression vs baseline (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.cluster.benchrun import (
        compare_to_baseline,
        enforce_gates,
        load_report,
        run_cluster_bench,
        validate_report,
        write_report,
    )
    from repro.errors import ConfigurationError

    if args.validate:
        try:
            validate_report(load_report(args.validate))
        except (ConfigurationError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema OK")
        return 0

    report = run_cluster_bench(
        replica_counts=tuple(args.replicas), quick=args.quick, seed=args.seed
    )
    for row in report["rows"]:
        kind = row["kind"]
        if kind == "saturation":
            print(
                f"saturation N={row['n_replicas']}: "
                f"{row['throughput_rps']:,.0f} rps "
                f"({row['speedup_vs_1']:.2f}x, p99 {row['p99_ms']:.2f} ms)"
            )
        elif kind == "hedge":
            print(
                f"hedge: p99 {row['p99_off_ms']:.1f} -> {row['p99_on_ms']:.1f} ms "
                f"({row['p99_gain']:.2f}x gain, "
                f"{row['hedges_launched']} launched / {row['hedges_won']} won)"
            )
        elif kind == "swap":
            print(
                f"swap: {row['completed']}/{row['offered']} served, "
                f"failed={row['failed']} shed={row['shed']} "
                f"drained={row['drained']} -> {row['post_swap_model']}"
            )
        elif kind == "kill":
            print(
                f"kill: {row['completed']}/{row['offered']} served, "
                f"deaths={row['deaths']} rerouted={row['rerouted']} "
                f"failed={row['failed']}"
            )
        elif kind == "autoscale":
            print(
                f"autoscale: peak {row['peak_replicas']} replicas "
                f"({row['scale_ups']} up / {row['scale_downs']} down), "
                f"final {row['replicas_final']}"
            )

    if args.out:
        print(f"wrote {write_report(report, args.out)}")

    status = 0
    if args.gates:
        failures = enforce_gates(
            report,
            min_scaling=args.min_scaling,
            min_hedge_gain=args.min_hedge_gain,
            max_p99_ratio=args.max_p99_ratio,
        )
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(
                f"gates passed (scaling >= {args.min_scaling:.2f}x, "
                f"hedge >= {args.min_hedge_gain:.2f}x, swap/kill clean)"
            )

    if args.baseline:
        failures = compare_to_baseline(
            report, load_report(args.baseline), max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"no regression vs {args.baseline}")
    return status


if __name__ == "__main__":
    sys.exit(main())
