"""Extension — energy-to-solution across machines.

Not in the paper, but the question its time results beg: the Phi draws
225 W against the host's 160 W, so does its 8x speed advantage survive
in joules?  (It does, by a wide margin.)
"""

from repro.bench.report import format_table
from repro.bench.workloads import fig10_config
from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.phi.energy import energy_for_run
from repro.phi.spec import XEON_E5620_DUAL, XEON_E5620_SINGLE_CORE, XEON_PHI_5110P
from repro.runtime.backend import matlab_backend, optimized_cpu_backend


def run_energy_comparison():
    runs = {
        "phi_improved": SparseAutoencoderTrainer(
            fig10_config(machine=XEON_PHI_5110P)
        ).simulate(),
        "xeon_dual_optimized": SparseAutoencoderTrainer(
            fig10_config(machine=XEON_E5620_DUAL, backend=optimized_cpu_backend())
        ).simulate(),
        "xeon_dual_matlab": SparseAutoencoderTrainer(
            fig10_config(machine=XEON_E5620_DUAL, backend=matlab_backend())
        ).simulate(),
    }
    rows = []
    for name, result in runs.items():
        report = energy_for_run(result)
        rows.append(
            {
                "run": name,
                "seconds": result.simulated_seconds,
                "avg_watts": report.average_watts,
                "watt_hours": report.watt_hours,
            }
        )
    return rows


def test_energy_to_solution(benchmark, show):
    rows = benchmark(run_energy_comparison)
    show(format_table(rows, title="Extension: energy to solution (Fig. 10 workload)"))
    by_run = {r["run"]: r for r in rows}
    phi = by_run["phi_improved"]
    cpu = by_run["xeon_dual_optimized"]
    # Hotter but far shorter: the Phi wins joules despite losing watts.
    assert phi["avg_watts"] > cpu["avg_watts"]
    assert phi["watt_hours"] < cpu["watt_hours"]
    assert by_run["xeon_dual_matlab"]["watt_hours"] > cpu["watt_hours"]
