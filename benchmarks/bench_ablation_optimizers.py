"""Ablation — SGD vs the §III batch optimizers, on the simulated clock.

The paper's related work argues batch methods (L-BFGS, CG) parallelize
better than online SGD.  This bench settles it quantitatively for the
simulated Phi: train the same sparse autoencoder to the same loss
target with each optimizer, charge every gradient evaluation at its
batch size, and compare simulated seconds-to-target.
"""

import numpy as np

from repro.bench.report import format_table
from repro.core.oplist import autoencoder_step_levels
from repro.data.synth_digits import digit_dataset
from repro.nn.autoencoder import SparseAutoencoder
from repro.nn.cost import SparseAutoencoderCost
from repro.optim.lbfgs import lbfgs_minimize
from repro.optim.sgd import SGD
from repro.phi.machine import SimulatedMachine
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.backend import OptimizationLevel, backend_for_level

V, H = 144, 48
TARGET_FRACTION = 0.35  # stop at 35% of the initial loss


def _step_seconds(batch_size):
    machine = SimulatedMachine(
        XEON_PHI_5110P, backend_for_level(OptimizationLevel.IMPROVED)
    )
    machine.execute_levels(autoencoder_step_levels(batch_size, V, H))
    return machine.clock


def run_time_to_loss():
    x, _ = digit_dataset(512, size=12, seed=4)
    cost = SparseAutoencoderCost(weight_decay=1e-4)
    target = None
    rows = []

    # --- SGD at two batch sizes ------------------------------------------
    for batch in (32, 256):
        ae = SparseAutoencoder(V, H, cost=cost, seed=0)
        loss0 = ae.loss(x)
        if target is None:
            target = TARGET_FRACTION * loss0
        evals = 0
        theta = ae.get_flat_parameters()
        sgd = SGD(learning_rate=0.5, seed=0)

        done = {"hit": None}

        def watch(t, loss, th, _batch=batch):
            nonlocal evals
            evals = t
            if done["hit"] is None and loss <= target:
                done["hit"] = t

        result = sgd.minimize(
            lambda th, b: ae.flat_loss_and_grad(th, b),
            theta, x, batch_size=batch, epochs=60, callback=watch,
        )
        evals_to_target = done["hit"] if done["hit"] else evals
        rows.append(
            {
                "optimizer": f"SGD batch {batch}",
                "grad_evals_to_target": evals_to_target,
                "reached_target": done["hit"] is not None,
                "sim_seconds": evals_to_target * _step_seconds(batch),
                "us_per_example": _step_seconds(batch) / batch * 1e6,
            }
        )

    # --- L-BFGS (full batch) ----------------------------------------------
    ae = SparseAutoencoder(V, H, cost=cost, seed=0)
    evals = {"n": 0, "hit": None}

    def objective(theta):
        evals["n"] += 1
        loss, grad = ae.flat_loss_and_grad(theta, x)
        if evals["hit"] is None and loss <= target:
            evals["hit"] = evals["n"]
        return loss, grad

    lbfgs_minimize(objective, ae.get_flat_parameters(), max_iterations=120)
    n = evals["hit"] if evals["hit"] else evals["n"]
    rows.append(
        {
            "optimizer": "L-BFGS full batch",
            "grad_evals_to_target": n,
            "reached_target": evals["hit"] is not None,
            "sim_seconds": n * _step_seconds(x.shape[0]),
            "us_per_example": _step_seconds(x.shape[0]) / x.shape[0] * 1e6,
        }
    )
    return rows


def test_optimizer_time_to_loss(benchmark, show):
    rows = benchmark(run_time_to_loss)
    show(format_table(rows, title="Ablation: simulated seconds to 35% of initial loss"))
    by_name = {r["optimizer"]: r for r in rows}
    # Everyone reaches the target.
    assert all(r["reached_target"] for r in rows)
    # Hardware side of the §III claim: the per-example cost on the Phi
    # collapses as the batch grows (fixed per-update costs amortise).
    assert (
        by_name["SGD batch 256"]["us_per_example"]
        < 0.5 * by_name["SGD batch 32"]["us_per_example"]
    )
    # And the batch method wins simulated time-to-target outright — the
    # related work's recommendation realised on this machine.
    assert by_name["L-BFGS full batch"]["sim_seconds"] == min(
        r["sim_seconds"] for r in rows
    )
