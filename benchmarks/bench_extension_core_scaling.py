"""Extension — core-count scaling and the heterogeneous host+Phi split.

Paper future work: "we need to adjust the number of threads manually"
(→ core sweep) and "a further combination between Xeon and Intel Xeon
Phi can bring us higher efficiency" (→ HeterogeneousSplit).
"""

import pytest

from repro.bench.harness import run_core_scaling
from repro.bench.report import format_table
from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.core.pipeline import HeterogeneousSplit
from repro.phi.spec import XEON_E5620_DUAL, XEON_PHI_5110P
from repro.runtime.backend import optimized_cpu_backend


def test_core_scaling(benchmark, show):
    rows = benchmark(run_core_scaling)
    show(format_table(rows, title="Extension: Table I workload vs active cores"))
    times = [r["seconds"] for r in rows]
    assert times == sorted(times, reverse=True)
    # Sub-linear scaling 15 -> 60 cores (sync + small-batch starvation).
    assert 1.5 < times[0] / times[-1] < 4.0


def run_heterogeneous_split():
    base = dict(
        n_visible=1024, n_hidden=4096, n_examples=500_000, batch_size=1000,
        chunk_examples=50_000,
    )
    split = HeterogeneousSplit(
        host_trainer=SparseAutoencoderTrainer(
            TrainingConfig(machine=XEON_E5620_DUAL, backend=optimized_cpu_backend(), **base)
        ),
        device_trainer=SparseAutoencoderTrainer(
            TrainingConfig(machine=XEON_PHI_5110P, **base)
        ),
    )
    combined, host_s, device_s = split.combined_time()
    return {
        "device_fraction": split.optimal_device_fraction(),
        "combined_s": combined,
        "host_share_s": host_s,
        "device_share_s": device_s,
        "speedup_vs_phi_only": split.speedup_vs_device_only(),
    }


def test_heterogeneous_split(benchmark, show):
    result = benchmark(run_heterogeneous_split)
    show(format_table([result], title="Extension: host+Phi combined execution"))
    assert result["speedup_vs_phi_only"] > 1.0
    assert 0.5 < result["device_fraction"] < 1.0
