"""§IV.A — the transfer-overlap measurement (paper Fig. 5).

The paper's constants: 13 s to stage a 10,000×4096 chunk, ≈68 s to train
it — "about 17% of the total time is spent on transferring training
data" — and a loading thread + multi-chunk buffer that hides it.
"""

import pytest

from repro.bench.harness import run_transfer_overlap
from repro.bench.report import format_table


def test_transfer_overlap(benchmark, show):
    result = benchmark(run_transfer_overlap)
    show(format_table([result], title="§IV.A transfer overlap (paper: 17% -> ~0)"))

    assert result["transfer_fraction_serial"] == pytest.approx(0.17, abs=0.02)
    assert result["transfer_fraction_overlapped"] < 0.03
    assert result["overlapped_total_s"] < result["serial_total_s"]
