#!/usr/bin/env python
"""Wall-clock + convergence benchmark: pipelined vs greedy pre-training.

    PYTHONPATH=src python benchmarks/bench_pipeline.py                 # paper scale
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_pipeline.py --out BENCH_pipeline.json
    PYTHONPATH=src python benchmarks/bench_pipeline.py --validate BENCH_pipeline.json
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick \
        --min-speedup 1.3 --baseline BENCH_pipeline.json --max-regression 0.25

Exit status: 0 on success, 1 on schema violation, failed gate, or baseline
regression.  The wall-clock speedup gate is skipped (with a notice) on
single-core machines — stage overlap needs >= 2 cores; the convergence
gate applies everywhere.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stack + fewer trials (CI smoke run)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="timing trials per strategy (min-of-trials; default 2, quick 1)",
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing report against the schema and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed baseline report to compare the speedup against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="enforce the wall-clock floor (e.g. 1.3) on >=2-core machines",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.bench.pipeline import (
        compare_to_baseline,
        enforce_gates,
        load_report,
        run_pipeline_bench,
        validate_report,
        write_report,
    )
    from repro.errors import ConfigurationError

    if args.validate:
        try:
            validate_report(load_report(args.validate))
        except (ConfigurationError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema OK")
        return 0

    trials = args.trials if args.trials is not None else (1 if args.quick else 2)
    report = run_pipeline_bench(quick=args.quick, seed=args.seed, trials=trials)
    print(
        f"cores={report['n_cores']} quick={report['quick']} "
        f"trials={report['trials']} gil={report['gil_enabled']}"
    )
    header = f"{'row':<46} {'greedy':>9} {'pipelined':>10} {'ratio':>8}"
    print(header)
    print("-" * len(header))
    for row in report["rows"]:
        if row["kind"] == "walltime":
            label = (
                f"walltime {row['n_examples']}x{row['n_visible']} "
                f"layers={row['layers']} E={row['epochs']}"
            )
            print(
                f"{label:<46} {row['greedy_s']:>8.2f}s {row['pipelined_s']:>9.2f}s "
                f"{row['speedup']:>7.2f}x  (ideal {row['ideal_speedup']:.2f}x, "
                f"scaling expected: {row['expected_scaling']})"
            )
        else:
            label = f"convergence layer {row['layer']}"
            print(
                f"{label:<46} {row['greedy_loss']:>9.4f} "
                f"{row['pipelined_loss']:>10.4f} "
                f"{row['rel_diff']:>7.4f}  (tol {row['tol']:.2f}, "
                f"within: {row['within_tol']})"
            )

    if args.out:
        print(f"wrote {write_report(report, args.out)}")

    status = 0
    if args.min_speedup is not None:
        failures, skipped = enforce_gates(report, min_speedup=args.min_speedup)
        for note in skipped:
            print(f"SKIPPED: {note}")
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if failures:
            status = 1
        elif not skipped:
            print(f"gates passed (floor {args.min_speedup:.2f}x)")

    if args.baseline:
        failures, skipped = compare_to_baseline(
            report, load_report(args.baseline), max_regression=args.max_regression
        )
        for note in skipped:
            print(f"SKIPPED: {note}")
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"no speedup regression vs {args.baseline}")
    return status


if __name__ == "__main__":
    sys.exit(main())
