#!/usr/bin/env python
"""Model-parallel shard drills: parity, resume, scatter-gather, shard kill.

    PYTHONPATH=src python benchmarks/bench_shard.py                 # full drills
    PYTHONPATH=src python benchmarks/bench_shard.py --quick         # CI smoke
    PYTHONPATH=src python benchmarks/bench_shard.py --out BENCH_shard.json
    PYTHONPATH=src python benchmarks/bench_shard.py --validate BENCH_shard.json
    PYTHONPATH=src python benchmarks/bench_shard.py --quick --gates \
        --baseline BENCH_shard.json --max-regression 0.25

Exit status: 0 on success, 1 on schema violation, failed acceptance gate,
or baseline regression.  Parity rows compare the sharded forward pass and
one training step against the dropout-masked full-model oracle, so the
gate is exact (<= 1e-10), not statistical; the serving clock is simulated,
so the p99 gate is machine-independent.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short drills (CI smoke run; same gates)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        metavar="N",
        help="shard counts for the parity rows (default: 1 2 4)",
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing report against the schema and exit",
    )
    parser.add_argument(
        "--gates",
        action="store_true",
        help="enforce the acceptance gates (parity, resume, serving, kill)",
    )
    parser.add_argument(
        "--parity-tol",
        type=float,
        default=1e-10,
        help="parity / resume max-abs ceiling (default 1e-10)",
    )
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=1.25,
        help="allowed sharded-vs-whole-model p99 inflation (default 1.25)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed baseline report to compare headline ratios against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional regression vs baseline (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.bench.shardbench import (
        compare_to_baseline,
        enforce_gates,
        load_report,
        run_shard_bench,
        validate_report,
        write_report,
    )
    from repro.errors import ConfigurationError

    if args.validate:
        try:
            validate_report(load_report(args.validate))
        except (ConfigurationError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema OK")
        return 0

    report = run_shard_bench(
        shard_counts=tuple(args.shards), quick=args.quick, seed=args.seed
    )
    for row in report["rows"]:
        kind = row["kind"]
        if kind == "parity":
            print(
                f"parity {row['family']} N={row['n_shards']}: "
                f"forward {row['forward_max_abs']:.1e} "
                f"step {row['step_max_abs']:.1e} "
                f"roundtrip {row['roundtrip_max_abs']:.1e}"
            )
        elif kind == "pretrain":
            print(
                f"pretrain N={row['n_shards']} exchange_every="
                f"{row['exchange_every']}: {row['snapshots']} snapshots, "
                f"resume diff {row['resume_max_abs']:.1e}"
            )
        elif kind == "serving":
            print(
                f"serving N={row['n_shards']}: {row['completed']}/"
                f"{row['offered']} served, failed={row['failed']}, "
                f"p99 {row['p99_single_ms']:.2f} -> "
                f"{row['p99_sharded_ms']:.2f} ms "
                f"({row['p99_ratio']:.2f}x)"
            )
        elif kind == "shard_kill":
            print(
                f"shard-kill N={row['n_shards']} victim="
                f"{row['victim_shard']}: {row['completed']}/{row['offered']} "
                f"served, failed={row['failed']}, deaths={row['deaths']}, "
                f"degraded={row['degraded_requests']}"
            )

    if args.out:
        print(f"wrote {write_report(report, args.out)}")

    status = 0
    if args.gates:
        failures = enforce_gates(
            report,
            parity_tol=args.parity_tol,
            max_p99_ratio=args.max_p99_ratio,
        )
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print(
                f"gates passed (parity <= {args.parity_tol:g}, "
                f"p99 <= {args.max_p99_ratio:.2f}x, kill degrades cleanly)"
            )

    if args.baseline:
        failures = compare_to_baseline(
            report, load_report(args.baseline), max_regression=args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"no regression vs {args.baseline}")
    return status


if __name__ == "__main__":
    sys.exit(main())
