"""Table I — performance after each optimization step, at 60 and 30 cores.

The paper's central result: Baseline 16042 s → OpenMP → OpenMP+MKL →
Improved OpenMP+MKL 53 s on 60 cores (≈300×), 81 s on 30 cores (≈197×).
The middle rows are OCR-damaged in the supplied text; EXPERIMENTS.md
records the adopted readings, and the assertions here bind only the
undamaged anchors and the orderings.
"""

import pytest

from repro.bench.harness import run_table1
from repro.bench.report import format_table


def test_table1_optimization_steps(benchmark, show):
    rows = benchmark(run_table1)
    show(format_table(rows, title="Table I: per-step times (vs paper columns)"))

    by_step = {r["step"]: r for r in rows}
    # Undamaged absolute anchors.
    assert by_step["baseline"]["60c_s"] == pytest.approx(16042, rel=0.15)
    assert by_step["improved_openmp_mkl"]["60c_s"] == pytest.approx(53, rel=0.35)
    assert by_step["improved_openmp_mkl"]["30c_s"] == pytest.approx(81, rel=0.35)
    # Headline speedups.
    assert by_step["speedup_vs_baseline"]["60c_s"] > 300
    assert 140 < by_step["speedup_vs_baseline"]["30c_s"] < 280
    # Each cumulative step strictly helps, at both core counts.
    ladder = ["baseline", "openmp", "openmp_mkl", "improved_openmp_mkl"]
    for col in ("60c_s", "30c_s"):
        times = [by_step[s][col] for s in ladder]
        assert times == sorted(times, reverse=True)
