"""Extension — automatic thread tuning (paper future work #1).

"For now, we need to adjust the number of threads manually."  The tuner
sweeps the thread ladder per workload; the interesting output is how the
optimum moves with batch size — big batches want all 240 threads, tiny
batches want far fewer (the granularity cliff of §IV.B.2).
"""

from repro.bench.report import format_table
from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.autotune import autotune_training_config


def run_autotune_sweep():
    rows = []
    for batch in (8, 64, 512, 10_000):
        cfg = TrainingConfig(
            n_visible=1024,
            n_hidden=2048,
            n_examples=max(10_000, batch),
            batch_size=batch,
            machine=XEON_PHI_5110P,
        )
        result = autotune_training_config(cfg, SparseAutoencoderTrainer)
        max_threads_time = next(
            s.seconds
            for s in result.samples
            if s.n_threads == XEON_PHI_5110P.max_threads
        )
        rows.append(
            {
                "batch": batch,
                "best_threads": result.best_threads,
                "best_seconds": result.best_seconds,
                "all_240_threads_s": max_threads_time,
                "gain_vs_240": max_threads_time / result.best_seconds,
            }
        )
    return rows


def test_autotune_thread_counts(benchmark, show):
    rows = benchmark(run_autotune_sweep)
    show(format_table(rows, title="Extension: auto-tuned thread counts vs batch size"))
    # The optimum must be (weakly) increasing in batch size, and hit the
    # full machine for the paper-scale batch.
    best = [r["best_threads"] for r in rows]
    assert best == sorted(best)
    assert rows[-1]["best_threads"] == XEON_PHI_5110P.max_threads
    # And tuning must never lose to blindly using 240 threads.
    assert all(r["gain_vs_240"] >= 1.0 for r in rows)
