#!/usr/bin/env python
"""Wall-clock benchmark: parallel gradient workers + chunk prefetcher.

    PYTHONPATH=src python benchmarks/bench_parallel.py                # paper scale
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_parallel.json
    PYTHONPATH=src python benchmarks/bench_parallel.py --validate BENCH_parallel.json
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick \
        --min-speedup 1.3 --baseline BENCH_parallel.json --max-regression 0.25

Exit status: 0 on success, 1 on schema violation, failed speedup gate, or
baseline regression.  Worker rows measured with fewer cores than workers
are tagged ``expected_scaling: false`` and their gate / baseline
comparison is skipped with a notice; the prefetch-overlap gate applies
everywhere.
"""

from __future__ import annotations

import argparse
import os
import sys

# Pin the BLAS pools before numpy loads: the env-var fallback in
# repro.runtime.threads only works pre-import when threadpoolctl is absent.
# The engine's own blas_thread_limit(1) re-asserts this where it can.
for _var in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_var, "1")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small shapes + fewer trials (CI smoke run)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run quick AND paper shapes (used to regenerate the baseline)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2],
        metavar="W",
        help="worker counts to measure (must include 1; default: 1 2)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        default=None,
        choices=["thread", "process"],
        metavar="ENGINE",
        help=(
            "gradient-engine backends to measure (default: thread process; "
            "process is auto-skipped where shared memory is unavailable)"
        ),
    )
    parser.add_argument("--out", metavar="PATH", help="write the JSON report")
    parser.add_argument(
        "--validate",
        metavar="PATH",
        help="validate an existing report against the schema and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed baseline report to compare speedup ratios against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="enforce the speedup floor (e.g. 1.3) on W>=2 and prefetch rows",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.bench.parallel import (
        ENGINES,
        PAPER_SHAPES,
        QUICK_SHAPES,
        compare_to_baseline,
        enforce_gates,
        load_report,
        run_parallel_bench,
        validate_report,
        write_report,
    )
    from repro.errors import ConfigurationError

    if args.validate:
        try:
            validate_report(load_report(args.validate))
        except (ConfigurationError, ValueError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema OK")
        return 0

    if args.full:
        shapes = tuple(QUICK_SHAPES) + tuple(PAPER_SHAPES)
        trials, inner, n_chunks = 8, 4, 8
    elif args.quick:
        shapes, trials, inner, n_chunks = QUICK_SHAPES, 5, 3, 8
    else:
        shapes, trials, inner, n_chunks = PAPER_SHAPES, 8, 4, 8

    report = run_parallel_bench(
        shapes,
        workers=tuple(args.workers),
        trials=trials,
        inner=inner,
        n_chunks=n_chunks,
        seed=args.seed,
        engines=tuple(args.engines) if args.engines else ENGINES,
    )
    if not report["have_threadpoolctl"]:
        print(
            "WARNING: threadpoolctl not importable — BLAS pools pinned via "
            "env vars only (pre-import fallback); install the [parallel] "
            "extra for live pool control",
            file=sys.stderr,
        )
    print(
        f"cores={report['n_cores']} blas={report['have_blas']} "
        f"threadpoolctl={report['have_threadpoolctl']} "
        f"blas_budget={report['blas_budget_active']} "
        f"gil={report['gil_enabled']} "
        f"engines={','.join(report['engines'])}"
    )
    header = (
        f"{'row':<42} {'ms':>9} {'speedup':>8} {'vs_serial':>9} {'max|diff|':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in report["rows"]:
        if row["kind"] == "workers":
            label = (
                f"sae {row['engine']} W={row['n_workers']} "
                f"({row['batch']},{row['n_visible']}->{row['n_hidden']})"
            )
            ms = row["ms"]
            vs_serial = f"{row['vs_serial']:>8.2f}x"
        else:
            label = (
                f"prefetch {row['n_chunks']}x chunks "
                f"({row['n_buffers']} buffers)"
            )
            ms = row["overlapped_ms"]
            vs_serial = f"{'-':>9}"
        print(
            f"{label:<42} {ms:>9.1f} {row['speedup']:>7.2f}x "
            f"{vs_serial} {row['max_abs_diff']:>10.1e}"
        )

    if args.out:
        print(f"wrote {write_report(report, args.out)}")

    status = 0
    if args.min_speedup is not None:
        failures, skipped = enforce_gates(report, min_speedup=args.min_speedup)
        for note in skipped:
            print(f"SKIPPED: {note}")
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if failures:
            status = 1
        elif not skipped:
            print(f"speedup gate passed (floor {args.min_speedup:.2f}x)")

    if args.baseline:
        failures, skipped = compare_to_baseline(
            report, load_report(args.baseline), max_regression=args.max_regression
        )
        for note in skipped:
            print(f"SKIPPED: {note}")
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"no speedup regression vs {args.baseline}")
    return status


if __name__ == "__main__":
    sys.exit(main())
