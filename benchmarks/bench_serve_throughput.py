"""Serving extension — dynamic batching throughput/latency sweep.

The serving analogue of the paper's Fig. 9 batch-size study: a grid of
batch policy × arrival rate cells, each a deterministic simulated load
test against a freshly pre-trained stacked autoencoder.  The gate checks
the headline property of micro-batching: at saturating load, batched
throughput is at least 2× batch-size-1 throughput.
"""

import pytest

from repro.bench.report import format_table
from repro.serve.benchrun import run_serve_bench, train_demo_servable

SATURATING_RATE = 20_000.0


@pytest.fixture(scope="module")
def servable():
    return train_demo_servable(n_examples=128, epochs=2, seed=0)


def test_serve_throughput_sweep(benchmark, show, servable):
    rows = benchmark(
        run_serve_bench,
        servable=servable,
        batch_sizes=(1, 8, 32),
        rates=(500.0, 5_000.0, SATURATING_RATE),
        duration_s=0.25,
        seed=0,
    )
    show(format_table(rows, title="Serving sweep: batch policy x arrival rate"))

    by_cell = {(r["max_batch"], r["rate_rps"]): r for r in rows}
    unbatched = by_cell[(1, SATURATING_RATE)]
    batched = by_cell[(32, SATURATING_RATE)]
    # The acceptance gate: dynamic batching >= 2x at saturating load.
    assert batched["throughput_rps"] >= 2.0 * unbatched["throughput_rps"]
    # The unbatched server saturates (backpressure kicks in)...
    assert unbatched["rejected"] > 0
    # ...while batching absorbs the same load with large mean batches.
    assert batched["mean_batch"] > 4.0
    # At light load the policies are equivalent: nothing to coalesce.
    light_1 = by_cell[(1, 500.0)]
    light_32 = by_cell[(32, 500.0)]
    assert light_32["throughput_rps"] == pytest.approx(
        light_1["throughput_rps"], rel=0.05
    )


def test_cluster_saturation_curve(benchmark, show, servable):
    """Multi-replica extension: fleet scaling at saturating load.

    The cluster analogue of the batch-size study one level up — the same
    saturating arrival process against N ∈ {1, 2, 4} replica fleets.
    The gate is the tentpole acceptance criterion: N=4 reaches >= 3x the
    single-replica saturation throughput at (approximately) equal p99.
    """
    from repro.cluster.benchrun import run_saturation_sweep

    rows = benchmark(
        run_saturation_sweep,
        servable=servable,
        replica_counts=(1, 2, 4),
        duration_s=0.05,
        seed=0,
    )
    show(format_table(rows, title="Cluster saturation: throughput vs fleet size"))

    by_n = {r["n_replicas"]: r for r in rows}
    assert by_n[4]["speedup_vs_1"] >= 3.0
    assert by_n[4]["p99_ratio_vs_1"] <= 1.25
    # Saturation means the bounded queues shed the excess, not fail it.
    assert all(r["failed"] == 0 for r in rows)
    assert by_n[1]["shed"] > by_n[4]["shed"] > 0


def test_cluster_hedging_beats_straggler(benchmark, show, servable):
    """Multi-replica extension: hedged p99 under an injected straggler.

    One replica serves 20x slow via a ``replica.serve`` fault; hedging
    must cut client p99 by >= 1.5x on the identical seeded workload.
    """
    from repro.cluster.benchrun import run_hedge_drill

    row = benchmark(run_hedge_drill, servable=servable, duration_s=0.06, seed=0)
    show(format_table([row], title="Cluster hedging vs straggler"))

    assert row["p99_gain"] >= 1.5
    assert row["hedges_launched"] > 0
    assert row["completed"] == row["offered"]
    assert row["failed"] == 0
