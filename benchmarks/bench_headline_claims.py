"""The abstract's headline claims, regenerated in one place.

* ">300-fold speedup on parallelized Sparse Autoencoder compared with the
  original sequential algorithm on the Intel Xeon Phi coprocessor";
* "7 to 10 times faster than the Intel Xeon CPU" (the dual-socket host);
* "16 times faster than the Matlab implementation".
"""

from repro.bench.harness import run_headline_claims
from repro.bench.report import format_table


def test_headline_claims(benchmark, show):
    claims = benchmark(run_headline_claims)
    rows = [
        {
            "claim": name,
            "speedup": report.speedup,
            "candidate_s": report.candidate_seconds,
            "baseline_s": report.baseline_seconds,
        }
        for name, report in claims.items()
    ]
    show(format_table(rows, title="Headline claims (paper: >300x, 7-10x, ~16x)"))

    assert claims["vs_baseline"].speedup > 300
    assert 6.0 <= claims["vs_xeon"].speedup <= 11.0
    assert 12.0 <= claims["vs_matlab"].speedup <= 20.0
