"""Extension — multi-coprocessor data-parallel scaling.

The paper's related work points at Google's distributed deep networks;
this bench asks what its own scheme buys on a hypothetical multi-Phi
node: synchronous data-parallel SGD with gradients all-reduced through
the host.  Strong scaling is compute-rich at batch 10 000 but the
per-device batch shrinks toward the Fig. 9 cliff; weak scaling keeps
per-device efficiency and pays only the growing sync.
"""

import pytest

from repro.bench.report import format_table
from repro.core.ae_trainer import SparseAutoencoderTrainer
from repro.core.config import TrainingConfig
from repro.phi.spec import XEON_PHI_5110P
from repro.runtime.distributed import scaling_rows, simulate_data_parallel


def _config():
    return TrainingConfig(
        n_visible=1024, n_hidden=4096, n_examples=1_000_000, batch_size=10_000,
        machine=XEON_PHI_5110P,
    )


def run_scaling():
    strong = simulate_data_parallel(
        _config(), SparseAutoencoderTrainer, device_counts=(1, 2, 4, 8)
    )
    weak = simulate_data_parallel(
        _config(), SparseAutoencoderTrainer, device_counts=(1, 2, 4, 8),
        scaling="weak",
    )
    return strong, weak


def test_multidevice_scaling(benchmark, show):
    strong, weak = benchmark(run_scaling)
    show(format_table(scaling_rows(strong), title="Extension: strong scaling (global batch fixed)"))
    show(format_table(scaling_rows(weak), title="Extension: weak scaling (per-device batch fixed)"))

    # Strong scaling: real but sub-linear speedups.
    assert strong[-1].speedup > 2.0
    assert strong[-1].speedup < 8.0
    assert all(p.speedup <= p.n_devices for p in strong)
    # Weak scaling keeps per-update compute flat, so efficiency (per-update
    # time growth) beats strong scaling's at 8 devices.
    weak_eff = weak[-1].compute_per_update_s / (
        weak[-1].compute_per_update_s + weak[-1].sync_per_update_s
    )
    strong_eff = strong[-1].efficiency
    assert weak_eff > strong_eff
