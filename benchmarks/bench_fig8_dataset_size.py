"""Fig. 8 — training time vs dataset size (SAE and RBM).

Network fixed at 1024×4096, batch 1000, dataset 10 k → 1 M examples.
Paper finding: "the time cost by single CPU core increases much faster
than Intel Xeon Phi … Intel Xeon Phi works much better when dealing with
large dataset size."
"""

import pytest

from repro.bench.harness import run_fig8
from repro.bench.report import format_table
from repro.bench.workloads import FIG8_DATASET_SIZES


@pytest.mark.parametrize("model", ["autoencoder", "rbm"])
def test_fig8_dataset_size(benchmark, show, model):
    rows = benchmark(run_fig8, model)
    show(format_table(rows, title=f"Fig. 8 ({model}): time vs dataset size"))

    assert len(rows) == len(FIG8_DATASET_SIZES)
    # CPU scales ~linearly with examples.
    example_ratio = rows[-1]["examples"] / rows[0]["examples"]
    assert rows[-1]["cpu1_s"] / rows[0]["cpu1_s"] == pytest.approx(
        example_ratio, rel=0.2
    )
    # The absolute CPU-vs-Phi gap widens monotonically with dataset size.
    gaps = [r["cpu1_s"] - r["phi_s"] for r in rows]
    assert gaps == sorted(gaps)
    # And at 1M examples the Phi advantage is large.
    assert rows[-1]["speedup"] > 20
