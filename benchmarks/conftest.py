"""Shared reporting helper for the benchmark suite.

Every bench prints the rows/series it regenerates (the paper-figure
content) in addition to pytest-benchmark's timing of the harness itself.
Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print a rendered table through pytest's capture (-s to display)."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show
