#!/usr/bin/env python3
"""Import-layering lint: freeze the package boundaries of the refactor.

The repository layers as ``data → nn → train → runtime → serve`` (see
docs/architecture.md), with :mod:`repro.train` owning the one training
loop and :mod:`repro.core` composing everything above it.  This script
fails the build when a package reaches *down* the wrong way:

* ``repro.train`` must not import ``repro.nn`` / ``repro.core`` /
  ``repro.phi`` / ``repro.serve`` — models plug into the loop through
  the ``TrainStep`` adapter, never the other way around.  This covers
  :mod:`repro.train.pipeline` too: the pipelined pre-trainer schedules
  opaque ``StagePlan`` objects, and the model-aware stage construction
  lives on the nn side (``StackedNetwork._pretrain_pipelined``);
* ``repro.nn`` must not import ``repro.core`` / ``repro.serve``;
* ``repro.data`` imports nothing above the utility layer;
* ``repro.serve`` must not import ``repro.cluster`` — the cluster tier
  composes engines, a single engine never knows it is replicated;
* ``repro.cluster`` reaches models only *through* the serve layer's
  ``ServableModel`` boundary — never ``repro.train`` / ``repro.nn`` /
  ``repro.core`` / ``repro.data`` internals directly;
* ``repro.workloads`` is pure data + replay: traces drive engines and
  routers through their duck-typed ``submit``/``poll`` surface, so the
  package must never import the serve / cluster / train / nn tiers it
  exercises (the bench layer composes them instead);
* ``repro.shard`` is a model-substrate extension (it slices ``repro.nn``
  models and wraps them as ``repro.serve`` servables), so it must never
  import the training loop, the cluster tier, or the workloads layer
  above it — ``repro.cluster`` may import ``repro.shard`` (the
  ``ShardRouter`` composes shard servables), never the reverse, and the
  sharded *training* driver lives in ``repro.bench.shardbench``.

Every import statement counts, module-level or function-level, so a
"lazy" import cannot smuggle a forbidden edge in.

Usage: ``python tools/check_layering.py [src-root]`` (default: ``src``).
Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: package → import prefixes it must never reference
FORBIDDEN = {
    "repro.train": (
        "repro.nn",
        "repro.core",
        "repro.phi",
        "repro.serve",
        "repro.cluster",
    ),
    "repro.nn": (
        "repro.core",
        "repro.serve",
        "repro.cluster",
    ),
    "repro.data": (
        "repro.nn",
        "repro.train",
        "repro.runtime",
        "repro.phi",
        "repro.core",
        "repro.serve",
        "repro.cluster",
    ),
    "repro.serve": (
        "repro.cluster",
    ),
    "repro.cluster": (
        "repro.train",
        "repro.nn",
        "repro.core",
        "repro.data",
    ),
    "repro.workloads": (
        "repro.serve",
        "repro.cluster",
        "repro.train",
        "repro.nn",
        "repro.core",
        "repro.data",
        "repro.runtime",
    ),
    "repro.shard": (
        "repro.train",
        "repro.cluster",
        "repro.workloads",
        "repro.core",
        "repro.phi",
    ),
}


def module_name(path: Path, src_root: Path) -> str:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def imported_modules(tree: ast.AST):
    """Yield (lineno, dotted-module) for every import in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                yield node.lineno, node.module


def check(src_root: Path) -> list:
    violations = []
    for path in sorted(src_root.rglob("*.py")):
        mod = module_name(path, src_root)
        rules = [
            banned
            for pkg, banned in FORBIDDEN.items()
            if mod == pkg or mod.startswith(pkg + ".")
        ]
        if not rules:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, imported in imported_modules(tree):
            for banned in rules:
                hit = next(
                    (
                        b
                        for b in banned
                        if imported == b or imported.startswith(b + ".")
                    ),
                    None,
                )
                if hit is not None:
                    violations.append((path, lineno, mod, imported, hit))
    return violations


def main(argv) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not src_root.is_dir():
        print(f"check_layering: source root {src_root} not found", file=sys.stderr)
        return 2
    violations = check(src_root)
    if violations:
        print("import-layering violations:")
        for path, lineno, mod, imported, banned in violations:
            print(f"  {path}:{lineno}: {mod} imports {imported} "
                  f"(layer boundary: no {banned})")
        return 1
    n_checked = sum(
        1
        for p in src_root.rglob("*.py")
        for pkg in FORBIDDEN
        if module_name(p, src_root).startswith(pkg)
    )
    print(f"import layering OK ({n_checked} modules checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
