"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP
660 editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-build-isolation`` take the legacy ``setup.py
develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
