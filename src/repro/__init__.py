"""repro — reproduction of "Training Large Scale Deep Neural Networks on
the Intel Xeon Phi Many-core Coprocessor" (Jin et al., IPDPSW 2014).

The package pairs *functional* NumPy implementations of the paper's
networks (sparse autoencoder, RBM, greedy deep pre-training) with a
*simulated* many-core coprocessor (roofline cost model + discrete-event
offload pipeline) so the paper's parallelization study — Table I's
optimization ladder, Figs. 7–10's sweeps, the Fig. 5 transfer overlap —
can be regenerated on any machine.

Quick tour::

    from repro import TrainingConfig, SparseAutoencoderTrainer, digit_dataset

    x, _ = digit_dataset(512, size=16, seed=0)
    cfg = TrainingConfig(n_visible=256, n_hidden=64,
                         n_examples=512, batch_size=64, epochs=20)
    result = SparseAutoencoderTrainer(cfg).fit(x)
    print(result.reconstruction_errors[-1], result.simulated_seconds)

Sub-packages:

* :mod:`repro.nn` — the networks (real numerics);
* :mod:`repro.train` — the unified training loop, callbacks, events;
* :mod:`repro.optim` — SGD, schedules, L-BFGS, CG;
* :mod:`repro.data` — synthetic digits / natural images, patches, chunks;
* :mod:`repro.phi` — the simulated Xeon Phi / Xeon machines;
* :mod:`repro.runtime` — backends, parallel-for, task graphs, fusion,
  the offload pipeline;
* :mod:`repro.core` — the paper's trainers and pre-training driver;
* :mod:`repro.bench` — workloads + harness for every table and figure;
* :mod:`repro.serve` — micro-batched inference serving (one engine);
* :mod:`repro.cluster` — sharded multi-replica serving: router, hedging,
  zero-downtime swap, autoscaler;
* :mod:`repro.shard` — dropout-decoupled model parallelism: column
  partitioner, deterministic mask streams, per-shard checkpoints;
* :mod:`repro.workloads` — replayable workload traces, the pattern
  catalog, the trace replayer, and SLO gates.
"""

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DeviceMemoryError,
    ReproError,
    SchedulingError,
    ServingError,
    ShapeError,
    SimulationError,
)

# networks
from repro.nn import (
    RBM,
    DeepBeliefNetwork,
    LayerSpec,
    SparseAutoencoder,
    SparseAutoencoderCost,
    StackedAutoencoder,
)

# the unified training runtime
from repro.train import (
    CallbackList,
    ChunkSchedule,
    EarlyStopping,
    EpochEvent,
    History,
    LayerEvent,
    PhaseTimings,
    ProgressLogger,
    TrainLoop,
    TrainStep,
    TrainingCallback,
    UpdateEvent,
)

# data
from repro.data import (
    Dataset,
    digit_dataset,
    extract_patches,
    make_digit_images,
    make_natural_images,
    normalize_patches,
    plan_chunks,
    whiten_patches,
)

# machines
from repro.phi import (
    MachineSpec,
    PCIeModel,
    SimulatedMachine,
    XEON_E5620,
    XEON_E5620_DUAL,
    XEON_E5620_SINGLE_CORE,
    XEON_PHI_5110P,
    XEON_PHI_5110P_30C,
    get_machine,
    phi_with_cores,
)

# runtime
from repro.runtime import (
    ExecutionBackend,
    OffloadPipeline,
    OptimizationLevel,
    TaskGraph,
    backend_for_level,
    fuse_elementwise,
    matlab_backend,
    optimized_cpu_backend,
    rbm_cd1_taskgraph,
)

# the paper's trainers
from repro.core import (
    ChunkedTrainingPipeline,
    DeepPretrainer,
    HeterogeneousSplit,
    RBMTrainer,
    SparseAutoencoderTrainer,
    SpeedupReport,
    TrainingConfig,
    TrainingRunResult,
)

# bench harness conveniences
from repro.bench import (
    format_series,
    format_table,
    format_timeline,
    simulate_seconds,
    sweep,
    table1_pretrainer,
    write_csv,
    write_json,
)

__version__ = "1.0.0"

# Serving (repro.serve) and cluster (repro.cluster) layers — resolved
# lazily via __getattr__ below so training-only users pay no import cost
# for the deployment subsystems.
_SERVE_EXPORTS = frozenset(
    {
        "BatchPolicy",
        "MicroBatcher",
        "FeatureCache",
        "ConstantServiceModel",
        "SimulatedServiceModel",
        "ServingEngine",
        "WorkerPool",
        "PoissonArrivals",
        "BurstArrivals",
        "LoadTestHarness",
        "LoadTestReport",
        "ServingMetrics",
        "ModelRegistry",
        "ServableModel",
        "run_serve_bench",
    }
)


_CLUSTER_EXPORTS = frozenset(
    {
        "Autoscaler",
        "AutoscalerConfig",
        "ClusterLoadHarness",
        "ClusterLoadReport",
        "ClusterMetrics",
        "ConsistentHashPolicy",
        "HedgePolicy",
        "LeastLoadedPolicy",
        "Replica",
        "ReplicaConfig",
        "ReplicatedRegistry",
        "RoundRobinPolicy",
        "Router",
        "SwapTicket",
        "run_cluster_bench",
    }
)


_SHARD_EXPORTS = frozenset(
    {
        "Partition",
        "CrossBlock",
        "ModelShard",
        "partition_model",
        "merge_shards",
        "mask_streams",
        "gather_outputs",
        "shard_servables",
        "save_shard_checkpoint",
        "read_shard_checkpoint",
        "ShardRouter",
        "sharded_pretrain",
        "run_shard_bench",
    }
)


_WORKLOADS_EXPORTS = frozenset(
    {
        "Trace",
        "TraceEvent",
        "TraceReplayer",
        "ReplayReport",
        "SLOGate",
        "trace_from_arrivals",
        "generate_trace",
    }
)


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        import repro.serve as _serve

        return getattr(_serve, name)
    if name in _CLUSTER_EXPORTS:
        import repro.cluster as _cluster

        return getattr(_cluster, name)
    if name in _SHARD_EXPORTS:
        if name == "ShardRouter":
            from repro.cluster import ShardRouter

            return ShardRouter
        if name in ("sharded_pretrain", "run_shard_bench"):
            import repro.bench.shardbench as _shardbench

            return getattr(_shardbench, name)
        import repro.shard as _shard

        # partition/merge get explicit names at the top level: "partition"
        # alone would read as a generic verb next to the training API.
        if name == "partition_model":
            return _shard.partition
        if name == "merge_shards":
            return _shard.merge
        return getattr(_shard, name)
    if name in _WORKLOADS_EXPORTS:
        import repro.workloads as _workloads

        if name == "generate_trace":  # avoid shadowing a generic name
            return _workloads.generate
        return getattr(_workloads, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "ConvergenceError",
    "DeviceMemoryError",
    "SimulationError",
    "SchedulingError",
    "ServingError",
    # networks
    "SparseAutoencoder",
    "SparseAutoencoderCost",
    "RBM",
    "StackedAutoencoder",
    "DeepBeliefNetwork",
    "LayerSpec",
    # training runtime
    "TrainLoop",
    "TrainStep",
    "ChunkSchedule",
    "TrainingCallback",
    "CallbackList",
    "History",
    "EarlyStopping",
    "ProgressLogger",
    "UpdateEvent",
    "EpochEvent",
    "LayerEvent",
    "PhaseTimings",
    # data
    "Dataset",
    "digit_dataset",
    "make_digit_images",
    "make_natural_images",
    "extract_patches",
    "normalize_patches",
    "whiten_patches",
    "plan_chunks",
    # machines
    "MachineSpec",
    "XEON_PHI_5110P",
    "XEON_PHI_5110P_30C",
    "XEON_E5620",
    "XEON_E5620_SINGLE_CORE",
    "XEON_E5620_DUAL",
    "phi_with_cores",
    "get_machine",
    "SimulatedMachine",
    "PCIeModel",
    # runtime
    "OptimizationLevel",
    "ExecutionBackend",
    "backend_for_level",
    "optimized_cpu_backend",
    "matlab_backend",
    "TaskGraph",
    "rbm_cd1_taskgraph",
    "fuse_elementwise",
    "OffloadPipeline",
    # trainers
    "TrainingConfig",
    "TrainingRunResult",
    "SpeedupReport",
    "SparseAutoencoderTrainer",
    "RBMTrainer",
    "DeepPretrainer",
    "ChunkedTrainingPipeline",
    "HeterogeneousSplit",
    # bench
    "format_table",
    "format_series",
    "format_timeline",
    "write_csv",
    "write_json",
    "sweep",
    "simulate_seconds",
    "table1_pretrainer",
    # serving (lazy — see __getattr__)
    "ModelRegistry",
    "ServableModel",
    "ServingEngine",
    "BatchPolicy",
    "FeatureCache",
    "LoadTestHarness",
    "PoissonArrivals",
    "BurstArrivals",
    "run_serve_bench",
    # cluster (lazy — see __getattr__)
    "Router",
    "ReplicatedRegistry",
    "Autoscaler",
    "ClusterLoadHarness",
    "HedgePolicy",
    "ConsistentHashPolicy",
    "run_cluster_bench",
    # shard (lazy — see __getattr__)
    "Partition",
    "CrossBlock",
    "ModelShard",
    "partition_model",
    "merge_shards",
    "mask_streams",
    "gather_outputs",
    "shard_servables",
    "save_shard_checkpoint",
    "read_shard_checkpoint",
    "ShardRouter",
    "sharded_pretrain",
    "run_shard_bench",
    # workloads (lazy — see __getattr__)
    "Trace",
    "TraceEvent",
    "TraceReplayer",
    "ReplayReport",
    "SLOGate",
    "trace_from_arrivals",
    "generate_trace",
    "__version__",
]
