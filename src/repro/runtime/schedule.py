"""List scheduling of task graphs onto bounded parallel workers.

The paper's Fig. 6 scheduling runs each wavefront's independent kernels
"concurrently"; a machine, however, has finite concurrency.  This module
implements the classic **list scheduler** (Graham 1966): ready tasks are
dispatched to the earliest-free worker, priority by critical-path length
(HLFET).  It generalises the wavefront model and carries Graham's
(2 − 1/p) makespan guarantee, which the property tests check.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, SchedulingError
from repro.runtime.taskgraph import TaskGraph, TaskNode


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement."""

    name: str
    worker: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Schedule:
    """A complete schedule of a task graph."""

    tasks: List[ScheduledTask] = field(default_factory=list)
    n_workers: int = 1

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks), default=0.0)

    def worker_busy_time(self, worker: int) -> float:
        return sum(t.duration for t in self.tasks if t.worker == worker)

    @property
    def utilisation(self) -> float:
        """Mean busy fraction across workers over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        total = sum(t.duration for t in self.tasks)
        return total / (span * self.n_workers)

    def by_name(self) -> Dict[str, ScheduledTask]:
        return {t.name: t for t in self.tasks}


def _critical_path_priority(graph: TaskGraph, cost: Callable[[TaskNode], float]) -> Dict[str, float]:
    """Bottom-level of each node: longest cost path from it to any sink."""
    priority: Dict[str, float] = {}
    children: Dict[str, List[str]] = {name: [] for name in graph.names}
    for name in graph.names:
        for dep in graph.node(name).deps:
            children[dep].append(name)
    for name in reversed(graph.names):  # reverse insertion order ≈ reverse topo
        node = graph.node(name)
        below = max((priority[c] for c in children[name]), default=0.0)
        priority[name] = cost(node) + below
    return priority


def list_schedule(
    graph: TaskGraph,
    cost: Callable[[TaskNode], float],
    n_workers: int,
) -> Schedule:
    """HLFET list scheduling: highest bottom-level first, earliest worker.

    Parameters
    ----------
    graph:
        The dependency DAG.
    cost:
        Task duration function (must be ≥ 0).
    n_workers:
        Concurrency bound (the machine's usable parallel slots).
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    priority = _critical_path_priority(graph, cost)

    ready_at: Dict[str, float] = {}
    remaining_deps = {name: len(graph.node(name).deps) for name in graph.names}
    children: Dict[str, List[str]] = {name: [] for name in graph.names}
    for name in graph.names:
        for dep in graph.node(name).deps:
            children[dep].append(name)

    # Ready heap ordered by (-priority, insertion) for determinism.
    ready: List = []
    seq = 0
    for name in graph.names:
        if remaining_deps[name] == 0:
            heapq.heappush(ready, (-priority[name], seq, name))
            seq += 1
            ready_at[name] = 0.0

    worker_free = [0.0] * n_workers
    finish: Dict[str, float] = {}
    placed: List[ScheduledTask] = []
    # Tasks whose deps are met but whose data isn't ready until ready_at.
    while ready:
        _, _, name = heapq.heappop(ready)
        duration = float(cost(graph.node(name)))
        if duration < 0:
            raise SchedulingError(f"task {name!r} has negative cost {duration}")
        # Best-fit worker: earliest possible start; ties broken by the
        # smallest idle gap so already-busy workers absorb constrained
        # tasks and idle workers stay free for the ready singletons.
        worker = min(
            range(n_workers),
            key=lambda w: (
                max(worker_free[w], ready_at[name]),
                max(worker_free[w], ready_at[name]) - worker_free[w],
            ),
        )
        start = max(worker_free[worker], ready_at[name])
        end = start + duration
        worker_free[worker] = end
        finish[name] = end
        placed.append(ScheduledTask(name, worker, start, end))
        for child in children[name]:
            remaining_deps[child] -= 1
            ready_at[child] = max(ready_at.get(child, 0.0), end)
            if remaining_deps[child] == 0:
                heapq.heappush(ready, (-priority[child], seq, child))
                seq += 1

    if len(placed) != len(graph):
        raise SchedulingError("graph contains unreachable tasks (cycle?)")
    return Schedule(tasks=placed, n_workers=n_workers)


def makespan_lower_bound(
    graph: TaskGraph, cost: Callable[[TaskNode], float], n_workers: int
) -> float:
    """max(critical path, total work / p) — the classic LB pair."""
    return max(
        graph.critical_path_cost(cost),
        graph.serial_cost(cost) / max(n_workers, 1),
    )
