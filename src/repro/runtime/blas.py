"""GEMM performance models: MKL-like blocked code vs. naive triple loops.

The paper's single most important optimization is routing matrix products
through MKL (§IV.B: without it "the eventual optimizing effect would be
very limited").  Two models:

* :func:`mkl_gemm_efficiency` — fraction of machine peak a blocked,
  vectorised GEMM reaches as a function of the problem shape.  Small
  dimensions cannot fill the pipeline/thread pool, which is what makes
  small networks and small mini-batches slow on the Phi (Figs. 7 and 9).
* :func:`naive_gemm_traffic` — memory traffic of an unblocked triple
  loop, which re-streams operands from memory with only cache-line reuse.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError

_F64 = 8


def _saturation(x: float, half: float) -> float:
    """x / (x + half): 0→0, half→0.5, ∞→1.  The standard soft-knee."""
    return x / (x + half)


def mkl_gemm_efficiency(spec, backend, m: int, n: int, k: int) -> float:
    """Fraction of ``spec`` peak an MKL-like GEMM of shape (m,n,k) achieves.

    The efficiency saturates toward ``backend.gemm_eff_max`` as every
    dimension grows.  Half-saturation points scale with the machine's
    parallel width: the m dimension (rows, which MKL splits across
    threads) needs ~2.5 rows per software thread; n and k need a few
    vector registers' worth of columns per core.
    """
    if min(m, n, k) < 1:
        raise ConfigurationError(f"GEMM dims must be >= 1, got ({m}, {n}, {k})")
    threads = backend.threads_for(spec)
    m_half = max(32.0, 2.5 * threads)
    nk_half = max(32.0, 16.0 * spec.vector_lanes_f64)
    eff = (
        backend.gemm_eff_max
        * _saturation(float(m), m_half)
        * _saturation(float(n), nk_half)
        * _saturation(float(k), nk_half)
    )
    # A GEMM can never beat ~1 % of peak no matter how degenerate — the
    # model's floor keeps tiny test problems from producing absurd times.
    return max(eff, 1e-2 * backend.gemm_eff_max)


def naive_gemm_traffic(m: int, n: int, k: int, l2_cache_bytes: int) -> float:
    """Memory bytes moved by an unblocked i-j-k triple loop.

    Per (i, j) inner product the loop streams the B column (k elements);
    A rows stay cached.  Cache lines give ~8 float64 of spatial reuse,
    and whatever fraction of B fits in L2 is reused across i iterations.
    """
    if min(m, n, k) < 1:
        raise ConfigurationError(f"GEMM dims must be >= 1, got ({m}, {n}, {k})")
    if l2_cache_bytes < 1:
        raise ConfigurationError("l2_cache_bytes must be >= 1")
    b_bytes = float(k) * n * _F64
    cached_fraction = min(1.0, l2_cache_bytes / b_bytes)
    line_reuse = 8.0
    # B streamed once per row of A, minus cache hits; A and C streamed once.
    b_traffic = m * b_bytes * (1.0 - cached_fraction) / line_reuse + b_bytes
    ac_traffic = float(m) * k * _F64 + 2.0 * float(m) * n * _F64
    return b_traffic + ac_traffic


def gemm_time_components(spec, backend, m: int, n: int, k: int) -> Tuple[float, float]:
    """(compute_seconds, memory_seconds) for one GEMM on ``spec``/``backend``.

    The caller takes ``max`` of the two (roofline).  Dispatches on
    ``backend.use_mkl``:

    * MKL path — compute-limited by ``peak × efficiency``; memory traffic
      is the minimal operand traffic (blocked code achieves near-perfect
      reuse).
    * naive path — compute-limited by the scalar issue rate times the
      naive thread-scaling efficiency; memory traffic from
      :func:`naive_gemm_traffic`.
    """
    threads = backend.threads_for(spec)
    flops = 2.0 * m * n * k
    operand_bytes = _F64 * (m * k + k * n + m * n)
    if backend.use_mkl:
        eff = mkl_gemm_efficiency(spec, backend, m, n, k)
        compute = flops / (spec.peak_flops_threads(threads, simd=True) * eff)
        memory = operand_bytes / spec.bandwidth_threads(threads)
    else:
        peak = spec.peak_flops_threads(threads, simd=False)
        if threads > 1:
            peak *= backend.naive_parallel_efficiency
        compute = flops / peak
        traffic = naive_gemm_traffic(m, n, k, spec.l2_cache_per_core)
        memory = traffic / spec.bandwidth_threads(threads)
    return compute, memory
