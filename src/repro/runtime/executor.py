"""Real shared-memory parallel training executor (paper §IV.A–B, Figs. 5–6).

Everything else under :mod:`repro.runtime` *models* the paper's
concurrency; this module *executes* it.  Three pieces:

* :class:`ParallelGradientEngine` — a pool of slot-bound worker threads
  that splits each mini-batch across W workers.  Each worker computes
  into a worker-private :class:`~repro.runtime.workspace.Workspace`
  through the existing fused kernels
  (:meth:`~repro.nn.autoencoder.SparseAutoencoder.gradients_into`,
  workspace-backed :meth:`~repro.nn.rbm.RBM.contrastive_divergence`,
  :meth:`~repro.nn.mlp.DeepNetwork.gradients_into`); NumPy/BLAS release
  the GIL inside the GEMMs, so the shards genuinely overlap on separate
  cores.  Shard gradients are reduced with ``daxpy`` into shared
  accumulators **in worker-index order** (deterministic floating point),
  then one ``apply_update`` runs on the coordinator — the paper's
  synchronized layer-wise update, and the worker-private-gradient scheme
  of CHAOS (Viebke et al., arXiv:1702.07908).

* :class:`ChunkPrefetcher` — the executable twin of the *simulated*
  :class:`~repro.runtime.offload.OffloadPipeline` (paper Fig. 5): a
  dedicated loader thread stages data chunks into a bounded multi-buffer
  queue while the training thread consumes them, and the measured
  timeline is reported in the exact same
  :class:`~repro.runtime.offload.OffloadTimeline` vocabulary so the two
  can be cross-checked on identical chunk parameters.

* :meth:`TaskGraph.execute <repro.runtime.taskgraph.TaskGraph.execute>`
  accepts either a standard executor or this engine as its pool, running
  Fig. 6 wavefronts concurrently (see :mod:`repro.runtime.taskgraph`).

Determinism contract: worker *i* always owns RNG stream *i* (derived via
:func:`repro.utils.rng.spawn_streams`) and shard *i* always runs on
worker *i*, so a run at fixed W is bit-reproducible regardless of OS
scheduling; for deterministic models the reduced gradient matches the
serial full-batch gradient to ≤1e-10 (pinned by the test suite and the
``BENCH_parallel.json`` equivalence fields).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.linalg import axpy_into
from repro.runtime.offload import ChunkEvent, OffloadTimeline
from repro.runtime.slotqueue import (
    BoundedSlotQueue,
    SlotQueueClosed,
    SlotQueueProducerDead,
    SlotQueueProducerFailed,
)
from repro.runtime.threads import (
    available_cores,
    blas_thread_limit,
    recommended_blas_threads,
)
from repro.runtime.workspace import Workspace
from repro.testing.faults import fault_point, fault_transform, register_fault_site
from repro.utils.rng import SeedLike, spawn_streams

# Kill points of the executable pipeline (see docs/robustness.md).  The
# hooks are module-global None checks when no FaultPlan is injected.
SITE_ENGINE_WORKER = register_fault_site(
    "engine.worker", "inside a ParallelGradientEngine shard task, before computing"
)
SITE_ENGINE_REDUCE = register_fault_site(
    "engine.reduce", "on the coordinator, after the join and before the daxpy reduction"
)
SITE_PREFETCH_LOAD = register_fault_site(
    "prefetch.load", "on the loader thread, before load_chunk(i) (per attempt)"
)
SITE_PREFETCH_CHUNK = register_fault_site(
    "prefetch.chunk", "on the loader thread, between a successful load and publish"
)


class ExecutorClosedError(ConfigurationError):
    """Work was submitted to an engine after :meth:`close`."""


class _WorkerSlot(threading.Thread):
    """One pool thread with a fixed slot index and a private workspace.

    Slot binding (shard *i* → thread *i*) is what a generic thread pool
    cannot give us: the workspace thread guard requires every arena to be
    touched by exactly one thread, and determinism requires shard *i* to
    draw from RNG stream *i* every step.  Each slot runs a classic
    task-queue loop; results travel back through ``concurrent.futures``
    futures.
    """

    def __init__(self, index: int, engine_name: str):
        super().__init__(name=f"{engine_name}-worker-{index}", daemon=True)
        self.index = index
        self.workspace = Workspace(name=f"{engine_name}.worker{index}")
        #: per-slot persistent reduction buffers, keyed by (tag, shape)
        self.outputs: Dict[Tuple, np.ndarray] = {}
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self.start()

    def run(self) -> None:
        while True:
            item = self._tasks.get()
            if item is None:
                return
            fn, args, kwargs, future = item
            if not future.set_running_or_notify_cancel():  # pragma: no cover
                continue
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # propagate to the coordinator
                future.set_exception(exc)

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        future: Future = Future()
        self._tasks.put((fn, args, kwargs, future))
        return future

    def shutdown(self) -> None:
        self._tasks.put(None)

    def out(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        """Slot-private plain array for handing results to the coordinator.

        Unlike workspace buffers these are *meant* to cross the thread
        boundary: the worker writes them, then the coordinator reads them
        after joining the step's futures (a happens-before edge).
        """
        key = (tag, tuple(int(s) for s in shape))
        arr = self.outputs.get(key)
        if arr is None:
            arr = np.empty(key[1])
            self.outputs[key] = arr
        return arr


class ParallelGradientEngine:
    """Data-parallel gradient execution across W slot-bound worker threads.

    Parameters
    ----------
    n_workers:
        Worker thread count; defaults to the affinity-visible core count.
    blas_threads:
        BLAS threads *per process* while the engine is open.  The default
        ``"auto"`` caps the BLAS pools at ``cores // n_workers`` (via
        :func:`repro.runtime.threads.recommended_blas_threads`) so the
        outer worker level and the inner GEMM level never oversubscribe
        the machine; pass ``None`` to leave BLAS untouched, or an int to
        pin explicitly.
    seed:
        Root seed for the per-worker RNG streams (CD-1 sampling).  Worker
        *i* owns stream *i*; runs are reproducible at fixed ``n_workers``.
    name:
        Label used for thread and workspace names in error messages.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        blas_threads="auto",
        seed: SeedLike = 0,
        name: str = "engine",
    ):
        if n_workers is None:
            n_workers = available_cores()
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.name = str(name)
        self.n_workers = int(n_workers)
        if blas_threads == "auto":
            blas_threads = (
                recommended_blas_threads(self.n_workers) if self.n_workers > 1 else None
            )
        self.blas_threads = blas_threads
        self._blas_guard = None
        if blas_threads is not None:
            self._blas_guard = blas_thread_limit(blas_threads)
            self._blas_guard.__enter__()
        self._slots = [_WorkerSlot(i, self.name) for i in range(self.n_workers)]
        self._streams = spawn_streams(seed, self.n_workers)
        self._coord_ws = Workspace(name=f"{self.name}.coordinator")
        self._acc: Dict[Tuple, np.ndarray] = {}
        self._rr = 0
        self._closed = False
        self.n_steps = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the worker threads and restore the BLAS thread limits."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            slot.shutdown()
        for slot in self._slots:
            slot.join()
        if self._blas_guard is not None:
            self._blas_guard.__exit__(None, None, None)
            self._blas_guard = None

    def __enter__(self) -> "ParallelGradientEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def coordinator_workspace(self) -> Workspace:
        """The coordinator-thread arena used for synchronized updates.

        ``*_step`` apply through this workspace; callers that split a
        step into ``*_gradients`` + ``apply_update`` (the unified
        :class:`repro.train.loop.TrainLoop` does, to time the apply
        phase separately) must use the same arena to stay allocation-free
        and bit-identical to the fused ``*_step`` calls.
        """
        return self._coord_ws

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutorClosedError(f"{self.name} has been closed")

    # ------------------------------------------------------------------
    # RNG stream snapshots (crash-consistent checkpoint/resume)
    # ------------------------------------------------------------------
    def capture_rng_streams(self) -> List[dict]:
        """Exact positions of the W worker streams (JSON-serialisable).

        Saved into training checkpoints so a resumed run draws the same
        Gibbs samples the uninterrupted run would have — bit-identical
        resume requires the streams, not just the parameters.
        """
        from repro.runtime.checkpoint import capture_streams

        return capture_streams(self._streams)

    def restore_rng_streams(self, states: Sequence[dict]) -> None:
        """Rewind the worker streams to a :meth:`capture_rng_streams` snapshot.

        The checkpointed worker count must equal ``n_workers`` — resume at
        a different W would change shard↔stream binding and break the
        bit-exactness guarantee, so it raises instead.
        """
        from repro.runtime.checkpoint import restore_streams_into

        restore_streams_into(self._streams, states)

    # ------------------------------------------------------------------
    # generic submission (used by TaskGraph.execute)
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Run ``fn`` on the next worker slot (round-robin); returns a future."""
        self._check_open()
        slot = self._slots[self._rr % self.n_workers]
        self._rr += 1
        return slot.submit(fn, *args, **kwargs)

    def run_tasks(self, fns: Sequence[Callable]) -> List:
        """Execute callables concurrently across the slots; ordered results."""
        futures = [self.submit(fn) for fn in fns]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------
    def _shards(self, m: int) -> List[Tuple[int, int]]:
        """Balanced contiguous [start, stop) split of ``m`` rows.

        Contiguous slices keep every shard a C-contiguous view (no copy),
        and the first ``m % k`` shards take the extra row — the static
        OpenMP-style schedule of the paper's outer loops.
        """
        k = min(self.n_workers, m)
        base, extra = divmod(m, k)
        bounds: List[Tuple[int, int]] = []
        start = 0
        for i in range(k):
            stop = start + base + (1 if i < extra else 0)
            bounds.append((start, stop))
            start = stop
        return bounds

    def _accumulator(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        key = (tag, tuple(int(s) for s in shape))
        arr = self._acc.get(key)
        if arr is None:
            arr = np.empty(key[1])
            self._acc[key] = arr
        return arr

    @staticmethod
    def _reduce(
        pieces: Sequence[np.ndarray], weights: Sequence[float], out: np.ndarray
    ) -> np.ndarray:
        """``out = Σ wᵢ·pieceᵢ`` in slot order — deterministic daxpy chain."""
        np.multiply(pieces[0], weights[0], out=out)
        for piece, weight in zip(pieces[1:], weights[1:]):
            axpy_into(piece, out, weight)
        return out

    @staticmethod
    def _as_batch(x: np.ndarray, width: int, label: str) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != width:
            raise ConfigurationError(f"{label} must be (m, {width}), got {x.shape}")
        if not x.flags["C_CONTIGUOUS"]:
            x = np.ascontiguousarray(x)
        return x

    # ------------------------------------------------------------------
    # sparse autoencoder
    # ------------------------------------------------------------------
    def sae_gradients(
        self,
        model: SparseAutoencoder,
        x: np.ndarray,
        out: Optional[AutoencoderGradients] = None,
    ) -> Tuple[float, AutoencoderGradients]:
        """Full-batch loss and gradient of ``model`` on ``x``, data-parallel.

        Equals the serial :meth:`~repro.nn.autoencoder.SparseAutoencoder.gradients`
        to ≤1e-10: shard gradients are exact shard restrictions of the
        batch objective (the weight-decay term carries weight ``mᵢ/m``
        which sums to one), and when the KL sparsity penalty is active a
        first parallel pass combines the shard hidden means into the
        *global* ρ̂ before the gradient pass (two-phase protocol).

        ``out`` receives the reduced gradients (e.g. flat-gradient views);
        omitted, they land in engine-owned accumulators that the next
        engine call may overwrite.
        """
        from repro.nn.autoencoder import AutoencoderGradients

        self._check_open()
        x = self._as_batch(x, model.n_visible, "x")
        m = x.shape[0]
        shards = self._shards(m)
        weights = [(stop - start) / m for start, stop in shards]
        if out is None:
            h, v = model.n_hidden, model.n_visible
            out = AutoencoderGradients(
                self._accumulator("sae.w1", (h, v)),
                self._accumulator("sae.b1", (h,)),
                self._accumulator("sae.w2", (v, h)),
                self._accumulator("sae.b2", (v,)),
            )

        rho_global: Optional[np.ndarray] = None
        if model.cost.sparsity_weight > 0.0 and len(shards) > 1:
            # Phase A: per-shard hidden means, combined into the batch ρ̂.
            futures = [
                self._slots[i].submit(
                    self._sae_rho_task, self._slots[i], model, x[start:stop]
                )
                for i, (start, stop) in enumerate(shards)
            ]
            rhos = [f.result() for f in futures]
            rho_global = self._reduce(
                rhos, weights, self._accumulator("sae.rho", (model.n_hidden,))
            )

        futures = [
            self._slots[i].submit(
                self._sae_grad_task, self._slots[i], model, x[start:stop], rho_global
            )
            for i, (start, stop) in enumerate(shards)
        ]
        results = [f.result() for f in futures]
        fault_point(SITE_ENGINE_REDUCE, kind="sae")
        loss = float(sum(w * r[0] for w, r in zip(weights, results)))
        self._reduce([r[1].w1 for r in results], weights, out.w1)
        self._reduce([r[1].b1 for r in results], weights, out.b1)
        self._reduce([r[1].w2 for r in results], weights, out.w2)
        self._reduce([r[1].b2 for r in results], weights, out.b2)
        self.n_steps += 1
        return loss, out

    @staticmethod
    def _sae_rho_task(slot: _WorkerSlot, model: SparseAutoencoder, shard: np.ndarray):
        fault_point(SITE_ENGINE_WORKER, worker=slot.index, kind="sae.rho")
        return model.mean_hidden_into(
            shard, slot.workspace, out=slot.out("sae.rho", (model.n_hidden,))
        )

    @staticmethod
    def _sae_grad_task(
        slot: _WorkerSlot,
        model: SparseAutoencoder,
        shard: np.ndarray,
        rho_global: Optional[np.ndarray],
    ):
        from repro.nn.autoencoder import AutoencoderGradients

        fault_point(SITE_ENGINE_WORKER, worker=slot.index, kind="sae")
        h, v = model.n_hidden, model.n_visible
        grads = AutoencoderGradients(
            slot.out("sae.gw1", (h, v)),
            slot.out("sae.gb1", (h,)),
            slot.out("sae.gw2", (v, h)),
            slot.out("sae.gb2", (v,)),
        )
        loss, grads = model.gradients_into(
            shard, slot.workspace, out=grads, rho_hat=rho_global
        )
        return loss, grads

    def sae_step(
        self, model: SparseAutoencoder, x: np.ndarray, learning_rate: float
    ) -> float:
        """One synchronized parallel SGD step; returns the batch loss."""
        loss, grads = self.sae_gradients(model, x)
        model.apply_update(grads, learning_rate, workspace=self._coord_ws)
        return loss

    def flat_objective(self, model: SparseAutoencoder) -> Callable:
        """``objective(theta, batch) -> (loss, grad)`` for :class:`repro.optim.sgd.SGD`.

        Adopts ``theta`` through the model's flat views (no save/restore
        copies) and reduces the parallel shard gradients straight into the
        flat gradient storage, so the whole SGD loop runs data-parallel
        without SGD knowing.
        """
        model.enable_flat_views()

        def objective(theta: np.ndarray, batch: np.ndarray):
            np.copyto(model._flat_theta, np.asarray(theta, dtype=np.float64).ravel())
            loss, _ = self.sae_gradients(model, batch, out=model._flat_grad_views)
            return loss, model._flat_grad

        return objective

    # ------------------------------------------------------------------
    # RBM contrastive divergence
    # ------------------------------------------------------------------
    def cd_gradients(
        self,
        rbm: RBM,
        v0: np.ndarray,
        k: int = 1,
        sample_visible: bool = False,
    ) -> CDStatistics:
        """Data-parallel CD-k statistics with deterministic worker streams.

        Worker *i* samples its Gibbs chain from engine stream *i*, so the
        result is bit-reproducible at fixed ``n_workers`` and exactly
        equals running the same shards serially with the same streams
        (the oracle the test suite checks).  Statistics land in shared
        engine accumulators — apply or copy before the next engine call.
        """
        self._check_open()
        v0 = self._as_batch(v0, rbm.n_visible, "v0")
        m = v0.shape[0]
        shards = self._shards(m)
        weights = [(stop - start) / m for start, stop in shards]
        futures = [
            self._slots[i].submit(
                self._cd_task,
                self._slots[i],
                rbm,
                v0[start:stop],
                k,
                self._streams[i],
                sample_visible,
            )
            for i, (start, stop) in enumerate(shards)
        ]
        results = [f.result() for f in futures]
        fault_point(SITE_ENGINE_REDUCE, kind="rbm")
        nh, nv = rbm.n_hidden, rbm.n_visible
        grad_w = self._reduce([r.grad_w for r in results], weights,
                              self._accumulator("rbm.gw", (nh, nv)))
        grad_b = self._reduce([r.grad_b for r in results], weights,
                              self._accumulator("rbm.gb", (nv,)))
        grad_c = self._reduce([r.grad_c for r in results], weights,
                              self._accumulator("rbm.gc", (nh,)))
        err = float(sum(w * r.reconstruction_error for w, r in zip(weights, results)))
        self.n_steps += 1
        from repro.nn.rbm import CDStatistics

        return CDStatistics(grad_w, grad_b, grad_c, err)

    @staticmethod
    def _cd_task(
        slot: _WorkerSlot,
        rbm: RBM,
        shard: np.ndarray,
        k: int,
        stream: np.random.Generator,
        sample_visible: bool,
    ) -> CDStatistics:
        fault_point(SITE_ENGINE_WORKER, worker=slot.index, kind="rbm")
        stats = rbm.contrastive_divergence(
            shard, k=k, rng=stream, sample_visible=sample_visible,
            workspace=slot.workspace,
        )
        # The stats alias workspace buffers; park them in slot-private
        # output arrays so the coordinator may reduce after the join.
        gw = slot.out("rbm.gw", stats.grad_w.shape)
        gb = slot.out("rbm.gb", stats.grad_b.shape)
        gc = slot.out("rbm.gc", stats.grad_c.shape)
        np.copyto(gw, stats.grad_w)
        np.copyto(gb, stats.grad_b)
        np.copyto(gc, stats.grad_c)
        from repro.nn.rbm import CDStatistics

        return CDStatistics(gw, gb, gc, stats.reconstruction_error)

    def cd_step(
        self,
        rbm: RBM,
        v0: np.ndarray,
        learning_rate: float,
        k: int = 1,
        sample_visible: bool = False,
    ) -> CDStatistics:
        """One synchronized parallel CD-k update (Eq. 13)."""
        stats = self.cd_gradients(rbm, v0, k=k, sample_visible=sample_visible)
        rbm.apply_update(stats, learning_rate, workspace=self._coord_ws)
        return stats

    # ------------------------------------------------------------------
    # deep network (supervised fine-tuning)
    # ------------------------------------------------------------------
    def supervised_gradients(
        self, network, x: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, List[Tuple[np.ndarray, np.ndarray]]]:
        """Data-parallel back-propagation through a :class:`~repro.nn.mlp.DeepNetwork`.

        Matches the serial full-batch gradient to ≤1e-10 (losses and the
        per-layer weight-decay terms all carry shard weights summing to
        one).  Gradients land in engine accumulators.
        """
        self._check_open()
        x = self._as_batch(x, network.n_in, "x")
        targets = self._as_batch(targets, network.n_out, "targets")
        if targets.shape[0] != x.shape[0]:
            raise ConfigurationError(
                f"x has {x.shape[0]} rows but targets has {targets.shape[0]}"
            )
        m = x.shape[0]
        shards = self._shards(m)
        weights = [(stop - start) / m for start, stop in shards]
        futures = [
            self._slots[i].submit(
                self._mlp_task,
                self._slots[i],
                network,
                x[start:stop],
                targets[start:stop],
            )
            for i, (start, stop) in enumerate(shards)
        ]
        results = [f.result() for f in futures]
        fault_point(SITE_ENGINE_REDUCE, kind="mlp")
        loss = float(sum(w * r[0] for w, r in zip(weights, results)))
        reduced: List[Tuple[np.ndarray, np.ndarray]] = []
        for li, layer in enumerate(network.layers):
            gw = self._reduce(
                [r[1][li][0] for r in results], weights,
                self._accumulator(f"mlp.gw{li}", layer.w.shape),
            )
            gb = self._reduce(
                [r[1][li][1] for r in results], weights,
                self._accumulator(f"mlp.gb{li}", layer.b.shape),
            )
            reduced.append((gw, gb))
        self.n_steps += 1
        return loss, reduced

    @staticmethod
    def _mlp_task(slot: _WorkerSlot, network, x: np.ndarray, targets: np.ndarray):
        fault_point(SITE_ENGINE_WORKER, worker=slot.index, kind="mlp")
        loss, grads = network.gradients_into(x, targets, slot.workspace)
        parked = []
        for li, (gw, gb) in enumerate(grads):
            pw = slot.out(f"mlp.gw{li}", gw.shape)
            pb = slot.out(f"mlp.gb{li}", gb.shape)
            np.copyto(pw, gw)
            np.copyto(pb, gb)
            parked.append((pw, pb))
        return loss, parked

    def supervised_step(
        self, network, x: np.ndarray, targets: np.ndarray, learning_rate: float
    ) -> float:
        """One synchronized parallel back-propagation update; returns loss."""
        loss, grads = self.supervised_gradients(network, x, targets)
        network.apply_update(grads, learning_rate, workspace=self._coord_ws)
        return loss

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ParallelGradientEngine({self.name!r}, n_workers={self.n_workers}, "
            f"blas_threads={self.blas_threads}, {self.n_steps} steps, {state})"
        )


# ---------------------------------------------------------------------------
# background chunk prefetcher (paper Fig. 5, executable)
# ---------------------------------------------------------------------------

class PrefetchError(ConfigurationError):
    """The loader thread raised; re-raised on the consumer side."""


class ChunkPrefetcher:
    """Background loader thread with a bounded multi-buffer chunk queue.

    "While the loading thread is loading data into the i-th data chunk,
    our training thread can use the (i−1)-th data chunk to train."  The
    loader calls ``load_chunk(i)`` for ``i in range(n_chunks)``; a slot
    semaphore of ``n_buffers`` permits enforces the paper's finite staging
    buffer — a permit is held from the moment chunk *i*'s load begins
    until the consumer has *finished computing* on chunk *i*, which is
    precisely the slot rule of the analytic
    :meth:`~repro.runtime.offload.OffloadPipeline.run_analytic`
    recurrence, so the measured :meth:`timeline` is directly comparable.

    Use as a context manager and iterate::

        with ChunkPrefetcher(load, n_chunks=10, n_buffers=2) as pf:
            for chunk in pf:
                train_on(chunk)
        tl = pf.timeline()     # measured OffloadTimeline

    Loader exceptions surface in the consuming thread as
    :class:`PrefetchError` — even when the loader dies *between* a slot
    acquire and the publish (the failure path shuts the pipeline down
    cleanly instead of leaving the consumer blocked on an empty queue).
    Breaking out of the loop early (or an exception in the training code)
    stops the loader at the next chunk boundary and :meth:`close` joins it.

    ``retries`` > 0 re-attempts a failed ``load_chunk(i)`` call with
    exponential backoff (``retry_backoff_s``, doubling per attempt) before
    declaring the chunk lost — the paper's PCIe staging link is exactly
    the kind of level where transient faults are worth absorbing.
    """

    def __init__(
        self,
        load_chunk: Callable[[int], object],
        n_chunks: int,
        n_buffers: int = 2,
        name: str = "prefetch",
        clock: Callable[[], float] = time.perf_counter,
        retries: int = 0,
        retry_backoff_s: float = 0.02,
    ):
        if n_chunks < 1:
            raise ConfigurationError(f"n_chunks must be >= 1, got {n_chunks}")
        if n_buffers < 1:
            raise ConfigurationError(f"n_buffers must be >= 1, got {n_buffers}")
        if retries < 0 or retry_backoff_s < 0:
            raise ConfigurationError("retries and retry_backoff_s must be >= 0")
        self._load = load_chunk
        self.n_chunks = int(n_chunks)
        self.n_buffers = int(n_buffers)
        self.name = str(name)
        self.retries = int(retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.load_attempts = 0
        self._clock = clock
        # The slot/semaphore discipline lives in the shared
        # BoundedSlotQueue (extracted from this class — see
        # repro.runtime.slotqueue); the prefetcher keeps the chunk
        # bookkeeping, retries, and timeline measurement.
        self._sq = BoundedSlotQueue(self.n_buffers, name=f"{self.name}-slots")
        self._thread: Optional[threading.Thread] = None
        self._t0: Optional[float] = None
        self._consumed = 0
        n = self.n_chunks
        self._transfer_start: List[Optional[float]] = [None] * n
        self._transfer_end: List[Optional[float]] = [None] * n
        self._compute_start: List[Optional[float]] = [None] * n
        self._compute_end: List[Optional[float]] = [None] * n

    # ------------------------------------------------------------------
    def start(self) -> "ChunkPrefetcher":
        """Launch the loader thread (idempotent; ``__iter__`` calls it)."""
        if self._thread is None:
            self._t0 = self._clock()
            self._thread = threading.Thread(
                target=self._loader, name=f"{self.name}-loader", daemon=True
            )
            self._thread.start()
        return self

    def _now(self) -> float:
        return self._clock() - self._t0

    def _load_with_retries(self, i: int):
        """One chunk load with bounded exponential-backoff retries."""
        delay = self.retry_backoff_s
        for attempt in range(self.retries + 1):
            try:
                fault_point(SITE_PREFETCH_LOAD, chunk=i, attempt=attempt)
                self.load_attempts += 1
                return self._load(i)
            except Exception:
                # Only plain Exceptions are considered transient; the last
                # attempt's failure propagates to the consumer unchanged.
                if attempt == self.retries or self._sq.closed:
                    raise
                time.sleep(delay)
                delay *= 2.0

    def _loader(self) -> None:
        # The whole loop body is guarded: *any* failure on the loader
        # thread — the load itself, an injected fault between slot-acquire
        # and publish, even the timestamp clock — must end with the error
        # sentinel on the queue, never with a silently dead thread while
        # the consumer blocks on queue.get() forever.
        try:
            for i in range(self.n_chunks):
                # The polled slot acquire lets close() interrupt a stalled
                # loader (consumer gone, all buffers full).
                if not self._sq.acquire():
                    return
                if self._sq.closed:
                    return
                self._transfer_start[i] = self._now()
                data = self._load_with_retries(i)
                data = fault_transform(SITE_PREFETCH_CHUNK, data, chunk=i)
                self._transfer_end[i] = self._now()
                self._sq.put((i, data))
        except BaseException as exc:
            self._sq.put_error(exc)

    def __enter__(self) -> "ChunkPrefetcher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop the loader (releasing it from any stall) and join it."""
        self._sq.close()
        if self._thread is not None:
            self._thread.join()

    # ------------------------------------------------------------------
    def _next_item(self):
        """Blocking queue get that cannot outlive the loader thread.

        The underlying :class:`~repro.runtime.slotqueue.BoundedSlotQueue`
        polls with a timeout and detects a loader found dead with the
        queue empty (it should be impossible to die without publishing
        the error sentinel, but a hard kill can do it); both failure
        shapes are translated to :class:`PrefetchError` here instead of
        blocking forever.
        """
        alive = None if self._thread is None else self._thread.is_alive
        try:
            return self._sq.get(producer_alive=alive)
        except SlotQueueProducerFailed:
            raise PrefetchError(
                f"{self.name} loader failed on chunk "
                f"{self._consumed}: {self._sq.error!r}"
            ) from self._sq.error
        except (SlotQueueProducerDead, SlotQueueClosed):
            raise PrefetchError(
                f"{self.name} loader thread died without publishing "
                f"chunk {self._consumed}"
            ) from self._sq.error

    def __iter__(self):
        self.start()
        for _ in range(self.n_chunks):
            index, data = self._next_item()
            self._compute_start[index] = self._now()
            try:
                yield data
            finally:
                self._compute_end[index] = self._now()
                self._consumed += 1
                self._sq.release()

    # ------------------------------------------------------------------
    @property
    def chunks_consumed(self) -> int:
        return self._consumed

    def timeline(self) -> OffloadTimeline:
        """Measured pipeline timeline in the simulator's vocabulary.

        Requires the full iteration to have completed, so the overlap
        statistics (:attr:`~repro.runtime.offload.OffloadTimeline.trainer_idle_s`,
        exposed-transfer fractions) are comparable to
        :meth:`OffloadPipeline.run_analytic
        <repro.runtime.offload.OffloadPipeline.run_analytic>` on the same
        chunk parameters.
        """
        if self._consumed < self.n_chunks:
            raise ConfigurationError(
                f"timeline() needs all {self.n_chunks} chunks consumed, "
                f"got {self._consumed}"
            )
        events = [
            ChunkEvent(
                i,
                self._transfer_start[i],
                self._transfer_end[i],
                self._compute_start[i],
                self._compute_end[i],
            )
            for i in range(self.n_chunks)
        ]
        return OffloadTimeline(
            chunks=events,
            total_s=self._compute_end[self.n_chunks - 1],
            transfer_total_s=sum(
                e.transfer_end - e.transfer_start for e in events
            ),
            compute_total_s=sum(
                e.compute_end - e.compute_start for e in events
            ),
        )

    def __repr__(self) -> str:
        return (
            f"ChunkPrefetcher({self.name!r}, {self._consumed}/{self.n_chunks} "
            f"chunks, n_buffers={self.n_buffers})"
        )
