"""Process-backed shared-memory gradient engine (beats the GIL for real).

:class:`~repro.runtime.executor.ParallelGradientEngine` parallelises with
*threads*: it only wins when BLAS releases the GIL inside large GEMMs.
``BENCH_parallel.json`` shows the failure mode — at W=2 on small shards
the thread engine is *slower* than serial.  This module is the fix: the
same engine protocol, but each worker is a long-lived **process**, so the
shard compute (including all the pure-Python glue around the kernels)
runs on its own core regardless of the GIL.

Design (CHAOS worker-private gradients + the paper's §IV.A–B synchronized
update, carried across process boundaries):

* **Shared-memory arena** — parameters, staged mini-batches, the global
  ρ̂ vector, and every worker's gradient accumulators live in named
  ``multiprocessing.shared_memory`` segments with ``np.ndarray`` views on
  both sides.  The hot path pickles *nothing*: only small control dicts
  (op name, segment indices, shard bounds, an RNG state for CD) cross the
  pipe.  Models are pickled **once** at registration; the worker rebinds
  their parameter arrays to the shared segments, so later parameter
  updates are one coordinator-side ``memcpy`` into the segment.

* **Slot-bound workers** — shard *i* always runs on worker process *i*
  with a worker-private :class:`~repro.runtime.workspace.Workspace` and a
  BLAS budget from :func:`repro.runtime.threads.recommended_blas_threads`
  (env vars are pinned around ``Process.start()`` so spawn children
  configure their BLAS pools before NumPy loads).  The worker entry point
  is the module-level :func:`_worker_main`, so every start method
  (``fork``/``spawn``/``forkserver``) works.

* **Determinism contract** — identical to the thread engine: balanced
  contiguous shards, reduction as a daxpy chain in worker-index order on
  the coordinator, worker *i* draws from RNG stream *i*.  The streams are
  *owned by the coordinator*: a CD task ships stream *i*'s exact state to
  worker *i* and the advanced state travels back, so
  :meth:`capture_rng_streams`/:meth:`restore_rng_streams` (and therefore
  crash-consistent checkpoint/resume) behave byte-for-byte like the
  thread engine.  At fixed W, thread and process engines produce
  bit-identical gradients.

* **Fault sites** — the existing ``engine.worker``/``engine.reduce``
  sites fire on the coordinator (immediately before dispatching worker
  *i*'s shard, and after the join before the reduction), so every chaos
  drill written against the thread engine runs unchanged.

* **Failure containment** — a dead worker process surfaces as
  :class:`EngineError` on the next send/receive (liveness-checked
  polling; never a hang), and :meth:`close` always unlinks every segment.

:func:`make_engine` picks a backend (``"auto"``/``"thread"``/
``"process"``/``"serial"``) from the core count, problem size, and — on
free-threaded builds (PEP 703) — whether the GIL is actually enabled
(see :mod:`repro.runtime.freethreading`).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import traceback
import uuid
from concurrent.futures import Future
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.runtime.executor import (
    SITE_ENGINE_REDUCE,
    SITE_ENGINE_WORKER,
    ExecutorClosedError,
    ParallelGradientEngine,
)
from repro.runtime.linalg import axpy_into
from repro.runtime.threads import (
    BLAS_ENV_VARS,
    available_cores,
    blas_thread_limit,
    recommended_blas_threads,
)
from repro.runtime.workspace import Workspace
from repro.testing.faults import fault_point
from repro.utils.rng import SeedLike, spawn_streams

#: Prefix of every segment this module creates (the conftest leak guard
#: scans ``/dev/shm`` for it after each test).
SHM_PREFIX = "repro-shm"

#: ``make_engine("auto")`` stays serial below this many batch cells
#: (examples × visible units): tiny problems are dominated by dispatch
#: overhead on any backend.
AUTO_SERIAL_CUTOFF = 1 << 15


class EngineError(ReproError):
    """A worker process died or became unreachable mid-step."""


# ---------------------------------------------------------------------------
# parameter plumbing shared by both sides of the pipe
# ---------------------------------------------------------------------------

def _param_paths(kind: str, model) -> List[Tuple]:
    """Attribute paths of ``model``'s trainable arrays, in a fixed order."""
    if kind == "sae":
        return [("w1",), ("b1",), ("w2",), ("b2",)]
    if kind == "rbm":
        return [("w",), ("b",), ("c",)]
    if kind == "mlp":
        paths: List[Tuple] = []
        for li in range(len(model.layers)):
            paths.append(("layers", li, "w"))
            paths.append(("layers", li, "b"))
        return paths
    raise ConfigurationError(f"unknown model kind {kind!r}")


def _get_param(model, path: Tuple) -> np.ndarray:
    obj = model
    for part in path[:-1]:
        obj = obj[part] if isinstance(part, int) else getattr(obj, part)
    return getattr(obj, path[-1])


def _set_param(model, path: Tuple, value: np.ndarray) -> None:
    obj = model
    for part in path[:-1]:
        obj = obj[part] if isinstance(part, int) else getattr(obj, part)
    setattr(obj, path[-1], value)


# ---------------------------------------------------------------------------
# worker side (module-level, hence spawn-safe)
# ---------------------------------------------------------------------------

def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a coordinator-created segment.

    Workers are ``multiprocessing`` children of a coordinator that
    started the resource tracker before spawning them, so they share its
    tracker process: the attach-side ``register`` (unconditional before
    Python 3.13's ``track=``) is a set no-op there, and workers never
    ``unlink``, so no unregister workaround is needed — calling it would
    instead *remove* the coordinator's registration and break the
    tracker's crash cleanup.
    """
    return shared_memory.SharedMemory(name=name)


def _handle(msg: dict, segments: List[np.ndarray], models: Dict[int, object],
            ws: Workspace):
    """Execute one control message against the attached segment views.

    Pure function of worker-local state — also exercised in-process by the
    unit tests (``segments`` may then be plain arrays).
    """
    op = msg["op"]
    if op == "register":
        model = msg["model_pickle"]
        for path, idx in msg["params"]:
            _set_param(model, tuple(path), segments[idx])
        models[msg["model"]] = model
        return None
    if op == "call":
        fn = msg["fn"]
        return fn(*msg.get("args", ()), **msg.get("kwargs", {}))
    if op not in ("sae_rho", "sae_grad", "cd", "mlp"):
        raise ConfigurationError(f"unknown engine op {op!r}")
    model = models[msg["model"]]
    if op == "sae_rho":
        shard = segments[msg["x"]][msg["lo"]:msg["hi"]]
        model.mean_hidden_into(shard, ws, out=segments[msg["out"]])
        return None
    if op == "sae_grad":
        from repro.nn.autoencoder import AutoencoderGradients

        shard = segments[msg["x"]][msg["lo"]:msg["hi"]]
        rho = None if msg["rho"] is None else segments[msg["rho"]]
        grads = AutoencoderGradients(*(segments[i] for i in msg["out"]))
        loss, _ = model.gradients_into(shard, ws, out=grads, rho_hat=rho)
        return float(loss)
    if op == "cd":
        from repro.runtime.checkpoint import capture_rng, restore_rng

        gen = restore_rng(msg["rng"])
        shard = segments[msg["x"]][msg["lo"]:msg["hi"]]
        stats = model.contrastive_divergence(
            shard, k=msg["k"], rng=gen,
            sample_visible=msg["sample_visible"], workspace=ws,
        )
        gw, gb, gc = (segments[i] for i in msg["out"])
        np.copyto(gw, stats.grad_w)
        np.copyto(gb, stats.grad_b)
        np.copyto(gc, stats.grad_c)
        return float(stats.reconstruction_error), capture_rng(gen)
    # op == "mlp" (the guard above rejects everything else)
    x = segments[msg["x"]][msg["lo"]:msg["hi"]]
    targets = segments[msg["t"]][msg["lo"]:msg["hi"]]
    loss, grads = model.gradients_into(x, targets, ws)
    for (gw, gb), (iw, ib) in zip(grads, msg["out"]):
        np.copyto(segments[iw], gw)
        np.copyto(segments[ib], gb)
    return float(loss)


def _worker_main(index: int, conn, blas_threads: Optional[int], name: str) -> None:
    """Long-lived slot process: receive control messages until ``close``.

    Replies are ``("ok", payload)`` or ``("err", pickled_exc, traceback)``
    — exactly one reply per task message, so the pipes stay aligned even
    through worker-side exceptions.
    """
    if blas_threads is not None:
        try:
            blas_thread_limit(blas_threads).__enter__()
        except Exception:  # pragma: no cover - budget is best-effort
            pass
    ws = Workspace(name=f"{name}.worker{index}")
    segments: List[np.ndarray] = []
    shms: List[shared_memory.SharedMemory] = []
    models: Dict[int, object] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # coordinator died: exit quietly
                return
            if msg.get("op") == "close":
                return
            try:
                for seg_name, shape, dtype in msg.get("segments", ()):
                    shm = _attach_segment(seg_name)
                    shms.append(shm)
                    segments.append(
                        np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                                   buffer=shm.buf)
                    )
                reply = ("ok", _handle(msg, segments, models, ws))
            except BaseException as exc:
                try:
                    payload = pickle.dumps(exc)
                except Exception:
                    payload = None
                reply = ("err", payload, traceback.format_exc())
            try:
                conn.send(reply)
            except (EOFError, OSError, ValueError):  # pragma: no cover
                return
    finally:
        del segments, models
        for shm in shms:
            try:
                shm.close()
            except Exception:  # pragma: no cover
                pass


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------

class _SharedArena:
    """Coordinator-owned registry of named shared-memory segments.

    Segments are keyed by ``(tag, shape)`` like the thread engine's
    accumulators and allocated lazily in a global creation order; workers
    learn about new segments through per-message descriptor lists and
    address them by index, so steady-state messages carry only integers.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        #: ``(shm_name, shape, dtype_str)`` in creation order
        self.descriptors: List[Tuple[str, Tuple[int, ...], str]] = []
        self._by_key: Dict[Tuple, Tuple[int, np.ndarray]] = {}
        self._shms: List[shared_memory.SharedMemory] = []

    def get(self, tag: str, shape: Tuple[int, ...],
            dtype=np.float64) -> Tuple[int, np.ndarray]:
        """Index and coordinator view of the segment for ``(tag, shape)``."""
        shape = tuple(int(s) for s in shape)
        hit = self._by_key.get((tag, shape))
        if hit is not None:
            return hit
        dt = np.dtype(dtype)
        index = len(self.descriptors)
        shm = shared_memory.SharedMemory(
            create=True,
            size=max(int(np.prod(shape)) * dt.itemsize, 1),
            name=f"{self.prefix}-{index}",
        )
        view = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        self._shms.append(shm)
        self.descriptors.append((shm.name, shape, dt.str))
        self._by_key[(tag, shape)] = (index, view)
        return index, view

    def close(self) -> None:
        """Release the coordinator mappings and unlink every segment name."""
        self._by_key.clear()
        shms, self._shms = self._shms, []
        self.descriptors = []
        for shm in shms:
            try:
                shm.close()
            except BufferError:  # a live ndarray still exports the buffer;
                pass             # the mapping dies with the process —
            except Exception:    # unlinking the *name* below is what the
                pass             # leak guard (and the OS) care about
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:  # pragma: no cover
                pass


class _ModelEntry:
    """Registration record: one model replicated into worker processes."""

    __slots__ = ("seq", "kind", "model", "params")

    def __init__(self, seq: int, kind: str, model, params):
        self.seq = seq
        self.kind = kind
        self.model = model  # strong ref: keeps id(model) stable
        self.params = params  # [(path, segment_index, coordinator_view)]


@contextmanager
def _pinned_blas_env(limit: Optional[int]):
    """Pin the BLAS env knobs while spawning workers (restored after).

    Spawn-method children import NumPy fresh, so the variables must be in
    the environment *before* ``Process.start()``; fork children inherit
    the parent's already-initialised pools and rely on the worker-side
    :func:`blas_thread_limit` (a no-op without threadpoolctl — pin the
    env before the first ``import numpy``, as ``benchmarks/`` does, to
    cover that case).
    """
    if limit is None:
        yield
        return
    saved = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
    for var in BLAS_ENV_VARS:
        os.environ[var] = str(int(limit))
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


class ProcessGradientEngine:
    """Data-parallel gradient execution across W slot-bound worker *processes*.

    Drop-in protocol twin of
    :class:`~repro.runtime.executor.ParallelGradientEngine`:
    ``sae_gradients``/``sae_step`` (two-phase global ρ̂), ``cd_gradients``/
    ``cd_step`` (per-worker RNG streams), ``supervised_gradients``/
    ``supervised_step``, ``flat_objective``, ``coordinator_workspace``,
    ``capture_rng_streams``/``restore_rng_streams``, ``submit``/
    ``run_tasks``, ``close``.  ``pretrain(engine=)``, ``finetune(engine=)``,
    the :mod:`repro.train` adapters, checkpoint/resume, and the chaos
    drills run unchanged on either engine.

    Parameters
    ----------
    n_workers:
        Worker process count; defaults to the affinity-visible core count.
    blas_threads:
        BLAS threads *per worker process*.  ``"auto"`` budgets
        ``cores // n_workers``; ``None`` leaves the workers' runtimes
        untouched; an int pins explicitly.
    seed:
        Root seed for the per-worker RNG streams (coordinator-owned).
    name:
        Label for process/workspace names and error messages.
    mp_context:
        Start method (``"fork"``/``"spawn"``/``"forkserver"``); default
        prefers ``fork`` where available (fastest startup — spawn pays an
        interpreter + import per worker) while staying fully spawn-safe.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        blas_threads="auto",
        seed: SeedLike = 0,
        name: str = "procengine",
        mp_context: Optional[str] = None,
    ):
        if n_workers is None:
            n_workers = available_cores()
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.name = str(name)
        self.n_workers = int(n_workers)
        if blas_threads == "auto":
            blas_threads = (
                recommended_blas_threads(self.n_workers)
                if self.n_workers > 1 else None
            )
        self.blas_threads = blas_threads
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        try:
            ctx = mp.get_context(mp_context)
        except ValueError as exc:
            raise ConfigurationError(f"unknown mp_context {mp_context!r}") from exc
        self.mp_context = mp_context

        self._arena = _SharedArena(
            f"{SHM_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        self._procs: List = []
        self._conns: List = []
        self._known: List[int] = []  # per worker: descriptors already sent
        self._closed = False
        self._broken: Optional[str] = None
        try:  # pragma: no branch
            # Start the resource tracker *before* the workers exist so
            # they inherit (fork) or receive (spawn) its fd and share it.
            # A worker that lazily starts its own tracker would warn about
            # — and try to unlink — segments the coordinator still owns.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - platform dependent
                pass
            with _pinned_blas_env(
                self.blas_threads if isinstance(self.blas_threads, int) else None
            ):
                for i in range(self.n_workers):
                    parent_conn, child_conn = ctx.Pipe()
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(i, child_conn, self.blas_threads, self.name),
                        name=f"{self.name}-proc-{i}",
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    self._procs.append(proc)
                    self._conns.append(parent_conn)
                    self._known.append(0)
        except BaseException:
            self.close()
            raise
        self._streams = spawn_streams(seed, self.n_workers)
        self._coord_ws = Workspace(name=f"{self.name}.coordinator")
        self._acc: Dict[Tuple, np.ndarray] = {}
        self._models: Dict[int, _ModelEntry] = {}
        self._rr = 0
        self.n_steps = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers, close the pipes, and unlink every segment."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send({"op": "close"})
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:  # pragma: no cover
                pass
        self._models.clear()
        self._arena.close()

    def __enter__(self) -> "ProcessGradientEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            if not getattr(self, "_closed", True):
                self.close()
        except Exception:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def coordinator_workspace(self) -> Workspace:
        """Coordinator arena for synchronized ``apply_update`` calls."""
        return self._coord_ws

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutorClosedError(f"{self.name} has been closed")
        if self._broken is not None:
            raise EngineError(
                f"{self.name} is unusable after a worker failure: {self._broken}"
            )

    # ------------------------------------------------------------------
    # RNG stream snapshots (crash-consistent checkpoint/resume)
    # ------------------------------------------------------------------
    def capture_rng_streams(self) -> List[dict]:
        """Exact positions of the W worker streams (JSON-serialisable)."""
        from repro.runtime.checkpoint import capture_streams

        return capture_streams(self._streams)

    def restore_rng_streams(self, states: Sequence[dict]) -> None:
        """Rewind the streams to a :meth:`capture_rng_streams` snapshot."""
        from repro.runtime.checkpoint import restore_streams_into

        restore_streams_into(self._streams, states)

    # ------------------------------------------------------------------
    # control-message transport
    # ------------------------------------------------------------------
    def _fail(self, worker: int, detail: str, cause=None) -> "EngineError":
        self._broken = f"worker {worker} {detail}"
        err = EngineError(f"{self.name} worker {worker} {detail}")
        if cause is not None:
            err.__cause__ = cause
        return err

    def _send(self, i: int, payload: dict) -> None:
        fresh = self._arena.descriptors[self._known[i]:]
        if fresh:
            payload = dict(payload, segments=fresh)
        try:
            self._conns[i].send(payload)
        except (OSError, ValueError) as exc:
            raise self._fail(i, f"is unreachable ({exc})", exc)
        self._known[i] = len(self._arena.descriptors)

    def _recv(self, i: int):
        conn, proc = self._conns[i], self._procs[i]
        while True:
            try:
                if conn.poll(0.05):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise self._fail(i, "died mid-task (pipe closed)", exc)
            if not proc.is_alive():
                try:  # drain a reply that raced with the liveness check
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise self._fail(i, f"died (exit code {proc.exitcode})")

    def _collect(self, sent: Sequence[int]) -> List:
        replies = [self._recv(i) for i in sent]
        payloads = []
        for i, reply in zip(sent, replies):
            if reply[0] == "err":
                exc = None
                if reply[1] is not None:
                    try:
                        exc = pickle.loads(reply[1])
                    except Exception:
                        exc = None
                if isinstance(exc, BaseException):
                    raise exc
                raise EngineError(
                    f"{self.name} worker {i} failed:\n{reply[2]}"
                )
            payloads.append(reply[1])
        return payloads

    def _drain(self, sent: Sequence[int]) -> None:
        """Discard outstanding replies so the pipes stay task-aligned."""
        for i in sent:
            try:
                self._recv(i)
            except EngineError:
                pass

    def _run_shard_tasks(self, msgs: Sequence[Tuple[int, dict]], kind: str) -> List:
        """Dispatch shard tasks (firing ``engine.worker`` per shard), collect.

        The fault site fires on the coordinator immediately before worker
        *i*'s dispatch — same per-worker visit counting as the thread
        engine, which fires inside the task before computing.  If a fault
        (or send failure) interrupts mid-dispatch, the already-sent tasks
        are drained before re-raising so the engine stays consistent.
        """
        sent: List[int] = []
        try:
            for i, payload in msgs:
                fault_point(SITE_ENGINE_WORKER, worker=i, kind=kind)
                self._send(i, payload)
                sent.append(i)
        except BaseException:
            self._drain(sent)
            raise
        return self._collect(sent)

    # ------------------------------------------------------------------
    # generic submission (used by TaskGraph.execute)
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Run picklable ``fn`` on the next worker (round-robin).

        Synchronous: the returned future is already resolved.  Correct for
        :meth:`TaskGraph.execute <repro.runtime.taskgraph.TaskGraph.execute>`
        (wavefronts complete in submission order), just without cross-task
        overlap — shard dispatch, not ``submit``, is this engine's hot path.
        """
        self._check_open()
        i = self._rr % self.n_workers
        self._rr += 1
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            self._send(i, {"op": "call", "fn": fn, "args": args, "kwargs": kwargs})
            future.set_result(self._collect([i])[0])
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def run_tasks(self, fns: Sequence[Callable]) -> List:
        """Execute picklable callables across the workers; ordered results."""
        self._check_open()
        sent: List[int] = []
        for fn in fns:
            i = self._rr % self.n_workers
            self._rr += 1
            self._send(i, {"op": "call", "fn": fn, "args": (), "kwargs": {}})
            sent.append(i)
        return self._collect(sent)

    # ------------------------------------------------------------------
    # shard plumbing (identical maths to the thread engine)
    # ------------------------------------------------------------------
    _shards = ParallelGradientEngine._shards
    _reduce = staticmethod(ParallelGradientEngine._reduce)
    _as_batch = staticmethod(ParallelGradientEngine._as_batch)

    def _accumulator(self, tag: str, shape: Tuple[int, ...]) -> np.ndarray:
        key = (tag, tuple(int(s) for s in shape))
        arr = self._acc.get(key)
        if arr is None:
            arr = np.empty(key[1])
            self._acc[key] = arr
        return arr

    def _ensure_model(self, model, kind: str) -> _ModelEntry:
        """Register ``model`` with every worker (one-time pickle), memoised."""
        entry = self._models.get(id(model))
        if entry is not None:
            return entry
        seq = len(self._models)
        params = []
        for path in _param_paths(kind, model):
            arr = _get_param(model, path)
            tag = f"m{seq}." + ".".join(str(p) for p in path)
            idx, view = self._arena.get(tag, arr.shape)
            params.append((path, idx, view))
        entry = _ModelEntry(seq, kind, model, params)
        payload = {
            "op": "register",
            "model": seq,
            "model_pickle": model,
            "params": [(path, idx) for path, idx, _ in params],
        }
        sent = []
        for i in range(self.n_workers):
            self._send(i, payload)
            sent.append(i)
        self._collect(sent)
        self._models[id(model)] = entry
        return entry

    def _sync_params(self, entry: _ModelEntry) -> None:
        """Publish the model's *current* parameters into shared memory.

        Runs before every gradient call: external mutation — an
        ``apply_update`` on the coordinator, a checkpoint restore that
        rebinds the arrays, ``enable_flat_views`` — must be visible to the
        workers without re-registration.
        """
        for path, _idx, view in entry.params:
            np.copyto(view, _get_param(entry.model, path))

    def _stage_batch(self, label: str, x: np.ndarray) -> int:
        idx, view = self._arena.get(f"batch.{label}", x.shape)
        np.copyto(view, x)
        return idx

    def _worker_out(self, entry: _ModelEntry, tag: str, worker: int,
                    shape: Tuple[int, ...]) -> Tuple[int, np.ndarray]:
        return self._arena.get(f"m{entry.seq}.{tag}.w{worker}", shape)

    # ------------------------------------------------------------------
    # sparse autoencoder
    # ------------------------------------------------------------------
    def sae_gradients(
        self,
        model,
        x: np.ndarray,
        out=None,
    ):
        """Full-batch loss and gradient of ``model`` on ``x``, data-parallel.

        Same contract and same arithmetic as the thread engine's
        :meth:`~repro.runtime.executor.ParallelGradientEngine.sae_gradients`
        — two-phase global ρ̂ when the KL penalty is active, shard weights
        ``mᵢ/m``, in-order daxpy reduction — so the result is bit-identical
        at fixed W and ≤1e-10 from the serial full-batch gradient.
        """
        from repro.nn.autoencoder import AutoencoderGradients

        self._check_open()
        x = self._as_batch(x, model.n_visible, "x")
        m = x.shape[0]
        shards = self._shards(m)
        weights = [(stop - start) / m for start, stop in shards]
        entry = self._ensure_model(model, "sae")
        self._sync_params(entry)
        xi = self._stage_batch("x", x)
        h, v = model.n_hidden, model.n_visible
        if out is None:
            out = AutoencoderGradients(
                self._accumulator("sae.w1", (h, v)),
                self._accumulator("sae.b1", (h,)),
                self._accumulator("sae.w2", (v, h)),
                self._accumulator("sae.b2", (v,)),
            )
        shapes = ((h, v), (h,), (v, h), (v,))
        outs = [
            [self._worker_out(entry, f"g{j}", i, shape)
             for j, shape in enumerate(shapes)]
            for i in range(len(shards))
        ]

        rho_idx: Optional[int] = None
        if model.cost.sparsity_weight > 0.0 and len(shards) > 1:
            # Phase A: per-shard hidden means, combined into the batch ρ̂.
            rhos = [self._worker_out(entry, "rho", i, (h,))
                    for i in range(len(shards))]
            self._run_shard_tasks(
                [
                    (i, {"op": "sae_rho", "model": entry.seq, "x": xi,
                         "lo": lo, "hi": hi, "out": rhos[i][0]})
                    for i, (lo, hi) in enumerate(shards)
                ],
                "sae.rho",
            )
            rho_idx, rho_view = self._arena.get(f"m{entry.seq}.rho", (h,))
            self._reduce([view for _, view in rhos], weights, rho_view)

        losses = self._run_shard_tasks(
            [
                (i, {"op": "sae_grad", "model": entry.seq, "x": xi,
                     "lo": lo, "hi": hi, "rho": rho_idx,
                     "out": [idx for idx, _ in outs[i]]})
                for i, (lo, hi) in enumerate(shards)
            ],
            "sae",
        )
        fault_point(SITE_ENGINE_REDUCE, kind="sae")
        loss = float(sum(w * l for w, l in zip(weights, losses)))
        for j, target in enumerate((out.w1, out.b1, out.w2, out.b2)):
            self._reduce([outs[i][j][1] for i in range(len(shards))],
                         weights, target)
        self.n_steps += 1
        return loss, out

    def sae_step(self, model, x: np.ndarray, learning_rate: float) -> float:
        """One synchronized parallel SGD step; returns the batch loss."""
        loss, grads = self.sae_gradients(model, x)
        model.apply_update(grads, learning_rate, workspace=self._coord_ws)
        return loss

    def flat_objective(self, model) -> Callable:
        """``objective(theta, batch) -> (loss, grad)`` for :class:`repro.optim.sgd.SGD`."""
        model.enable_flat_views()

        def objective(theta: np.ndarray, batch: np.ndarray):
            np.copyto(model._flat_theta, np.asarray(theta, dtype=np.float64).ravel())
            loss, _ = self.sae_gradients(model, batch, out=model._flat_grad_views)
            return loss, model._flat_grad

        return objective

    # ------------------------------------------------------------------
    # RBM contrastive divergence
    # ------------------------------------------------------------------
    def cd_gradients(
        self,
        rbm,
        v0: np.ndarray,
        k: int = 1,
        sample_visible: bool = False,
    ):
        """Data-parallel CD-k statistics with deterministic worker streams.

        Worker *i* receives stream *i*'s exact state, samples its Gibbs
        chain, and ships the advanced state back; the coordinator's
        streams therefore track exactly what the thread engine's would,
        keeping checkpoint capture/restore engine-agnostic.
        """
        from repro.nn.rbm import CDStatistics
        from repro.runtime.checkpoint import capture_rng, restore_rng_into

        self._check_open()
        v0 = self._as_batch(v0, rbm.n_visible, "v0")
        m = v0.shape[0]
        shards = self._shards(m)
        weights = [(stop - start) / m for start, stop in shards]
        entry = self._ensure_model(rbm, "rbm")
        self._sync_params(entry)
        vi = self._stage_batch("v0", v0)
        nh, nv = rbm.n_hidden, rbm.n_visible
        shapes = ((nh, nv), (nv,), (nh,))
        outs = [
            [self._worker_out(entry, f"g{j}", i, shape)
             for j, shape in enumerate(shapes)]
            for i in range(len(shards))
        ]
        results = self._run_shard_tasks(
            [
                (i, {"op": "cd", "model": entry.seq, "x": vi,
                     "lo": lo, "hi": hi, "k": int(k),
                     "sample_visible": bool(sample_visible),
                     "rng": capture_rng(self._streams[i]),
                     "out": [idx for idx, _ in outs[i]]})
                for i, (lo, hi) in enumerate(shards)
            ],
            "rbm",
        )
        for i, (_err, state) in enumerate(results):
            restore_rng_into(self._streams[i], state)
        fault_point(SITE_ENGINE_REDUCE, kind="rbm")
        grad_w = self._reduce([outs[i][0][1] for i in range(len(shards))],
                              weights, self._accumulator("rbm.gw", (nh, nv)))
        grad_b = self._reduce([outs[i][1][1] for i in range(len(shards))],
                              weights, self._accumulator("rbm.gb", (nv,)))
        grad_c = self._reduce([outs[i][2][1] for i in range(len(shards))],
                              weights, self._accumulator("rbm.gc", (nh,)))
        err = float(sum(w * r[0] for w, r in zip(weights, results)))
        self.n_steps += 1
        return CDStatistics(grad_w, grad_b, grad_c, err)

    def cd_step(
        self,
        rbm,
        v0: np.ndarray,
        learning_rate: float,
        k: int = 1,
        sample_visible: bool = False,
    ):
        """One synchronized parallel CD-k update (Eq. 13)."""
        stats = self.cd_gradients(rbm, v0, k=k, sample_visible=sample_visible)
        rbm.apply_update(stats, learning_rate, workspace=self._coord_ws)
        return stats

    # ------------------------------------------------------------------
    # deep network (supervised fine-tuning)
    # ------------------------------------------------------------------
    def supervised_gradients(self, network, x: np.ndarray, targets: np.ndarray):
        """Data-parallel back-propagation through a :class:`~repro.nn.mlp.DeepNetwork`."""
        self._check_open()
        x = self._as_batch(x, network.n_in, "x")
        targets = self._as_batch(targets, network.n_out, "targets")
        if targets.shape[0] != x.shape[0]:
            raise ConfigurationError(
                f"x has {x.shape[0]} rows but targets has {targets.shape[0]}"
            )
        m = x.shape[0]
        shards = self._shards(m)
        weights = [(stop - start) / m for start, stop in shards]
        entry = self._ensure_model(network, "mlp")
        self._sync_params(entry)
        xi = self._stage_batch("x", x)
        ti = self._stage_batch("targets", targets)
        outs = [
            [
                (self._worker_out(entry, f"gw{li}", i, layer.w.shape),
                 self._worker_out(entry, f"gb{li}", i, layer.b.shape))
                for li, layer in enumerate(network.layers)
            ]
            for i in range(len(shards))
        ]
        losses = self._run_shard_tasks(
            [
                (i, {"op": "mlp", "model": entry.seq, "x": xi, "t": ti,
                     "lo": lo, "hi": hi,
                     "out": [(gw[0], gb[0]) for gw, gb in outs[i]]})
                for i, (lo, hi) in enumerate(shards)
            ],
            "mlp",
        )
        fault_point(SITE_ENGINE_REDUCE, kind="mlp")
        loss = float(sum(w * l for w, l in zip(weights, losses)))
        reduced: List[Tuple[np.ndarray, np.ndarray]] = []
        for li, layer in enumerate(network.layers):
            gw = self._reduce(
                [outs[i][li][0][1] for i in range(len(shards))], weights,
                self._accumulator(f"mlp.gw{li}", layer.w.shape),
            )
            gb = self._reduce(
                [outs[i][li][1][1] for i in range(len(shards))], weights,
                self._accumulator(f"mlp.gb{li}", layer.b.shape),
            )
            reduced.append((gw, gb))
        self.n_steps += 1
        return loss, reduced

    def supervised_step(
        self, network, x: np.ndarray, targets: np.ndarray, learning_rate: float
    ) -> float:
        """One synchronized parallel back-propagation update; returns loss."""
        loss, grads = self.supervised_gradients(network, x, targets)
        network.apply_update(grads, learning_rate, workspace=self._coord_ws)
        return loss

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "broken" if self._broken else "open"
        )
        return (
            f"ProcessGradientEngine({self.name!r}, n_workers={self.n_workers}, "
            f"blas_threads={self.blas_threads}, mp_context={self.mp_context!r}, "
            f"{self.n_steps} steps, {state})"
        )


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

_process_engine_probe: Optional[bool] = None


def process_engine_available() -> bool:
    """True when named shared-memory segments work on this platform.

    Probes once per process (create + unlink of a 16-byte segment);
    platforms without ``/dev/shm``-style support get ``False`` and the
    callers (``make_engine``, the benchmark) degrade to the thread engine.
    """
    global _process_engine_probe
    if _process_engine_probe is None:
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=16,
                name=f"{SHM_PREFIX}-probe-{os.getpid()}-{uuid.uuid4().hex[:8]}",
            )
            shm.close()
            shm.unlink()
            _process_engine_probe = True
        except Exception:
            _process_engine_probe = False
    return _process_engine_probe


def make_engine(
    mode: str = "auto",
    n_workers: Optional[int] = None,
    blas_threads="auto",
    seed: SeedLike = 0,
    name: str = "engine",
    problem_size: Optional[int] = None,
    **kwargs,
):
    """Build a gradient engine, or ``None`` for the serial path.

    ``mode``:

    * ``"serial"`` — ``None`` (callers treat a missing engine as serial);
    * ``"thread"`` — :class:`~repro.runtime.executor.ParallelGradientEngine`;
    * ``"process"`` — :class:`ProcessGradientEngine`;
    * ``"auto"`` — serial when fewer than 2 usable cores or fewer than 2
      workers would run, or when ``problem_size`` (batch × visible cells
      per update) is below :data:`AUTO_SERIAL_CUTOFF`; otherwise threads
      on free-threaded builds with the GIL off (real parallelism, zero
      IPC — see :mod:`repro.runtime.freethreading`), else processes where
      shared memory works, else threads.
    """
    mode = str(mode).lower()
    if mode not in ("auto", "thread", "process", "serial"):
        raise ConfigurationError(
            f"engine mode must be 'auto', 'thread', 'process' or 'serial', "
            f"got {mode!r}"
        )
    if mode == "serial":
        return None
    if mode == "thread":
        return ParallelGradientEngine(
            n_workers=n_workers, blas_threads=blas_threads, seed=seed, name=name
        )
    if mode == "process":
        return ProcessGradientEngine(
            n_workers=n_workers, blas_threads=blas_threads, seed=seed,
            name=name, **kwargs,
        )

    from repro.runtime.freethreading import gil_enabled

    cores = available_cores()
    workers = cores if n_workers is None else int(n_workers)
    if cores < 2 or workers < 2:
        return None
    if problem_size is not None and problem_size < AUTO_SERIAL_CUTOFF:
        return None
    if not gil_enabled():
        return ParallelGradientEngine(
            n_workers=workers, blas_threads=blas_threads, seed=seed, name=name
        )
    if process_engine_available():
        return ProcessGradientEngine(
            n_workers=workers, blas_threads=blas_threads, seed=seed,
            name=name, **kwargs,
        )
    return ParallelGradientEngine(
        n_workers=workers, blas_threads=blas_threads, seed=seed, name=name
    )
