"""Thin BLAS shims for the fused training kernels (paper §IV.B).

The paper's coprocessor port leans on MKL for every GEMM and on fused
vector updates for Eqs. 16–18.  NumPy alone cannot express two of the
idioms that matter on the hot path:

* ``C = α·A@B + β·C`` — GEMM *accumulation* (the negative CD phase, the
  1/m gradient scaling) without a second output buffer or an extra pass;
* ``y += α·x`` — a single-pass AXPY update without materialising ``α·x``.

When SciPy is importable we call the real BLAS (``dgemm``/``daxpy``)
through views chosen so no operand is ever copied; otherwise a NumPy
fallback produces the same results through caller-provided scratch
buffers, preserving the zero-allocation guarantee either way.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised implicitly by the whole hot path
    from scipy.linalg.blas import daxpy as _daxpy, dgemm as _dgemm

    HAVE_BLAS = True
except ImportError:  # pragma: no cover - CI installs scipy; keep a safety net
    _daxpy = _dgemm = None
    HAVE_BLAS = False


def _fortran_operand(x: np.ndarray):
    """Express matrix ``x`` as (array, transpose-flag) with Fortran layout.

    BLAS wants column-major operands; a C-contiguous matrix is its own
    transpose in column-major, so either orientation is reachable without
    a copy.  Returns None when ``x`` is neither C- nor F-contiguous.
    """
    if x.flags["F_CONTIGUOUS"]:
        return x, False
    if x.flags["C_CONTIGUOUS"]:
        return x.T, True
    return None


def gemm_into(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
    alpha: float = 1.0,
    beta: float = 0.0,
    scratch: np.ndarray = None,
) -> np.ndarray:
    """``out = alpha * a @ b + beta * out`` with no temporaries.

    ``out`` must be C-contiguous.  With SciPy the whole expression is one
    ``dgemm`` computed in transposed space (``outᵀ = α·bᵀaᵀ + β·outᵀ``,
    all operands passed as views).  The NumPy fallback needs ``scratch``
    (shaped like ``out``) only when ``beta != 0``.
    """
    if HAVE_BLAS and out.flags["C_CONTIGUOUS"]:
        fa = _fortran_operand(b.T)  # left operand of the transposed product
        fb = _fortran_operand(a.T)
        if fa is not None and fb is not None:
            res = _dgemm(
                alpha,
                fa[0],
                fb[0],
                beta=beta,
                c=out.T,
                trans_a=fa[1],
                trans_b=fb[1],
                overwrite_c=1,
            )
            if res.base is out or np.shares_memory(res, out):
                return out
            # dgemm fell back to a copy (unexpected layout); keep results.
            np.copyto(out.T, res)
            return out
    if beta == 0.0:
        np.dot(a, b, out=out)
        if alpha != 1.0:
            out *= alpha
        return out
    tmp = scratch if scratch is not None else np.empty_like(out)
    np.dot(a, b, out=tmp)
    if alpha != 1.0:
        tmp *= alpha
    if beta != 1.0:
        out *= beta
    out += tmp
    return out


def axpy_into(
    x: np.ndarray, y: np.ndarray, alpha: float, scratch: np.ndarray = None
) -> np.ndarray:
    """``y += alpha * x`` in one pass (BLAS daxpy) or via ``scratch``.

    Both arrays must be C-contiguous and same-shaped; ``scratch`` (shaped
    like ``x``) is only touched by the NumPy fallback.
    """
    if HAVE_BLAS and x.flags["C_CONTIGUOUS"] and y.flags["C_CONTIGUOUS"]:
        _daxpy(x.ravel(), y.ravel(), a=alpha)
        return y
    tmp = scratch if scratch is not None else np.empty_like(x)
    np.multiply(x, alpha, out=tmp)
    y += tmp
    return y


def dot_self(x: np.ndarray) -> float:
    """Σ x² as a single BLAS ddot pass (Frobenius-norm² without a temp)."""
    flat = x.ravel()
    return float(np.dot(flat, flat))
