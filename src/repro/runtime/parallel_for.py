"""OpenMP-style parallel-loop model (paper §IV.B.2).

The paper's granularity lesson — "the loop body is relatively small and
the time cost in synchronization accounts most of the total time.  We
finally combine several loops together to make the granularity more
suitable" — is a statement about this model: a parallel-for of n
iterations × b seconds of body across T threads costs

    max over threads of (its chunk's body time) + fork/join barrier

so speedup collapses when n·b is small relative to the barrier.  This
module makes that trade-off explicit and testable; the cost model's
per-kernel sync charges are the same phenomenon folded into kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ParallelForTiming:
    """Result of simulating one parallel loop."""

    body_s: float  # per-thread busy time (max chunk)
    sync_s: float  # fork/join cost
    serial_s: float  # what a single thread would have taken

    @property
    def total_s(self) -> float:
        return self.body_s + self.sync_s

    @property
    def speedup(self) -> float:
        """Serial time over parallel time."""
        return self.serial_s / self.total_s if self.total_s > 0 else float("inf")

    @property
    def efficiency(self) -> float:
        """Speedup per thread actually needed to achieve it."""
        if self.body_s <= 0:
            return 0.0
        implied_threads = self.serial_s / self.body_s
        return self.speedup / implied_threads if implied_threads > 0 else 0.0


def simulate_parallel_for(
    n_iterations: int,
    body_seconds: float,
    spec,
    n_threads: Optional[int] = None,
    schedule: str = "static",
    chunk_size: Optional[int] = None,
) -> ParallelForTiming:
    """Time an OpenMP-style ``parallel for`` on machine ``spec``.

    Parameters
    ----------
    n_iterations / body_seconds:
        Loop trip count and per-iteration body cost.
    n_threads:
        Defaults to all hardware threads.
    schedule:
        ``"static"`` — iterations pre-split into ⌈n/T⌉ blocks;
        ``"dynamic"`` — work-stealing with per-chunk dispatch cost, using
        ``chunk_size`` (default 1);
        ``"guided"`` — OpenMP's geometric schedule: chunk sizes start at
        n/T and halve toward ``chunk_size`` (default 1), giving dynamic
        balancing with ~T·log₂(n/T) dispatches instead of n.
    """
    if n_iterations < 1:
        raise ConfigurationError(f"n_iterations must be >= 1, got {n_iterations}")
    if body_seconds < 0:
        raise ConfigurationError(f"body_seconds must be >= 0, got {body_seconds}")
    threads = spec.max_threads if n_threads is None else n_threads
    if threads < 1:
        raise ConfigurationError(f"n_threads must be >= 1, got {threads}")
    threads = min(threads, spec.max_threads)

    serial = n_iterations * body_seconds
    if threads == 1:
        return ParallelForTiming(body_s=serial, sync_s=0.0, serial_s=serial)

    if schedule == "static":
        chunk = math.ceil(n_iterations / threads)
        body = chunk * body_seconds
        sync = spec.barrier_cost(threads)
    elif schedule == "dynamic":
        size = 1 if chunk_size is None else max(1, int(chunk_size))
        n_chunks = math.ceil(n_iterations / size)
        # Dynamic scheduling balances perfectly but pays a dispatch
        # (queue lock) per chunk, serialised through one counter.
        dispatch = 0.25 * spec.barrier_cost(2)  # one lock op, not a full barrier
        body = serial / threads + math.ceil(n_chunks / threads) * dispatch
        sync = spec.barrier_cost(threads) + dispatch * (n_chunks % threads)
    elif schedule == "guided":
        minimum = 1 if chunk_size is None else max(1, int(chunk_size))
        # Count the geometric chunk sequence: each grab takes
        # ceil(remaining / threads), floored at `minimum`.
        remaining = n_iterations
        n_chunks = 0
        while remaining > 0:
            grab = max(minimum, math.ceil(remaining / threads))
            remaining -= min(grab, remaining)
            n_chunks += 1
        dispatch = 0.25 * spec.barrier_cost(2)
        body = serial / threads + math.ceil(n_chunks / threads) * dispatch
        sync = spec.barrier_cost(threads)
    else:
        raise ConfigurationError(f"unknown schedule {schedule!r}")
    return ParallelForTiming(body_s=body, sync_s=sync, serial_s=serial)


def fused_loop_advantage(
    n_loops: int, n_iterations: int, body_seconds: float, spec, n_threads: Optional[int] = None
) -> float:
    """Seconds saved by fusing ``n_loops`` identical parallel loops into one.

    The fused loop runs the same total body work but pays one barrier
    instead of ``n_loops`` — the quantitative content of the paper's
    "Improved OpenMP+MKL" step.
    """
    if n_loops < 1:
        raise ConfigurationError(f"n_loops must be >= 1, got {n_loops}")
    separate = simulate_parallel_for(n_iterations, body_seconds, spec, n_threads)
    fused = simulate_parallel_for(n_iterations, body_seconds * n_loops, spec, n_threads)
    return n_loops * separate.total_s - fused.total_s
