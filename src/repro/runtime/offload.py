"""Double-buffered host→device offload pipeline (paper Fig. 5, §IV.A).

"We use a thread to load the data chunk from the host to the Intel Xeon
Phi so that our algorithm does not need to wait for loading new data when
finishing the process of training one large chunk … While the loading
thread is loading data into the i-th data chunk, our training thread can
use the (i−1)-th data chunk to train."

Two implementations of the same pipeline are provided and cross-checked
in the tests:

* an **analytic recurrence** (the classic two-stage pipeline formula with
  a finite buffer pool), and
* a **discrete-event simulation** driving loader/trainer callbacks through
  :class:`repro.phi.events.EventSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.phi.events import EventSimulator
from repro.phi.pcie import PCIeModel
from repro.testing.faults import fault_point, register_fault_site

SITE_OFFLOAD_CHUNK = register_fault_site(
    "offload.chunk", "before a chunk enters the simulated offload pipeline"
)


@dataclass(frozen=True)
class ChunkEvent:
    """Timeline record for one chunk's trip through the pipeline."""

    index: int
    transfer_start: float
    transfer_end: float
    compute_start: float
    compute_end: float


@dataclass
class OffloadTimeline:
    """Full pipeline timeline plus summary statistics."""

    chunks: List[ChunkEvent]
    total_s: float
    transfer_total_s: float
    compute_total_s: float

    @property
    def exposed_transfer_s(self) -> float:
        """Transfer seconds NOT hidden behind compute."""
        return max(0.0, self.total_s - self.compute_total_s)

    @property
    def transfer_fraction_unoverlapped(self) -> float:
        """Transfer share of wall time if nothing overlapped (paper's 17 %)."""
        serial = self.transfer_total_s + self.compute_total_s
        return self.transfer_total_s / serial if serial > 0 else 0.0

    @property
    def transfer_fraction_exposed(self) -> float:
        """Transfer share of wall time that actually remains visible."""
        return self.exposed_transfer_s / self.total_s if self.total_s > 0 else 0.0

    @property
    def trainer_idle_s(self) -> float:
        """Total time the training thread spent waiting for data."""
        idle = self.chunks[0].compute_start if self.chunks else 0.0
        for prev, cur in zip(self.chunks, self.chunks[1:]):
            idle += max(0.0, cur.compute_start - prev.compute_end)
        return idle


class OffloadPipeline:
    """Simulates chunked training with a dedicated loading thread.

    Parameters
    ----------
    pcie:
        Transfer model for the staging link.
    n_buffers:
        Device-side chunk slots ("we make part of the global memory as
        the loading buffer and set its size as several times as that of
        a data chunk").  1 = no overlap (load, then train); 2 = classic
        double buffering; more decouples jitter further.
    double_buffering:
        False forces strictly serial load→train regardless of
        ``n_buffers`` (the paper's unoptimized reference).
    """

    def __init__(self, pcie: PCIeModel, n_buffers: int = 2, double_buffering: bool = True):
        if n_buffers < 1:
            raise ConfigurationError(f"n_buffers must be >= 1, got {n_buffers}")
        self.pcie = pcie
        self.n_buffers = n_buffers if double_buffering else 1
        self.double_buffering = double_buffering and n_buffers > 1

    # ------------------------------------------------------------------
    def run_analytic(
        self, chunk_bytes: Sequence[float], compute_seconds: Sequence[float]
    ) -> OffloadTimeline:
        """Closed-form pipeline recurrence.

        transfer_i starts when the link is free AND a buffer slot is free
        (slot of chunk i−n_buffers has been fully consumed);
        compute_i starts when transfer_i is done AND compute_{i−1} is done.
        """
        n = self._validate(chunk_bytes, compute_seconds)
        transfer_times = [self.pcie.time(b) for b in chunk_bytes]

        events: List[ChunkEvent] = []
        link_free = 0.0
        compute_free = 0.0
        compute_ends: List[float] = []
        for i in range(n):
            fault_point(SITE_OFFLOAD_CHUNK, chunk=i)
            slot_free = 0.0
            if i >= self.n_buffers:
                slot_free = compute_ends[i - self.n_buffers]
            if not self.double_buffering:
                # Serial mode: the training thread itself loads the chunk.
                slot_free = max(slot_free, compute_free)
            t_start = max(link_free, slot_free)
            t_end = t_start + transfer_times[i]
            link_free = t_end
            c_start = max(t_end, compute_free)
            c_end = c_start + compute_seconds[i]
            compute_free = c_end
            compute_ends.append(c_end)
            events.append(ChunkEvent(i, t_start, t_end, c_start, c_end))
        return OffloadTimeline(
            chunks=events,
            total_s=compute_free,
            transfer_total_s=sum(transfer_times),
            compute_total_s=sum(compute_seconds),
        )

    def run_event_driven(
        self, chunk_bytes: Sequence[float], compute_seconds: Sequence[float]
    ) -> OffloadTimeline:
        """The same pipeline via the discrete-event engine (cross-check)."""
        n = self._validate(chunk_bytes, compute_seconds)
        transfer_times = [self.pcie.time(b) for b in chunk_bytes]
        sim = EventSimulator()

        transfer_end = [None] * n
        compute_end = [None] * n
        transfer_start = [None] * n
        compute_start = [None] * n
        state = {"loading": False, "computing": False}

        def try_start_transfer(i: int):
            if i >= n or state["loading"] or transfer_start[i] is not None:
                return
            # Buffer-slot availability: chunk i reuses the slot of chunk
            # i - n_buffers, which must be fully consumed.
            if i >= self.n_buffers and compute_end[i - self.n_buffers] is None:
                return
            if not self.double_buffering and i > 0 and compute_end[i - 1] is None:
                return
            state["loading"] = True
            transfer_start[i] = sim.now
            sim.schedule(transfer_times[i], finish_transfer, i)

        def finish_transfer(i: int):
            state["loading"] = False
            transfer_end[i] = sim.now
            try_start_compute(i)
            try_start_transfer(i + 1)

        def try_start_compute(i: int):
            if state["computing"] or compute_start[i] is not None:
                return
            if transfer_end[i] is None:
                return
            if i > 0 and compute_end[i - 1] is None:
                return
            state["computing"] = True
            compute_start[i] = sim.now
            sim.schedule(compute_seconds[i], finish_compute, i)

        def finish_compute(i: int):
            state["computing"] = False
            compute_end[i] = sim.now
            if i + 1 < n and transfer_end[i + 1] is not None:
                try_start_compute(i + 1)
            # A slot was just freed — the loader may proceed.
            try_start_transfer(i + self.n_buffers)
            if not self.double_buffering:
                try_start_transfer(i + 1)

        sim.schedule(0.0, try_start_transfer, 0)
        total = sim.run()
        events = [
            ChunkEvent(i, transfer_start[i], transfer_end[i], compute_start[i], compute_end[i])
            for i in range(n)
        ]
        return OffloadTimeline(
            chunks=events,
            total_s=total,
            transfer_total_s=sum(transfer_times),
            compute_total_s=sum(compute_seconds),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(chunk_bytes, compute_seconds) -> int:
        if len(chunk_bytes) != len(compute_seconds):
            raise ConfigurationError(
                f"{len(chunk_bytes)} chunks but {len(compute_seconds)} compute times"
            )
        if len(chunk_bytes) == 0:
            raise ConfigurationError("pipeline needs at least one chunk")
        if any(b <= 0 for b in chunk_bytes) or any(c < 0 for c in compute_seconds):
            raise ConfigurationError("chunk bytes must be > 0 and compute times >= 0")
        return len(chunk_bytes)
