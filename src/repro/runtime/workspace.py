"""Preallocated buffer arena for the training hot paths (paper §IV.B).

The paper's coprocessor port wins most of its time back by controlling
memory traffic: buffers are allocated once, element-wise loops are fused
and run in place, and the update step never materialises temporaries
(Eqs. 14–18).  :class:`Workspace` brings the same discipline to the real
NumPy execution path.  A workspace hands out named, shape-keyed scratch
buffers that are created on first request and reused verbatim afterwards,
so a training step that runs entirely through a warmed workspace performs
*zero* array allocations — a property the test suite pins down with
``tracemalloc`` and that :meth:`Workspace.freeze` turns into a hard
runtime guarantee.

Typical use::

    ws = Workspace()
    for batch in batches:                       # first batch warms the arena
        loss, grads = model.gradients_into(batch, ws)
        model.apply_update(grads, lr, workspace=ws)
    ws.freeze()                                 # further growth is a bug

Buffers are keyed by ``(name, shape, dtype)``: the same kernel running on
two different mini-batch sizes (e.g. the ragged last batch of an epoch)
transparently gets one buffer per shape.

Workspaces are **single-threaded by construction**: the arena hands out
the *same* array object on every hit, so two threads sharing a workspace
would silently compute into each other's scratch memory.  The first
:meth:`Workspace.buf` call pins the arena to the calling thread and any
later access from a different thread raises
:class:`WorkspaceThreadError` — parallel gradient workers must each own a
private workspace (see :mod:`repro.runtime.executor`, which binds one
arena per worker thread).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


class WorkspaceFrozenError(ConfigurationError):
    """A frozen workspace was asked to allocate a new buffer."""


class WorkspaceThreadError(ConfigurationError):
    """A workspace was touched from a thread other than its owner."""


class Workspace:
    """Named, shape-keyed arena of reusable scratch arrays.

    Parameters
    ----------
    name:
        Optional label used in error messages (helpful when several
        workspaces coexist, e.g. one per stack layer).
    """

    def __init__(self, name: str = "workspace"):
        self.name = str(name)
        self._buffers: Dict[Tuple[str, Tuple[int, ...], np.dtype], np.ndarray] = {}
        self._transposes: Dict[str, np.ndarray] = {}
        self._frozen = False
        self._owner_ident: Optional[int] = None
        self._owner_name: Optional[str] = None
        self.hits = 0
        self.misses = 0

    def _check_thread(self) -> None:
        """Pin the arena to the first accessing thread; reject all others."""
        ident = threading.get_ident()
        if self._owner_ident is None:
            self._owner_ident = ident
            self._owner_name = threading.current_thread().name
        elif ident != self._owner_ident:
            raise WorkspaceThreadError(
                f"{self.name} is owned by thread {self._owner_name!r} "
                f"(ident {self._owner_ident}) but was accessed from "
                f"{threading.current_thread().name!r} (ident {ident}); "
                "workspace buffers are reused scratch memory — give every "
                "worker thread its own private Workspace"
            )

    # ------------------------------------------------------------------
    # scratch buffers
    # ------------------------------------------------------------------
    def buf(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Return the C-contiguous buffer registered under ``name``/``shape``.

        The first request for a key allocates (a *miss*); every later
        request returns the same array object untouched (a *hit* — contents
        are whatever the previous user left, callers must overwrite).  On a
        frozen workspace a miss raises :class:`WorkspaceFrozenError`.
        """
        self._check_thread()
        key = (name, tuple(int(s) for s in shape), np.dtype(dtype))
        arr = self._buffers.get(key)
        if arr is None:
            if self._frozen:
                raise WorkspaceFrozenError(
                    f"{self.name} is frozen but buffer {key[0]!r} "
                    f"shape={key[1]} dtype={key[2]} was never warmed"
                )
            arr = np.empty(key[1], dtype=key[2])
            self._buffers[key] = arr
            self.misses += 1
        else:
            self.hits += 1
        return arr

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`buf` but the buffer is zero-filled on every request."""
        arr = self.buf(name, shape, dtype)
        arr.fill(0)
        return arr

    def broadcast(self, name: str, array: np.ndarray, shape, dtype=np.float64) -> np.ndarray:
        """``array`` broadcast-materialised to ``shape`` in a cached buffer.

        NumPy's ufunc machinery allocates a temporary whenever a binary op
        broadcasts an operand (a bias row added to a batch, a row-reduction
        column divided out of a softmax), which silently breaks the
        zero-allocation guarantee.  A same-shape operand takes the fast
        loop instead, so kernels materialise the small operand here first
        (a broadcast ``np.copyto`` — allocation-free after warm-up) and
        then run the element-wise op on equal shapes.
        """
        buf = self.buf(name, shape, dtype)
        np.copyto(buf, array)
        return buf

    # ------------------------------------------------------------------
    # transpose cache
    # ------------------------------------------------------------------
    def transpose(self, name: str, array: np.ndarray, refresh: bool = True) -> np.ndarray:
        """Contiguous transpose of ``array`` in a cached buffer.

        BLAS consumes ``.T`` views for free inside one GEMM, but kernels
        that walk a transposed matrix element-wise (or hand it to code
        requiring contiguity) would otherwise call ``ascontiguousarray``
        per step.  The cache keeps one C-contiguous buffer per name and
        refreshes its *contents* in place — no allocation after warm-up.
        ``refresh=False`` skips the copy when the source is known unchanged
        since the previous call.
        """
        self._check_thread()
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"transpose cache holds matrices, got ndim={arr.ndim} for {name!r}"
            )
        cached = self._transposes.get(name)
        if cached is None or cached.shape != arr.shape[::-1] or cached.dtype != arr.dtype:
            if self._frozen:
                raise WorkspaceFrozenError(
                    f"{self.name} is frozen but transpose {name!r} was never warmed"
                )
            cached = np.empty(arr.shape[::-1], dtype=arr.dtype)
            self._transposes[name] = cached
            self.misses += 1
            refresh = True
        else:
            self.hits += 1
        if refresh:
            np.copyto(cached, arr.T)
        return cached

    # ------------------------------------------------------------------
    # steady-state guarantee
    # ------------------------------------------------------------------
    def freeze(self) -> "Workspace":
        """Forbid further buffer creation (reuse stays allowed)."""
        self._frozen = True
        return self

    def thaw(self) -> "Workspace":
        """Allow buffer creation again (e.g. before a new batch shape)."""
        self._frozen = False
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_buffers(self) -> int:
        """Number of distinct arrays held (scratch + transpose caches)."""
        return len(self._buffers) + len(self._transposes)

    @property
    def nbytes(self) -> int:
        """Total bytes resident in the arena."""
        return sum(a.nbytes for a in self._buffers.values()) + sum(
            a.nbytes for a in self._transposes.values()
        )

    @property
    def owner_thread(self) -> Optional[int]:
        """Thread ident the arena is pinned to (None until first access)."""
        return self._owner_ident

    def clear(self) -> None:
        """Drop every buffer (plus the frozen flag and thread pinning)."""
        self._buffers.clear()
        self._transposes.clear()
        self._frozen = False
        self._owner_ident = None
        self._owner_name = None
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "open"
        return (
            f"Workspace({self.name!r}, {self.n_buffers} buffers, "
            f"{self.nbytes / 1e6:.1f} MB, {state})"
        )
