"""Bounded-slot hand-off queue: the backbone of every staged pipeline.

:class:`BoundedSlotQueue` is the slot/semaphore discipline extracted
from :class:`~repro.runtime.executor.ChunkPrefetcher` (paper Fig. 5's
finite staging buffer) so other producer/consumer pipelines — the
layer-wise :class:`~repro.train.pipeline.ActivationQueue` in particular
— share one audited implementation of the three invariants the PR-4
deadlock suite pins:

* **backpressure** — a semaphore of ``n_slots`` permits; a permit is
  held from the producer's :meth:`acquire` until the consumer calls
  :meth:`release` *after finishing its work on the item*, so at most
  ``n_slots`` items are ever staged or in flight;
* **producer death is a typed error, never a hang** — the consumer's
  :meth:`get` polls with a timeout and checks producer liveness, so a
  producer that raises (publishing the error sentinel via
  :meth:`put_error`) or dies without publishing anything surfaces as
  :class:`SlotQueueProducerFailed` / :class:`SlotQueueProducerDead`
  instead of blocking forever;
* **consumer death never wedges the producer** — :meth:`close` makes
  any blocked :meth:`acquire` return ``False`` so the producer can exit
  at its next slot boundary.

Wrappers translate the typed errors into their domain exceptions
(``PrefetchError``, ``PipelineError``) without re-implementing the
liveness protocol.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional

from repro.errors import ConfigurationError


class SlotQueueError(ConfigurationError):
    """Base class for hand-off failures surfaced by :meth:`BoundedSlotQueue.get`."""


class SlotQueueProducerFailed(SlotQueueError):
    """The producer published the error sentinel (:meth:`put_error`)."""


class SlotQueueProducerDead(SlotQueueError):
    """The producer thread died without publishing an item or a sentinel."""


class SlotQueueClosed(SlotQueueError):
    """The queue was closed while the consumer was waiting on an empty queue."""


_ITEM, _ERROR = "item", "error"


class BoundedSlotQueue:
    """A bounded producer→consumer hand-off with explicit slot ownership.

    Unlike :class:`queue.Queue`, the capacity bound is decoupled from the
    publish: the producer takes a slot with :meth:`acquire` *before*
    starting the (possibly expensive) work that creates the item, and
    the consumer returns it with :meth:`release` only after it has
    finished using the item — so ``n_slots`` bounds staged **plus**
    in-use items, exactly the paper's finite-staging-buffer rule.

    Producer protocol::

        if not q.acquire():      # False => consumer closed the queue
            return
        item = produce()         # may be expensive
        q.put(item)
        ...
        # on failure: q.put_error(exc)  (no slot needed)

    Consumer protocol::

        item = q.get(producer_alive=thread.is_alive)   # raises, never hangs
        try:
            consume(item)
        finally:
            q.release()
    """

    def __init__(self, n_slots: int, name: str = "slotqueue", poll_s: float = 0.05):
        if n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
        if poll_s <= 0:
            raise ConfigurationError(f"poll_s must be > 0, got {poll_s}")
        self.n_slots = int(n_slots)
        self.name = str(name)
        self._poll_s = float(poll_s)
        self._slots = threading.Semaphore(self.n_slots)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = threading.Event()
        self._error: Optional[BaseException] = None

    # -- producer side ---------------------------------------------------
    def acquire(self) -> bool:
        """Take one slot; blocks (polling) until one frees or the queue
        closes.  Returns ``False`` when closed — the producer's signal to
        stop producing."""
        if self._closed.is_set():
            return False
        while not self._slots.acquire(timeout=self._poll_s):
            if self._closed.is_set():
                return False
        return True

    def put(self, item) -> None:
        """Publish an item (the caller must hold a slot from :meth:`acquire`)."""
        self._queue.put((_ITEM, item))

    def put_error(self, exc: BaseException) -> None:
        """Record the producer's failure and publish the error sentinel.

        Takes no slot, so a producer dying with every buffer full can
        still tell the consumer about it.
        """
        self._error = exc
        self._queue.put((_ERROR, None))

    # -- consumer side ---------------------------------------------------
    def get(self, producer_alive: Optional[Callable[[], bool]] = None):
        """Blocking get that cannot outlive the producer.

        Polls with a timeout; on an empty queue it raises
        :class:`SlotQueueClosed` once :meth:`close` has been called, and
        :class:`SlotQueueProducerDead` when ``producer_alive()`` reports
        the producer gone (after one non-blocking drain to absorb a
        publish racing the death check).  The error sentinel raises
        :class:`SlotQueueProducerFailed` with the recorded exception as
        its ``__cause__``.
        """
        while True:
            try:
                tag, item = self._queue.get(timeout=self._poll_s)
            except queue.Empty:
                if self._closed.is_set():
                    raise SlotQueueClosed(
                        f"{self.name}: closed while waiting for an item"
                    ) from self._error
                if producer_alive is not None and not producer_alive():
                    try:  # drain a publish that raced with the death check
                        tag, item = self._queue.get_nowait()
                    except queue.Empty:
                        raise SlotQueueProducerDead(
                            f"{self.name}: producer died without publishing"
                        ) from self._error
                else:
                    continue
            if tag is _ERROR:
                raise SlotQueueProducerFailed(
                    f"{self.name}: producer failed: {self._error!r}"
                ) from self._error
            return item

    def try_get(self):
        """Non-blocking :meth:`get`; returns ``None`` when the queue is
        empty (the error sentinel still raises)."""
        try:
            tag, item = self._queue.get_nowait()
        except queue.Empty:
            return None
        if tag is _ERROR:
            raise SlotQueueProducerFailed(
                f"{self.name}: producer failed: {self._error!r}"
            ) from self._error
        return item

    def release(self) -> None:
        """Return one slot after finishing with a consumed item."""
        self._slots.release()

    # -- shutdown --------------------------------------------------------
    def close(self) -> None:
        """Stop the hand-off: blocked :meth:`acquire` calls return
        ``False`` and blocked :meth:`get` calls raise
        :class:`SlotQueueClosed` once drained."""
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The exception recorded by :meth:`put_error`, if any."""
        return self._error

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"BoundedSlotQueue({self.name!r}, n_slots={self.n_slots}, {state})"
