"""Thread-count auto-tuning (paper future work #1).

"For now, we need to adjust the number of threads manually in our
implementation" — this module removes that: given a workload factory it
sweeps candidate thread counts on the simulated machine and picks the
fastest, with an optional golden-section-style refinement over the
power-of-two ladder.

More threads are not always better: below ~1 batch row per thread the
GEMMs starve and the barriers grow, which is exactly the non-monotone
landscape the tuner exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.phi.spec import MachineSpec


@dataclass(frozen=True)
class TuningSample:
    """One evaluated configuration."""

    n_threads: int
    seconds: float


@dataclass
class TuningResult:
    """Outcome of an auto-tuning sweep."""

    best_threads: int
    best_seconds: float
    samples: List[TuningSample] = field(default_factory=list)

    @property
    def speedup_vs_worst(self) -> float:
        worst = max(s.seconds for s in self.samples)
        return worst / self.best_seconds if self.best_seconds > 0 else float("inf")


def default_thread_ladder(spec: MachineSpec) -> List[int]:
    """Candidate thread counts: powers of two up to the machine's limit,
    plus one-per-core and the full SMT count."""
    ladder = []
    t = 1
    while t < spec.max_threads:
        ladder.append(t)
        t *= 2
    for extra in (spec.n_cores, spec.max_threads):
        if extra not in ladder:
            ladder.append(extra)
    return sorted(set(ladder))


def autotune_threads(
    evaluate: Callable[[int], float],
    spec: MachineSpec,
    candidates: Optional[Sequence[int]] = None,
    refine: bool = True,
) -> TuningResult:
    """Pick the thread count minimising ``evaluate(n_threads)``.

    Parameters
    ----------
    evaluate:
        Maps a thread count to simulated seconds (deterministic).
    candidates:
        Thread counts to try; defaults to :func:`default_thread_ladder`.
    refine:
        After the sweep, probe the midpoints between the winner and its
        ladder neighbours (cheap local refinement).
    """
    ladder = list(candidates) if candidates is not None else default_thread_ladder(spec)
    if not ladder:
        raise ConfigurationError("no candidate thread counts to evaluate")
    if any(t < 1 or t > spec.max_threads for t in ladder):
        raise ConfigurationError(
            f"candidates must lie in [1, {spec.max_threads}]: {ladder}"
        )
    ladder = sorted(set(int(t) for t in ladder))
    samples = [TuningSample(t, float(evaluate(t))) for t in ladder]
    best = min(samples, key=lambda s: s.seconds)

    if refine:
        idx = ladder.index(best.n_threads)
        probes = set()
        if idx > 0:
            probes.add((ladder[idx - 1] + ladder[idx]) // 2)
        if idx + 1 < len(ladder):
            probes.add((ladder[idx] + ladder[idx + 1]) // 2)
        for t in sorted(probes - set(ladder)):
            if 1 <= t <= spec.max_threads:
                sample = TuningSample(t, float(evaluate(t)))
                samples.append(sample)
                if sample.seconds < best.seconds:
                    best = sample

    return TuningResult(
        best_threads=best.n_threads, best_seconds=best.seconds, samples=samples
    )


def autotune_training_config(config, trainer_cls, **tune_kwargs) -> TuningResult:
    """Auto-tune a :class:`~repro.core.config.TrainingConfig`'s thread count.

    Builds a trainer per candidate with the backend pinned to that many
    software threads and compares simulated totals.
    """
    backend = config.effective_backend

    def evaluate(n_threads: int) -> float:
        pinned = config.with_backend(backend.with_threads(n_threads))
        return trainer_cls(pinned).simulate().simulated_seconds

    return autotune_threads(evaluate, config.machine, **tune_kwargs)
