"""Execution backends — the paper's Table I optimization steps as objects.

The paper optimizes its coprocessor code in four cumulative steps:

1. **Baseline** — straight sequential C code: one thread, no
   vectorisation, naive triple-loop matrix multiply.
2. **OpenMP** — "we then used OpenMP to parallelize all the loops":
   all hardware threads, still scalar, still naive GEMM.
3. **OpenMP+MKL** — GEMMs go to MKL and the sampling/update loops are
   vectorised (Eqs. 14–18), but every small loop is its own parallel
   region: "the loop body is relatively small and the time cost in
   synchronization accounts most of the total time".
4. **Improved OpenMP+MKL** — "we finally combine several loops together
   to make the granularity more suitable": element-wise ops are fused,
   independent kernels are overlapped per the Fig. 6 dependency graph.

An :class:`ExecutionBackend` captures the *software* knobs of a run; the
machine's physical limits live in :class:`repro.phi.spec.MachineSpec`.
The free parameters here (efficiency factors) are calibrated against the
paper's measured anchors — see DESIGN.md §2 and the calibration tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError


class OptimizationLevel(enum.Enum):
    """Table I's rows, in cumulative order."""

    BASELINE = "baseline"
    OPENMP = "openmp"
    OPENMP_MKL = "openmp_mkl"
    IMPROVED = "improved_openmp_mkl"

    @property
    def rank(self) -> int:
        """Position in the cumulative optimization order (0 = baseline)."""
        return list(OptimizationLevel).index(self)


@dataclass(frozen=True)
class ExecutionBackend:
    """Software configuration of a simulated run.

    Attributes
    ----------
    name:
        Display label.
    level:
        Which Table I step this corresponds to (``None`` for the Matlab
        and optimized-CPU references).
    use_simd:
        Vectorised element-wise/sampling loops (the VPU rewrite,
        Eqs. 14–15).
    use_mkl:
        GEMM via the optimized BLAS path instead of the naive loops.
    use_all_threads:
        Spawn one software thread per hardware thread; False = sequential.
    fused_elementwise:
        Element-wise kernels merged into few parallel regions (step 4).
    overlap_independent:
        Execute independent kernels of a dependency-graph wavefront
        concurrently (Fig. 6 scheduling; step 4).
    naive_parallel_efficiency:
        Thread-scaling efficiency of *naive* (non-MKL) loops — OpenMP
        over an unblocked GEMM suffers load imbalance and pipe
        contention on 4-way SMT in-order cores.
    gemm_eff_max:
        Asymptotic fraction of machine peak the GEMM path reaches for
        large matrices (MKL-on-Phi ≈ 0.75 of double peak at these
        shapes; single-core MKL on the Xeon ≈ 0.85; Matlab ≈ 0.55
        because of interpreter-side copies).
    elementwise_bw_efficiency:
        Fraction of achievable bandwidth element-wise regions reach.
        Unfused fine-grained regions waste most of it (≈0.1); fused
        streaming loops come close to STREAM (≈0.6).
    temp_traffic_factor:
        Multiplier on element-wise memory traffic for temporaries the
        runtime materialises (Matlab's expression evaluation ≈ 3×).
    per_op_overhead_s:
        Fixed per-kernel dispatch overhead (interpreter cost for Matlab,
        ~0 for compiled code).
    unfused_region_count:
        Parallel regions one element-wise kernel decomposes into when the
        loops are left at their natural (too fine) granularity — the
        paper's §IV.B.2 observation that "the loop body is relatively
        small and the time cost in synchronization accounts most of the
        total time".  1 for fused / sequential code.
    threads_override:
        Exact software thread count, overriding ``use_all_threads``.
    """

    name: str
    level: Optional[OptimizationLevel]
    use_simd: bool
    use_mkl: bool
    use_all_threads: bool
    fused_elementwise: bool
    overlap_independent: bool
    naive_parallel_efficiency: float = 0.28
    gemm_eff_max: float = 0.75
    elementwise_bw_efficiency: float = 0.6
    temp_traffic_factor: float = 1.0
    per_op_overhead_s: float = 0.0
    unfused_region_count: int = 1
    threads_override: Optional[int] = None

    def __post_init__(self):
        for field_name in ("naive_parallel_efficiency", "gemm_eff_max", "elementwise_bw_efficiency"):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{field_name} must lie in (0, 1], got {value}")
        if self.temp_traffic_factor < 1.0:
            raise ConfigurationError("temp_traffic_factor must be >= 1")
        if self.per_op_overhead_s < 0.0:
            raise ConfigurationError("per_op_overhead_s must be >= 0")
        if self.unfused_region_count < 1:
            raise ConfigurationError("unfused_region_count must be >= 1")
        if self.threads_override is not None and self.threads_override < 1:
            raise ConfigurationError("threads_override must be >= 1")

    def threads_for(self, spec) -> int:
        """Software threads this backend launches on ``spec``."""
        if self.threads_override is not None:
            return min(self.threads_override, spec.max_threads)
        return spec.max_threads if self.use_all_threads else 1

    def with_threads(self, n_threads: int) -> "ExecutionBackend":
        """Copy of this backend pinned to ``n_threads`` software threads."""
        return replace(self, threads_override=n_threads)


# ---------------------------------------------------------------------------
# the Table I ladder
# ---------------------------------------------------------------------------

_LEVEL_BACKENDS = {
    OptimizationLevel.BASELINE: ExecutionBackend(
        name="baseline-sequential",
        level=OptimizationLevel.BASELINE,
        use_simd=False,
        use_mkl=False,
        use_all_threads=False,
        fused_elementwise=False,
        overlap_independent=False,
    ),
    OptimizationLevel.OPENMP: ExecutionBackend(
        name="openmp",
        level=OptimizationLevel.OPENMP,
        use_simd=False,
        use_mkl=False,
        use_all_threads=True,
        fused_elementwise=False,
        overlap_independent=False,
        naive_parallel_efficiency=0.28,
        elementwise_bw_efficiency=0.1,
        unfused_region_count=200,
    ),
    OptimizationLevel.OPENMP_MKL: ExecutionBackend(
        name="openmp+mkl",
        level=OptimizationLevel.OPENMP_MKL,
        use_simd=True,
        use_mkl=True,
        use_all_threads=True,
        fused_elementwise=False,
        overlap_independent=False,
        gemm_eff_max=0.68,
        elementwise_bw_efficiency=0.1,
        unfused_region_count=200,
    ),
    OptimizationLevel.IMPROVED: ExecutionBackend(
        name="improved-openmp+mkl",
        level=OptimizationLevel.IMPROVED,
        use_simd=True,
        use_mkl=True,
        use_all_threads=True,
        fused_elementwise=True,
        overlap_independent=True,
        gemm_eff_max=0.68,
        elementwise_bw_efficiency=0.6,
    ),
}


def backend_for_level(level: OptimizationLevel) -> ExecutionBackend:
    """The backend corresponding to one of Table I's optimization steps."""
    if not isinstance(level, OptimizationLevel):
        raise ConfigurationError(f"level must be an OptimizationLevel, got {level!r}")
    return _LEVEL_BACKENDS[level]


def optimized_cpu_backend(n_threads: Optional[int] = None) -> ExecutionBackend:
    """The fully-optimized code compiled for the Xeon host.

    ``n_threads=1`` models the paper's "sequential [algorithm] on single
    CPU core on host" reference of Figs. 7–9; ``None`` uses the whole chip
    (the abstract's 7–10× comparison).
    """
    return ExecutionBackend(
        name="optimized-cpu" if n_threads is None else f"optimized-cpu-{n_threads}t",
        level=None,
        use_simd=True,
        use_mkl=True,
        use_all_threads=n_threads is None,
        fused_elementwise=True,
        overlap_independent=False,
        gemm_eff_max=0.85,
        elementwise_bw_efficiency=0.6,
        threads_override=n_threads,
    )


def matlab_backend() -> ExecutionBackend:
    """Matlab R2012a on the host (paper Fig. 10).

    Matlab calls a multithreaded BLAS for the GEMMs ("Matlab has its own
    optimization of matrix operations") but evaluates element-wise
    expressions through the interpreter, materialising temporaries.
    """
    return ExecutionBackend(
        name="matlab-r2012a",
        level=None,
        use_simd=True,
        use_mkl=True,
        use_all_threads=True,
        fused_elementwise=False,
        overlap_independent=False,
        gemm_eff_max=0.44,
        elementwise_bw_efficiency=0.5,
        temp_traffic_factor=3.0,
        per_op_overhead_s=1e-3,
    )
