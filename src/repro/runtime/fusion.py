"""Loop-fusion pass over kernel streams (the paper's "Improved" step).

"We finally combine several loops together to make the granularity more
suitable for our platform."  Fusing adjacent element-wise kernels of the
same extent:

* keeps the flops (the arithmetic still happens),
* removes the intermediate arrays' round trips to memory — each fused
  boundary saves one write + one read of the intermediate, and
* collapses the parallel regions: one fork/join instead of one per op.

The pass is purely structural — it rewrites :class:`Kernel` descriptors —
so functional results are untouched by construction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.phi.kernels import Kernel, KernelKind

_FUSABLE = (KernelKind.ELEMENTWISE, KernelKind.SAMPLE)
_F64 = 8


def _can_fuse(a: Kernel, b: Kernel) -> bool:
    """Adjacent kernels fuse when both are map-like over the same extent."""
    return (
        a.kind in _FUSABLE
        and b.kind in _FUSABLE
        and a.n_elements == b.n_elements
        and a.n_elements > 0
    )


def _fuse_pair(a: Kernel, b: Kernel) -> Kernel:
    """Merge ``b`` into ``a``: a's output feeds b in registers.

    Traffic accounting: the fused kernel reads a's inputs plus b's inputs
    *minus* the intermediate (b no longer reads a's output from memory),
    and writes only b's outputs.
    """
    intermediate = a.n_elements * _F64
    bytes_read = a.bytes_read + max(0.0, b.bytes_read - intermediate)
    kind = KernelKind.SAMPLE if KernelKind.SAMPLE in (a.kind, b.kind) else a.kind
    return Kernel(
        kind=kind,
        name=f"{a.name}+{b.name}",
        flops=a.flops + b.flops,
        bytes_read=bytes_read,
        bytes_written=b.bytes_written,
        n_elements=a.n_elements,
        fused_ops=a.fused_ops + b.fused_ops,
    )


def fuse_elementwise(kernels: Sequence[Kernel]) -> List[Kernel]:
    """Greedy left-to-right fusion of adjacent fusable kernels.

    Non-fusable kernels (GEMMs, reductions, transfers) act as fences, so
    the pass never reorders anything — it only merges neighbours.
    """
    fused: List[Kernel] = []
    for kernel in kernels:
        if fused and _can_fuse(fused[-1], kernel):
            fused[-1] = _fuse_pair(fused[-1], kernel)
        else:
            fused.append(kernel)
    return fused


def fusion_savings(kernels: Sequence[Kernel]) -> Tuple[int, float]:
    """(parallel regions removed, intermediate bytes removed) by fusing.

    A reporting helper for the ablation benchmarks.
    """
    fused = fuse_elementwise(kernels)
    regions_removed = len(kernels) - len(fused)
    bytes_before = sum(k.bytes_total for k in kernels)
    bytes_after = sum(k.bytes_total for k in fused)
    return regions_removed, bytes_before - bytes_after
