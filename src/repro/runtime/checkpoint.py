"""Crash-consistent checkpointing for long training runs.

The paper's workloads (and the CHAOS follow-up study this repo's
parallel stack mirrors) run multi-hour epochs on a coprocessor; a
loader-thread death or worker crash must not cost the whole run.  This
module provides the storage layer:

* :func:`atomic_save_npz` — the write-temp → flush → fsync → rename
  protocol, so a checkpoint file is either entirely the old snapshot or
  entirely the new one, never a torn write;
* :class:`CheckpointStore` — a directory of monotonically numbered
  snapshots with pruning and ``latest()`` lookup;
* RNG stream capture/restore (:func:`capture_rng` /
  :func:`restore_rng` / :func:`restore_rng_into`) — bit-exact resume
  requires the *random streams*, not just the parameters, to continue
  exactly where they stopped;
* :func:`retry_transient` — bounded exponential backoff around
  operations that may fail transiently (a flaky chunk load surfacing as
  :class:`~repro.runtime.executor.PrefetchError`).

The consumers are ``pretrain(checkpoint=…, resume_from=…)`` on
:class:`~repro.nn.stacked.StackedAutoencoder` /
:class:`~repro.nn.stacked.DeepBeliefNetwork` and
:func:`repro.nn.finetune.finetune`; the bit-exactness guarantee they
build on top is documented in ``docs/robustness.md`` and enforced by
``tests/chaos/``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Bump when the on-disk checkpoint layout changes incompatibly.
CHECKPOINT_VERSION = 1

PathLike = Union[str, Path]


class CheckpointError(ConfigurationError):
    """A checkpoint could not be written, found, or restored."""


# ---------------------------------------------------------------------------
# RNG stream capture
# ---------------------------------------------------------------------------

def capture_rng(gen: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a generator's exact stream position."""
    state = gen.bit_generator.state
    # state contains plain ints (possibly > 64-bit for PCG64) and strings —
    # JSON handles arbitrary-precision ints natively.
    return json.loads(json.dumps(state))


def restore_rng(state: dict) -> np.random.Generator:
    """Fresh generator positioned exactly at a :func:`capture_rng` snapshot."""
    name = state.get("bit_generator", "PCG64")
    try:
        bitgen_cls = getattr(np.random, name)
    except AttributeError:
        raise CheckpointError(f"unknown bit generator {name!r} in checkpoint") from None
    bitgen = bitgen_cls()
    bitgen.state = state
    return np.random.Generator(bitgen)


def restore_rng_into(gen: np.random.Generator, state: dict) -> np.random.Generator:
    """Rewind an *existing* generator to a snapshot (in place); returns it."""
    if type(gen.bit_generator).__name__ != state.get("bit_generator"):
        raise CheckpointError(
            f"checkpoint stream uses {state.get('bit_generator')!r} but the "
            f"live generator is {type(gen.bit_generator).__name__!r}"
        )
    gen.bit_generator.state = state
    return gen


def capture_streams(gens: Sequence[np.random.Generator]) -> List[dict]:
    """Snapshot a list of generators (e.g. the engine's worker streams)."""
    return [capture_rng(g) for g in gens]


def restore_streams_into(
    gens: Sequence[np.random.Generator], states: Sequence[dict]
) -> None:
    """Rewind ``gens[i]`` to ``states[i]``; lengths must match exactly."""
    if len(gens) != len(states):
        raise CheckpointError(
            f"checkpoint has {len(states)} RNG stream(s) but the live run has "
            f"{len(gens)} — resume requires the same worker count"
        )
    for gen, state in zip(gens, states):
        restore_rng_into(gen, state)


# ---------------------------------------------------------------------------
# atomic archive IO
# ---------------------------------------------------------------------------

def atomic_save_npz(path: PathLike, header: dict, arrays: Dict[str, np.ndarray]) -> Path:
    """Write ``header`` + ``arrays`` to ``path`` crash-consistently.

    The archive is written to a temporary file in the *same directory*
    (so the final rename is within one filesystem), flushed and fsynced,
    then moved over ``path`` with :func:`os.replace` — atomic on POSIX.
    The directory is fsynced afterwards so the rename itself survives a
    power cut.  A reader therefore always sees a complete archive.
    """
    path = Path(path)
    if "__ckpt__" in arrays:
        raise CheckpointError("'__ckpt__' is a reserved archive key")
    payload = json.dumps({"version": CHECKPOINT_VERSION, "header": header})
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".tmp.", suffix=".npz", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(
                fh,
                __ckpt__=np.frombuffer(payload.encode(), dtype=np.uint8),
                **arrays,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:  # make the rename durable, not just the bytes
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform without directory fsync
        pass
    return path


def load_npz(path: PathLike) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Read an archive written by :func:`atomic_save_npz`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    with np.load(path, allow_pickle=False) as data:
        if "__ckpt__" not in data:
            raise CheckpointError(f"{path}: not a repro checkpoint archive")
        payload = json.loads(bytes(data["__ckpt__"].tobytes()).decode())
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint version {payload.get('version')}"
            )
        arrays = {k: data[k] for k in data.files if k != "__ckpt__"}
    return payload["header"], arrays


# ---------------------------------------------------------------------------
# the store: a directory of numbered snapshots
# ---------------------------------------------------------------------------

class CheckpointStore:
    """Numbered, pruned snapshots under one directory.

    Files are named ``<prefix>-<seq:06d>[-<tag>].npz``; ``seq`` grows
    monotonically (existing files are scanned on construction, so a
    resumed process keeps counting where the dead one stopped).  After
    each successful save the store prunes to the ``keep`` most recent
    snapshots — oldest first, and only after the new snapshot is durable,
    so there is always at least one complete checkpoint on disk.
    """

    def __init__(self, directory: PathLike, keep: int = 3, prefix: str = "ckpt"):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = int(keep)
        self.prefix = str(prefix)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._seq = self._scan_max_seq()

    # -- naming ----------------------------------------------------------
    def _pattern(self) -> str:
        return f"{self.prefix}-*.npz"

    def _scan_max_seq(self) -> int:
        top = -1
        for path in self.directory.glob(self._pattern()):
            seq = self._seq_of(path)
            if seq is not None and seq > top:
                top = seq
        return top

    def _seq_of(self, path: Path) -> Optional[int]:
        stem = path.name[: -len(".npz")]
        parts = stem.split("-")
        if len(parts) < 2 or parts[0] != self.prefix:
            return None
        try:
            return int(parts[1])
        except ValueError:
            return None

    # -- API -------------------------------------------------------------
    def save(self, header: dict, arrays: Dict[str, np.ndarray], tag: str = "") -> Path:
        """Atomically write the next snapshot, then prune old ones."""
        self._seq += 1
        name = f"{self.prefix}-{self._seq:06d}"
        if tag:
            name += f"-{tag}"
        path = atomic_save_npz(self.directory / f"{name}.npz", header, arrays)
        self._prune()
        return path

    def _prune(self) -> None:
        snaps = self.list()
        for path in snaps[: max(0, len(snaps) - self.keep)]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    def list(self) -> List[Path]:
        """All snapshots, oldest first."""
        snaps = [p for p in self.directory.glob(self._pattern())
                 if self._seq_of(p) is not None]
        return sorted(snaps, key=self._seq_of)

    def latest(self) -> Optional[Path]:
        """Newest snapshot path, or ``None`` when the store is empty."""
        snaps = self.list()
        return snaps[-1] if snaps else None

    def load_latest(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Header + arrays of the newest snapshot."""
        path = self.latest()
        if path is None:
            raise CheckpointError(f"no checkpoints under {self.directory}")
        return load_npz(path)

    def __repr__(self) -> str:
        return (
            f"CheckpointStore({str(self.directory)!r}, {len(self.list())} "
            f"snapshot(s), keep={self.keep})"
        )


def require_shard_count(header: dict, n_shards: int) -> None:
    """Reject resuming a sharded snapshot under a different shard count.

    Repartitioning changes every shard's parameter blocks and mask
    streams, so a bit-identical resume is impossible across a
    shard-count change; sharded checkpoint headers are tagged with
    ``n_shards`` and cross-loading fails loudly here.
    """
    found = header.get("n_shards")
    if found is None:
        raise CheckpointError(
            "checkpoint carries no shard count — not a sharded snapshot"
        )
    if int(found) != int(n_shards):
        raise CheckpointError(
            f"checkpoint was written with n_shards={found} but this run uses "
            f"n_shards={n_shards}; repartitioning cannot resume bit-identically"
        )


def resolve_resume_path(resume_from: PathLike) -> Path:
    """Accept a checkpoint file or a directory (→ its newest snapshot)."""
    path = Path(resume_from)
    if path.is_dir():
        latest = CheckpointStore(path).latest()
        if latest is None:
            raise CheckpointError(f"no checkpoints under {path}")
        return latest
    return path


def as_store(checkpoint) -> Optional[CheckpointStore]:
    """Coerce a ``checkpoint=`` argument: store, path, or ``None``."""
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    if isinstance(checkpoint, (str, Path)):
        return CheckpointStore(checkpoint)
    raise CheckpointError(
        f"checkpoint must be a path or CheckpointStore, got {type(checkpoint).__name__}"
    )


# ---------------------------------------------------------------------------
# transient-failure retry
# ---------------------------------------------------------------------------

def retry_transient(
    fn: Callable[[], object],
    retries: int = 3,
    backoff_s: float = 0.05,
    max_backoff_s: float = 1.0,
    exceptions: Optional[Tuple[type, ...]] = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()``; on a transient exception retry with exponential backoff.

    ``exceptions`` defaults to :class:`~repro.runtime.executor.PrefetchError`
    — the loader-death signal of the chunk pipeline.  The final attempt's
    exception propagates unchanged, so callers still see the original
    failure once the budget is exhausted.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if exceptions is None:
        from repro.runtime.executor import PrefetchError

        exceptions = (PrefetchError,)
    delay = backoff_s
    for attempt in range(retries + 1):
        try:
            return fn()
        except exceptions:
            if attempt == retries:
                raise
            sleep(min(delay, max_backoff_s))
            delay *= 2.0
