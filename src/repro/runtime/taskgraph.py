"""Dependency-graph scheduling of kernel computations (paper Fig. 6).

The paper draws the dependency graph of the CD-1 temporaries — "Each
arrow pointing from A to B denotes that the calculation of B depends on
the calculation of A" — and schedules independent nodes concurrently:
after H1, {V2} runs; after V2, {Vb, H2} run in parallel; after H2,
{Vb, Vc, Vw} run in parallel.

:class:`TaskGraph` is a general DAG with Kahn-layer ("wavefront")
scheduling and critical-path analysis; :func:`rbm_cd1_taskgraph` ships
the paper's Fig. 6 instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.phi.kernels import Kernel
from repro.testing.faults import fault_point, register_fault_site

SITE_TASKGRAPH_NODE = register_fault_site(
    "taskgraph.node", "on a pool thread, before a TaskGraph.execute node runs"
)


def _run_node(fn: Callable, name: str, deps: Dict[str, object]):
    """Pool-side wrapper so injected faults fire on the worker thread."""
    fault_point(SITE_TASKGRAPH_NODE, node=name)
    return fn(deps)


@dataclass
class TaskNode:
    """One node of the DAG: a named kernel plus its dependency names."""

    name: str
    kernel: Optional[Kernel]
    deps: tuple

    def __hash__(self):
        return hash(self.name)


class TaskGraph:
    """A DAG of kernels with wavefront scheduling.

    Nodes are added with explicit dependency lists; :meth:`wavefronts`
    returns the Kahn levels (every node appears exactly one level after
    its deepest dependency), which is the concurrency structure the
    paper exploits in Fig. 6.
    """

    def __init__(self):
        self._nodes: Dict[str, TaskNode] = {}
        self._order: List[str] = []

    def add(self, name: str, kernel: Optional[Kernel] = None, deps: Sequence[str] = ()) -> TaskNode:
        """Add a node; dependencies must already exist (build in topo order)."""
        if name in self._nodes:
            raise SchedulingError(f"duplicate task name {name!r}")
        for dep in deps:
            if dep not in self._nodes:
                raise SchedulingError(f"task {name!r} depends on unknown task {dep!r}")
        node = TaskNode(name=name, kernel=kernel, deps=tuple(deps))
        self._nodes[name] = node
        self._order.append(name)
        return node

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> TaskNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise SchedulingError(f"unknown task {name!r}") from None

    @property
    def names(self) -> List[str]:
        return list(self._order)

    # ------------------------------------------------------------------
    def wavefronts(self) -> List[List[TaskNode]]:
        """Topological levels: level(n) = 1 + max(level(dep)).

        Nodes within a level are mutually independent and may run
        concurrently.  Insertion requires deps to pre-exist, so the
        graph is acyclic by construction; this recomputes levels fresh
        each call (graphs are small).
        """
        level: Dict[str, int] = {}
        for name in self._order:
            node = self._nodes[name]
            level[name] = 1 + max((level[d] for d in node.deps), default=-1)
        n_levels = 1 + max(level.values(), default=-1)
        fronts: List[List[TaskNode]] = [[] for _ in range(n_levels)]
        for name in self._order:
            fronts[level[name]].append(self._nodes[name])
        return fronts

    def kernel_levels(self) -> List[List[Kernel]]:
        """Wavefronts with the kernels extracted (barrier-only nodes dropped)."""
        return [
            [node.kernel for node in front if node.kernel is not None]
            for front in self.wavefronts()
        ]

    def execute(
        self,
        fns: Optional[Dict[str, Callable[[Dict[str, object]], object]]] = None,
        pool=None,
        n_workers: Optional[int] = None,
    ) -> Dict[str, object]:
        """Run the graph's wavefronts *concurrently* on a thread pool.

        This is the executable counterpart of :meth:`wavefronts`: nodes in
        the same Kahn level are submitted together and joined before the
        next level starts — the paper's Fig. 6 schedule ("the computations
        of V2 and C1 can run in parallel").

        Parameters
        ----------
        fns:
            Callables keyed by node name.  Each is invoked as
            ``fn(deps)`` where ``deps`` maps dependency names to their
            results; nodes without a callable yield ``None`` (barrier
            nodes).  Unknown keys raise :class:`~repro.errors.SchedulingError`.
        pool:
            Anything with ``submit(fn, *args) -> future``: a
            ``concurrent.futures`` executor or a
            :class:`repro.runtime.executor.ParallelGradientEngine`.  When
            omitted a private ``ThreadPoolExecutor`` of ``n_workers``
            threads (default: widest wavefront) is created and torn down.

        Returns the full ``{node name: result}`` mapping.
        """
        fns = dict(fns or {})
        for name in fns:
            if name not in self._nodes:
                raise SchedulingError(f"execute() got callable for unknown task {name!r}")
        fronts = self.wavefronts()
        own_pool = None
        if pool is None:
            from concurrent.futures import ThreadPoolExecutor

            width = max((len(f) for f in fronts), default=1)
            own_pool = ThreadPoolExecutor(
                max_workers=n_workers or width, thread_name_prefix="taskgraph"
            )
            pool = own_pool
        results: Dict[str, object] = {}
        try:
            for front in fronts:
                futures = {}
                for node in front:
                    fn = fns.get(node.name)
                    if fn is None:
                        results[node.name] = None
                        continue
                    deps = {d: results[d] for d in node.deps}
                    futures[node.name] = pool.submit(_run_node, fn, node.name, deps)
                for name, future in futures.items():
                    results[name] = future.result()
        finally:
            if own_pool is not None:
                own_pool.shutdown(wait=True)
        return results

    def critical_path(self, cost: Callable[[TaskNode], float]) -> List[str]:
        """The dependency chain with the largest summed ``cost``."""
        best: Dict[str, float] = {}
        parent: Dict[str, Optional[str]] = {}
        for name in self._order:
            node = self._nodes[name]
            dep_best, dep_parent = 0.0, None
            for d in node.deps:
                if best[d] > dep_best:
                    dep_best, dep_parent = best[d], d
            best[name] = dep_best + cost(node)
            parent[name] = dep_parent
        if not best:
            return []
        end = max(best, key=best.get)
        path = [end]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        return list(reversed(path))

    def critical_path_cost(self, cost: Callable[[TaskNode], float]) -> float:
        """Summed cost along :meth:`critical_path`."""
        return sum(cost(self._nodes[name]) for name in self.critical_path(cost))

    def serial_cost(self, cost: Callable[[TaskNode], float]) -> float:
        """Total cost if every node runs back-to-back."""
        return sum(cost(node) for node in self._nodes.values())


# ---------------------------------------------------------------------------
# Fig. 6: dependency graph of one RBM CD-1 gradient computation
# ---------------------------------------------------------------------------

def rbm_cd1_taskgraph(kernels: Optional[Dict[str, Kernel]] = None) -> TaskGraph:
    """The paper's Fig. 6 graph over the CD-1 temporaries.

    Node names follow the figure: V1 (the clamped data batch / its hidden
    drive), H1 (first hidden probabilities+samples), V2 (reconstruction),
    H2 (second hidden probabilities), C1/C2 (the positive/negative phase
    correlation products ⟨vh⟩), and the gradients Vb, Vc, Vw.

    Edges (paper §IV.B.1): V1→H1; H1→{V2, C1}; V2→{Vb, H2}; H2→{Vc, C2};
    {C1, C2}→Vw.  "Once V1 is calculated, then we can only compute H1 …
    the computations of V2 and C1 can run in parallel … compute Vb, H2
    after V2, and compute Vb, Vc and Vw after H2 in parallel."

    ``kernels`` optionally attaches a kernel to each node (keys must be
    node names); omitted nodes carry ``None`` and cost nothing.
    """
    kernels = kernels or {}
    g = TaskGraph()
    g.add("V1", kernels.get("V1"))
    g.add("H1", kernels.get("H1"), deps=["V1"])
    g.add("V2", kernels.get("V2"), deps=["H1"])
    g.add("C1", kernels.get("C1"), deps=["H1"])  # positive phase v₀ᵀh₀
    g.add("H2", kernels.get("H2"), deps=["V2"])
    g.add("Vb", kernels.get("Vb"), deps=["V2"])  # Δb = v₀ − v₁
    g.add("C2", kernels.get("C2"), deps=["H2"])  # negative phase v₁ᵀh₁
    g.add("Vc", kernels.get("Vc"), deps=["H2"])  # Δc = h₀ − h₁
    g.add("Vw", kernels.get("Vw"), deps=["C1", "C2"])  # ΔW = C1 − C2
    return g
