"""Free-threaded CPython (PEP 703) readiness audit of :mod:`repro.runtime`.

The process engine exists because CPython's GIL serialises the Python
glue between BLAS calls.  PEP 703 builds (`python3.13t+`) remove the GIL,
which would let the *thread* engine parallelise for real — no pickling,
no shared-memory choreography.  This module answers two questions:

* *Are we running free-threaded right now?* — :func:`gil_enabled` /
  :func:`free_threaded_build`, recorded into the parallel benchmark
  metadata so committed reports say which regime they measured, and used
  by :func:`repro.runtime.procexec.make_engine` ("auto" prefers threads
  when the GIL is off).

* *What would break?* — :data:`GIL_AUDIT`, a reviewed inventory of the
  module-level mutable state in the runtime that currently leans on the
  GIL's implicit serialisation.  Each entry carries a risk verdict:
  ``safe`` (immutable after import, or confined by an explicit guard),
  ``guarded`` (mutable, but single-writer by documented contract), or
  ``needs-work`` (a real free-threading hazard).
"""

from __future__ import annotations

import sys
import sysconfig
from typing import Dict, List


def free_threaded_build() -> bool:
    """True when this interpreter was compiled with ``--disable-gil``."""
    return bool(sysconfig.get_config_var("Py_GIL_DISABLED"))


def gil_enabled() -> bool:
    """Is the GIL actually enabled at runtime?

    Free-threaded builds can re-enable the GIL (``PYTHON_GIL=1``, or
    automatically when an incompatible extension loads), so this checks
    :func:`sys._is_gil_enabled` where it exists; non-free-threaded builds
    are always ``True``.
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    if probe is None:
        return True
    return bool(probe())


#: Module-level mutable state in and around ``repro.runtime`` that assumes
#: the GIL, with a per-item verdict.  Reviewed for the process-engine PR;
#: revisit whenever a new module-global appears.
GIL_AUDIT = (
    {
        "module": "repro.testing.faults",
        "symbol": "_PLAN",
        "risk": "guarded",
        "note": (
            "Process-global injected FaultPlan; written only by inject() "
            "between runs, rule visit counters take an explicit lock. "
            "Concurrent inject() from two threads is already rejected "
            "(non-reentrant), so no new hazard without the GIL."
        ),
    },
    {
        "module": "repro.runtime.threads",
        "symbol": "blas_thread_limit (env-var fallback)",
        "risk": "needs-work",
        "note": (
            "Without threadpoolctl the fallback mutates os.environ "
            "process-wide; two engines opening concurrently on different "
            "threads race on the save/restore. Benign today (engines are "
            "opened from one coordinator thread); a free-threaded build "
            "should route through threadpoolctl or take a module lock."
        ),
    },
    {
        "module": "repro.runtime.workspace",
        "symbol": "Workspace buffers",
        "risk": "safe",
        "note": (
            "Arenas are pinned to their owning thread by an explicit "
            "guard (WorkspaceThreadError), which is exactly the "
            "free-threading discipline already."
        ),
    },
    {
        "module": "repro.runtime.executor",
        "symbol": "ParallelGradientEngine._acc/_rr/n_steps",
        "risk": "guarded",
        "note": (
            "Coordinator-side accumulators and the round-robin counter "
            "are mutated only by the single coordinator thread (documented "
            "engine contract); worker threads touch only slot-private "
            "state. Unchanged by GIL removal while that contract holds."
        ),
    },
    {
        "module": "repro.runtime.procexec",
        "symbol": "ProcessGradientEngine pipes/arena + _process_engine_probe",
        "risk": "safe",
        "note": (
            "Worker state is process-private by construction; coordinator "
            "pipes and the shared-memory arena are single-coordinator like "
            "the thread engine. The availability probe is an idempotent "
            "write of a constant."
        ),
    },
    {
        "module": "repro.testing.faults",
        "symbol": "fault-site registry",
        "risk": "safe",
        "note": (
            "Populated at import time by register_fault_site and "
            "effectively read-only afterwards."
        ),
    },
)


def free_threading_report() -> Dict:
    """Structured audit snapshot (also embedded in bench metadata)."""
    counts: Dict[str, int] = {}
    for entry in GIL_AUDIT:
        counts[entry["risk"]] = counts.get(entry["risk"], 0) + 1
    return {
        "python": sys.version.split()[0],
        "free_threaded_build": free_threaded_build(),
        "gil_enabled": gil_enabled(),
        "risk_counts": counts,
        "audit": [dict(entry) for entry in GIL_AUDIT],
    }


def audit_rows() -> List[Dict]:
    """The audit as report-style rows (for tables/CLI printing)."""
    return [dict(entry) for entry in GIL_AUDIT]
