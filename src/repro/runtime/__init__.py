"""Parallel-runtime substrate.

Models the software stack the paper layers over the hardware: OpenMP-style
parallel loops, MKL-style BLAS, loop fusion, dependency-graph scheduling
(paper Fig. 6), and the double-buffered host→device offload pipeline
(paper Fig. 5).  Each optimization step of the paper's Table I corresponds
to an :class:`~repro.runtime.backend.ExecutionBackend` here.
"""

from repro.runtime.backend import (
    OptimizationLevel,
    ExecutionBackend,
    backend_for_level,
    matlab_backend,
    optimized_cpu_backend,
)
from repro.runtime.blas import (
    mkl_gemm_efficiency,
    naive_gemm_traffic,
    gemm_time_components,
)
from repro.runtime.parallel_for import ParallelForTiming, simulate_parallel_for
from repro.runtime.taskgraph import TaskGraph, TaskNode, rbm_cd1_taskgraph
from repro.runtime.fusion import fuse_elementwise, fusion_savings
from repro.runtime.offload import OffloadPipeline, OffloadTimeline, ChunkEvent
from repro.runtime.schedule import (
    Schedule,
    ScheduledTask,
    list_schedule,
    makespan_lower_bound,
)
from repro.runtime.autotune import (
    TuningResult,
    TuningSample,
    autotune_threads,
    autotune_training_config,
    default_thread_ladder,
)
from repro.runtime.distributed import (
    DataParallelPoint,
    scaling_rows,
    simulate_data_parallel,
)
from repro.runtime.workspace import Workspace, WorkspaceFrozenError, WorkspaceThreadError
from repro.runtime.threads import (
    HAVE_THREADPOOLCTL,
    available_cores,
    blas_thread_limit,
    recommended_blas_threads,
)
from repro.runtime.executor import (
    ChunkPrefetcher,
    ExecutorClosedError,
    ParallelGradientEngine,
    PrefetchError,
)
from repro.runtime.procexec import (
    EngineError,
    ProcessGradientEngine,
    SHM_PREFIX,
    make_engine,
    process_engine_available,
)
from repro.runtime.freethreading import (
    free_threaded_build,
    free_threading_report,
    gil_enabled,
)
from repro.runtime.checkpoint import (
    CheckpointError,
    CheckpointStore,
    atomic_save_npz,
    capture_rng,
    load_npz,
    restore_rng,
    require_shard_count,
    resolve_resume_path,
    retry_transient,
)

__all__ = [
    "OptimizationLevel",
    "ExecutionBackend",
    "backend_for_level",
    "matlab_backend",
    "optimized_cpu_backend",
    "mkl_gemm_efficiency",
    "naive_gemm_traffic",
    "gemm_time_components",
    "ParallelForTiming",
    "simulate_parallel_for",
    "TaskGraph",
    "TaskNode",
    "rbm_cd1_taskgraph",
    "fuse_elementwise",
    "fusion_savings",
    "OffloadPipeline",
    "OffloadTimeline",
    "ChunkEvent",
    "Schedule",
    "ScheduledTask",
    "list_schedule",
    "makespan_lower_bound",
    "TuningResult",
    "TuningSample",
    "autotune_threads",
    "autotune_training_config",
    "default_thread_ladder",
    "DataParallelPoint",
    "simulate_data_parallel",
    "scaling_rows",
    "Workspace",
    "WorkspaceFrozenError",
    "WorkspaceThreadError",
    "HAVE_THREADPOOLCTL",
    "available_cores",
    "blas_thread_limit",
    "recommended_blas_threads",
    "ChunkPrefetcher",
    "ExecutorClosedError",
    "ParallelGradientEngine",
    "PrefetchError",
    "EngineError",
    "ProcessGradientEngine",
    "SHM_PREFIX",
    "make_engine",
    "process_engine_available",
    "free_threaded_build",
    "free_threading_report",
    "gil_enabled",
    "CheckpointError",
    "CheckpointStore",
    "atomic_save_npz",
    "capture_rng",
    "load_npz",
    "restore_rng",
    "require_shard_count",
    "resolve_resume_path",
    "retry_transient",
]
