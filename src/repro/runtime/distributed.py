"""Data-parallel scaling across multiple coprocessors.

The paper's related work contrasts its single-card approach with
Google's distributed deep networks; the natural multi-card extension of
its scheme is **synchronous data-parallel SGD**: each of N coprocessors
holds a model replica, processes 1/N of every mini-batch, and gradients
are all-reduced through the host between updates.

The model per update:

    compute  = per-device step time at batch m/N   (from the trainers'
               cost machinery — small per-device batches starve the
               240 threads, which is what kills strong scaling)
    sync     = 2 · param_bytes · N / host_bw + 2N · latency
               (gather gradients + scatter parameters through one host
               PCIe complex)
    update   = max(compute) + sync          (synchronous SGD barrier)

Weak vs strong scaling both fall out: strong scaling shrinks the
per-device batch, weak scaling keeps it fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro.errors import ConfigurationError
from repro.phi.pcie import PCIeModel
from repro.utils.validation import check_int

# NOTE: repro.core imports this package's siblings at import time, so the
# TrainingConfig import must stay inside the function to avoid a cycle.

_F64 = 8


@dataclass(frozen=True)
class DataParallelPoint:
    """Scaling measurement at one device count."""

    n_devices: int
    per_device_batch: int
    compute_per_update_s: float
    sync_per_update_s: float
    total_seconds: float
    speedup: float  # vs n_devices=1
    efficiency: float  # speedup / n_devices

    @property
    def sync_fraction(self) -> float:
        per_update = self.compute_per_update_s + self.sync_per_update_s
        return self.sync_per_update_s / per_update if per_update > 0 else 0.0


def _gradient_bytes(trainer) -> float:
    """Bytes exchanged per device per update: the full gradient (half of
    the trainer's resident params+grads allocation)."""
    return trainer.parameter_bytes() / 2.0


def simulate_data_parallel(
    config,
    trainer_cls: Type,
    device_counts: Sequence[int] = (1, 2, 4, 8),
    host_link: Optional[PCIeModel] = None,
    scaling: str = "strong",
) -> List[DataParallelPoint]:
    """Scaling curve of synchronous data-parallel training.

    Parameters
    ----------
    config:
        The single-device workload.  ``strong`` scaling divides its
        batch across devices (same global batch, same update count);
        ``weak`` scaling keeps the per-device batch and multiplies the
        global batch (same update count, N× the data per update).
    trainer_cls:
        :class:`~repro.core.ae_trainer.SparseAutoencoderTrainer` or the
        RBM/fine-tuning trainers.
    host_link:
        PCIe model for the gradient exchange; defaults to the device's
        link capability.
    """
    from repro.core.config import TrainingConfig

    if scaling not in ("strong", "weak"):
        raise ConfigurationError(f"scaling must be 'strong' or 'weak', got {scaling!r}")
    for n in device_counts:
        check_int(n, "n_devices", minimum=1)
    if not config.machine.is_coprocessor:
        raise ConfigurationError("data-parallel scaling models coprocessor clusters")
    link = host_link if host_link is not None else PCIeModel.for_spec(config.machine)

    updates = config.total_updates
    points: List[DataParallelPoint] = []
    baseline_total: Optional[float] = None
    for n in sorted(set(int(n) for n in device_counts)):
        if scaling == "strong":
            per_device_batch = max(1, config.batch_size // n)
        else:
            per_device_batch = config.batch_size
        probe_cfg = TrainingConfig(
            n_visible=config.n_visible,
            n_hidden=config.n_hidden,
            n_examples=max(per_device_batch, 1),
            batch_size=per_device_batch,
            machine=config.machine,
            level=config.level,
            backend=config.backend,
        )
        trainer = trainer_cls(probe_cfg)
        compute_s, _ = trainer._update_cost(per_device_batch)
        if n == 1:
            sync_s = 0.0
        else:
            grad_bytes = _gradient_bytes(trainer)
            sync_s = 2.0 * grad_bytes * n / link.effective_bandwidth + (
                2.0 * n * link.latency_s
            )
        total = updates * (compute_s + sync_s)
        if baseline_total is None:
            baseline_total = total
        speedup = baseline_total / total if total > 0 else float("inf")
        points.append(
            DataParallelPoint(
                n_devices=n,
                per_device_batch=per_device_batch,
                compute_per_update_s=compute_s,
                sync_per_update_s=sync_s,
                total_seconds=total,
                speedup=speedup,
                efficiency=speedup / n,
            )
        )
    return points


def scaling_rows(points: Sequence[DataParallelPoint]) -> List[Dict[str, object]]:
    """Rows for :func:`repro.bench.report.format_table`."""
    return [
        {
            "devices": p.n_devices,
            "per_device_batch": p.per_device_batch,
            "compute_ms": p.compute_per_update_s * 1e3,
            "sync_ms": p.sync_per_update_s * 1e3,
            "total_s": p.total_seconds,
            "speedup": p.speedup,
            "efficiency": p.efficiency,
        }
        for p in points
    ]
