"""BLAS thread-pool budgeting for the parallel executor (paper §IV.B).

The paper runs 240 hardware threads but is careful about *who* owns them:
OpenMP worker threads at the outer level, MKL's internal pool inside each
GEMM.  When both levels fan out independently the core count is
oversubscribed (W workers × N BLAS threads) and throughput collapses to
context-switch noise.  This module is the referee: it caps the BLAS pools
so ``workers × blas_threads ≈ cores``.

Two mechanisms, best one wins:

* `threadpoolctl <https://github.com/joblib/threadpoolctl>`_ when
  importable — talks to the already-loaded OpenBLAS/MKL/BLIS runtimes
  directly, so limits apply immediately and can be restored;
* environment variables (``OMP_NUM_THREADS`` & friends) otherwise —
  honoured only by BLAS runtimes *not yet initialised*, so processes that
  want the fallback to bite must set limits before the first ``import
  numpy`` (``benchmarks/bench_parallel.py`` does exactly this).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigurationError

try:  # pragma: no cover - depends on the host environment
    from threadpoolctl import threadpool_limits as _threadpool_limits

    HAVE_THREADPOOLCTL = True
except ImportError:  # pragma: no cover
    _threadpool_limits = None
    HAVE_THREADPOOLCTL = False

#: Environment knobs recognised by the common BLAS/OpenMP runtimes.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def available_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def recommended_blas_threads(n_workers: int, total_cores: Optional[int] = None) -> int:
    """BLAS threads per worker so ``workers × blas ≤ cores`` (min 1).

    This is the paper's thread-budget split: the outer data-parallel level
    gets first claim on cores, the inner GEMM pool divides the remainder.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    total = available_cores() if total_cores is None else int(total_cores)
    return max(1, total // n_workers)


@contextmanager
def blas_thread_limit(limit: Optional[int]) -> Iterator[None]:
    """Cap the process-wide BLAS pools at ``limit`` threads inside the block.

    ``None`` is a no-op (leave the runtime's own default in place).  With
    threadpoolctl the cap applies to already-initialised pools and is
    restored on exit; the environment-variable fallback is best-effort
    (it only steers pools created after the variables are set) but is
    likewise restored.
    """
    if limit is None:
        yield
        return
    limit = int(limit)
    if limit < 1:
        raise ConfigurationError(f"BLAS thread limit must be >= 1, got {limit}")
    if HAVE_THREADPOOLCTL:
        with _threadpool_limits(limits=limit):
            yield
        return
    saved = {var: os.environ.get(var) for var in BLAS_ENV_VARS}
    for var in BLAS_ENV_VARS:
        os.environ[var] = str(limit)
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
