"""Dataset container, mini-batch iteration, and chunk planning.

The paper streams training data host→device in large chunks, then splits
each chunk into mini-batches on the device (Algorithm 1, lines 3–4).
:func:`plan_chunks` computes that two-level decomposition; the actual
transfer/overlap simulation lives in :mod:`repro.runtime.offload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_2d, check_int


class Dataset:
    """An in-memory design matrix with reproducible mini-batch iteration."""

    def __init__(self, x: np.ndarray, labels: Optional[np.ndarray] = None):
        self.x = check_2d(x, "x")
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != self.x.shape[0]:
                raise ConfigurationError(
                    f"labels length {labels.shape[0]} != n_examples {self.x.shape[0]}"
                )
        self.labels = labels

    @property
    def n_examples(self) -> int:
        return self.x.shape[0]

    @property
    def n_features(self) -> int:
        return self.x.shape[1]

    @property
    def nbytes(self) -> int:
        """Size of the raw design matrix in bytes (drives transfer models)."""
        return self.x.nbytes

    def minibatches(
        self, batch_size: int, shuffle: bool = True, seed: SeedLike = None
    ) -> Iterator[np.ndarray]:
        """Yield mini-batch views for one epoch."""
        check_int(batch_size, "batch_size", minimum=1)
        order = (
            as_generator(seed).permutation(self.n_examples)
            if shuffle
            else np.arange(self.n_examples)
        )
        for start in range(0, self.n_examples, batch_size):
            yield self.x[order[start : start + batch_size]]

    def subset(self, indices) -> "Dataset":
        """Row-subset as a new Dataset (copies)."""
        labels = None if self.labels is None else self.labels[indices]
        return Dataset(self.x[indices].copy(), labels)

    def __len__(self) -> int:
        return self.n_examples

    def __repr__(self) -> str:
        return f"Dataset(n_examples={self.n_examples}, n_features={self.n_features})"


def minibatch_indices(
    n_examples: int, batch_size: int, shuffle: bool = True, seed: SeedLike = None
) -> List[np.ndarray]:
    """Index arrays for one epoch of mini-batches (last batch may be short)."""
    check_int(n_examples, "n_examples", minimum=1)
    check_int(batch_size, "batch_size", minimum=1)
    order = (
        as_generator(seed).permutation(n_examples) if shuffle else np.arange(n_examples)
    )
    return [order[s : s + batch_size] for s in range(0, n_examples, batch_size)]


def train_test_split(
    x: np.ndarray,
    labels: Optional[np.ndarray] = None,
    test_fraction: float = 0.2,
    seed: SeedLike = None,
):
    """Shuffled train/test split.

    Returns ``(x_train, x_test)`` or ``(x_train, y_train, x_test,
    y_test)`` when labels are given.  Both sides are guaranteed
    non-empty (``test_fraction`` is clamped so at least one example
    lands on each side).
    """
    x = check_2d(x, "x")
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError(
            f"test_fraction must lie in (0, 1), got {test_fraction}"
        )
    n = x.shape[0]
    if n < 2:
        raise ConfigurationError("need at least 2 examples to split")
    n_test = min(max(int(round(n * test_fraction)), 1), n - 1)
    order = as_generator(seed).permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    if labels is None:
        return x[train_idx], x[test_idx]
    labels = np.asarray(labels)
    if labels.shape[0] != n:
        raise ConfigurationError(
            f"labels length {labels.shape[0]} != n_examples {n}"
        )
    return x[train_idx], labels[train_idx], x[test_idx], labels[test_idx]


@dataclass(frozen=True)
class ChunkPlan:
    """The two-level chunk/batch decomposition of one training pass.

    Attributes
    ----------
    n_examples, n_features:
        Dataset dimensions.
    chunk_sizes:
        Examples per chunk, in transfer order (last may be short).
    batch_size:
        Mini-batch size used on the device inside each chunk.
    bytes_per_example:
        Row size in bytes (features × itemsize) — drives the PCIe model.
    """

    n_examples: int
    n_features: int
    chunk_sizes: tuple
    batch_size: int
    bytes_per_example: int

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_sizes)

    @property
    def total_bytes(self) -> int:
        return self.n_examples * self.bytes_per_example

    def chunk_bytes(self, index: int) -> int:
        """Transfer size of chunk ``index`` in bytes."""
        return self.chunk_sizes[index] * self.bytes_per_example

    def batches_in_chunk(self, index: int) -> int:
        """Number of device-side mini-batches chunk ``index`` decomposes into."""
        size = self.chunk_sizes[index]
        return (size + self.batch_size - 1) // self.batch_size

    @property
    def total_batches(self) -> int:
        return sum(self.batches_in_chunk(i) for i in range(self.n_chunks))


def plan_chunks(
    n_examples: int,
    n_features: int,
    chunk_examples: int,
    batch_size: int,
    itemsize: int = 8,
) -> ChunkPlan:
    """Decompose a dataset into device-sized chunks of mini-batches.

    Mirrors Algorithm 1: "get a chunk of data from the buffer area in global
    memory / split the chunk into many smaller training batches".
    """
    check_int(n_examples, "n_examples", minimum=1)
    check_int(n_features, "n_features", minimum=1)
    check_int(chunk_examples, "chunk_examples", minimum=1)
    check_int(batch_size, "batch_size", minimum=1)
    check_int(itemsize, "itemsize", minimum=1)
    if batch_size > chunk_examples:
        raise ConfigurationError(
            f"batch_size {batch_size} cannot exceed chunk_examples {chunk_examples}"
        )
    sizes = []
    remaining = n_examples
    while remaining > 0:
        take = min(chunk_examples, remaining)
        sizes.append(take)
        remaining -= take
    return ChunkPlan(
        n_examples=n_examples,
        n_features=n_features,
        chunk_sizes=tuple(sizes),
        batch_size=batch_size,
        bytes_per_example=n_features * itemsize,
    )
