"""Random patch extraction (the paper's training-example sampling).

"We obtain the training examples by randomly extracting patches of
required sizes from these images" (paper §V.A.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_int


def extract_patches(
    images: np.ndarray,
    patch_size: int,
    n_patches: int,
    seed: SeedLike = None,
    flatten: bool = True,
) -> np.ndarray:
    """Sample ``n_patches`` square patches uniformly from a stack of images.

    Parameters
    ----------
    images:
        Array of shape (n_images, height, width).
    patch_size:
        Side length of the square patches.
    flatten:
        Return (n_patches, patch_size²) when True, else
        (n_patches, patch_size, patch_size).
    """
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 3:
        raise ShapeError(f"images must be 3-D (n, h, w), got ndim={images.ndim}")
    n_images, height, width = images.shape
    check_int(patch_size, "patch_size", minimum=1)
    check_int(n_patches, "n_patches", minimum=1)
    if patch_size > height or patch_size > width:
        raise ShapeError(
            f"patch_size {patch_size} exceeds image size {height}x{width}"
        )
    rng = as_generator(seed)
    img_idx = rng.integers(0, n_images, size=n_patches)
    ys = rng.integers(0, height - patch_size + 1, size=n_patches)
    xs = rng.integers(0, width - patch_size + 1, size=n_patches)
    patches = np.empty((n_patches, patch_size, patch_size), dtype=np.float64)
    for k in range(n_patches):
        patches[k] = images[
            img_idx[k], ys[k] : ys[k] + patch_size, xs[k] : xs[k] + patch_size
        ]
    if flatten:
        return patches.reshape(n_patches, patch_size * patch_size)
    return patches


def normalize_patches(
    patches: np.ndarray, clip_std: float = 3.0, output_range: tuple = (0.1, 0.9)
) -> np.ndarray:
    """Squash real-valued patches into a sigmoid-friendly range.

    The CS294A preprocessing the paper's autoencoder setup follows: remove
    the per-patch DC component, clip at ±``clip_std`` standard deviations,
    then map linearly into ``output_range`` (default [0.1, 0.9]).
    """
    x = np.asarray(patches, dtype=np.float64)
    if x.ndim != 2:
        raise ShapeError("patches must be 2-D (n_patches x n_pixels)")
    lo, hi = output_range
    if not lo < hi:
        raise ValueError(f"output_range must be increasing, got {output_range}")
    x = x - x.mean(axis=1, keepdims=True)
    scale = clip_std * x.std()
    if scale <= 0:
        return np.full_like(x, 0.5 * (lo + hi))
    x = np.clip(x, -scale, scale) / scale  # now in [-1, 1]
    return lo + (hi - lo) * (x + 1.0) / 2.0
