"""Dataset substrate.

The paper trains on patches randomly extracted from "a large [set] of
handwritten digit images and natural images" [27, 3].  Neither corpus is
available offline, so this package synthesises statistically similar
stand-ins (stroke-rendered digits; 1/f-spectrum natural images) and
implements the same patch-extraction pipeline.  The paper itself notes the
optimization results are "irrelevant to specific data type and data
distribution", so any dense patches of the right shape exercise the same
code paths.
"""

from repro.data.synth_digits import render_digit, make_digit_images, digit_dataset
from repro.data.natural_images import make_natural_images, whiten_patches
from repro.data.patches import extract_patches, normalize_patches
from repro.data.datasets import (
    Dataset,
    minibatch_indices,
    ChunkPlan,
    plan_chunks,
    train_test_split,
)
from repro.data.mnist_io import (
    export_synthetic_digits,
    load_image_label_pair,
    read_idx,
    write_idx,
)

__all__ = [
    "render_digit",
    "make_digit_images",
    "digit_dataset",
    "make_natural_images",
    "whiten_patches",
    "extract_patches",
    "normalize_patches",
    "Dataset",
    "minibatch_indices",
    "ChunkPlan",
    "plan_chunks",
    "train_test_split",
    "read_idx",
    "write_idx",
    "load_image_label_pair",
    "export_synthetic_digits",
]
