"""Synthetic natural images with a 1/f amplitude spectrum.

Substitute for the Olshausen natural-image corpus the paper samples
(ref [27]).  Natural scenes famously have power spectra falling as
~1/f²; generating Gaussian fields with a 1/f amplitude spectrum
reproduces the second-order statistics that make sparse coding /
sparse autoencoders learn oriented edge filters.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_int, check_positive


def make_natural_images(
    n_images: int,
    size: int = 128,
    spectral_exponent: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Generate ``n_images`` grayscale images of shape (size, size).

    Each image is white Gaussian noise shaped in the Fourier domain by an
    amplitude filter |f|^(−spectral_exponent), then standardised to zero
    mean and unit variance (per image).
    """
    check_int(n_images, "n_images", minimum=1)
    check_int(size, "size", minimum=4)
    check_positive(spectral_exponent, "spectral_exponent", strict=False)
    rng = as_generator(seed)

    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.fftfreq(size)[None, :]
    freq = np.hypot(fy, fx)
    freq[0, 0] = 1.0  # avoid division by zero at DC; DC is zeroed below
    amplitude = freq**-spectral_exponent
    amplitude[0, 0] = 0.0  # zero-mean images

    images = np.empty((n_images, size, size), dtype=np.float64)
    for i in range(n_images):
        noise = rng.normal(size=(size, size))
        spectrum = np.fft.fft2(noise) * amplitude
        img = np.real(np.fft.ifft2(spectrum))
        std = img.std()
        images[i] = (img - img.mean()) / (std if std > 0 else 1.0)
    return images


def whiten_patches(patches: np.ndarray, epsilon: float = 1e-2) -> np.ndarray:
    """ZCA-whiten flattened patches (rows) — the standard sparse-coding prep.

    Returns patches decorrelated to (approximately) identity covariance;
    ``epsilon`` regularises small eigenvalues to avoid noise amplification.
    """
    x = np.asarray(patches, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("patches must be 2-D (n_patches x n_pixels)")
    check_positive(epsilon, "epsilon")
    x = x - x.mean(axis=0)
    cov = x.T @ x / x.shape[0]
    eigvals, eigvecs = np.linalg.eigh(cov)
    # eigh returns ascending eigenvalues; clamp tiny negatives from roundoff.
    eigvals = np.maximum(eigvals, 0.0)
    scaling = 1.0 / np.sqrt(eigvals + epsilon)
    return x @ (eigvecs * scaling) @ eigvecs.T
