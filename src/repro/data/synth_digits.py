"""Synthetic handwritten-digit images.

Substitute for the MNIST-style corpus the paper samples from (ref [14]'s
handwritten digits).  Digits are rendered as anti-aliased polyline strokes
on an N×N grid with random affine jitter (shift, scale, rotation, stroke
width), which yields the properties the autoencoder experiments rely on:
values in [0, 1], strong spatial correlation, and a low-dimensional class
structure an encoder can compress.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_int

# Each digit is a list of strokes; each stroke is a list of (x, y) control
# points in a unit box with (0,0) top-left, connected by straight segments.
_DIGIT_STROKES = {
    0: [[(0.5, 0.1), (0.8, 0.3), (0.8, 0.7), (0.5, 0.9), (0.2, 0.7), (0.2, 0.3), (0.5, 0.1)]],
    1: [[(0.35, 0.25), (0.55, 0.1), (0.55, 0.9)]],
    2: [[(0.2, 0.3), (0.4, 0.1), (0.7, 0.15), (0.75, 0.4), (0.3, 0.7), (0.2, 0.9), (0.8, 0.9)]],
    3: [[(0.25, 0.15), (0.7, 0.2), (0.5, 0.45), (0.75, 0.65), (0.55, 0.9), (0.25, 0.85)]],
    4: [[(0.65, 0.9), (0.65, 0.1), (0.2, 0.65), (0.85, 0.65)]],
    5: [[(0.75, 0.1), (0.3, 0.1), (0.25, 0.45), (0.65, 0.45), (0.75, 0.7), (0.55, 0.9), (0.25, 0.85)]],
    6: [[(0.7, 0.12), (0.35, 0.35), (0.25, 0.7), (0.5, 0.9), (0.72, 0.7), (0.55, 0.5), (0.3, 0.62)]],
    7: [[(0.2, 0.12), (0.8, 0.12), (0.45, 0.9)]],
    8: [
        [(0.5, 0.1), (0.72, 0.27), (0.5, 0.48), (0.28, 0.27), (0.5, 0.1)],
        [(0.5, 0.48), (0.75, 0.7), (0.5, 0.92), (0.25, 0.7), (0.5, 0.48)],
    ],
    9: [[(0.7, 0.38), (0.45, 0.5), (0.28, 0.3), (0.5, 0.1), (0.72, 0.3), (0.68, 0.65), (0.5, 0.9)]],
}


def _segment_distance(px, py, ax, ay, bx, by):
    """Distance from grid points (px, py) to segment (a, b), vectorised."""
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq < 1e-12:
        return np.hypot(px - ax, py - ay)
    t = np.clip(((px - ax) * dx + (py - ay) * dy) / length_sq, 0.0, 1.0)
    return np.hypot(px - (ax + t * dx), py - (ay + t * dy))


def render_digit(
    digit: int,
    size: int = 16,
    stroke_width: float = 0.06,
    shift: Tuple[float, float] = (0.0, 0.0),
    scale: float = 1.0,
    rotation: float = 0.0,
) -> np.ndarray:
    """Render one digit as a ``size``×``size`` float image in [0, 1].

    ``stroke_width``, ``shift``, ``scale`` and ``rotation`` are in unit-box
    coordinates / radians; intensities fall off smoothly at stroke edges so
    the images are anti-aliased (no binary artifacts).
    """
    if digit not in _DIGIT_STROKES:
        raise ConfigurationError(f"digit must be 0-9, got {digit}")
    check_int(size, "size", minimum=4)
    ys, xs = np.mgrid[0:size, 0:size]
    px = (xs + 0.5) / size
    py = (ys + 0.5) / size

    cos_r, sin_r = np.cos(rotation), np.sin(rotation)
    image = np.zeros((size, size), dtype=np.float64)
    for stroke in _DIGIT_STROKES[digit]:
        pts = []
        for (x, y) in stroke:
            # centre, scale, rotate, shift back
            cx, cy = x - 0.5, y - 0.5
            rx = cos_r * cx - sin_r * cy
            ry = sin_r * cx + cos_r * cy
            pts.append((0.5 + scale * rx + shift[0], 0.5 + scale * ry + shift[1]))
        for (ax, ay), (bx, by) in zip(pts[:-1], pts[1:]):
            dist = _segment_distance(px, py, ax, ay, bx, by)
            # Smooth falloff: 1 inside the stroke, linear ramp one pixel wide.
            ramp = 1.0 / size
            intensity = np.clip(1.0 - (dist - stroke_width) / ramp, 0.0, 1.0)
            np.maximum(image, intensity, out=image)
    return image


def make_digit_images(
    n_images: int,
    size: int = 16,
    seed: SeedLike = None,
    jitter: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``n_images`` jittered digits; returns (images, labels).

    ``images`` has shape (n_images, size, size); ``labels`` the digit ids.
    """
    check_int(n_images, "n_images", minimum=1)
    rng = as_generator(seed)
    images = np.empty((n_images, size, size), dtype=np.float64)
    labels = rng.integers(0, 10, size=n_images)
    for i, digit in enumerate(labels):
        if jitter:
            shift = tuple(rng.uniform(-0.08, 0.08, size=2))
            scale = rng.uniform(0.8, 1.1)
            rotation = rng.uniform(-0.25, 0.25)
            width = rng.uniform(0.04, 0.09)
        else:
            shift, scale, rotation, width = (0.0, 0.0), 1.0, 0.0, 0.06
        images[i] = render_digit(
            int(digit), size=size, stroke_width=width, shift=shift, scale=scale,
            rotation=rotation,
        )
    return images, labels


def digit_dataset(
    n_examples: int, size: int = 16, seed: SeedLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened digit dataset: (n_examples, size²) matrix in [0,1] + labels."""
    images, labels = make_digit_images(n_examples, size=size, seed=seed)
    return images.reshape(n_examples, size * size), labels
