"""IDX file I/O — the on-disk format of the MNIST handwritten digits.

The paper samples from handwritten-digit images (ref [14], LeCun et
al.).  No network access means no MNIST download here, but a downstream
user *with* the files should not have to write a parser, and our
synthetic digits can be exported in the same format for tool
interoperability.  The IDX format (from the MNIST distribution):

    [0x00 0x00] [type byte] [n_dims byte] [dim sizes as big-endian u32…]
    followed by the array data in C order.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import BinaryIO, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: IDX type byte → numpy dtype (big-endian where multi-byte).
_IDX_TYPES = {
    0x08: np.dtype(np.uint8),
    0x09: np.dtype(np.int8),
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}
_TYPE_BYTES = {dtype: code for code, dtype in _IDX_TYPES.items()}

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str) -> BinaryIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def read_idx(path: PathLike) -> np.ndarray:
    """Read an IDX file (``.gz`` transparently) into a numpy array."""
    with _open(path, "rb") as fh:
        magic = fh.read(4)
        if len(magic) != 4 or magic[0] != 0 or magic[1] != 0:
            raise ConfigurationError(f"{path}: not an IDX file (bad magic {magic!r})")
        type_byte, n_dims = magic[2], magic[3]
        if type_byte not in _IDX_TYPES:
            raise ConfigurationError(f"{path}: unknown IDX type byte 0x{type_byte:02x}")
        dims = struct.unpack(f">{n_dims}I", fh.read(4 * n_dims))
        dtype = _IDX_TYPES[type_byte]
        count = int(np.prod(dims)) if dims else 0
        raw = fh.read(count * dtype.itemsize)
        if len(raw) != count * dtype.itemsize:
            raise ConfigurationError(
                f"{path}: truncated IDX payload ({len(raw)} bytes for shape {dims})"
            )
        return np.frombuffer(raw, dtype=dtype).reshape(dims).astype(dtype.newbyteorder("="))


def write_idx(path: PathLike, array: np.ndarray) -> None:
    """Write ``array`` as an IDX file (``.gz`` suffix compresses)."""
    array = np.asarray(array)
    if array.ndim == 0 or array.ndim > 255:
        raise ConfigurationError(f"IDX supports 1-255 dimensions, got {array.ndim}")
    # Pick the matching IDX type; default float64 for floats, uint8 for
    # unsigned bytes, int32 for other integers.
    if array.dtype == np.uint8:
        dtype = np.dtype(np.uint8)
    elif array.dtype == np.int8:
        dtype = np.dtype(np.int8)
    elif np.issubdtype(array.dtype, np.floating):
        dtype = np.dtype(">f8") if array.dtype.itemsize == 8 else np.dtype(">f4")
    elif np.issubdtype(array.dtype, np.integer):
        dtype = np.dtype(">i4")
    else:
        raise ConfigurationError(f"cannot store dtype {array.dtype} in IDX")
    with _open(path, "wb") as fh:
        fh.write(bytes([0, 0, _TYPE_BYTES[dtype], array.ndim]))
        fh.write(struct.pack(f">{array.ndim}I", *array.shape))
        fh.write(np.ascontiguousarray(array, dtype=dtype).tobytes())


def load_image_label_pair(
    images_path: PathLike, labels_path: PathLike, normalize: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Load an MNIST-style (images, labels) pair.

    Returns a flattened float design matrix — scaled to [0, 1] when
    ``normalize`` and the source is uint8 — plus the label vector.
    """
    images = read_idx(images_path)
    labels = read_idx(labels_path)
    if images.ndim < 2:
        raise ConfigurationError(f"images file has ndim={images.ndim}, expected >= 2")
    if labels.ndim != 1:
        raise ConfigurationError(f"labels file has ndim={labels.ndim}, expected 1")
    if images.shape[0] != labels.shape[0]:
        raise ConfigurationError(
            f"{images.shape[0]} images but {labels.shape[0]} labels"
        )
    flat = images.reshape(images.shape[0], -1).astype(np.float64)
    if normalize and images.dtype == np.uint8:
        flat /= 255.0
    return flat, labels.astype(np.int64)


def export_synthetic_digits(
    directory: PathLike, n_examples: int, size: int = 28, seed=0, gzip_files: bool = True
) -> Tuple[Path, Path]:
    """Export our synthetic digits as an MNIST-style IDX pair.

    Returns the (images_path, labels_path) written.  Useful for feeding
    the synthetic corpus to external MNIST tooling.
    """
    from repro.data.synth_digits import make_digit_images

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    images, labels = make_digit_images(n_examples, size=size, seed=seed)
    suffix = ".gz" if gzip_files else ""
    images_path = directory / f"synthetic-images-idx3-ubyte{suffix}"
    labels_path = directory / f"synthetic-labels-idx1-ubyte{suffix}"
    write_idx(images_path, (images * 255).astype(np.uint8))
    write_idx(labels_path, labels.astype(np.uint8))
    return images_path, labels_path
