"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything this package produces with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or out-of-range values."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape, dtype, or dimensionality."""


class ConvergenceError(ReproError):
    """An iterative optimizer failed to make progress within its budget."""


class DeviceMemoryError(ReproError):
    """A simulated device allocation exceeded the device's memory capacity."""


class SimulationError(ReproError):
    """The machine simulator was driven into an invalid state."""


class SchedulingError(ReproError):
    """A task graph is malformed (cycle, unknown dependency, double-run)."""


class ServingError(ReproError):
    """The inference serving engine was misused or driven into an invalid state."""
