"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything this package produces with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An object was configured with inconsistent or out-of-range values."""


class ShapeError(ReproError, ValueError):
    """An array argument has the wrong shape, dtype, or dimensionality."""


class ConvergenceError(ReproError):
    """An iterative optimizer failed to make progress within its budget."""


class DeviceMemoryError(ReproError):
    """A simulated device allocation exceeded the device's memory capacity."""


class SimulationError(ReproError):
    """The machine simulator was driven into an invalid state."""


class SchedulingError(ReproError):
    """A task graph is malformed (cycle, unknown dependency, double-run)."""


class ServingError(ReproError):
    """The inference serving engine was misused or driven into an invalid state."""


class ModelNotFoundError(ServingError, KeyError):
    """A registry lookup named a model that is not registered.

    Subclasses :class:`KeyError` so callers doing dictionary-style
    handling keep working, while the message lists every registered name
    (a bare ``KeyError`` repr-quotes its argument and hides them).
    """

    def __init__(self, name: str, registered):
        self.name = name
        self.registered = sorted(registered)
        known = ", ".join(self.registered) or "(none)"
        # Bypass KeyError.__str__'s repr() of the first argument.
        ServingError.__init__(self, f"unknown model {name!r}; registered: {known}")

    def __str__(self) -> str:
        return self.args[0]
