"""Generic parameter sweeps over simulated training runs.

The figure harnesses in :mod:`repro.bench.harness` are fixed to the
paper's workloads; :func:`sweep` is the general tool for exploring any
cross-product of configuration overrides — the "what if the paper had
varied X" questions the ablation benches ask.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError


def sweep(
    base_config: TrainingConfig,
    grid: Dict[str, Sequence],
    run: Callable[[TrainingConfig], Dict[str, object]],
    derive: Optional[Callable[[TrainingConfig, Dict[str, object]], TrainingConfig]] = None,
) -> List[Dict[str, object]]:
    """Evaluate ``run`` over the cross-product of ``grid`` overrides.

    Parameters
    ----------
    base_config:
        Template; each grid point is ``dataclasses.replace``-d onto it.
    grid:
        Mapping of TrainingConfig field name → values to try.  Fields
        must exist on :class:`TrainingConfig`.
    run:
        Maps the derived config to a result-row dict; grid values are
        merged into the returned row (grid keys win on collision).
    derive:
        Optional hook to fix up the config after substitution (e.g.
        clamp ``chunk_examples`` when ``n_examples`` shrinks).

    Returns one row per grid point, in lexicographic grid order.
    """
    if not grid:
        raise ConfigurationError("sweep grid must not be empty")
    valid_fields = set(TrainingConfig.__dataclass_fields__)
    unknown = set(grid) - valid_fields
    if unknown:
        raise ConfigurationError(
            f"unknown TrainingConfig fields in grid: {sorted(unknown)}"
        )
    keys = list(grid)
    rows: List[Dict[str, object]] = []
    for values in itertools.product(*(grid[k] for k in keys)):
        point = dict(zip(keys, values))
        config = replace(base_config, **point)
        if derive is not None:
            config = derive(config, point)
        row = dict(run(config))
        row.update(point)
        rows.append(row)
    return rows


def simulate_seconds(trainer_cls) -> Callable[[TrainingConfig], Dict[str, object]]:
    """A ready-made ``run`` callback: simulate and report core metrics."""

    def _run(config: TrainingConfig) -> Dict[str, object]:
        result = trainer_cls(config).simulate()
        return {
            "machine": result.machine_name,
            "sim_seconds": result.simulated_seconds,
            "updates": result.n_updates,
            "sync_s": result.breakdown.sync_s,
            "transfer_exposed_s": result.transfer_seconds_exposed,
        }

    return _run
