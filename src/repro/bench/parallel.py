"""Wall-clock benchmark for the real parallel training executors.

Two families of rows, mirroring the paper's two concurrency mechanisms:

* ``kind="workers"`` — the SAE gradient step through a gradient engine
  (``engine="thread"`` →
  :class:`~repro.runtime.executor.ParallelGradientEngine`,
  ``engine="process"`` →
  :class:`~repro.runtime.procexec.ProcessGradientEngine`) at W=1 vs W>1
  with BLAS pinned to one thread per worker (the honest protocol: the
  speedup measures *worker-level* data parallelism, not BLAS's own pool).
  Each row carries two ratios: ``speedup`` (vs the same engine at W=1,
  the scaling curve) and ``vs_serial`` (vs the engine-free fused serial
  step, the "was parallelism worth it at all?" number that motivated the
  process engine — the committed thread rows sat at 0.76–0.82× serial).
  Every row also carries the max absolute difference between the reduced
  parallel gradient and the serial full-batch gradient, so the report
  doubles as the ≤1e-10 equivalence gate.

* ``kind="prefetch"`` — chunked training with and without the
  :class:`~repro.runtime.executor.ChunkPrefetcher` background loader.
  Chunk *loading* is simulated I/O (a sleep calibrated to the measured
  per-chunk compute time); *compute* is the real fused SAE step.  Because
  sleeping releases the GIL, the overlap win is real on any core count —
  this is Fig. 5's "loading thread hides the PCIe transfer" made
  executable.

Speedup gates are machine- and engine-aware: every worker row is tagged
``expected_scaling`` (``n_cores >= n_workers`` at measurement time —
a single-core host *cannot* exhibit compute-parallel speedup, and its
W=2 rows would otherwise read like regressions).  Gates and baseline
comparisons skip untagged rows **explicitly**, reporting a note per
skip, never silently.  Thread rows gate on ``speedup`` (the historical
contract), process rows gate on ``vs_serial`` (the process engine must
beat *serial*, not just its own W=1).  The prefetch gate binds
everywhere — overlapping a sleeping loader needs no second core.

Metadata records the concurrency regime of the measurement:
``gil_enabled``/``free_threaded`` (PEP 703 audit, see
:mod:`repro.runtime.freethreading`) and ``blas_budget_active`` (whether
BLAS pools were actually cappable — threadpoolctl loaded, or the env
fallback pinned before NumPy import).  ``validate_report`` rejects a
report claiming threadpoolctl was importable but budgeting inactive.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

SCHEMA_ID = "repro.bench_parallel/v3"

#: (batch, n_visible, n_hidden) — paper-scale layer for the full run.
PAPER_SHAPES: Tuple[Tuple[int, int, int], ...] = ((100, 4096, 1024),)

#: Small shape for CI smoke runs; batch is large enough that splitting
#: across two workers leaves each shard with meaningful GEMMs.
QUICK_SHAPES: Tuple[Tuple[int, int, int], ...] = ((128, 512, 256),)

#: Equivalence gate: parallel reduction vs serial gradients (ISSUE 3).
EQUIV_TOL = 1e-10

#: Speedup floor enforced by the CI gate (W=2 and prefetch rows).
MIN_SPEEDUP = 1.3

#: Engine backends measured by default (process is dropped with a
#: metadata note on platforms without POSIX shared memory).
ENGINES: Tuple[str, ...] = ("thread", "process")

_WORKER_KEYS = (
    "kind", "engine", "model", "batch", "n_visible", "n_hidden", "n_workers"
)
_PREFETCH_KEYS = ("kind", "n_chunks", "n_buffers", "batch", "n_visible", "n_hidden")


def _time_min(fn, trials: int, inner: int) -> float:
    """Min-of-trials wall time of ``fn`` in ms (same protocol as hotpath)."""
    for _ in range(2):  # warm-up: workspaces, thread pools, BLAS paths
        fn()
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best * 1e3


def blas_budget_active() -> bool:
    """Can this process actually cap the BLAS pools?

    True when threadpoolctl is importable (limits apply to live pools) or
    when every BLAS env knob was pinned — which only bites if it happened
    before NumPy loaded, as ``benchmarks/bench_parallel.py`` does.
    """
    from repro.runtime.threads import BLAS_ENV_VARS, HAVE_THREADPOOLCTL

    if HAVE_THREADPOOLCTL:
        return True
    return all(var in os.environ for var in BLAS_ENV_VARS)


def _serial_ms(
    batch: int, n_visible: int, n_hidden: int, trials: int, inner: int, seed: int
) -> float:
    """Engine-free fused serial step time — the ``vs_serial`` baseline."""
    from repro.nn.autoencoder import SparseAutoencoder
    from repro.runtime.workspace import Workspace

    rng = np.random.default_rng(seed)
    x = rng.random((batch, n_visible))
    sae = SparseAutoencoder(n_visible, n_hidden, seed=seed)
    ws = Workspace(name="bench-serial")
    lr = 1e-12  # parameters effectively frozen across timing reps

    def step() -> None:
        _, grads = sae.gradients_into(x, ws)
        sae.apply_update(grads, lr, workspace=ws)

    return _time_min(step, trials, inner)


def _worker_rows(
    engine: str,
    serial_ms: float,
    batch: int,
    n_visible: int,
    n_hidden: int,
    workers: Sequence[int],
    trials: int,
    inner: int,
    seed: int,
    n_cores: int,
) -> List[Dict]:
    from repro.nn.autoencoder import SparseAutoencoder
    from repro.runtime.executor import ParallelGradientEngine
    from repro.runtime.procexec import ProcessGradientEngine

    engine_cls = {
        "thread": ParallelGradientEngine,
        "process": ProcessGradientEngine,
    }[engine]
    rng = np.random.default_rng(seed)
    x = rng.random((batch, n_visible))
    sae = SparseAutoencoder(n_visible, n_hidden, seed=seed)
    _, g_ref = sae.gradients(x)

    lr = 1e-12
    rows: List[Dict] = []
    ms_w1: Optional[float] = None
    for w in workers:
        with engine_cls(
            n_workers=w, blas_threads=1, seed=seed, name=f"bench-{engine}-w{w}"
        ) as eng:
            _, g_par = eng.sae_gradients(sae, x)
            diff = max(
                float(np.max(np.abs(g_ref.w1 - g_par.w1))),
                float(np.max(np.abs(g_ref.b1 - g_par.b1))),
                float(np.max(np.abs(g_ref.w2 - g_par.w2))),
                float(np.max(np.abs(g_ref.b2 - g_par.b2))),
            )
            ms = _time_min(lambda: eng.sae_step(sae, x, lr), trials, inner)
        if ms_w1 is None:
            ms_w1 = ms
        rows.append(
            {
                "kind": "workers",
                "engine": engine,
                "model": "sae",
                "batch": batch,
                "n_visible": n_visible,
                "n_hidden": n_hidden,
                "n_workers": w,
                "ms": round(ms, 3),
                "serial_ms": round(serial_ms, 3),
                # ratios of the *rounded* fields so the report is
                # self-consistent
                "speedup": round(round(ms_w1, 3) / round(ms, 3), 4),
                "vs_serial": round(round(serial_ms, 3) / round(ms, 3), 4),
                "max_abs_diff": diff,
                # Compute-parallel scaling is only physically possible
                # with one core per worker; gates skip untagged rows.
                "expected_scaling": bool(n_cores >= w),
            }
        )
    return rows


def _prefetch_row(
    n_chunks: int,
    n_buffers: int,
    batch: int,
    n_visible: int,
    n_hidden: int,
    seed: int,
) -> Dict:
    from repro.nn.autoencoder import SparseAutoencoder
    from repro.runtime.executor import ChunkPrefetcher
    from repro.runtime.workspace import Workspace

    rng = np.random.default_rng(seed)
    chunks = [rng.random((batch, n_visible)) for _ in range(n_chunks)]
    sae = SparseAutoencoder(n_visible, n_hidden, seed=seed)
    ws = Workspace(name="bench-prefetch")
    lr = 1e-12

    def compute(chunk: np.ndarray) -> None:
        _, grads = sae.gradients_into(chunk, ws)
        sae.apply_update(grads, lr, workspace=ws)

    # Calibrate the simulated host→device staging time to the measured
    # per-chunk compute time: a balanced pipeline, the regime where
    # double buffering pays the most (paper Fig. 5).
    compute(chunks[0])  # warm the workspace
    t0 = time.perf_counter()
    compute(chunks[0])
    load_s = max(time.perf_counter() - t0, 1e-3)

    def load(i: int) -> np.ndarray:
        time.sleep(load_s)
        return chunks[i]

    t0 = time.perf_counter()
    for i in range(n_chunks):  # serial reference: load, then train
        compute(load(i))
    serial_ms = (time.perf_counter() - t0) * 1e3

    with ChunkPrefetcher(load, n_chunks=n_chunks, n_buffers=n_buffers) as pf:
        t0 = time.perf_counter()
        for chunk in pf:
            compute(chunk)
        overlapped_ms = (time.perf_counter() - t0) * 1e3
    timeline = pf.timeline()

    return {
        "kind": "prefetch",
        "n_chunks": n_chunks,
        "n_buffers": n_buffers,
        "batch": batch,
        "n_visible": n_visible,
        "n_hidden": n_hidden,
        "load_ms": round(load_s * 1e3, 3),
        "serial_ms": round(serial_ms, 3),
        "overlapped_ms": round(overlapped_ms, 3),
        "speedup": round(round(serial_ms, 3) / round(overlapped_ms, 3), 4),
        "trainer_idle_ms": round(timeline.trainer_idle_s * 1e3, 3),
        "max_abs_diff": 0.0,
    }


def run_parallel_bench(
    shapes: Optional[Sequence[Tuple[int, int, int]]] = None,
    workers: Sequence[int] = (1, 2),
    trials: int = 5,
    inner: int = 3,
    n_chunks: int = 6,
    seed: int = 0,
    engines: Sequence[str] = ENGINES,
) -> Dict:
    """Run the parallel benchmark and return the versioned report dict."""
    from repro.runtime.freethreading import free_threaded_build, gil_enabled
    from repro.runtime.linalg import HAVE_BLAS
    from repro.runtime.procexec import process_engine_available
    from repro.runtime.threads import HAVE_THREADPOOLCTL, available_cores

    if shapes is None:
        shapes = PAPER_SHAPES
    if sorted(set(workers))[:1] != [1]:
        raise ConfigurationError("workers must include 1 (the speedup baseline)")
    engines = tuple(engines)
    unknown = set(engines) - set(ENGINES)
    if unknown or not engines:
        raise ConfigurationError(
            f"engines must be a non-empty subset of {ENGINES}, got {engines}"
        )
    shm_ok = process_engine_available()
    measured = tuple(
        e for e in engines if e != "process" or shm_ok
    )
    if "thread" not in measured:
        raise ConfigurationError(
            "engines must include 'thread' (always-available reference backend)"
        )
    n_cores = available_cores()
    rows: List[Dict] = []
    for batch, n_visible, n_hidden in shapes:
        serial = _serial_ms(batch, n_visible, n_hidden, trials, inner, seed)
        for engine in measured:
            rows.extend(
                _worker_rows(
                    engine, serial, batch, n_visible, n_hidden,
                    workers, trials, inner, seed, n_cores,
                )
            )
        rows.append(_prefetch_row(n_chunks, 2, batch, n_visible, n_hidden, seed))
    return {
        "schema": SCHEMA_ID,
        "n_cores": n_cores,
        "have_blas": bool(HAVE_BLAS),
        "have_threadpoolctl": bool(HAVE_THREADPOOLCTL),
        "blas_budget_active": blas_budget_active(),
        "blas_threads_per_worker": 1,
        "gil_enabled": gil_enabled(),
        "free_threaded": free_threaded_build(),
        "engines": list(measured),
        "process_engine_available": shm_ok,
        "equiv_tol": EQUIV_TOL,
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# schema validation and gates
# ---------------------------------------------------------------------------

def _row_key(row: Dict) -> Tuple:
    keys = _WORKER_KEYS if row.get("kind") == "workers" else _PREFETCH_KEYS
    return tuple(row.get(k) for k in keys)


def _gate_metric(row: Dict) -> Tuple[str, float]:
    """Which ratio a worker row is gated (and baseline-compared) on."""
    if row.get("kind") == "workers" and row.get("engine") == "process":
        return "vs_serial", row["vs_serial"]
    return "speedup", row["speedup"]


def validate_report(report: Dict) -> None:
    """Raise :class:`ConfigurationError` unless ``report`` matches the schema."""
    if not isinstance(report, dict):
        raise ConfigurationError("parallel report must be a dict")
    if report.get("schema") != SCHEMA_ID:
        raise ConfigurationError(
            f"parallel report schema must be {SCHEMA_ID!r}, "
            f"got {report.get('schema')!r}"
        )
    if not (isinstance(report.get("n_cores"), int) and report["n_cores"] >= 1):
        raise ConfigurationError("parallel report must record a positive 'n_cores'")
    for flag in ("gil_enabled", "free_threaded", "blas_budget_active"):
        if not isinstance(report.get(flag), bool):
            raise ConfigurationError(
                f"parallel report must record boolean {flag!r}"
            )
    if report.get("have_threadpoolctl") and not report["blas_budget_active"]:
        raise ConfigurationError(
            "report claims threadpoolctl is available but BLAS budgeting "
            "inactive — the budget must be asserted when the tool is present"
        )
    rows = report.get("rows")
    if not isinstance(rows, list) or not rows:
        raise ConfigurationError("parallel report must carry a non-empty 'rows' list")
    tol = report.get("equiv_tol", EQUIV_TOL)
    kinds = set()
    engines_seen = set()
    for i, row in enumerate(rows):
        kind = row.get("kind")
        if kind not in ("workers", "prefetch"):
            raise ConfigurationError(f"rows[{i}] has unknown kind {kind!r}")
        kinds.add(kind)
        if kind == "workers":
            if row.get("engine") not in ENGINES:
                raise ConfigurationError(
                    f"rows[{i}] has unknown engine {row.get('engine')!r}"
                )
            engines_seen.add(row["engine"])
        required = (
            _WORKER_KEYS + ("ms", "serial_ms", "speedup", "vs_serial", "max_abs_diff")
            if kind == "workers"
            else _PREFETCH_KEYS + ("serial_ms", "overlapped_ms", "speedup", "max_abs_diff")
        )
        for field in required:
            if field not in row:
                raise ConfigurationError(f"rows[{i}] missing field {field!r}")
        if kind == "workers" and not isinstance(row.get("expected_scaling"), bool):
            raise ConfigurationError(
                f"rows[{i}] must record boolean 'expected_scaling' "
                f"(n_cores >= n_workers at measurement time)"
            )
        timing_fields = (
            ("ms", "serial_ms", "vs_serial")
            if kind == "workers"
            else ("serial_ms", "overlapped_ms")
        )
        for field in timing_fields + ("speedup",):
            if not (isinstance(row[field], (int, float)) and row[field] > 0):
                raise ConfigurationError(
                    f"rows[{i}][{field!r}] must be a positive number"
                )
        if row["max_abs_diff"] > tol:
            raise ConfigurationError(
                f"rows[{i}] equivalence violated: max_abs_diff "
                f"{row['max_abs_diff']:g} > {tol:g}"
            )
    if kinds != {"workers", "prefetch"}:
        raise ConfigurationError(
            f"parallel report must carry both row kinds, got {sorted(kinds)}"
        )
    if "thread" not in engines_seen:
        raise ConfigurationError(
            "parallel report must carry thread-engine worker rows"
        )


def enforce_gates(report: Dict, min_speedup: float = MIN_SPEEDUP) -> Tuple[List[str], List[str]]:
    """Apply the speedup floors; returns ``(failures, skipped_notes)``.

    * prefetch rows must reach ``min_speedup`` on every machine (overlap
      with a sleeping loader does not need a second core);
    * ``n_workers >= 2`` rows must reach ``min_speedup`` only when tagged
      ``expected_scaling`` (measured with at least one core per worker) —
      other rows are recorded but the gate is reported as skipped, never
      silently dropped.  Thread rows gate on ``speedup`` (vs the same
      engine at W=1); process rows gate on ``vs_serial`` (the process
      engine must beat the engine-free serial step, the claim this
      backend exists to make).
    """
    validate_report(report)
    failures: List[str] = []
    skipped: List[str] = []
    for row in report["rows"]:
        if row["kind"] == "workers":
            if row["n_workers"] < 2:
                continue
            metric, value = _gate_metric(row)
            label = (
                f"{row['engine']} workers W={row['n_workers']} "
                f"({row['batch']},{row['n_visible']}->{row['n_hidden']})"
            )
            if not row["expected_scaling"]:
                skipped.append(
                    f"{label}: {metric} gate skipped — row tagged "
                    f"expected_scaling=false (measured on "
                    f"{report['n_cores']} core(s) < {row['n_workers']} "
                    f"workers)"
                )
            elif value < min_speedup:
                failures.append(
                    f"{label}: {metric} {value:.2f}x < required "
                    f"{min_speedup:.2f}x"
                )
        else:
            if row["speedup"] < min_speedup:
                failures.append(
                    f"prefetch ({row['n_chunks']} chunks, "
                    f"{row['n_buffers']} buffers): speedup "
                    f"{row['speedup']:.2f}x < required {min_speedup:.2f}x"
                )
    return failures, skipped


def compare_to_baseline(
    report: Dict, baseline: Dict, max_regression: float = 0.25
) -> Tuple[List[str], List[str]]:
    """Flag rows whose gated ratio regressed vs the committed baseline.

    Returns ``(failures, skipped_notes)``.  A worker row is only compared
    when **both** the current and the baseline row are tagged
    ``expected_scaling`` (an under-cored measurement's ratios hover
    around 1.0 and carry no regression signal) — skipped rows are
    reported with a note naming which side lacked scaling, never dropped
    silently.  Prefetch rows are always compared.  Each row is compared
    on the same metric its gate uses (:func:`_gate_metric`).
    """
    validate_report(report)
    validate_report(baseline)
    base_by_key = {_row_key(row): row for row in baseline["rows"]}
    failures: List[str] = []
    skipped: List[str] = []
    for row in report["rows"]:
        base = base_by_key.get(_row_key(row))
        if base is None:
            continue  # new shape/engine, nothing to regress against
        metric, value = _gate_metric(row)
        label = f"{row['kind']} {_row_key(row)[1:]}"
        if row["kind"] == "workers" and not (
            row["expected_scaling"] and base["expected_scaling"]
        ):
            source = "report" if not row["expected_scaling"] else "baseline"
            skipped.append(
                f"{label}: baseline comparison skipped — {source} row "
                f"tagged expected_scaling=false (measured on fewer cores "
                f"than workers)"
            )
            continue
        floor = base[metric] * (1.0 - max_regression)
        if value < floor:
            failures.append(
                f"{label}: {metric} "
                f"{value:.2f}x < floor {floor:.2f}x "
                f"(baseline {base[metric]:.2f}x, allowed regression "
                f"{max_regression:.0%})"
            )
    return failures, skipped


def load_report(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_report(report: Dict, path: str) -> str:
    validate_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
